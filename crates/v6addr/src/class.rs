//! IPv6/IPv4 address classification: the categories that drive router
//! advertisements, RFC 6724 selection and the testbed's census logic.

use std::net::{Ipv4Addr, Ipv6Addr};

/// Address scope (RFC 4007 / RFC 6724 §3.1). Ordered so that smaller scopes
/// compare less than larger ones, as rule 8 of destination selection needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Scope {
    /// Node-local (loopback, interface-local multicast).
    InterfaceLocal,
    /// Link-local.
    LinkLocal,
    /// Admin-local multicast.
    AdminLocal,
    /// Site-local (deprecated fec0::/10 unicast, site multicast).
    SiteLocal,
    /// Organization-local multicast.
    OrgLocal,
    /// Global.
    Global,
}

/// IPv6 address classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum V6Class {
    /// `::`
    Unspecified,
    /// `::1`
    Loopback,
    /// `fe80::/10`
    LinkLocal,
    /// `fc00::/7` unique local addresses — like the 5G gateway's
    /// `fd00:976a::` RDNSS values in the paper.
    UniqueLocal,
    /// `2000::/3` global unicast.
    GlobalUnicast,
    /// `ff00::/8` multicast (with scope).
    Multicast(Scope),
    /// `::ffff:a.b.c.d` IPv4-mapped.
    V4Mapped(Ipv4Addr),
    /// `64:ff9b::/96` — the NAT64 well-known prefix (RFC 6052/8215 treat it
    /// specially; classified distinctly so the census can spot translated flows).
    Nat64WellKnown(Ipv4Addr),
    /// `2002::/16` 6to4 transition addresses.
    SixToFour,
    /// `2001::/32` Teredo transition addresses.
    Teredo,
    /// `fec0::/10` deprecated site-local unicast.
    SiteLocal,
    /// `2001:db8::/32` documentation.
    Documentation,
    /// Anything else (reserved space).
    Reserved,
}

/// Classify an IPv6 address.
pub fn v6_class(a: Ipv6Addr) -> V6Class {
    let seg = a.segments();
    let o = a.octets();
    if a.is_unspecified() {
        return V6Class::Unspecified;
    }
    if a.is_loopback() {
        return V6Class::Loopback;
    }
    if seg[0] & 0xffc0 == 0xfe80 {
        return V6Class::LinkLocal;
    }
    if seg[0] & 0xffc0 == 0xfec0 {
        return V6Class::SiteLocal;
    }
    if seg[0] & 0xfe00 == 0xfc00 {
        return V6Class::UniqueLocal;
    }
    if seg[0] == 0xff00 || seg[0] & 0xff00 == 0xff00 {
        let scope = match seg[0] & 0x000f {
            0x1 => Scope::InterfaceLocal,
            0x2 => Scope::LinkLocal,
            0x4 => Scope::AdminLocal,
            0x5 => Scope::SiteLocal,
            0x8 => Scope::OrgLocal,
            _ => Scope::Global,
        };
        return V6Class::Multicast(scope);
    }
    if seg[0] == 0 && seg[1] == 0 && seg[2] == 0 && seg[3] == 0 && seg[4] == 0 && seg[5] == 0xffff {
        return V6Class::V4Mapped(Ipv4Addr::new(o[12], o[13], o[14], o[15]));
    }
    if seg[0] == 0x0064
        && seg[1] == 0xff9b
        && seg[2] == 0
        && seg[3] == 0
        && seg[4] == 0
        && seg[5] == 0
    {
        return V6Class::Nat64WellKnown(Ipv4Addr::new(o[12], o[13], o[14], o[15]));
    }
    if seg[0] == 0x2001 && seg[1] == 0x0db8 {
        return V6Class::Documentation;
    }
    if seg[0] == 0x2002 {
        return V6Class::SixToFour;
    }
    if seg[0] == 0x2001 && seg[1] == 0 {
        return V6Class::Teredo;
    }
    if seg[0] & 0xe000 == 0x2000 {
        return V6Class::GlobalUnicast;
    }
    V6Class::Reserved
}

impl V6Class {
    /// RFC 6724 §3.1 scope of a unicast address of this class. Multicast
    /// carries its own scope. ULAs are *global scope* per RFC 4193 §3.3 —
    /// a detail RFC 6724's policy table then de-prioritizes via label.
    pub fn scope(&self) -> Scope {
        match self {
            V6Class::Loopback | V6Class::Unspecified => Scope::InterfaceLocal,
            V6Class::LinkLocal => Scope::LinkLocal,
            V6Class::SiteLocal => Scope::SiteLocal,
            V6Class::Multicast(s) => *s,
            _ => Scope::Global,
        }
    }

    /// Is this class usable as a source for globally routed traffic
    /// (ignoring policy — just reachability semantics)?
    pub fn is_global_unicast_like(&self) -> bool {
        matches!(
            self,
            V6Class::GlobalUnicast
                | V6Class::Nat64WellKnown(_)
                | V6Class::SixToFour
                | V6Class::Teredo
        )
    }
}

/// Scope of an IPv6 address (unicast or multicast).
pub fn v6_scope(a: Ipv6Addr) -> Scope {
    v6_class(a).scope()
}

/// IPv4 classification relevant to the testbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum V4Class {
    /// 0.0.0.0
    Unspecified,
    /// 127.0.0.0/8
    Loopback,
    /// RFC 1918 private space.
    Private,
    /// 169.254.0.0/16 link-local (APIPA — what a v4-only client falls back
    /// to when DHCPv4 offers nothing).
    LinkLocal,
    /// 100.64.0.0/10 carrier-grade NAT space (RFC 6598) — the paper's IoT
    /// motivation mentions CGN deployments.
    SharedCgn,
    /// Multicast 224.0.0.0/4.
    Multicast,
    /// Broadcast 255.255.255.255.
    Broadcast,
    /// Documentation ranges (192.0.2/24, 198.51.100/24, 203.0.113/24).
    Documentation,
    /// Everything else: public unicast.
    Public,
}

/// Classify an IPv4 address.
pub fn v4_class(a: Ipv4Addr) -> V4Class {
    let o = a.octets();
    if a.is_unspecified() {
        V4Class::Unspecified
    } else if o[0] == 127 {
        V4Class::Loopback
    } else if o[0] == 10
        || (o[0] == 172 && (16..32).contains(&o[1]))
        || (o[0] == 192 && o[1] == 168)
    {
        V4Class::Private
    } else if o[0] == 169 && o[1] == 254 {
        V4Class::LinkLocal
    } else if o[0] == 100 && (64..128).contains(&o[1]) {
        V4Class::SharedCgn
    } else if o == [255, 255, 255, 255] {
        V4Class::Broadcast
    } else if o[0] >= 224 && o[0] < 240 {
        V4Class::Multicast
    } else if (o[0] == 192 && o[1] == 0 && o[2] == 2)
        || (o[0] == 198 && o[1] == 51 && o[2] == 100)
        || (o[0] == 203 && o[1] == 0 && o[2] == 113)
    {
        V4Class::Documentation
    } else {
        V4Class::Public
    }
}

impl V4Class {
    /// May this address appear as the *source* of globally routed traffic
    /// without NAT? (RFC 6052 §3.1 uses this to forbid embedding non-global
    /// v4 addresses under the NAT64 well-known prefix.)
    pub fn is_global(&self) -> bool {
        matches!(self, V4Class::Public)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(s: &str) -> V6Class {
        v6_class(s.parse().unwrap())
    }

    #[test]
    fn paper_addresses_classify() {
        // The dead RDNSS ULAs from Fig. 3:
        assert_eq!(c("fd00:976a::9"), V6Class::UniqueLocal);
        assert_eq!(c("fd00:976a::10"), V6Class::UniqueLocal);
        // The client's 5G GUA from Fig. 5 caption:
        assert_eq!(
            c("2607:fb90:9bda:a425:eccc:47e6:51a9:6090"),
            V6Class::GlobalUnicast
        );
        // The NAT64-translated sc24.supercomputing.org from Fig. 7:
        assert_eq!(
            c("64:ff9b::be5c:9e04"),
            V6Class::Nat64WellKnown("190.92.158.4".parse().unwrap())
        );
        // ip6.me's real v6 address:
        assert_eq!(c("2001:4810:0:3::71"), V6Class::GlobalUnicast);
    }

    #[test]
    fn special_classes() {
        assert_eq!(c("::"), V6Class::Unspecified);
        assert_eq!(c("::1"), V6Class::Loopback);
        assert_eq!(c("fe80::1"), V6Class::LinkLocal);
        assert_eq!(c("fec0::1"), V6Class::SiteLocal);
        assert_eq!(c("2002:c000:204::1"), V6Class::SixToFour);
        assert_eq!(c("2001::1"), V6Class::Teredo);
        assert_eq!(c("2001:db8::1"), V6Class::Documentation);
        assert_eq!(
            c("::ffff:192.0.2.1"),
            V6Class::V4Mapped("192.0.2.1".parse().unwrap())
        );
    }

    #[test]
    fn multicast_scopes() {
        assert_eq!(c("ff02::1"), V6Class::Multicast(Scope::LinkLocal));
        assert_eq!(c("ff05::2"), V6Class::Multicast(Scope::SiteLocal));
        assert_eq!(c("ff0e::1"), V6Class::Multicast(Scope::Global));
        assert_eq!(c("ff01::1"), V6Class::Multicast(Scope::InterfaceLocal));
    }

    #[test]
    fn ula_scope_is_global_rfc4193() {
        assert_eq!(v6_scope("fd00:976a::9".parse().unwrap()), Scope::Global);
        assert_eq!(v6_scope("fe80::1".parse().unwrap()), Scope::LinkLocal);
    }

    #[test]
    fn scope_ordering_for_rule8() {
        assert!(Scope::LinkLocal < Scope::SiteLocal);
        assert!(Scope::SiteLocal < Scope::Global);
    }

    #[test]
    fn v4_classes() {
        let f = |s: &str| v4_class(s.parse().unwrap());
        assert_eq!(f("192.168.12.251"), V4Class::Private);
        assert_eq!(f("10.0.0.1"), V4Class::Private);
        assert_eq!(f("172.31.0.1"), V4Class::Private);
        assert_eq!(f("172.32.0.1"), V4Class::Public);
        assert_eq!(f("169.254.7.7"), V4Class::LinkLocal);
        assert_eq!(f("100.64.0.1"), V4Class::SharedCgn);
        assert_eq!(f("23.153.8.71"), V4Class::Public); // ip6.me
        assert_eq!(f("130.202.36.253"), V4Class::Public); // Argonne resolver (Fig. 9)
        assert_eq!(f("224.0.0.251"), V4Class::Multicast);
        assert_eq!(f("255.255.255.255"), V4Class::Broadcast);
        assert_eq!(f("198.51.100.7"), V4Class::Documentation);
    }

    #[test]
    fn global_eligibility() {
        assert!(v4_class("23.153.8.71".parse().unwrap()).is_global());
        assert!(!v4_class("192.168.1.1".parse().unwrap()).is_global());
        assert!(V6Class::GlobalUnicast.is_global_unicast_like());
        assert!(!V6Class::UniqueLocal.is_global_unicast_like());
    }
}
