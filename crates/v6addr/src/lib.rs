//! # v6addr — IPv6/IPv4 address machinery for the sc24v6 testbed
//!
//! Everything about *addresses* that the paper's testbed depends on:
//!
//! * prefix arithmetic for both families ([`prefix`])
//! * address classification: link-local, ULA, GUA, multicast scopes,
//!   IPv4-mapped, documentation ranges ([`class`])
//! * RFC 6052 IPv4-embedded IPv6 addresses — the NAT64 well-known prefix
//!   `64:ff9b::/96` and all network-specific prefix lengths ([`rfc6052`])
//! * SLAAC interface identifiers: modified EUI-64 and RFC 7217
//!   stable-private ([`slaac`])
//! * RFC 6724 source and destination address selection, the mechanism the
//!   paper leans on for "AAAA record answers will be preferred by modern
//!   operating systems with IPv6 connectivity" ([`rfc6724`])

#![warn(missing_docs)]

pub mod class;
pub mod prefix;
pub mod rfc6052;
pub mod rfc6724;
pub mod slaac;

pub use class::{v6_class, Scope, V6Class};
pub use prefix::{Ipv4Prefix, Ipv6Prefix, PrefixError};
pub use rfc6052::{Nat64Prefix, PrefixLen};
pub use rfc6724::{select_source, sort_destinations, CandidateSource, PolicyTable};
pub use slaac::{eui64_iid, stable_private_iid};
