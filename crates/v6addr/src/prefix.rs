//! CIDR prefix arithmetic for both IP families.

use std::net::{Ipv4Addr, Ipv6Addr};
use std::str::FromStr;

/// Errors from prefix parsing/construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixError {
    /// Prefix length exceeds the family's address width.
    LengthOutOfRange {
        /// Offending length.
        len: u8,
        /// Maximum for the family.
        max: u8,
    },
    /// The string was not `addr/len`.
    Malformed(String),
}

impl core::fmt::Display for PrefixError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PrefixError::LengthOutOfRange { len, max } => {
                write!(f, "prefix length {len} exceeds {max}")
            }
            PrefixError::Malformed(s) => write!(f, "malformed prefix: {s:?}"),
        }
    }
}

impl std::error::Error for PrefixError {}

/// An IPv6 CIDR prefix. The address is stored in canonical (masked) form.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ipv6Prefix {
    addr: u128,
    len: u8,
}

impl Ipv6Prefix {
    /// Construct, masking `addr` down to `len` bits.
    pub fn new(addr: Ipv6Addr, len: u8) -> Result<Self, PrefixError> {
        if len > 128 {
            return Err(PrefixError::LengthOutOfRange { len, max: 128 });
        }
        Ok(Ipv6Prefix {
            addr: u128::from(addr) & Self::mask(len),
            len,
        })
    }

    fn mask(len: u8) -> u128 {
        if len == 0 {
            0
        } else {
            u128::MAX << (128 - u32::from(len))
        }
    }

    /// The canonical network address.
    pub fn network(&self) -> Ipv6Addr {
        Ipv6Addr::from(self.addr)
    }

    /// Prefix length in bits.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True only for the zero-length prefix `::/0`.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Does this prefix cover `addr`?
    pub fn contains(&self, addr: Ipv6Addr) -> bool {
        u128::from(addr) & Self::mask(self.len) == self.addr
    }

    /// Does this prefix fully cover `other`?
    pub fn covers(&self, other: &Ipv6Prefix) -> bool {
        other.len >= self.len && (other.addr & Self::mask(self.len)) == self.addr
    }

    /// The address formed by putting `iid` (host bits) under this prefix.
    /// Bits of `iid` that overlap the prefix are discarded.
    pub fn with_iid(&self, iid: u128) -> Ipv6Addr {
        Ipv6Addr::from(self.addr | (iid & !Self::mask(self.len)))
    }

    /// The `n`-th /64 subnet of this prefix (panics if `len > 64`).
    pub fn subnet64(&self, n: u64) -> Ipv6Prefix {
        assert!(
            self.len <= 64,
            "subnet64 requires a prefix of /64 or shorter"
        );
        let shifted = u128::from(n) << 64;
        Ipv6Prefix {
            addr: self.addr | (shifted & !Self::mask(self.len) & Self::mask(64)),
            len: 64,
        }
    }

    /// Number of leading bits shared between `a` and `b` (RFC 6724's
    /// `CommonPrefixLen`, clamped to 64 bits by its callers, not here).
    pub fn common_prefix_len(a: Ipv6Addr, b: Ipv6Addr) -> u8 {
        (u128::from(a) ^ u128::from(b)).leading_zeros() as u8
    }
}

impl core::fmt::Debug for Ipv6Prefix {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl core::fmt::Display for Ipv6Prefix {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        core::fmt::Debug::fmt(self, f)
    }
}

impl FromStr for Ipv6Prefix {
    type Err = PrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| PrefixError::Malformed(s.into()))?;
        let addr: Ipv6Addr = addr.parse().map_err(|_| PrefixError::Malformed(s.into()))?;
        let len: u8 = len.parse().map_err(|_| PrefixError::Malformed(s.into()))?;
        Ipv6Prefix::new(addr, len)
    }
}

/// An IPv4 CIDR prefix, canonical form.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ipv4Prefix {
    addr: u32,
    len: u8,
}

impl Ipv4Prefix {
    /// Construct, masking `addr` down to `len` bits.
    pub fn new(addr: Ipv4Addr, len: u8) -> Result<Self, PrefixError> {
        if len > 32 {
            return Err(PrefixError::LengthOutOfRange { len, max: 32 });
        }
        Ok(Ipv4Prefix {
            addr: u32::from(addr) & Self::mask(len),
            len,
        })
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(len))
        }
    }

    /// The canonical network address.
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.addr)
    }

    /// Prefix length in bits.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True only for `0.0.0.0/0`.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Does this prefix cover `addr`?
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        u32::from(addr) & Self::mask(self.len) == self.addr
    }

    /// The `n`-th host address in the prefix (n=0 is the network address).
    pub fn host(&self, n: u32) -> Ipv4Addr {
        Ipv4Addr::from(self.addr | (n & !Self::mask(self.len)))
    }

    /// Count of addresses covered (saturating at `u32::MAX` for /0).
    pub fn size(&self) -> u32 {
        if self.len == 0 {
            u32::MAX
        } else {
            1u32 << (32 - u32::from(self.len))
        }
    }
}

impl core::fmt::Debug for Ipv4Prefix {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl core::fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        core::fmt::Debug::fmt(self, f)
    }
}

impl FromStr for Ipv4Prefix {
    type Err = PrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| PrefixError::Malformed(s.into()))?;
        let addr: Ipv4Addr = addr.parse().map_err(|_| PrefixError::Malformed(s.into()))?;
        let len: u8 = len.parse().map_err(|_| PrefixError::Malformed(s.into()))?;
        Ipv4Prefix::new(addr, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v6_parse_and_contains() {
        let p: Ipv6Prefix = "fd00:976a::/64".parse().unwrap();
        assert!(p.contains("fd00:976a::9".parse().unwrap()));
        assert!(p.contains("fd00:976a::eccc:47e6:51a9:6090".parse().unwrap()));
        assert!(!p.contains("fd00:976b::1".parse().unwrap()));
        assert_eq!(p.to_string(), "fd00:976a::/64");
    }

    #[test]
    fn v6_canonicalizes() {
        let p = Ipv6Prefix::new("2001:db8::dead:beef".parse().unwrap(), 32).unwrap();
        assert_eq!(p.network(), "2001:db8::".parse::<Ipv6Addr>().unwrap());
    }

    #[test]
    fn v6_with_iid() {
        let p: Ipv6Prefix = "2607:fb90:9bda:a425::/64".parse().unwrap();
        let a = p.with_iid(0xeccc_47e6_51a9_6090);
        assert_eq!(
            a,
            "2607:fb90:9bda:a425:eccc:47e6:51a9:6090"
                .parse::<Ipv6Addr>()
                .unwrap()
        );
    }

    #[test]
    fn v6_subnets_of_argonne_32() {
        // A /32 contains ~64k /48s, each with ~64k /64s (paper §II.A).
        let p: Ipv6Prefix = "2620:10f::/32".parse().unwrap();
        let s0 = p.subnet64(0);
        let s1 = p.subnet64(1);
        assert_eq!(s0.len(), 64);
        assert_ne!(s0, s1);
        assert!(p.covers(&s1));
    }

    #[test]
    fn v6_covers() {
        let p32: Ipv6Prefix = "2620:10f::/32".parse().unwrap();
        let p48: Ipv6Prefix = "2620:10f:d000::/48".parse().unwrap();
        assert!(p32.covers(&p48));
        assert!(!p48.covers(&p32));
    }

    #[test]
    fn v6_common_prefix_len() {
        let a: Ipv6Addr = "2001:db8::1".parse().unwrap();
        let b: Ipv6Addr = "2001:db8::2".parse().unwrap();
        assert_eq!(Ipv6Prefix::common_prefix_len(a, b), 126);
        assert_eq!(Ipv6Prefix::common_prefix_len(a, a), 128);
    }

    #[test]
    fn v6_len_range_checked() {
        assert!(Ipv6Prefix::new(Ipv6Addr::UNSPECIFIED, 129).is_err());
        assert!("::/129".parse::<Ipv6Prefix>().is_err());
        assert!("nonsense".parse::<Ipv6Prefix>().is_err());
    }

    #[test]
    fn v4_parse_contains_host() {
        let p: Ipv4Prefix = "192.168.12.0/24".parse().unwrap();
        assert!(p.contains("192.168.12.251".parse().unwrap()));
        assert!(!p.contains("192.168.13.1".parse().unwrap()));
        assert_eq!(p.host(251), "192.168.12.251".parse::<Ipv4Addr>().unwrap());
        assert_eq!(p.size(), 256);
    }

    #[test]
    fn v4_single_24_motivates_exhaustion() {
        // Paper §II: "a single /24 address space (around 250 usable addresses)".
        let p: Ipv4Prefix = "10.10.10.0/24".parse().unwrap();
        let usable = p.size() - 2; // network + broadcast
        assert_eq!(usable, 254);
    }

    #[test]
    fn zero_length_prefixes() {
        let v6: Ipv6Prefix = "::/0".parse().unwrap();
        assert!(v6.is_empty());
        assert!(v6.contains("2001:db8::1".parse().unwrap()));
        let v4: Ipv4Prefix = "0.0.0.0/0".parse().unwrap();
        assert!(v4.is_empty());
        assert!(v4.contains("8.8.8.8".parse().unwrap()));
    }
}
