//! RFC 6052 — IPv4-embedded IPv6 addresses.
//!
//! NAT64 and DNS64 agree on a translation prefix; the IPv4 address is
//! embedded at a position that depends on the prefix length, skipping bits
//! 64..71 ("u" octet, must be zero). The testbed uses the well-known prefix
//! `64:ff9b::/96` (paper §IV.A), but network-specific prefixes of length
//! 32/40/48/56/64/96 are all implemented and tested against the RFC's
//! examples.

use crate::class::{v4_class, V4Class};
use crate::prefix::Ipv6Prefix;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Legal NAT64/DNS64 prefix lengths (RFC 6052 §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefixLen {
    /// /32 — IPv4 in bits 32..63.
    L32,
    /// /40 — bits 40..63 + 72..79.
    L40,
    /// /48 — bits 48..63 + 72..87.
    L48,
    /// /56 — bits 56..63 + 72..95.
    L56,
    /// /64 — bits 72..103.
    L64,
    /// /96 — bits 96..127 (the well-known prefix's length).
    L96,
}

impl PrefixLen {
    /// Numeric length.
    pub fn bits(self) -> u8 {
        match self {
            PrefixLen::L32 => 32,
            PrefixLen::L40 => 40,
            PrefixLen::L48 => 48,
            PrefixLen::L56 => 56,
            PrefixLen::L64 => 64,
            PrefixLen::L96 => 96,
        }
    }

    /// Validate a numeric length.
    pub fn from_bits(bits: u8) -> Option<PrefixLen> {
        Some(match bits {
            32 => PrefixLen::L32,
            40 => PrefixLen::L40,
            48 => PrefixLen::L48,
            56 => PrefixLen::L56,
            64 => PrefixLen::L64,
            96 => PrefixLen::L96,
            _ => return None,
        })
    }
}

/// Errors from NAT64 prefix construction and embedding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rfc6052Error {
    /// The prefix length is not one of the six legal values.
    IllegalLength(u8),
    /// Embedding a non-global IPv4 address under the well-known prefix
    /// (forbidden by RFC 6052 §3.1).
    NonGlobalUnderWkp(Ipv4Addr),
    /// The address does not belong to this translation prefix.
    NotInPrefix(Ipv6Addr),
}

impl core::fmt::Display for Rfc6052Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Rfc6052Error::IllegalLength(l) => write!(f, "illegal NAT64 prefix length /{l}"),
            Rfc6052Error::NonGlobalUnderWkp(a) => {
                write!(f, "cannot embed non-global {a} under 64:ff9b::/96")
            }
            Rfc6052Error::NotInPrefix(a) => write!(f, "{a} is not in this NAT64 prefix"),
        }
    }
}

impl std::error::Error for Rfc6052Error {}

/// A NAT64/DNS64 translation prefix.
///
/// ```
/// use v6addr::rfc6052::Nat64Prefix;
/// use std::net::{Ipv4Addr, Ipv6Addr};
///
/// let wkp = Nat64Prefix::well_known();
/// let v6 = wkp.embed("190.92.158.4".parse().unwrap()).unwrap();
/// assert_eq!(v6, "64:ff9b::be5c:9e04".parse::<Ipv6Addr>().unwrap());
/// assert_eq!(wkp.extract(v6).unwrap(), "190.92.158.4".parse::<Ipv4Addr>().unwrap());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Nat64Prefix {
    prefix: Ipv6Prefix,
    len: PrefixLen,
}

impl Nat64Prefix {
    /// The well-known prefix `64:ff9b::/96` (RFC 6052 §2.1).
    pub fn well_known() -> Nat64Prefix {
        Nat64Prefix {
            prefix: "64:ff9b::/96".parse().expect("static WKP"),
            len: PrefixLen::L96,
        }
    }

    /// A network-specific prefix.
    pub fn new(prefix: Ipv6Prefix) -> Result<Nat64Prefix, Rfc6052Error> {
        let len =
            PrefixLen::from_bits(prefix.len()).ok_or(Rfc6052Error::IllegalLength(prefix.len()))?;
        Ok(Nat64Prefix { prefix, len })
    }

    /// Is this the well-known prefix?
    pub fn is_well_known(&self) -> bool {
        *self == Self::well_known()
    }

    /// The underlying IPv6 prefix.
    pub fn prefix(&self) -> Ipv6Prefix {
        self.prefix
    }

    /// Embed `v4` per RFC 6052 §2.2. Fails for non-global v4 addresses when
    /// this is the well-known prefix (§3.1).
    pub fn embed(&self, v4: Ipv4Addr) -> Result<Ipv6Addr, Rfc6052Error> {
        if self.is_well_known() && !matches!(v4_class(v4), V4Class::Public) {
            return Err(Rfc6052Error::NonGlobalUnderWkp(v4));
        }
        Ok(self.embed_unchecked(v4))
    }

    /// Embed without the §3.1 well-known-prefix check — the testbed uses
    /// this knowingly for lab-local IPv4 space behind the 5G gateway.
    pub fn embed_unchecked(&self, v4: Ipv4Addr) -> Ipv6Addr {
        let p = u128::from(self.prefix.network());
        let v = u128::from(u32::from(v4));
        let combined = match self.len {
            // Bits counted from the top of the 128-bit address.
            PrefixLen::L32 => p | (v << 64),
            PrefixLen::L40 => p | ((v >> 8) << 64) | ((v & 0xff) << 48),
            PrefixLen::L48 => p | ((v >> 16) << 64) | ((v & 0xffff) << 40),
            PrefixLen::L56 => p | ((v >> 24) << 64) | ((v & 0xff_ffff) << 32),
            PrefixLen::L64 => p | (v << 24),
            PrefixLen::L96 => p | v,
        };
        Ipv6Addr::from(combined)
    }

    /// Extract the embedded IPv4 address (RFC 6052 §2.3), verifying prefix
    /// membership.
    pub fn extract(&self, v6: Ipv6Addr) -> Result<Ipv4Addr, Rfc6052Error> {
        if !self.prefix.contains(v6) {
            return Err(Rfc6052Error::NotInPrefix(v6));
        }
        let bits = u128::from(v6);
        let v: u32 = match self.len {
            PrefixLen::L32 => (bits >> 64) as u32,
            PrefixLen::L40 => ((((bits >> 64) & 0xff_ffff) << 8) | ((bits >> 48) & 0xff)) as u32,
            PrefixLen::L48 => ((((bits >> 64) & 0xffff) << 16) | ((bits >> 40) & 0xffff)) as u32,
            PrefixLen::L56 => ((((bits >> 64) & 0xff) << 24) | ((bits >> 32) & 0xff_ffff)) as u32,
            PrefixLen::L64 => ((bits >> 24) & 0xffff_ffff) as u32,
            PrefixLen::L96 => bits as u32,
        };
        Ok(Ipv4Addr::from(v))
    }

    /// Does this prefix cover `v6` (i.e. is it a translated address)?
    pub fn matches(&self, v6: Ipv6Addr) -> bool {
        self.prefix.contains(v6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 6052 §2.4 gives a worked table for 192.0.2.33 under 2001:db8::
    /// at every legal length.
    #[test]
    fn rfc6052_section_2_4_table() {
        let v4: Ipv4Addr = "192.0.2.33".parse().unwrap();
        let cases = [
            (32, "2001:db8:c000:221::"),
            (40, "2001:db8:1c0:2:21::"),
            (48, "2001:db8:122:c000:2:2100::"),
            (56, "2001:db8:122:3c0:0:221::"),
            (64, "2001:db8:122:344:c0:2:2100:0"),
            (96, "2001:db8:122:344::192.0.2.33"),
        ];
        for (len, expect) in cases {
            let base = match len {
                32 => "2001:db8::/32",
                40 => "2001:db8:100::/40",
                48 => "2001:db8:122::/48",
                56 => "2001:db8:122:300::/56",
                64 => "2001:db8:122:344::/64",
                96 => "2001:db8:122:344::/96",
                _ => unreachable!(),
            };
            let p = Nat64Prefix::new(base.parse().unwrap()).unwrap();
            let embedded = p.embed(v4).unwrap();
            assert_eq!(
                embedded,
                expect.parse::<Ipv6Addr>().unwrap(),
                "embed at /{len}"
            );
            assert_eq!(p.extract(embedded).unwrap(), v4, "extract at /{len}");
        }
    }

    #[test]
    fn paper_fig7_address() {
        // Fig. 7: sc24.supercomputing.org resolved to 64:ff9b::be5c:9e04,
        // i.e. 190.92.158.4 behind the WKP.
        let wkp = Nat64Prefix::well_known();
        let v6: Ipv6Addr = "64:ff9b::be5c:9e04".parse().unwrap();
        assert_eq!(
            wkp.extract(v6).unwrap(),
            "190.92.158.4".parse::<Ipv4Addr>().unwrap()
        );
        assert_eq!(wkp.embed("190.92.158.4".parse().unwrap()).unwrap(), v6);
    }

    #[test]
    fn paper_fig9_address() {
        // Fig. 9: vpn.anl.gov pinged as 64:ff9b::82ca:e4fd = 130.202.228.253.
        let wkp = Nat64Prefix::well_known();
        assert_eq!(
            wkp.extract("64:ff9b::82ca:e4fd".parse().unwrap()).unwrap(),
            "130.202.228.253".parse::<Ipv4Addr>().unwrap()
        );
    }

    #[test]
    fn wkp_rejects_private_v4() {
        let wkp = Nat64Prefix::well_known();
        assert!(matches!(
            wkp.embed("192.168.12.251".parse().unwrap()),
            Err(Rfc6052Error::NonGlobalUnderWkp(_))
        ));
        // ...but the testbed may choose to do it anyway.
        let forced = wkp.embed_unchecked("192.168.12.251".parse().unwrap());
        assert_eq!(
            wkp.extract(forced).unwrap(),
            "192.168.12.251".parse::<Ipv4Addr>().unwrap()
        );
    }

    #[test]
    fn illegal_lengths_rejected() {
        for len in [0u8, 1, 31, 33, 65, 95, 97, 128] {
            let p = Ipv6Prefix::new("2001:db8::".parse().unwrap(), len).unwrap();
            assert!(
                matches!(Nat64Prefix::new(p), Err(Rfc6052Error::IllegalLength(_))),
                "length {len} must be rejected"
            );
        }
    }

    #[test]
    fn extract_requires_membership() {
        let wkp = Nat64Prefix::well_known();
        assert!(matches!(
            wkp.extract("2001:db8::1".parse().unwrap()),
            Err(Rfc6052Error::NotInPrefix(_))
        ));
    }

    #[test]
    fn u_octet_is_zero_at_all_lengths() {
        // RFC 6052 §2.2: bits 64..71 must be zero in every embedded address.
        let v4: Ipv4Addr = "203.0.113.77".parse().unwrap();
        for (base, _len) in [
            ("2001:db8::/32", 32u8),
            ("2001:db8:100::/40", 40),
            ("2001:db8:122::/48", 48),
            ("2001:db8:122:300::/56", 56),
            ("2001:db8:122:344::/64", 64),
            ("2001:db8:122:344::/96", 96),
        ] {
            let p = Nat64Prefix::new(base.parse().unwrap()).unwrap();
            let e = p.embed(v4).unwrap();
            assert_eq!(e.octets()[8], 0, "u octet at {base}");
        }
    }

    #[test]
    fn roundtrip_all_lengths_exhaustive_octets() {
        // Round-trip a spread of addresses at each length.
        for (base, _) in [
            ("2001:db8::/32", 0),
            ("2001:db8:100::/40", 0),
            ("2001:db8:122::/48", 0),
            ("2001:db8:122:300::/56", 0),
            ("2001:db8:122:344::/64", 0),
            ("2001:db8:122:344::/96", 0),
        ] {
            let p = Nat64Prefix::new(base.parse().unwrap()).unwrap();
            for a in [
                Ipv4Addr::new(1, 2, 3, 4),
                Ipv4Addr::new(255, 255, 255, 255),
                Ipv4Addr::new(128, 0, 0, 1),
                Ipv4Addr::new(23, 153, 8, 71),
            ] {
                assert_eq!(p.extract(p.embed_unchecked(a)).unwrap(), a, "{base} {a}");
            }
        }
    }
}
