//! RFC 6724 — default address selection.
//!
//! This is the mechanism behind the paper's central claim that the poisoned
//! IPv4 A records have "minimal impact to RFC8925 and dual-stack clients":
//! when a resolver hands back both a valid AAAA and a poisoned A, destination
//! address selection orders the IPv6 destination first (precedence 40 vs 35
//! for IPv4-mapped), so a host with working IPv6 never contacts the poisoned
//! IPv4 address.
//!
//! IPv4 destinations and sources are represented as IPv4-mapped IPv6
//! addresses (`::ffff:a.b.c.d`), exactly as RFC 6724 §2 prescribes.

use crate::class::{v4_class, v6_class, Scope, V4Class, V6Class};
use crate::prefix::Ipv6Prefix;
use std::cmp::Ordering;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Map an IPv4 address into RFC 6724's IPv4-mapped representation.
pub fn mapped(v4: Ipv4Addr) -> Ipv6Addr {
    v4.to_ipv6_mapped()
}

/// Scope of an address under RFC 6724 §3.1–3.2 (IPv4-mapped included).
pub fn scope_of(a: Ipv6Addr) -> Scope {
    match v6_class(a) {
        V6Class::V4Mapped(v4) => match v4_class(v4) {
            V4Class::Loopback | V4Class::LinkLocal => Scope::LinkLocal,
            _ => Scope::Global,
        },
        other => other.scope(),
    }
}

/// One row of the RFC 6724 §2.1 policy table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyEntry {
    /// Covered prefix.
    pub prefix: Ipv6Prefix,
    /// Precedence (higher preferred for destinations).
    pub precedence: u8,
    /// Label (sources and destinations with equal labels pair up).
    pub label: u8,
}

/// The configurable policy table.
#[derive(Debug, Clone)]
pub struct PolicyTable {
    entries: Vec<PolicyEntry>,
}

impl Default for PolicyTable {
    fn default() -> Self {
        Self::rfc6724_default()
    }
}

impl PolicyTable {
    /// The default table of RFC 6724 §2.1.
    pub fn rfc6724_default() -> Self {
        let row = |p: &str, precedence: u8, label: u8| PolicyEntry {
            prefix: p.parse().expect("static policy prefix"),
            precedence,
            label,
        };
        PolicyTable {
            entries: vec![
                row("::1/128", 50, 0),
                row("::/0", 40, 1),
                row("::ffff:0:0/96", 35, 4),
                row("2002::/16", 30, 2),
                row("2001::/32", 5, 5),
                row("fc00::/7", 3, 13),
                row("::/96", 1, 3),
                row("fec0::/10", 1, 11),
                row("3ffe::/16", 1, 12),
            ],
        }
    }

    /// Add (or override) a row; longest-prefix match means a more specific
    /// row wins automatically.
    pub fn push(&mut self, entry: PolicyEntry) {
        self.entries.push(entry);
    }

    /// Longest-prefix lookup returning `(precedence, label)`.
    pub fn lookup(&self, addr: Ipv6Addr) -> (u8, u8) {
        self.entries
            .iter()
            .filter(|e| e.prefix.contains(addr))
            .max_by_key(|e| e.prefix.len())
            .map(|e| (e.precedence, e.label))
            .unwrap_or((40, 1))
    }

    /// Precedence of `addr`.
    pub fn precedence(&self, addr: Ipv6Addr) -> u8 {
        self.lookup(addr).0
    }

    /// Label of `addr`.
    pub fn label(&self, addr: Ipv6Addr) -> u8 {
        self.lookup(addr).1
    }
}

/// A candidate source address attached to an interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CandidateSource {
    /// The address (IPv4 sources in mapped form).
    pub addr: Ipv6Addr,
    /// Outgoing interface index the address is configured on.
    pub iface: u32,
    /// Prefix length of the subnet the address belongs to.
    pub prefix_len: u8,
    /// Deprecated (preferred lifetime expired)?
    pub deprecated: bool,
    /// Temporary (RFC 8981 privacy) address?
    pub temporary: bool,
    /// Mobile-IP home address?
    pub home: bool,
}

impl CandidateSource {
    /// A plain, preferred, non-temporary address on interface `iface`.
    pub fn plain(addr: Ipv6Addr, iface: u32, prefix_len: u8) -> Self {
        CandidateSource {
            addr,
            iface,
            prefix_len,
            deprecated: false,
            temporary: false,
            home: false,
        }
    }
}

/// RFC 6724 §2.2 CommonPrefixLen: leading bits shared by `s` and `d`,
/// clamped to the source's own prefix length.
fn common_prefix_len(s: &CandidateSource, d: Ipv6Addr) -> u8 {
    Ipv6Prefix::common_prefix_len(s.addr, d).min(s.prefix_len)
}

/// RFC 6724 §5 source-address selection: pick the best source among
/// `candidates` for destination `dst` leaving via `out_iface`.
///
/// Returns `None` when no candidate is of the same family-compatibility
/// class (an IPv4-mapped destination can only use IPv4-mapped sources and
/// vice versa) — the situation an IPv4-only host faces for every AAAA
/// answer, and an RFC 8925 client faces for every poisoned A answer.
pub fn select_source(
    dst: Ipv6Addr,
    candidates: &[CandidateSource],
    out_iface: u32,
    table: &PolicyTable,
) -> Option<CandidateSource> {
    let dst_is_v4 = matches!(v6_class(dst), V6Class::V4Mapped(_));
    let mut best: Option<CandidateSource> = None;
    for &cand in candidates {
        let cand_is_v4 = matches!(v6_class(cand.addr), V6Class::V4Mapped(_));
        if cand_is_v4 != dst_is_v4 {
            continue;
        }
        best = Some(match best {
            None => cand,
            Some(cur) => {
                if source_beats(cand, cur, dst, out_iface, table) {
                    cand
                } else {
                    cur
                }
            }
        });
    }
    best
}

/// Do the §5 rules prefer `a` over `b` for `dst`?
fn source_beats(
    a: CandidateSource,
    b: CandidateSource,
    dst: Ipv6Addr,
    out_iface: u32,
    table: &PolicyTable,
) -> bool {
    // Rule 1: prefer same address.
    if a.addr == dst || b.addr == dst {
        return a.addr == dst;
    }
    // Rule 2: prefer appropriate scope.
    let (sa, sb, sd) = (scope_of(a.addr), scope_of(b.addr), scope_of(dst));
    if sa != sb {
        // If Scope(A) < Scope(B): prefer B when Scope(A) < Scope(D), else A.
        if sa < sb {
            return sa >= sd;
        } else {
            return sb < sd;
        }
    }
    // Rule 3: avoid deprecated addresses.
    if a.deprecated != b.deprecated {
        return !a.deprecated;
    }
    // Rule 4: prefer home addresses.
    if a.home != b.home {
        return a.home;
    }
    // Rule 5: prefer the outgoing interface.
    let (ia, ib) = (a.iface == out_iface, b.iface == out_iface);
    if ia != ib {
        return ia;
    }
    // Rule 6: prefer matching label.
    let dl = table.label(dst);
    let (la, lb) = (table.label(a.addr) == dl, table.label(b.addr) == dl);
    if la != lb {
        return la;
    }
    // Rule 7: prefer temporary addresses.
    if a.temporary != b.temporary {
        return a.temporary;
    }
    // Rule 8: prefer longest matching prefix.
    common_prefix_len(&a, dst) > common_prefix_len(&b, dst)
}

/// Per-destination attributes the host stack knows before sorting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DestCandidate {
    /// Destination (IPv4 in mapped form).
    pub addr: Ipv6Addr,
    /// Is there a route at all (interface up, default route present)?
    pub reachable: bool,
    /// Would reaching it use an encapsulating transition transport
    /// (6to4/Teredo/tunnel)? Rule 7 avoids these.
    pub encapsulated: bool,
}

impl DestCandidate {
    /// A reachable, native-transport destination.
    pub fn plain(addr: Ipv6Addr) -> Self {
        DestCandidate {
            addr,
            reachable: true,
            encapsulated: false,
        }
    }

    /// A reachable IPv4 destination in mapped form.
    pub fn v4(addr: Ipv4Addr) -> Self {
        Self::plain(mapped(addr))
    }
}

/// RFC 6724 §6 destination-address ordering. `sources` is the host's full
/// candidate set; `out_iface` the interface the route would use. Returns the
/// destinations most-preferred first (stable for ties — rule 10).
///
/// ```
/// use v6addr::rfc6724::{sort_destinations, CandidateSource, DestCandidate, PolicyTable};
///
/// // A dual-stack host receives a genuine AAAA and a poisoned A record:
/// let sources = [
///     CandidateSource::plain("2607:fb90::50".parse().unwrap(), 1, 64),
///     CandidateSource::plain(v6addr::rfc6724::mapped("192.168.12.50".parse().unwrap()), 1, 128),
/// ];
/// let dests = [
///     DestCandidate::v4("23.153.8.71".parse().unwrap()),        // poisoned A
///     DestCandidate::plain("2001:4810:0:3::71".parse().unwrap()), // real AAAA
/// ];
/// let ordered = sort_destinations(&dests, &sources, 1, &PolicyTable::default());
/// // IPv6 wins (precedence 40 beats 35): the poisoning is invisible.
/// assert_eq!(ordered[0].addr, "2001:4810:0:3::71".parse::<std::net::Ipv6Addr>().unwrap());
/// ```
pub fn sort_destinations(
    dests: &[DestCandidate],
    sources: &[CandidateSource],
    out_iface: u32,
    table: &PolicyTable,
) -> Vec<DestCandidate> {
    let mut out = dests.to_vec();
    out.sort_by(|&da, &db| dest_order(da, db, sources, out_iface, table));
    out
}

fn dest_order(
    da: DestCandidate,
    db: DestCandidate,
    sources: &[CandidateSource],
    out_iface: u32,
    table: &PolicyTable,
) -> Ordering {
    let sa = select_source(da.addr, sources, out_iface, table);
    let sb = select_source(db.addr, sources, out_iface, table);
    // Rule 1: avoid unusable destinations (unreachable or no source).
    let ua = da.reachable && sa.is_some();
    let ub = db.reachable && sb.is_some();
    match (ua, ub) {
        (true, false) => return Ordering::Less,
        (false, true) => return Ordering::Greater,
        (false, false) => return Ordering::Equal,
        (true, true) => {}
    }
    let (sa, sb) = (sa.expect("checked"), sb.expect("checked"));
    // Rule 2: prefer matching scope.
    let ma = scope_of(da.addr) == scope_of(sa.addr);
    let mb = scope_of(db.addr) == scope_of(sb.addr);
    if ma != mb {
        return if ma {
            Ordering::Less
        } else {
            Ordering::Greater
        };
    }
    // Rule 3: avoid deprecated sources.
    if sa.deprecated != sb.deprecated {
        return if sa.deprecated {
            Ordering::Greater
        } else {
            Ordering::Less
        };
    }
    // Rule 4: prefer home-address sources.
    if sa.home != sb.home {
        return if sa.home {
            Ordering::Less
        } else {
            Ordering::Greater
        };
    }
    // Rule 5: prefer matching label.
    let la = table.label(sa.addr) == table.label(da.addr);
    let lb = table.label(sb.addr) == table.label(db.addr);
    if la != lb {
        return if la {
            Ordering::Less
        } else {
            Ordering::Greater
        };
    }
    // Rule 6: prefer higher precedence.
    let (pa, pb) = (table.precedence(da.addr), table.precedence(db.addr));
    if pa != pb {
        return pb.cmp(&pa);
    }
    // Rule 7: prefer native transport.
    if da.encapsulated != db.encapsulated {
        return if da.encapsulated {
            Ordering::Greater
        } else {
            Ordering::Less
        };
    }
    // Rule 8: prefer smaller scope.
    let (sca, scb) = (scope_of(da.addr), scope_of(db.addr));
    if sca != scb {
        return sca.cmp(&scb);
    }
    // Rule 9: longest matching prefix.
    let ca = common_prefix_len(&sa, da.addr);
    let cb = common_prefix_len(&sb, db.addr);
    if ca != cb {
        return cb.cmp(&ca);
    }
    // Rule 10: otherwise leave order unchanged (sort_by is stable).
    Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(addr: &str, iface: u32, plen: u8) -> CandidateSource {
        CandidateSource::plain(addr.parse().unwrap(), iface, plen)
    }

    fn v4src(addr: &str, iface: u32) -> CandidateSource {
        CandidateSource::plain(mapped(addr.parse().unwrap()), iface, 128)
    }

    /// The paper's core mechanism: dual-stack host receives poisoned A
    /// (ip6.me's 23.153.8.71) and a valid AAAA — IPv6 must sort first.
    #[test]
    fn dual_stack_prefers_aaaa_over_poisoned_a() {
        let table = PolicyTable::default();
        let sources = [
            src("2607:fb90:9bda:a425:eccc:47e6:51a9:6090", 1, 64),
            v4src("192.168.12.50", 1),
        ];
        let dests = [
            DestCandidate::v4("23.153.8.71".parse().unwrap()), // poisoned A
            DestCandidate::plain("2600:1f18::beef".parse().unwrap()), // real AAAA
        ];
        let ordered = sort_destinations(&dests, &sources, 1, &table);
        assert_eq!(
            ordered[0].addr,
            "2600:1f18::beef".parse::<Ipv6Addr>().unwrap(),
            "rule 6 precedence 40 (v6) must beat 35 (v4-mapped)"
        );
    }

    /// An IPv4-only client (Nintendo Switch, Fig. 6) has no IPv6 source, so
    /// the AAAA destination is unusable and the poisoned A wins — delivering
    /// the intervention.
    #[test]
    fn v4_only_client_falls_through_to_poisoned_a() {
        let table = PolicyTable::default();
        let sources = [v4src("192.168.12.60", 1)];
        let dests = [
            DestCandidate::plain("2600:1f18::beef".parse().unwrap()),
            DestCandidate::v4("23.153.8.71".parse().unwrap()),
        ];
        let ordered = sort_destinations(&dests, &sources, 1, &table);
        assert_eq!(ordered[0].addr, mapped("23.153.8.71".parse().unwrap()));
    }

    /// An RFC 8925 client that disabled IPv4 has no v4 source: poisoned A
    /// answers are unusable and simply ignored.
    #[test]
    fn rfc8925_client_ignores_poisoned_a() {
        let table = PolicyTable::default();
        let sources = [src("2607:fb90:9bda:a425::50", 1, 64)];
        let dests = [
            DestCandidate::v4("23.153.8.71".parse().unwrap()),
            DestCandidate::plain("64:ff9b::be5c:9e04".parse().unwrap()),
        ];
        let ordered = sort_destinations(&dests, &sources, 1, &table);
        assert_eq!(
            ordered[0].addr,
            "64:ff9b::be5c:9e04".parse::<Ipv6Addr>().unwrap()
        );
    }

    #[test]
    fn source_rule1_same_address() {
        let table = PolicyTable::default();
        let d: Ipv6Addr = "2001:db8::1".parse().unwrap();
        let picked = select_source(
            d,
            &[src("2001:db8::1", 1, 64), src("2001:db8::2", 1, 64)],
            1,
            &table,
        )
        .unwrap();
        assert_eq!(picked.addr, d);
    }

    #[test]
    fn source_rule2_appropriate_scope() {
        // Destination is global; a link-local source must lose to a GUA.
        let table = PolicyTable::default();
        let picked = select_source(
            "2600::1".parse().unwrap(),
            &[src("fe80::1", 1, 64), src("2607:fb90::5", 1, 64)],
            1,
            &table,
        )
        .unwrap();
        assert_eq!(picked.addr, "2607:fb90::5".parse::<Ipv6Addr>().unwrap());
        // Destination is link-local: the link-local source wins (smallest
        // sufficient scope).
        let picked = select_source(
            "fe80::9".parse().unwrap(),
            &[src("fe80::1", 1, 64), src("2607:fb90::5", 1, 64)],
            1,
            &table,
        )
        .unwrap();
        assert_eq!(picked.addr, "fe80::1".parse::<Ipv6Addr>().unwrap());
    }

    #[test]
    fn source_rule3_avoid_deprecated() {
        let table = PolicyTable::default();
        let mut old = src("2607:fb90::a", 1, 64);
        old.deprecated = true;
        let fresh = src("2607:fb90::b", 1, 64);
        let picked = select_source("2600::1".parse().unwrap(), &[old, fresh], 1, &table).unwrap();
        assert_eq!(picked.addr, fresh.addr);
    }

    #[test]
    fn source_rule5_prefer_outgoing_interface() {
        let table = PolicyTable::default();
        let a = src("2607:fb90::a", 1, 64);
        let b = src("2607:fb90::b", 2, 64);
        let picked = select_source("2600::1".parse().unwrap(), &[a, b], 2, &table).unwrap();
        assert_eq!(picked.addr, b.addr);
    }

    #[test]
    fn source_rule6_matching_label_ula_for_ula() {
        // ULA destination should take the ULA source (label 13), not the GUA
        // (label 1) — this is how fd00:976a::9 DNS traffic picks the ULA.
        let table = PolicyTable::default();
        let gua = src("2607:fb90::a", 1, 64);
        let ula = src("fd00:976a::50", 1, 64);
        let picked =
            select_source("fd00:976a::9".parse().unwrap(), &[gua, ula], 1, &table).unwrap();
        assert_eq!(picked.addr, ula.addr);
    }

    #[test]
    fn source_rule7_prefer_temporary() {
        let table = PolicyTable::default();
        let stable = src("2607:fb90::a", 1, 64);
        let mut temp = src("2607:fb90::b", 1, 64);
        temp.temporary = true;
        let picked = select_source("2600::1".parse().unwrap(), &[stable, temp], 1, &table).unwrap();
        assert_eq!(picked.addr, temp.addr);
    }

    #[test]
    fn source_rule8_longest_prefix() {
        let table = PolicyTable::default();
        let near = src("2001:db8:1:1::5", 1, 64);
        let far = src("2001:db9::5", 1, 64);
        let picked =
            select_source("2001:db8:1:1::99".parse().unwrap(), &[far, near], 1, &table).unwrap();
        assert_eq!(picked.addr, near.addr);
    }

    #[test]
    fn family_mismatch_returns_none() {
        let table = PolicyTable::default();
        // Only v4 sources for a v6 destination:
        assert!(select_source(
            "2600::1".parse().unwrap(),
            &[v4src("192.168.1.5", 1)],
            1,
            &table
        )
        .is_none());
        // Only v6 sources for a v4 destination:
        assert!(select_source(
            mapped("8.8.8.8".parse().unwrap()),
            &[src("2600::5", 1, 64)],
            1,
            &table
        )
        .is_none());
    }

    #[test]
    fn dest_rule1_unreachable_sorts_last() {
        let table = PolicyTable::default();
        let sources = [src("2607:fb90::5", 1, 64), v4src("192.168.1.5", 1)];
        let mut unreachable = DestCandidate::plain("2600::1".parse().unwrap());
        unreachable.reachable = false;
        let dests = [unreachable, DestCandidate::v4("8.8.8.8".parse().unwrap())];
        let ordered = sort_destinations(&dests, &sources, 1, &table);
        assert_eq!(ordered[0].addr, mapped("8.8.8.8".parse().unwrap()));
    }

    #[test]
    fn dest_rule7_native_beats_encapsulated() {
        let table = PolicyTable::default();
        let sources = [src("2607:fb90::5", 1, 64), src("2002:c000:204::1", 1, 16)];
        let mut tun = DestCandidate::plain("2607:aaaa::1".parse().unwrap());
        tun.encapsulated = true;
        let native = DestCandidate::plain("2607:bbbb::1".parse().unwrap());
        let ordered = sort_destinations(&[tun, native], &sources, 1, &table);
        assert_eq!(ordered[0].addr, native.addr);
    }

    #[test]
    fn dest_rule10_stable_for_ties() {
        let table = PolicyTable::default();
        let sources = [src("2607:fb90::5", 1, 64)];
        let d1 = DestCandidate::plain("2600::1".parse().unwrap());
        let d2 = DestCandidate::plain("2600::2".parse().unwrap());
        let ordered = sort_destinations(&[d1, d2], &sources, 1, &table);
        assert_eq!(ordered[0].addr, d1.addr, "ties keep resolver order");
        let ordered = sort_destinations(&[d2, d1], &sources, 1, &table);
        assert_eq!(ordered[0].addr, d2.addr);
    }

    #[test]
    fn policy_lookup_longest_match() {
        let table = PolicyTable::default();
        assert_eq!(table.lookup("::1".parse().unwrap()), (50, 0));
        assert_eq!(table.lookup("2600::1".parse().unwrap()), (40, 1));
        assert_eq!(table.lookup("::ffff:1.2.3.4".parse().unwrap()), (35, 4));
        assert_eq!(table.lookup("2002::1".parse().unwrap()), (30, 2));
        assert_eq!(table.lookup("2001::1".parse().unwrap()), (5, 5));
        assert_eq!(table.lookup("fd00:976a::9".parse().unwrap()), (3, 13));
        assert_eq!(table.lookup("fec0::1".parse().unwrap()), (1, 11));
    }

    #[test]
    fn custom_policy_row_overrides() {
        // An operator can raise NAT64-prefix precedence (RFC 8880-style).
        let mut table = PolicyTable::default();
        table.push(PolicyEntry {
            prefix: "64:ff9b::/96".parse().unwrap(),
            precedence: 45,
            label: 1,
        });
        assert_eq!(table.precedence("64:ff9b::1.2.3.4".parse().unwrap()), 45);
    }
}
