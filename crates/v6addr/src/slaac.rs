//! SLAAC interface-identifier generation.
//!
//! Two schemes the testbed's clients use:
//!
//! * **Modified EUI-64** (RFC 4291 App. A) — what Windows XP and embedded
//!   devices derive from the MAC (visible in the paper's Fig. 7 `ipconfig`
//!   output: `fd00:976a::200:59ff:feaa:c6a3` embeds `00-00-59-AA-C6-A3`).
//! * **Stable, semantically opaque IIDs** (RFC 7217) — what modern OSes use.
//!   RFC 7217 calls for a PRF such as SHA-1; with no crypto dependency we
//!   substitute a 128-bit xor/multiply mixer (documented in DESIGN.md). The
//!   properties the testbed relies on — stability per (prefix, interface,
//!   key) and change across prefixes — hold identically.

use crate::prefix::Ipv6Prefix;
use std::net::Ipv6Addr;

/// Modified EUI-64 interface identifier from a MAC address: flip the U/L bit
/// and insert `ff:fe`.
pub fn eui64_iid(mac: [u8; 6]) -> u64 {
    u64::from_be_bytes([
        mac[0] ^ 0x02,
        mac[1],
        mac[2],
        0xff,
        0xfe,
        mac[3],
        mac[4],
        mac[5],
    ])
}

/// The SLAAC address for `prefix` using the modified EUI-64 of `mac`.
pub fn eui64_address(prefix: Ipv6Prefix, mac: [u8; 6]) -> Ipv6Addr {
    prefix.with_iid(u128::from(eui64_iid(mac)))
}

/// A deterministic 128→64 bit mixer standing in for RFC 7217's PRF.
/// (splitmix64-style finalization over the concatenated inputs.)
fn mix(state: &mut u64, chunk: u64) {
    *state ^= chunk.wrapping_add(0x9e37_79b9_7f4a_7c15);
    *state = (*state ^ (*state >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    *state = (*state ^ (*state >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    *state ^= *state >> 31;
}

/// RFC 7217 stable-private interface identifier:
/// `F(prefix, net_iface, network_id, dad_counter, secret_key)`.
///
/// * `prefix` — the SLAAC prefix being configured.
/// * `net_iface` — an interface index (stable per interface).
/// * `dad_counter` — bumped when duplicate-address-detection fails.
/// * `secret_key` — per-host secret; differing keys give unrelated IIDs.
pub fn stable_private_iid(
    prefix: Ipv6Prefix,
    net_iface: u32,
    dad_counter: u8,
    secret_key: u64,
) -> u64 {
    let p = u128::from(prefix.network());
    let mut state = secret_key;
    mix(&mut state, (p >> 64) as u64);
    mix(&mut state, p as u64);
    mix(&mut state, u64::from(prefix.len()));
    mix(&mut state, u64::from(net_iface));
    mix(&mut state, u64::from(dad_counter));
    // Clear the universal/local bit so the IID reads as locally generated.
    state & !(0x0200_0000_0000_0000u64 << 1)
}

/// The SLAAC address for `prefix` using an RFC 7217 stable-private IID.
pub fn stable_private_address(
    prefix: Ipv6Prefix,
    net_iface: u32,
    dad_counter: u8,
    secret_key: u64,
) -> Ipv6Addr {
    prefix.with_iid(u128::from(stable_private_iid(
        prefix,
        net_iface,
        dad_counter,
        secret_key,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn fig7_winxp_eui64_address() {
        // Paper Fig. 7: MAC 00-00-59-AA-C6-A3 on fd00:976a::/64 yields
        // fd00:976a::200:59ff:feaa:c6a3.
        let addr = eui64_address(p("fd00:976a::/64"), [0x00, 0x00, 0x59, 0xaa, 0xc6, 0xa3]);
        assert_eq!(
            addr,
            "fd00:976a::200:59ff:feaa:c6a3".parse::<Ipv6Addr>().unwrap()
        );
    }

    #[test]
    fn stable_iid_is_stable() {
        let a = stable_private_iid(p("2607:fb90:9bda:a425::/64"), 1, 0, 42);
        let b = stable_private_iid(p("2607:fb90:9bda:a425::/64"), 1, 0, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn stable_iid_changes_with_prefix() {
        // The 5G gateway hands out a different /64 every reboot (paper §IV.A);
        // RFC 7217 clients then derive a *different* IID per prefix.
        let a = stable_private_iid(p("2607:fb90:9bda:a425::/64"), 1, 0, 42);
        let b = stable_private_iid(p("2607:fb90:9bda:b001::/64"), 1, 0, 42);
        assert_ne!(a, b);
    }

    #[test]
    fn stable_iid_changes_with_key_iface_dad() {
        let base = stable_private_iid(p("fd00:976a::/64"), 1, 0, 42);
        assert_ne!(base, stable_private_iid(p("fd00:976a::/64"), 2, 0, 42));
        assert_ne!(base, stable_private_iid(p("fd00:976a::/64"), 1, 1, 42));
        assert_ne!(base, stable_private_iid(p("fd00:976a::/64"), 1, 0, 43));
    }

    #[test]
    fn addresses_fall_under_prefix() {
        let pre = p("fd00:976a::/64");
        let a = stable_private_address(pre, 1, 0, 7);
        assert!(pre.contains(a));
        let e = eui64_address(pre, [2, 0, 0, 0, 0, 1]);
        assert!(pre.contains(e));
    }

    #[test]
    fn eui64_distinct_macs_distinct_iids() {
        assert_ne!(eui64_iid([0, 0, 0, 0, 0, 1]), eui64_iid([0, 0, 0, 0, 0, 2]));
    }
}
