//! Property-based tests for the address machinery: RFC 6052 round-trips at
//! every legal prefix length, prefix algebra laws, and RFC 6724 ordering
//! invariants.

use proptest::prelude::*;
use std::net::{Ipv4Addr, Ipv6Addr};
use v6addr::prefix::{Ipv4Prefix, Ipv6Prefix};
use v6addr::rfc6052::{Nat64Prefix, PrefixLen};
use v6addr::rfc6724::{
    mapped, select_source, sort_destinations, CandidateSource, DestCandidate, PolicyTable,
};
use v6addr::slaac;

fn arb_v4() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

fn arb_v6() -> impl Strategy<Value = Ipv6Addr> {
    any::<u128>().prop_map(Ipv6Addr::from)
}

fn arb_len() -> impl Strategy<Value = PrefixLen> {
    prop::sample::select(vec![
        PrefixLen::L32,
        PrefixLen::L40,
        PrefixLen::L48,
        PrefixLen::L56,
        PrefixLen::L64,
        PrefixLen::L96,
    ])
}

proptest! {
    #[test]
    fn rfc6052_roundtrip_every_length(v4 in arb_v4(), base in arb_v6(), len in arb_len()) {
        let prefix = Ipv6Prefix::new(base, len.bits()).unwrap();
        let p = Nat64Prefix::new(prefix).unwrap();
        let embedded = p.embed_unchecked(v4);
        prop_assert!(p.matches(embedded));
        prop_assert_eq!(p.extract(embedded).unwrap(), v4);
        // The u octet (bits 64..71) must be zero wherever the *translator*
        // writes it; at /96 that octet belongs to the prefix itself (RFC
        // 6052 §2.2 constrains prefix selection there, not embedding).
        if len.bits() < 96 {
            prop_assert_eq!(embedded.octets()[8], 0);
        } else {
            prop_assert_eq!(embedded.octets()[8], prefix.network().octets()[8]);
        }
    }

    #[test]
    fn rfc6052_embedding_is_injective(a in arb_v4(), b in arb_v4(), len in arb_len()) {
        let prefix = Ipv6Prefix::new("2001:db8::".parse().unwrap(), len.bits()).unwrap();
        let p = Nat64Prefix::new(prefix).unwrap();
        if a != b {
            prop_assert_ne!(p.embed_unchecked(a), p.embed_unchecked(b));
        }
    }

    #[test]
    fn v6_prefix_contains_its_network(addr in arb_v6(), len in 0u8..=128) {
        let p = Ipv6Prefix::new(addr, len).unwrap();
        prop_assert!(p.contains(p.network()));
        // Canonicalization is idempotent.
        let q = Ipv6Prefix::new(p.network(), len).unwrap();
        prop_assert_eq!(p, q);
    }

    #[test]
    fn v6_prefix_cover_is_transitive(addr in arb_v6(), l1 in 0u8..=64, extra in 0u8..=32, extra2 in 0u8..=32) {
        let a = Ipv6Prefix::new(addr, l1).unwrap();
        let b = Ipv6Prefix::new(addr, l1 + extra).unwrap();
        let c = Ipv6Prefix::new(addr, l1 + extra + extra2).unwrap();
        prop_assert!(a.covers(&b));
        prop_assert!(b.covers(&c));
        prop_assert!(a.covers(&c));
    }

    #[test]
    fn common_prefix_len_symmetric(a in arb_v6(), b in arb_v6()) {
        prop_assert_eq!(
            Ipv6Prefix::common_prefix_len(a, b),
            Ipv6Prefix::common_prefix_len(b, a)
        );
        prop_assert_eq!(Ipv6Prefix::common_prefix_len(a, a), 128);
    }

    #[test]
    fn v4_prefix_host_stays_inside(addr in arb_v4(), len in 8u8..=32, n in any::<u32>()) {
        let p = Ipv4Prefix::new(addr, len).unwrap();
        prop_assert!(p.contains(p.host(n)));
    }

    #[test]
    fn eui64_iid_deterministic_and_distinct(mac in any::<[u8; 6]>(), other in any::<[u8; 6]>()) {
        prop_assert_eq!(slaac::eui64_iid(mac), slaac::eui64_iid(mac));
        if mac != other {
            prop_assert_ne!(slaac::eui64_iid(mac), slaac::eui64_iid(other));
        }
    }

    #[test]
    fn stable_iid_uncorrelated_across_prefixes(base in arb_v6(), secret in any::<u64>()) {
        let p1 = Ipv6Prefix::new(base, 64).unwrap();
        let p2 = p1.subnet64(1).network();
        let p2 = Ipv6Prefix::new(p2, 64).unwrap();
        if p1 != p2 {
            prop_assert_ne!(
                slaac::stable_private_iid(p1, 1, 0, secret),
                slaac::stable_private_iid(p2, 1, 0, secret)
            );
        }
    }

    /// Ordering destinations is a permutation: nothing lost, nothing added.
    #[test]
    fn rfc6724_sort_is_permutation(
        v6dests in proptest::collection::vec(arb_v6(), 0..8),
        v4dests in proptest::collection::vec(arb_v4(), 0..8),
    ) {
        let table = PolicyTable::default();
        let sources = [
            CandidateSource::plain("2607:fb90:9bda:a425::50".parse().unwrap(), 1, 64),
            CandidateSource::plain(mapped("192.168.12.50".parse().unwrap()), 1, 128),
        ];
        let dests: Vec<DestCandidate> = v6dests
            .iter()
            .map(|a| DestCandidate::plain(*a))
            .chain(v4dests.iter().map(|a| DestCandidate::v4(*a)))
            .collect();
        let sorted = sort_destinations(&dests, &sources, 1, &table);
        prop_assert_eq!(sorted.len(), dests.len());
        let mut a: Vec<_> = dests.iter().map(|d| d.addr).collect();
        let mut b: Vec<_> = sorted.iter().map(|d| d.addr).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    /// Unusable destinations (no source of the family) never outrank usable
    /// ones.
    #[test]
    fn rfc6724_usable_first(
        v6dests in proptest::collection::vec(arb_v6(), 1..6),
        v4dests in proptest::collection::vec(arb_v4(), 1..6),
    ) {
        let table = PolicyTable::default();
        // v6-only host: every v4 destination is unusable.
        let sources = [CandidateSource::plain(
            "2607:fb90:9bda:a425::50".parse().unwrap(), 1, 64,
        )];
        let dests: Vec<DestCandidate> = v6dests
            .iter()
            .map(|a| DestCandidate::plain(*a))
            .chain(v4dests.iter().map(|a| DestCandidate::v4(*a)))
            .collect();
        let sorted = sort_destinations(&dests, &sources, 1, &table);
        let first_unusable = sorted
            .iter()
            .position(|d| select_source(d.addr, &sources, 1, &table).is_none());
        if let Some(i) = first_unusable {
            for d in &sorted[i..] {
                prop_assert!(
                    select_source(d.addr, &sources, 1, &table).is_none(),
                    "usable destination after an unusable one"
                );
            }
        }
    }

    /// Sorting is deterministic (same inputs → same order).
    #[test]
    fn rfc6724_sort_deterministic(v6dests in proptest::collection::vec(arb_v6(), 0..10)) {
        let table = PolicyTable::default();
        let sources = [CandidateSource::plain(
            "2607:fb90:9bda:a425::50".parse().unwrap(), 1, 64,
        )];
        let dests: Vec<DestCandidate> =
            v6dests.iter().map(|a| DestCandidate::plain(*a)).collect();
        let s1 = sort_destinations(&dests, &sources, 1, &table);
        let s2 = sort_destinations(&dests, &sources, 1, &table);
        prop_assert_eq!(s1, s2);
    }

    /// select_source always returns one of the candidates (of the right
    /// family), or None when no family-compatible candidate exists.
    #[test]
    fn select_source_membership(dst in arb_v6(), n in 1usize..6, seed in any::<u64>()) {
        let table = PolicyTable::default();
        let cands: Vec<CandidateSource> = (0..n)
            .map(|i| {
                CandidateSource::plain(
                    Ipv6Addr::from((seed as u128) << 64 | (0x2600u128 << 112) | i as u128),
                    1,
                    64,
                )
            })
            .collect();
        match select_source(dst, &cands, 1, &table) {
            Some(picked) => prop_assert!(cands.iter().any(|c| c.addr == picked.addr)),
            None => {
                // Only possible for v4-mapped destinations here.
                prop_assert!(matches!(
                    v6addr::class::v6_class(dst),
                    v6addr::class::V6Class::V4Mapped(_)
                ));
            }
        }
    }
}
