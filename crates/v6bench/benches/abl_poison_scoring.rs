//! ABL-1 and ABL-2: the two design-choice ablations DESIGN.md calls out.
//!
//! * ABL-1 — poisoning policy: dnsmasq wildcard-A answers instantly from
//!   thin air; BIND9-style RPZ must consult the upstream first. We measure
//!   both on existing-name and non-existent-name workloads and print the
//!   NXDOMAIN-fidelity comparison.
//! * ABL-2 — scoring logic: legacy vs RFC 8925-aware across the full client
//!   matrix (printed once; the scoring computation itself is also timed).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use v6dns::codec::{Question, RType, Rcode};
use v6dns::dns64::Dns64;
use v6dns::name::DnsName;
use v6dns::poison::{PoisonPolicy, PoisonedResolver};
use v6dns::server::Resolver;
use v6host::profiles::OsProfile;
use v6portal::scoring::{score_legacy, score_rfc8925_aware};
use v6testbed::experiments::run_mirror_test;
use v6testbed::zones::internet_dns;

fn policies() -> [(&'static str, PoisonPolicy); 2] {
    [
        (
            "wildcard-a",
            PoisonPolicy::WildcardA {
                answer: "23.153.8.71".parse().unwrap(),
                ttl: 60,
            },
        ),
        (
            "rpz",
            PoisonPolicy::ResponsePolicyZone {
                answer: "23.153.8.71".parse().unwrap(),
                ttl: 60,
            },
        ),
    ]
}

fn print_abl1_fidelity() {
    println!("=============== ABL-1: NXDOMAIN fidelity ===============");
    for (name, policy) in policies() {
        let mut r = PoisonedResolver::new(Dns64::well_known(internet_dns()), policy);
        let exists = r.resolve(
            &Question::new("vpn.anl.gov".parse::<DnsName>().unwrap(), RType::A),
            0,
        );
        let ghost = r.resolve(
            &Question::new(
                "vpn.anl.gov.rfc8925.com".parse::<DnsName>().unwrap(),
                RType::A,
            ),
            0,
        );
        println!(
            "ABL1 {name:<12} existing-name=answered({}) nonexistent-name={}",
            !exists.records.is_empty(),
            if ghost.rcode == Rcode::NxDomain {
                "NXDOMAIN (faithful)"
            } else {
                "answered (the Fig. 9 defect)"
            }
        );
    }
    println!("=========================================================");
}

fn print_abl2_matrix() {
    println!("=============== ABL-2: scoring across clients ===========");
    for profile in [
        OsProfile::macos(),
        OsProfile::windows_10(),
        OsProfile::windows_10_v6_disabled(),
        OsProfile::nintendo_switch(),
    ] {
        let r = run_mirror_test(profile, policies()[0].1);
        println!("{}", r.render());
    }
    println!("=========================================================");
}

fn bench_abl1(c: &mut Criterion) {
    print_abl1_fidelity();
    let mut g = c.benchmark_group("abl1_poison_policy");
    for (name, policy) in policies() {
        g.bench_function(format!("{name}_existing"), |b| {
            let mut r = PoisonedResolver::new(Dns64::well_known(internet_dns()), policy);
            let q = Question::new("vpn.anl.gov".parse::<DnsName>().unwrap(), RType::A);
            b.iter(|| black_box(r.resolve(&q, 0)))
        });
        g.bench_function(format!("{name}_nonexistent"), |b| {
            let mut r = PoisonedResolver::new(Dns64::well_known(internet_dns()), policy);
            let q = Question::new("ghost.rfc8925.com".parse::<DnsName>().unwrap(), RType::A);
            b.iter(|| black_box(r.resolve(&q, 0)))
        });
    }
    g.finish();
}

fn bench_abl2(c: &mut Criterion) {
    print_abl2_matrix();
    let mut g = c.benchmark_group("abl2_scoring");
    // Time the pure scoring computations over the Fig. 5 input.
    let r = run_mirror_test(OsProfile::windows_10_v6_disabled(), policies()[0].1);
    g.bench_function("score_legacy", |b| {
        b.iter(|| black_box(score_legacy(&r.subtests)))
    });
    g.bench_function("score_rfc8925_aware", |b| {
        b.iter(|| black_box(score_rfc8925_aware(&r.subtests)))
    });
    g.finish();
}

fn bench_abl3_happy_eyeballs(c: &mut Criterion) {
    use v6dns::codec::RData;
    use v6dns::zone::Zone;
    use v6host::tasks::AppTask;
    use v6testbed::Testbed;

    // ABL-3: RFC 8305 fallback latency with a black-holed AAAA.
    let run = |he: bool| -> u64 {
        let mut tb = Testbed::paper_default();
        let mut profile = OsProfile::windows_10();
        profile.happy_eyeballs = he;
        let id = tb.add_host(profile);
        let mut z = Zone::new("brokenv6.test".parse().unwrap(), 60);
        z.add_str("@", 60, RData::Aaaa("2602:dead::1".parse().unwrap()));
        z.add_str("@", 60, RData::A("190.92.158.4".parse().unwrap()));
        tb.pi_server()
            .healthy
            .upstream_mut()
            .upstream_mut()
            .add_zone(z);
        tb.boot();
        let start = tb.net.now();
        let _ = tb.run_task(
            id,
            AppTask::Browse {
                name: "brokenv6.test".parse().unwrap(),
                path: "/".into(),
            },
            25,
        );
        (tb.net.now() - start).as_millis()
    };
    println!("=============== ABL-3: Happy Eyeballs fallback ==========");
    println!(
        "ABL3 serial-fallback={} ms  happy-eyeballs={} ms (simulated user-perceived latency)",
        run(false),
        run(true)
    );
    println!("=========================================================");
    let mut g = c.benchmark_group("abl3_happy_eyeballs");
    g.sample_size(10);
    g.bench_function("serial_fallback", |b| b.iter(|| black_box(run(false))));
    g.bench_function("happy_eyeballs", |b| b.iter(|| black_box(run(true))));
    g.finish();
}

criterion_group!(benches, bench_abl1, bench_abl2, bench_abl3_happy_eyeballs);
criterion_main!(benches);
