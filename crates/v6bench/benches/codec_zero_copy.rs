//! Zero-copy codec microbenchmarks: the borrowed view layer against the
//! owned decoders it must match byte-for-byte (see the conformance suites),
//! plus the scalar/SWAR checksum kernels.
//!
//! Inputs are the committed conformance corpus, so the numbers describe the
//! exact frames the differential suite proves equivalence on.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use v6dns::{Message, MessageView};
use v6wire::checksum::{checksum_with, Kernel};
use v6wire::packet::summarize;
use v6wire::view::FrameView;
use v6wire::ParsedFrame;

const FRAMES: &[&[u8]] = &[
    include_bytes!("../../../tests/corpus/frame_dhcp_discover_opt108.bin"),
    include_bytes!("../../../tests/corpus/frame_dhcp_offer_opt108.bin"),
    include_bytes!("../../../tests/corpus/frame_ra_full.bin"),
    include_bytes!("../../../tests/corpus/frame_dns64_aaaa.bin"),
    include_bytes!("../../../tests/corpus/frame_poisoned_a.bin"),
    include_bytes!("../../../tests/corpus/frame_arp_request.bin"),
    include_bytes!("../../../tests/corpus/frame_tcp_syn_v6.bin"),
    include_bytes!("../../../tests/corpus/frame_icmpv6_echo.bin"),
    include_bytes!("../../../tests/corpus/frame_icmpv4_unreach.bin"),
    include_bytes!("../../../tests/corpus/frame_ndp_ns.bin"),
];

const MESSAGES: &[&[u8]] = &[
    include_bytes!("../../../tests/corpus/dns_query_a.bin"),
    include_bytes!("../../../tests/corpus/dns_dns64_response.bin"),
    include_bytes!("../../../tests/corpus/dns_poisoned_a.bin"),
    include_bytes!("../../../tests/corpus/dns_all_rtypes.bin"),
];

fn bench_wire_parse(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec_zero_copy/wire");
    g.throughput(Throughput::Elements(FRAMES.len() as u64));
    g.bench_function("parse_owned", |b| {
        b.iter(|| {
            for f in FRAMES {
                std::hint::black_box(ParsedFrame::parse(f).unwrap());
            }
        })
    });
    g.bench_function("parse_view", |b| {
        b.iter(|| {
            for f in FRAMES {
                std::hint::black_box(FrameView::parse(f).unwrap());
            }
        })
    });
    g.bench_function("summarize", |b| {
        b.iter(|| {
            for f in FRAMES {
                std::hint::black_box(summarize(f));
            }
        })
    });
    g.finish();
}

fn bench_dns_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec_zero_copy/dns");
    g.throughput(Throughput::Elements(MESSAGES.len() as u64));
    g.bench_function("decode_owned", |b| {
        b.iter(|| {
            for m in MESSAGES {
                std::hint::black_box(Message::decode(m).unwrap());
            }
        })
    });
    g.bench_function("parse_view", |b| {
        b.iter(|| {
            for m in MESSAGES {
                std::hint::black_box(MessageView::parse(m).unwrap());
            }
        })
    });
    // The AAAA fast path a resolver actually wants: scan answers without
    // materialising a Message at all.
    g.bench_function("aaaa_answers_view", |b| {
        b.iter(|| {
            for m in MESSAGES {
                let v = MessageView::parse(m).unwrap();
                std::hint::black_box(v.aaaa_answers().count());
            }
        })
    });
    g.finish();
}

fn bench_checksum_kernels(c: &mut Criterion) {
    let buf: Vec<u8> = (0..1500u32).map(|i| (i * 31) as u8).collect();
    let mut g = c.benchmark_group("codec_zero_copy/checksum_1500b");
    g.throughput(Throughput::Bytes(buf.len() as u64));
    g.bench_function("scalar", |b| {
        b.iter(|| std::hint::black_box(checksum_with(Kernel::Scalar, &buf)))
    });
    g.bench_function("swar", |b| {
        b.iter(|| std::hint::black_box(checksum_with(Kernel::Swar, &buf)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_wire_parse,
    bench_dns_decode,
    bench_checksum_kernels
);
criterion_main!(benches);
