//! Raw engine forwarding throughput, isolated from any testbed protocol
//! logic: a 4-node relay ring moves pooled UDP frames as fast as the event
//! queue, link table, and trace recorder allow.
//!
//! One bench per [`TraceMode`] — the spread between `Off`/`Hops` and
//! `Full` is exactly the cost of eager per-frame summaries, and the gap
//! between `Off` and `Hops` is the cost of recording `(at, src, dst, len)`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::any::Any;
use v6sim::engine::{Ctx, Network, Node, TraceMode};
use v6sim::time::SimTime;
use v6wire::mac::MacAddr;
use v6wire::packet::build_udp_v4;
use v6wire::udp::UdpDatagram;

/// Forwards every frame received on port 0 out of port 1, using pooled
/// buffers — the minimal "router" the engine can host.
struct Relay {
    name: String,
}

impl Node for Relay {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_frame(&mut self, _port: u32, frame: &[u8], ctx: &mut Ctx) {
        let buf = ctx.buffer_from(frame);
        ctx.send(1, buf);
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn seed_frame(n: u8) -> Vec<u8> {
    build_udp_v4(
        MacAddr::new([2, 0, 0, 0, 0xee, n]),
        MacAddr::new([2, 0, 0, 0, 0xee, n + 1]),
        "10.9.0.1".parse().expect("static ip"),
        "10.9.0.2".parse().expect("static ip"),
        &UdpDatagram::new(4000, 4001, vec![n; 64]),
    )
}

/// Build the ring, inject `frames` seed frames, run `virtual_ms`, and
/// return delivered-frame and processed-event counts.
fn run_ring(mode: TraceMode, frames: u8, virtual_ms: u64) -> (u64, u64) {
    let mut net = Network::new();
    net.trace_mode = mode;
    let nodes: Vec<_> = (0..4)
        .map(|i| {
            net.add_node(Box::new(Relay {
                name: format!("relay{i}"),
            }))
        })
        .collect();
    for i in 0..4 {
        net.link(nodes[i], 1, nodes[(i + 1) % 4], 0, SimTime::from_micros(10));
    }
    net.start();
    net.run_until(SimTime::ZERO);
    for n in 0..frames {
        net.with_node::<Relay, _>(nodes[0], |_, ctx| ctx.send(1, seed_frame(n)));
    }
    net.run_for(SimTime::from_millis(virtual_ms));
    let m = net.metrics();
    (net.frames_delivered, m.engine.events_processed)
}

fn bench_engine_hot_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_hot_path");
    // The workload is deterministic, so the element count (delivered
    // frames per iteration) can be measured once up front.
    let (frames, events) = run_ring(TraceMode::Off, 4, 100);
    assert!(frames > 10_000, "ring actually saturated: {frames}");
    g.throughput(Throughput::Elements(frames));
    g.sample_size(10);
    for (label, mode) in [
        ("off", TraceMode::Off),
        ("hops", TraceMode::Hops),
        ("full", TraceMode::Full),
    ] {
        g.bench_function(label, |b| b.iter(|| run_ring(mode, 4, 100)));
    }
    g.finish();
    println!("  (one iteration = {frames} frames, {events} events)");
}

criterion_group!(benches, bench_engine_hot_path);
criterion_main!(benches);
