//! Regenerates every figure/table of the paper (DESIGN.md §3) and times the
//! full packet-level reproduction of each.
//!
//! Run `cargo bench -p v6bench --bench fig_experiments`. Before timing, each
//! experiment's paper-style rows are printed once, so a bench run doubles as
//! the results table generator for EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use v6dns::poison::PoisonPolicy;
use v6testbed::experiments as exp;

fn print_rows_once() {
    println!("================ paper rows (regenerated) ================");
    println!("{}", exp::fig2_literal_v4_census().render());
    println!("{}", exp::fig3_ra_workaround(false).render());
    println!("{}", exp::fig3_ra_workaround(true).render());
    for row in exp::fig4_topology_matrix() {
        println!("{}", row.render());
    }
    println!("{}", exp::fig5_erroneous_score().render());
    println!("{}", exp::fig6_switch_intervention().render());
    println!("{}", exp::fig7_winxp_nat64().render());
    println!("{}", exp::fig8_vpn_split_tunnel(false).render());
    println!("{}", exp::fig8_vpn_split_tunnel(true).render());
    for policy in [
        PoisonPolicy::WildcardA {
            answer: "23.153.8.71".parse().unwrap(),
            ttl: 60,
        },
        PoisonPolicy::ResponsePolicyZone {
            answer: "23.153.8.71".parse().unwrap(),
            ttl: 60,
        },
    ] {
        println!("{}", exp::fig9_poisoned_nxdomain(policy).render());
    }
    for row in exp::fig10_resolver_preference() {
        println!("{}", row.render());
    }
    println!("{}", exp::fig11_vpn_zero_score().render());
    for row in exp::tbl_a_device_matrix() {
        println!("{}", row.render());
    }
    println!("{}", exp::tbl_b_census().render());
    println!("==========================================================");
}

fn bench_figures(c: &mut Criterion) {
    print_rows_once();
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig2_literal_v4_census", |b| {
        b.iter(|| black_box(exp::fig2_literal_v4_census()))
    });
    g.bench_function("fig3_raw_gateway", |b| {
        b.iter(|| black_box(exp::fig3_ra_workaround(false)))
    });
    g.bench_function("fig3_managed_switch", |b| {
        b.iter(|| black_box(exp::fig3_ra_workaround(true)))
    });
    g.bench_function("fig4_topology_matrix", |b| {
        b.iter(|| black_box(exp::fig4_topology_matrix()))
    });
    g.bench_function("fig5_scoring", |b| {
        b.iter(|| black_box(exp::fig5_erroneous_score()))
    });
    g.bench_function("fig6_switch_intervention", |b| {
        b.iter(|| black_box(exp::fig6_switch_intervention()))
    });
    g.bench_function("fig7_winxp_nat64", |b| {
        b.iter(|| black_box(exp::fig7_winxp_nat64()))
    });
    g.bench_function("fig8_vpn_open", |b| {
        b.iter(|| black_box(exp::fig8_vpn_split_tunnel(false)))
    });
    g.bench_function("fig8_vpn_blocked", |b| {
        b.iter(|| black_box(exp::fig8_vpn_split_tunnel(true)))
    });
    g.bench_function("fig9_wildcard", |b| {
        b.iter(|| {
            black_box(exp::fig9_poisoned_nxdomain(PoisonPolicy::WildcardA {
                answer: "23.153.8.71".parse().unwrap(),
                ttl: 60,
            }))
        })
    });
    g.bench_function("fig9_rpz", |b| {
        b.iter(|| {
            black_box(exp::fig9_poisoned_nxdomain(
                PoisonPolicy::ResponsePolicyZone {
                    answer: "23.153.8.71".parse().unwrap(),
                    ttl: 60,
                },
            ))
        })
    });
    g.bench_function("fig10_resolver_preference", |b| {
        b.iter(|| black_box(exp::fig10_resolver_preference()))
    });
    g.bench_function("fig11_vpn_score", |b| {
        b.iter(|| black_box(exp::fig11_vpn_zero_score()))
    });
    g.bench_function("tbl_a_device_matrix", |b| {
        b.iter(|| black_box(exp::tbl_a_device_matrix()))
    });
    g.bench_function("tbl_b_census", |b| {
        b.iter(|| black_box(exp::tbl_b_census()))
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
