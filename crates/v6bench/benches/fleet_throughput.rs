//! Fleet throughput: the same scenario batch on 1 vs N worker threads.
//!
//! Each iteration runs the full 66-cell Fig. 4 matrix through `v6fleet`;
//! throughput is reported in scenarios (elements) per second, so the
//! speedup from parallel workers reads directly off the output.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use v6fleet::FleetRunner;
use v6testbed::Scenario;

fn bench_fleet_throughput(c: &mut Criterion) {
    let scenarios: Vec<Scenario> = Scenario::matrix(0xBE9C);
    let mut g = c.benchmark_group("fleet_throughput");
    g.throughput(Throughput::Elements(scenarios.len() as u64));
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        g.bench_function(format!("threads{threads:02}"), |b| {
            b.iter(|| FleetRunner::new(threads).run(&scenarios).report.census)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fleet_throughput);
criterion_main!(benches);
