//! PERF-1: throughput of every substrate on the testbed's hot paths —
//! DNS codec, DNS64 synthesis, NAT64 translation, RFC 6724 selection,
//! checksums, DHCP DORA, and a full testbed boot.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::net::{Ipv4Addr, Ipv6Addr};
use v6addr::rfc6052::Nat64Prefix;
use v6addr::rfc6724::{mapped, sort_destinations, CandidateSource, DestCandidate, PolicyTable};
use v6dhcp::client::{ClientEvent, DhcpClient};
use v6dhcp::server::{DhcpServer, ServerConfig};
use v6dns::codec::{Message, Question, RData, RType, Record};
use v6dns::dns64::Dns64;
use v6dns::name::DnsName;
use v6dns::server::{GlobalDns, Resolver};
use v6dns::zone::Zone;
use v6host::profiles::OsProfile;
use v6testbed::Testbed;
use v6wire::checksum::checksum;
use v6wire::ipv4::{proto, Ipv4Packet};
use v6wire::ipv6::Ipv6Packet;
use v6wire::mac::MacAddr;
use v6wire::udp::UdpDatagram;
use v6xlat::nat64::Nat64;
use v6xlat::siit::{self, PortRewrite};

fn dns_fixture() -> (Message, Vec<u8>) {
    let q = Message::query(
        0x5c24,
        Question::new("sc24.supercomputing.org".parse().unwrap(), RType::Aaaa),
    );
    let mut resp = Message::response_to(&q, v6dns::codec::Rcode::NoError);
    for i in 0..4u8 {
        resp.answers.push(Record::new(
            "sc24.supercomputing.org".parse().unwrap(),
            120,
            RData::Aaaa(Ipv6Addr::new(0x64, 0xff9b, 0, 0, 0, 0, 0, u16::from(i))),
        ));
    }
    let bytes = resp.encode();
    (resp, bytes)
}

fn bench_dns_codec(c: &mut Criterion) {
    let (msg, bytes) = dns_fixture();
    let mut g = c.benchmark_group("dns_codec");
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("encode", |b| b.iter(|| black_box(msg.encode())));
    g.bench_function("decode", |b| {
        b.iter(|| black_box(Message::decode(&bytes).unwrap()))
    });
    g.finish();
}

fn big_dns() -> GlobalDns {
    let mut g = GlobalDns::new();
    let mut z = Zone::new("bench.test".parse::<DnsName>().unwrap(), 60);
    for i in 0..1000u32 {
        z.add_str(
            &format!("h{i}"),
            60,
            RData::A(Ipv4Addr::from(0xc000_0200 + i)),
        );
    }
    g.add_zone(z);
    g
}

fn bench_dns64(c: &mut Criterion) {
    let mut g = c.benchmark_group("dns64");
    g.bench_function("synthesize_aaaa", |b| {
        let mut d = Dns64::well_known(big_dns());
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 1000;
            let q = Question::new(format!("h{i}.bench.test").parse().unwrap(), RType::Aaaa);
            black_box(d.resolve(&q, 0))
        })
    });
    g.bench_function("native_a_passthrough", |b| {
        let mut d = Dns64::well_known(big_dns());
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 1000;
            let q = Question::new(format!("h{i}.bench.test").parse().unwrap(), RType::A);
            black_box(d.resolve(&q, 0))
        })
    });
    g.finish();
}

fn bench_nat64(c: &mut Criterion) {
    let prefix = Nat64Prefix::well_known();
    let client: Ipv6Addr = "2607:fb90:9bda:a425::50".parse().unwrap();
    let mut g = c.benchmark_group("nat64");
    g.bench_function("v6_to_v4_established_flow", |b| {
        let mut nat = Nat64::well_known_on(vec!["203.0.113.64".parse().unwrap()]);
        let dst = prefix.embed_unchecked("190.92.158.4".parse().unwrap());
        let d = UdpDatagram::new(40000, 53, vec![0u8; 64]);
        let pkt = Ipv6Packet::new(client, dst, proto::UDP, d.encode_v6(client, dst));
        b.iter(|| black_box(nat.v6_to_v4(&pkt, 100).unwrap()))
    });
    g.bench_function("v6_to_v4_new_flows", |b| {
        let mut nat = Nat64::well_known_on(vec!["203.0.113.64".parse().unwrap()]);
        let dst = prefix.embed_unchecked("190.92.158.4".parse().unwrap());
        let mut port = 1024u16;
        b.iter(|| {
            port = port.wrapping_add(1).max(1024);
            let d = UdpDatagram::new(port, 53, vec![0u8; 64]);
            let pkt = Ipv6Packet::new(client, dst, proto::UDP, d.encode_v6(client, dst));
            black_box(nat.v6_to_v4(&pkt, 100).unwrap())
        })
    });
    g.bench_function("siit_stateless_v4_to_v6", |b| {
        let src: Ipv4Addr = "192.0.0.1".parse().unwrap();
        let dst: Ipv4Addr = "190.92.158.4".parse().unwrap();
        let d = UdpDatagram::new(5198, 5198, vec![0u8; 64]);
        let pkt = Ipv4Packet::new(src, dst, proto::UDP, d.encode_v4(src, dst));
        let s6: Ipv6Addr = "2607:fb90::c1a7".parse().unwrap();
        let d6 = prefix.embed_unchecked(dst);
        b.iter(|| black_box(siit::v4_to_v6(&pkt, s6, d6, PortRewrite::default()).unwrap()))
    });
    g.finish();
}

fn bench_rfc6724(c: &mut Criterion) {
    let table = PolicyTable::default();
    let sources = [
        CandidateSource::plain("2607:fb90:9bda:a425::50".parse().unwrap(), 1, 64),
        CandidateSource::plain("fd00:976a::50".parse().unwrap(), 1, 64),
        CandidateSource::plain(mapped("192.168.12.50".parse().unwrap()), 1, 128),
    ];
    let mut rng = StdRng::seed_from_u64(0x5c24);
    let dests: Vec<DestCandidate> = (0..16)
        .map(|i| {
            if i % 2 == 0 {
                DestCandidate::plain(Ipv6Addr::from(rng.gen::<u128>() | (0x2600u128 << 112)))
            } else {
                DestCandidate::v4(Ipv4Addr::from(rng.gen::<u32>() | 0x0100_0000))
            }
        })
        .collect();
    let mut g = c.benchmark_group("rfc6724");
    g.bench_function("sort_16_destinations", |b| {
        b.iter(|| black_box(sort_destinations(&dests, &sources, 1, &table)))
    });
    g.finish();
}

fn bench_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire");
    let data = vec![0xa5u8; 1500];
    g.throughput(Throughput::Bytes(1500));
    g.bench_function("checksum_1500B", |b| b.iter(|| black_box(checksum(&data))));
    let d = UdpDatagram::new(40000, 53, vec![0u8; 512]);
    let s6: Ipv6Addr = "fd00:976a::50".parse().unwrap();
    let d6: Ipv6Addr = "fd00:976a::9".parse().unwrap();
    g.bench_function("udp_v6_encode_512B", |b| {
        b.iter(|| black_box(d.encode_v6(s6, d6)))
    });
    let frame = v6wire::packet::build_udp_v6(
        MacAddr::new([2, 0, 0, 0, 0, 1]),
        MacAddr::new([2, 0, 0, 0, 0, 2]),
        s6,
        d6,
        &d,
    );
    g.bench_function("full_frame_parse", |b| {
        b.iter(|| black_box(v6wire::packet::ParsedFrame::parse(&frame).unwrap()))
    });
    g.finish();
}

fn bench_dhcp(c: &mut Criterion) {
    let mut g = c.benchmark_group("dhcp");
    g.bench_function("dora_with_108", |b| {
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            let mut server =
                DhcpServer::new(ServerConfig::testbed("192.168.12.250".parse().unwrap()));
            let mut client =
                DhcpClient::new(MacAddr::new([2, 0, 0, 0, (n >> 8) as u8, n as u8]), true);
            let mut ev = client.start(0);
            for _ in 0..6 {
                match ev {
                    ClientEvent::Send(msg) => match server.handle(&msg, 0) {
                        Some(reply) => ev = client.receive(&reply, 0),
                        None => break,
                    },
                    other => {
                        black_box(other);
                        break;
                    }
                }
            }
        })
    });
    g.finish();
}

fn bench_testbed(c: &mut Criterion) {
    let mut g = c.benchmark_group("testbed");
    g.sample_size(10);
    g.bench_function("boot_8_clients", |b| {
        b.iter(|| {
            let mut tb = Testbed::paper_default();
            for p in [
                OsProfile::macos(),
                OsProfile::ios(),
                OsProfile::android(),
                OsProfile::windows_10(),
                OsProfile::windows_11(),
                OsProfile::linux(),
                OsProfile::nintendo_switch(),
                OsProfile::windows_xp(),
            ] {
                tb.add_host(p);
            }
            tb.boot();
            black_box(tb.net.frames_delivered)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_dns_codec,
    bench_dns64,
    bench_nat64,
    bench_rfc6724,
    bench_wire,
    bench_dhcp,
    bench_testbed
);
criterion_main!(benches);
