//! Population census costs, split into its three layers:
//!
//! * `sample` — pure cell derivation (`PopulationSpec::cell`), the
//!   splittable-PRNG + cumulative-weight path that runs once per cell.
//! * `fold` — sketch accounting alone (`CensusSketch::fold` with a
//!   synthetic observation), the entire per-cell aggregation overhead.
//! * `census` — the real thing end to end: sample, simulate, and
//!   stream-aggregate a small population (the per-cell simulation
//!   dominates; this is the number `just population` scales up).
//!
//! `sample` and `fold` being orders of magnitude cheaper than `census`
//! is the design working: the streaming layer adds ~nothing on top of
//! the simulation itself.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use v6fleet::{CensusSketch, FleetRunner, PopulationSpec};
use v6testbed::scenario::{CellObservation, PathFamily, ResolutionFailure};

fn synth_obs(bits: u64) -> CellObservation {
    CellObservation {
        rfc8925_engaged: bits & 1 != 0,
        has_v4: bits & 2 != 0,
        sc24: PathFamily::V6,
        ip6me: PathFamily::V6,
        intervened: bits & 4 != 0,
        naive_counted: true,
        accurate_counted: bits & 8 != 0,
        degraded: bits & 16 != 0,
        completed_us: (bits >> 5) % 30_000_000,
        events: (bits >> 9) % 1_000,
        dns_failure: match (bits >> 45) % 5 {
            0 => None,
            k => Some(ResolutionFailure::ALL[(k - 1) as usize]),
        },
    }
}

fn bench_population(c: &mut Criterion) {
    const SAMPLES: u64 = 10_000;
    let spec = PopulationSpec::paper_default(0x5c24, SAMPLES);

    let mut g = c.benchmark_group("population_census");
    g.throughput(Throughput::Elements(SAMPLES));
    g.sample_size(10);
    g.bench_function("sample", |b| {
        b.iter(|| {
            let mut last = None;
            for i in 0..SAMPLES {
                last = Some(std::hint::black_box(spec.cell(i)));
            }
            last
        })
    });
    g.bench_function("fold", |b| {
        b.iter(|| {
            let mut sketch = CensusSketch::new();
            for i in 0..SAMPLES {
                sketch.fold(spec.cell(i), synth_obs(i.wrapping_mul(0x9e3779b97f4a7c15)));
            }
            sketch.samples
        })
    });
    g.finish();

    const CELLS: u64 = 500;
    let small = PopulationSpec::paper_default(0x5c24, CELLS);
    let mut g = c.benchmark_group("population_census_end_to_end");
    g.throughput(Throughput::Elements(CELLS));
    g.sample_size(10);
    g.bench_function("census500", |b| {
        b.iter(|| {
            FleetRunner::new(1)
                .run_population(&small, 8)
                .report
                .sketch
                .samples
        })
    });
    g.finish();
}

criterion_group!(benches, bench_population);
criterion_main!(benches);
