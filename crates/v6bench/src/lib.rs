//! Benchmark support library (see `benches/`).
