//! The DHCPv4 client state machine, including RFC 8925 §3.2: a client that
//! sent option 108 and receives it back MUST NOT configure IPv4 and instead
//! waits `V6ONLY_WAIT` seconds before trying DHCPv4 again.

use crate::codec::{DhcpMessage, DhcpMessageType, DhcpOption};
use std::net::Ipv4Addr;
use v6wire::mac::MacAddr;

/// RFC 8925 §3.4: minimum wait a client may honour.
pub const MIN_V6ONLY_WAIT: u32 = 300;

/// Client state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientState {
    /// Not started.
    Init,
    /// DISCOVER sent, waiting for OFFER.
    Selecting,
    /// REQUEST sent, waiting for ACK.
    Requesting {
        /// Address being requested.
        offered: Ipv4Addr,
        /// Server identifier from the OFFER (echoed on retransmission).
        server_id: Option<Ipv4Addr>,
    },
    /// Lease held.
    Bound {
        /// Assigned address.
        ip: Ipv4Addr,
        /// Lease expiry (absolute seconds).
        expires: u64,
    },
    /// RFC 8925: IPv4 disabled until the wait expires.
    V6OnlyWait {
        /// When DHCPv4 may be retried (absolute seconds).
        until: u64,
    },
}

/// What the state machine wants the host to do next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientEvent {
    /// Transmit this message (broadcast).
    Send(DhcpMessage),
    /// IPv4 is configured: address + mask + router + DNS + search domain.
    Configured {
        /// Leased address.
        ip: Ipv4Addr,
        /// Subnet mask.
        mask: Ipv4Addr,
        /// Default router, if offered.
        router: Option<Ipv4Addr>,
        /// DNS resolvers from option 6.
        dns: Vec<Ipv4Addr>,
        /// Domain suffix from option 15.
        domain: Option<String>,
        /// Captive-portal URI from option 114.
        captive_portal: Option<String>,
    },
    /// RFC 8925 honoured: IPv4 stays off for this many seconds.
    V6OnlyMode {
        /// The wait the client will honour.
        wait: u32,
    },
    /// Nothing to do.
    Idle,
}

/// A DHCPv4 client.
#[derive(Debug)]
pub struct DhcpClient {
    /// Client MAC.
    pub mac: MacAddr,
    /// Does this OS implement RFC 8925 (macOS/iOS/Android do; Windows 10 and
    /// the Nintendo Switch do not)?
    pub supports_rfc8925: bool,
    /// Current state.
    pub state: ClientState,
    xid: u32,
}

impl DhcpClient {
    /// New client in `Init`.
    pub fn new(mac: MacAddr, supports_rfc8925: bool) -> DhcpClient {
        DhcpClient {
            mac,
            supports_rfc8925,
            state: ClientState::Init,
            xid: u32::from_be_bytes([mac.0[2], mac.0[3], mac.0[4], mac.0[5]]) ^ 0x5c24_0601,
        }
    }

    fn prl(&self) -> DhcpOption {
        let mut codes = vec![1, 3, 6, 15, 51, 114];
        if self.supports_rfc8925 {
            codes.push(108);
        }
        DhcpOption::ParameterRequestList(codes)
    }

    /// Kick off (or retry) configuration: emits DISCOVER.
    pub fn start(&mut self, now: u64) -> ClientEvent {
        if let ClientState::V6OnlyWait { until } = self.state {
            if now < until {
                return ClientEvent::Idle; // still honouring V6ONLY_WAIT
            }
        }
        self.xid = self.xid.wrapping_add(1);
        let mut d = DhcpMessage::client(DhcpMessageType::Discover, self.xid, self.mac);
        d.options.push(self.prl());
        self.state = ClientState::Selecting;
        ClientEvent::Send(d)
    }

    /// RFC 2131 §4.1 retransmission: resend the in-flight DISCOVER or
    /// REQUEST with the same xid. Outside an exchange this restarts
    /// discovery (equivalent to [`DhcpClient::start`]).
    pub fn retransmit(&mut self, now: u64) -> ClientEvent {
        match self.state.clone() {
            ClientState::Selecting => {
                let mut d = DhcpMessage::client(DhcpMessageType::Discover, self.xid, self.mac);
                d.options.push(self.prl());
                ClientEvent::Send(d)
            }
            ClientState::Requesting { offered, server_id } => {
                let mut req = DhcpMessage::client(DhcpMessageType::Request, self.xid, self.mac);
                req.options.push(DhcpOption::RequestedIp(offered));
                if let Some(sid) = server_id {
                    req.options.push(DhcpOption::ServerId(sid));
                }
                req.options.push(self.prl());
                ClientEvent::Send(req)
            }
            _ => self.start(now),
        }
    }

    /// Feed a server reply into the state machine.
    pub fn receive(&mut self, msg: &DhcpMessage, now: u64) -> ClientEvent {
        if msg.xid != self.xid || msg.chaddr != self.mac {
            return ClientEvent::Idle;
        }
        match (msg.message_type(), &self.state) {
            (Some(DhcpMessageType::Offer), ClientState::Selecting) => {
                // RFC 8925 §3.2: an option-108-bearing OFFER tells a capable
                // client to abandon DHCPv4 entirely.
                if self.supports_rfc8925 {
                    if let Some(wait) = msg.v6only_wait() {
                        let wait = wait.max(MIN_V6ONLY_WAIT);
                        self.state = ClientState::V6OnlyWait {
                            until: now + u64::from(wait),
                        };
                        return ClientEvent::V6OnlyMode { wait };
                    }
                }
                let server_id = match msg.option(54) {
                    Some(DhcpOption::ServerId(sid)) => Some(*sid),
                    _ => None,
                };
                let mut req = DhcpMessage::client(DhcpMessageType::Request, self.xid, self.mac);
                req.options.push(DhcpOption::RequestedIp(msg.yiaddr));
                if let Some(sid) = server_id {
                    req.options.push(DhcpOption::ServerId(sid));
                }
                req.options.push(self.prl());
                self.state = ClientState::Requesting {
                    offered: msg.yiaddr,
                    server_id,
                };
                ClientEvent::Send(req)
            }
            (Some(DhcpMessageType::Ack), ClientState::Requesting { offered, .. }) => {
                let ip = if msg.yiaddr.is_unspecified() {
                    *offered
                } else {
                    msg.yiaddr
                };
                // A capable client double-checks the ACK too (servers may
                // only include 108 in the ACK).
                if self.supports_rfc8925 {
                    if let Some(wait) = msg.v6only_wait() {
                        let wait = wait.max(MIN_V6ONLY_WAIT);
                        self.state = ClientState::V6OnlyWait {
                            until: now + u64::from(wait),
                        };
                        return ClientEvent::V6OnlyMode { wait };
                    }
                }
                let lease = msg
                    .option(51)
                    .and_then(|o| match o {
                        DhcpOption::LeaseTime(t) => Some(*t),
                        _ => None,
                    })
                    .unwrap_or(3600);
                self.state = ClientState::Bound {
                    ip,
                    expires: now + u64::from(lease),
                };
                let mask = msg
                    .option(1)
                    .and_then(|o| match o {
                        DhcpOption::SubnetMask(m) => Some(*m),
                        _ => None,
                    })
                    .unwrap_or(Ipv4Addr::new(255, 255, 255, 0));
                let router = msg.option(3).and_then(|o| match o {
                    DhcpOption::Router(rs) => rs.first().copied(),
                    _ => None,
                });
                let domain = msg.option(15).and_then(|o| match o {
                    DhcpOption::DomainName(d) => Some(d.clone()),
                    _ => None,
                });
                let captive_portal = msg.option(114).and_then(|o| match o {
                    DhcpOption::CaptivePortal(u) => Some(u.clone()),
                    _ => None,
                });
                ClientEvent::Configured {
                    ip,
                    mask,
                    router,
                    dns: msg.dns_servers(),
                    domain,
                    captive_portal,
                }
            }
            (Some(DhcpMessageType::Nak), _) => {
                self.state = ClientState::Init;
                self.start(now)
            }
            _ => ClientEvent::Idle,
        }
    }

    /// Has the lease (if any) expired?
    pub fn lease_expired(&self, now: u64) -> bool {
        matches!(self.state, ClientState::Bound { expires, .. } if expires <= now)
    }

    /// Is IPv4 currently disabled by RFC 8925?
    pub fn in_v6only_mode(&self, now: u64) -> bool {
        matches!(self.state, ClientState::V6OnlyWait { until } if now < until)
    }
}

/// RFC 2131 §4.1 retransmission schedule: 4 s before the first retry,
/// doubling up to a 64 s ceiling, each delay randomized by ±1 s. The
/// jitter is a pure hash of `(entropy, attempt)`, so a single host is
/// fully deterministic while a fleet of hosts desynchronizes.
pub fn retry_backoff_ms(attempt: u32, entropy: u64) -> u64 {
    let base_ms = 4_000u64 << attempt.min(4);
    let mut z = entropy ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    base_ms - 1_000 + (z % 2_001)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{DhcpServer, ServerConfig};

    fn mac(n: u8) -> MacAddr {
        MacAddr::new([2, 0, 0, 0, 1, n])
    }

    fn run_exchange(
        client: &mut DhcpClient,
        server: &mut DhcpServer,
        now: u64,
    ) -> Vec<ClientEvent> {
        let mut events = Vec::new();
        let mut ev = client.start(now);
        for _ in 0..8 {
            match ev {
                ClientEvent::Send(msg) => {
                    events.push(ClientEvent::Send(msg.clone()));
                    match server.handle(&msg, now) {
                        Some(reply) => ev = client.receive(&reply, now),
                        None => break,
                    }
                }
                other => {
                    events.push(other);
                    break;
                }
            }
        }
        events
    }

    #[test]
    fn rfc8925_client_enters_v6only_mode() {
        let mut s = DhcpServer::new(ServerConfig::testbed("192.168.12.250".parse().unwrap()));
        let mut c = DhcpClient::new(mac(1), true);
        let events = run_exchange(&mut c, &mut s, 100);
        assert!(
            matches!(events.last(), Some(ClientEvent::V6OnlyMode { wait: 1800 })),
            "capable client must shut IPv4 off: {events:?}"
        );
        assert!(c.in_v6only_mode(101));
        assert!(c.in_v6only_mode(1899));
        assert!(!c.in_v6only_mode(100 + 1800));
        // No lease was consumed.
        assert_eq!(s.live_leases(101), 0);
    }

    #[test]
    fn legacy_client_configures_ipv4() {
        let mut s = DhcpServer::new(ServerConfig::testbed("192.168.12.250".parse().unwrap()));
        let mut c = DhcpClient::new(mac(2), false);
        let events = run_exchange(&mut c, &mut s, 0);
        match events.last() {
            Some(ClientEvent::Configured {
                ip, dns, domain, ..
            }) => {
                assert!(format!("{ip}").starts_with("192.168.12."));
                assert_eq!(dns, &vec!["192.168.12.250".parse::<Ipv4Addr>().unwrap()]);
                assert_eq!(domain.as_deref(), Some("rfc8925.com"));
            }
            other => panic!("expected configuration, got {other:?}"),
        }
        assert_eq!(s.live_leases(1), 1);
    }

    #[test]
    fn capable_client_on_legacy_server_configures_ipv4() {
        // Dual-stack operation when the network doesn't do RFC 8925.
        let mut cfg = ServerConfig::testbed("192.168.12.250".parse().unwrap());
        cfg.v6only_wait = None;
        let mut s = DhcpServer::new(cfg);
        let mut c = DhcpClient::new(mac(3), true);
        let events = run_exchange(&mut c, &mut s, 0);
        assert!(matches!(
            events.last(),
            Some(ClientEvent::Configured { .. })
        ));
    }

    #[test]
    fn v6only_wait_honours_minimum() {
        // RFC 8925 §3.4: waits below MIN_V6ONLY_WAIT are raised to it.
        let mut cfg = ServerConfig::testbed("192.168.12.250".parse().unwrap());
        cfg.v6only_wait = Some(10);
        let mut s = DhcpServer::new(cfg);
        let mut c = DhcpClient::new(mac(4), true);
        let events = run_exchange(&mut c, &mut s, 0);
        assert!(matches!(
            events.last(),
            Some(ClientEvent::V6OnlyMode { wait }) if *wait == MIN_V6ONLY_WAIT
        ));
    }

    #[test]
    fn start_during_wait_is_idle_then_retries() {
        let mut s = DhcpServer::new(ServerConfig::testbed("192.168.12.250".parse().unwrap()));
        let mut c = DhcpClient::new(mac(5), true);
        run_exchange(&mut c, &mut s, 0);
        assert_eq!(c.start(100), ClientEvent::Idle, "still in V6ONLY_WAIT");
        assert!(
            matches!(c.start(1800), ClientEvent::Send(_)),
            "wait expired, DHCPv4 retried"
        );
    }

    #[test]
    fn nak_restarts_discovery() {
        let mut s = DhcpServer::new(ServerConfig::testbed("192.168.12.250".parse().unwrap()));
        let mut c = DhcpClient::new(mac(6), false);
        // Get an offer manually, then request a conflicting address.
        let ev = c.start(0);
        let ClientEvent::Send(discover) = ev else {
            panic!("expected discover")
        };
        let offer = s.handle(&discover, 0).unwrap();
        // Another client grabs that address first.
        let mut other = DhcpClient::new(mac(7), false);
        run_exchange(&mut other, &mut s, 0);
        let _ = c.receive(&offer, 0); // sends REQUEST internally
                                      // Craft a NAK as the server would.
        let nak = DhcpMessage::reply(DhcpMessageType::Nak, &discover);
        let ev = c.receive(&nak, 1);
        assert!(
            matches!(ev, ClientEvent::Send(m) if m.message_type() == Some(DhcpMessageType::Discover))
        );
    }

    #[test]
    fn stray_replies_ignored() {
        let mut c = DhcpClient::new(mac(8), true);
        c.start(0);
        // Wrong xid.
        let mut bogus = DhcpMessage::reply(
            DhcpMessageType::Offer,
            &DhcpMessage::client(DhcpMessageType::Discover, 0x9999, mac(8)),
        );
        bogus.yiaddr = "192.168.12.77".parse().unwrap();
        assert_eq!(c.receive(&bogus, 0), ClientEvent::Idle);
        // Wrong MAC.
        let mut bogus2 = DhcpMessage::reply(
            DhcpMessageType::Offer,
            &DhcpMessage::client(DhcpMessageType::Discover, c.xid, mac(9)),
        );
        bogus2.yiaddr = "192.168.12.78".parse().unwrap();
        assert_eq!(c.receive(&bogus2, 0), ClientEvent::Idle);
    }

    #[test]
    fn retransmit_keeps_xid_and_message_type() {
        let mut s = DhcpServer::new(ServerConfig::testbed("192.168.12.250".parse().unwrap()));
        let mut c = DhcpClient::new(mac(11), false);
        let ClientEvent::Send(discover) = c.start(0) else {
            panic!("expected discover")
        };
        // Lost DISCOVER: the retry is the same message, same xid.
        let ClientEvent::Send(again) = c.retransmit(2) else {
            panic!("expected retransmitted discover")
        };
        assert_eq!(again.xid, discover.xid);
        assert_eq!(again.message_type(), Some(DhcpMessageType::Discover));
        // Lost REQUEST: the retry carries the requested ip + server id.
        let offer = s.handle(&discover, 0).unwrap();
        let ClientEvent::Send(req) = c.receive(&offer, 0) else {
            panic!("expected request")
        };
        let ClientEvent::Send(req2) = c.retransmit(6) else {
            panic!("expected retransmitted request")
        };
        assert_eq!(req2.xid, req.xid);
        assert_eq!(req2.message_type(), Some(DhcpMessageType::Request));
        assert_eq!(req2.option(50).is_some(), req.option(50).is_some());
        assert_eq!(req2.option(54).is_some(), req.option(54).is_some());
        // The retransmitted REQUEST still completes the exchange.
        let ack = s.handle(&req2, 6).unwrap();
        assert!(matches!(c.receive(&ack, 6), ClientEvent::Configured { .. }));
    }

    #[test]
    fn retry_backoff_doubles_with_bounded_jitter() {
        for entropy in [0u64, 1, 0xdead_beef, u64::MAX] {
            for attempt in 0..8u32 {
                let ms = retry_backoff_ms(attempt, entropy);
                let base = 4_000u64 << attempt.min(4);
                assert!(
                    (base - 1_000..=base + 1_000).contains(&ms),
                    "attempt {attempt}: {ms} outside ±1 s of {base}"
                );
                assert_eq!(ms, retry_backoff_ms(attempt, entropy), "deterministic");
            }
        }
        // The ceiling holds: attempts past 4 stop doubling.
        assert!(retry_backoff_ms(40, 7) <= 65_000);
    }

    #[test]
    fn lease_expiry_detected() {
        let mut s = DhcpServer::new(ServerConfig::testbed("192.168.12.250".parse().unwrap()));
        let mut c = DhcpClient::new(mac(10), false);
        run_exchange(&mut c, &mut s, 0);
        assert!(!c.lease_expired(1000));
        assert!(c.lease_expired(3600));
    }
}
