//! DHCPv4 (RFC 2131) message wire format with the options the testbed uses.

use std::fmt;
use std::net::Ipv4Addr;
use v6wire::mac::MacAddr;

/// Decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DhcpError {
    /// Input too short for `what`.
    Truncated(&'static str),
    /// Missing or wrong magic cookie.
    BadCookie(u32),
    /// Missing message-type option (53).
    NoMessageType,
    /// A field had an unusable value.
    BadField(&'static str, u64),
}

impl fmt::Display for DhcpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DhcpError::Truncated(w) => write!(f, "dhcp: truncated {w}"),
            DhcpError::BadCookie(c) => write!(f, "dhcp: bad magic cookie {c:#010x}"),
            DhcpError::NoMessageType => write!(f, "dhcp: missing option 53"),
            DhcpError::BadField(w, v) => write!(f, "dhcp: bad {w} value {v}"),
        }
    }
}

impl std::error::Error for DhcpError {}

/// DHCP message types (option 53).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DhcpMessageType {
    /// 1.
    Discover,
    /// 2.
    Offer,
    /// 3.
    Request,
    /// 4.
    Decline,
    /// 5.
    Ack,
    /// 6.
    Nak,
    /// 7.
    Release,
    /// 8.
    Inform,
}

impl DhcpMessageType {
    fn to_u8(self) -> u8 {
        match self {
            DhcpMessageType::Discover => 1,
            DhcpMessageType::Offer => 2,
            DhcpMessageType::Request => 3,
            DhcpMessageType::Decline => 4,
            DhcpMessageType::Ack => 5,
            DhcpMessageType::Nak => 6,
            DhcpMessageType::Release => 7,
            DhcpMessageType::Inform => 8,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => DhcpMessageType::Discover,
            2 => DhcpMessageType::Offer,
            3 => DhcpMessageType::Request,
            4 => DhcpMessageType::Decline,
            5 => DhcpMessageType::Ack,
            6 => DhcpMessageType::Nak,
            7 => DhcpMessageType::Release,
            8 => DhcpMessageType::Inform,
            _ => return None,
        })
    }

    /// Is this a message only servers send? (What DHCP snooping filters on.)
    pub fn is_server_message(self) -> bool {
        matches!(
            self,
            DhcpMessageType::Offer | DhcpMessageType::Ack | DhcpMessageType::Nak
        )
    }
}

/// DHCP options (the subset the testbed exchanges, others carried raw).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DhcpOption {
    /// 1: subnet mask.
    SubnetMask(Ipv4Addr),
    /// 3: default routers.
    Router(Vec<Ipv4Addr>),
    /// 6: DNS servers — where the poisoned resolver address is delivered.
    DnsServers(Vec<Ipv4Addr>),
    /// 12: host name.
    HostName(String),
    /// 15: domain name — the `rfc8925.com` suffix from the paper's Fig. 7/9.
    DomainName(String),
    /// 50: requested IP address.
    RequestedIp(Ipv4Addr),
    /// 51: lease time (seconds).
    LeaseTime(u32),
    /// 53: message type.
    MessageType(DhcpMessageType),
    /// 54: server identifier.
    ServerId(Ipv4Addr),
    /// 55: parameter request list — clients advertise RFC 8925 support by
    /// listing 108 here.
    ParameterRequestList(Vec<u8>),
    /// 108: IPv6-Only Preferred (RFC 8925) — value is `V6ONLY_WAIT` seconds.
    V6OnlyPreferred(u32),
    /// 114: captive-portal URI (RFC 8910) — the in-flight-WiFi-style
    /// notification channel §IV aspires to.
    CaptivePortal(String),
    /// Anything else (code, raw payload).
    Other(u8, Vec<u8>),
}

impl DhcpOption {
    /// The option code.
    pub fn code(&self) -> u8 {
        match self {
            DhcpOption::SubnetMask(_) => 1,
            DhcpOption::Router(_) => 3,
            DhcpOption::DnsServers(_) => 6,
            DhcpOption::HostName(_) => 12,
            DhcpOption::DomainName(_) => 15,
            DhcpOption::RequestedIp(_) => 50,
            DhcpOption::LeaseTime(_) => 51,
            DhcpOption::MessageType(_) => 53,
            DhcpOption::ServerId(_) => 54,
            DhcpOption::ParameterRequestList(_) => 55,
            DhcpOption::V6OnlyPreferred(_) => 108,
            DhcpOption::CaptivePortal(_) => 114,
            DhcpOption::Other(c, _) => *c,
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        let code = self.code();
        match self {
            DhcpOption::SubnetMask(a) | DhcpOption::RequestedIp(a) | DhcpOption::ServerId(a) => {
                out.push(code);
                out.push(4);
                out.extend_from_slice(&a.octets());
            }
            DhcpOption::Router(addrs) | DhcpOption::DnsServers(addrs) => {
                out.push(code);
                out.push((addrs.len() * 4) as u8);
                for a in addrs {
                    out.extend_from_slice(&a.octets());
                }
            }
            DhcpOption::HostName(s) | DhcpOption::DomainName(s) | DhcpOption::CaptivePortal(s) => {
                let b = s.as_bytes();
                out.push(code);
                out.push(b.len().min(255) as u8);
                out.extend_from_slice(&b[..b.len().min(255)]);
            }
            DhcpOption::LeaseTime(v) | DhcpOption::V6OnlyPreferred(v) => {
                out.push(code);
                out.push(4);
                out.extend_from_slice(&v.to_be_bytes());
            }
            DhcpOption::MessageType(t) => {
                out.push(code);
                out.push(1);
                out.push(t.to_u8());
            }
            DhcpOption::ParameterRequestList(codes) => {
                out.push(code);
                out.push(codes.len() as u8);
                out.extend_from_slice(codes);
            }
            DhcpOption::Other(_, data) => {
                out.push(code);
                out.push(data.len().min(255) as u8);
                out.extend_from_slice(&data[..data.len().min(255)]);
            }
        }
    }

    fn decode(code: u8, data: &[u8]) -> Result<DhcpOption, DhcpError> {
        let ip = |d: &[u8]| -> Result<Ipv4Addr, DhcpError> {
            if d.len() < 4 {
                return Err(DhcpError::Truncated("option-ip"));
            }
            Ok(Ipv4Addr::new(d[0], d[1], d[2], d[3]))
        };
        let ips = |d: &[u8]| -> Result<Vec<Ipv4Addr>, DhcpError> {
            if !d.len().is_multiple_of(4) {
                return Err(DhcpError::BadField("option-ip-list", d.len() as u64));
            }
            Ok(d.chunks_exact(4)
                .map(|c| Ipv4Addr::new(c[0], c[1], c[2], c[3]))
                .collect())
        };
        let u32be = |d: &[u8]| -> Result<u32, DhcpError> {
            if d.len() < 4 {
                return Err(DhcpError::Truncated("option-u32"));
            }
            Ok(u32::from_be_bytes([d[0], d[1], d[2], d[3]]))
        };
        Ok(match code {
            1 => DhcpOption::SubnetMask(ip(data)?),
            3 => DhcpOption::Router(ips(data)?),
            6 => DhcpOption::DnsServers(ips(data)?),
            12 => DhcpOption::HostName(String::from_utf8_lossy(data).into_owned()),
            15 => DhcpOption::DomainName(String::from_utf8_lossy(data).into_owned()),
            50 => DhcpOption::RequestedIp(ip(data)?),
            51 => DhcpOption::LeaseTime(u32be(data)?),
            53 => DhcpOption::MessageType(
                data.first()
                    .copied()
                    .and_then(DhcpMessageType::from_u8)
                    .ok_or(DhcpError::NoMessageType)?,
            ),
            54 => DhcpOption::ServerId(ip(data)?),
            55 => DhcpOption::ParameterRequestList(data.to_vec()),
            108 => DhcpOption::V6OnlyPreferred(u32be(data)?),
            114 => DhcpOption::CaptivePortal(String::from_utf8_lossy(data).into_owned()),
            other => DhcpOption::Other(other, data.to_vec()),
        })
    }
}

/// A DHCPv4 message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DhcpMessage {
    /// BOOTREQUEST (1) vs BOOTREPLY (2).
    pub is_reply: bool,
    /// Transaction id.
    pub xid: u32,
    /// Seconds elapsed.
    pub secs: u16,
    /// Broadcast flag.
    pub broadcast: bool,
    /// Client's current address (renewals).
    pub ciaddr: Ipv4Addr,
    /// "Your" address being offered/assigned.
    pub yiaddr: Ipv4Addr,
    /// Next-server address.
    pub siaddr: Ipv4Addr,
    /// Relay agent address.
    pub giaddr: Ipv4Addr,
    /// Client hardware address.
    pub chaddr: MacAddr,
    /// Options (message type included).
    pub options: Vec<DhcpOption>,
}

/// The DHCP magic cookie (RFC 2131 §3).
const MAGIC: u32 = 0x6382_5363;

impl DhcpMessage {
    /// A minimal client message of the given type.
    pub fn client(mt: DhcpMessageType, xid: u32, chaddr: MacAddr) -> DhcpMessage {
        DhcpMessage {
            is_reply: false,
            xid,
            secs: 0,
            broadcast: true,
            ciaddr: Ipv4Addr::UNSPECIFIED,
            yiaddr: Ipv4Addr::UNSPECIFIED,
            siaddr: Ipv4Addr::UNSPECIFIED,
            giaddr: Ipv4Addr::UNSPECIFIED,
            chaddr,
            options: vec![DhcpOption::MessageType(mt)],
        }
    }

    /// A server reply skeleton answering `req`.
    pub fn reply(mt: DhcpMessageType, req: &DhcpMessage) -> DhcpMessage {
        DhcpMessage {
            is_reply: true,
            xid: req.xid,
            secs: 0,
            broadcast: req.broadcast,
            ciaddr: Ipv4Addr::UNSPECIFIED,
            yiaddr: Ipv4Addr::UNSPECIFIED,
            siaddr: Ipv4Addr::UNSPECIFIED,
            giaddr: req.giaddr,
            chaddr: req.chaddr,
            options: vec![DhcpOption::MessageType(mt)],
        }
    }

    /// The message type (first option 53).
    pub fn message_type(&self) -> Option<DhcpMessageType> {
        self.options.iter().find_map(|o| match o {
            DhcpOption::MessageType(t) => Some(*t),
            _ => None,
        })
    }

    /// Look up an option by code.
    pub fn option(&self, code: u8) -> Option<&DhcpOption> {
        self.options.iter().find(|o| o.code() == code)
    }

    /// Did the client list option 108 in its parameter request list,
    /// i.e. does it support RFC 8925?
    pub fn requests_v6only(&self) -> bool {
        self.options.iter().any(|o| match o {
            DhcpOption::ParameterRequestList(codes) => codes.contains(&108),
            _ => false,
        })
    }

    /// The `V6ONLY_WAIT` value, if option 108 is present.
    pub fn v6only_wait(&self) -> Option<u32> {
        self.options.iter().find_map(|o| match o {
            DhcpOption::V6OnlyPreferred(w) => Some(*w),
            _ => None,
        })
    }

    /// The offered DNS servers, if option 6 is present.
    pub fn dns_servers(&self) -> Vec<Ipv4Addr> {
        self.options
            .iter()
            .find_map(|o| match o {
                DhcpOption::DnsServers(v) => Some(v.clone()),
                _ => None,
            })
            .unwrap_or_default()
    }

    /// Serialize to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(300);
        out.push(if self.is_reply { 2 } else { 1 });
        out.push(1); // htype: Ethernet
        out.push(6); // hlen
        out.push(0); // hops
        out.extend_from_slice(&self.xid.to_be_bytes());
        out.extend_from_slice(&self.secs.to_be_bytes());
        out.extend_from_slice(&(if self.broadcast { 0x8000u16 } else { 0 }).to_be_bytes());
        out.extend_from_slice(&self.ciaddr.octets());
        out.extend_from_slice(&self.yiaddr.octets());
        out.extend_from_slice(&self.siaddr.octets());
        out.extend_from_slice(&self.giaddr.octets());
        out.extend_from_slice(&self.chaddr.0);
        out.extend_from_slice(&[0u8; 10]); // chaddr padding
        out.extend_from_slice(&[0u8; 64]); // sname
        out.extend_from_slice(&[0u8; 128]); // file
        out.extend_from_slice(&MAGIC.to_be_bytes());
        for opt in &self.options {
            opt.encode(&mut out);
        }
        out.push(255); // end
        out
    }

    /// Parse from wire bytes.
    pub fn decode(buf: &[u8]) -> Result<DhcpMessage, DhcpError> {
        if buf.len() < 240 {
            return Err(DhcpError::Truncated("fixed-header"));
        }
        let op = buf[0];
        if op != 1 && op != 2 {
            return Err(DhcpError::BadField("op", u64::from(op)));
        }
        let cookie = u32::from_be_bytes([buf[236], buf[237], buf[238], buf[239]]);
        if cookie != MAGIC {
            return Err(DhcpError::BadCookie(cookie));
        }
        let mut options = Vec::new();
        let mut pos = 240;
        while pos < buf.len() {
            let code = buf[pos];
            pos += 1;
            match code {
                0 => continue, // pad
                255 => break,  // end
                _ => {
                    if pos >= buf.len() {
                        return Err(DhcpError::Truncated("option-len"));
                    }
                    let len = buf[pos] as usize;
                    pos += 1;
                    if pos + len > buf.len() {
                        return Err(DhcpError::Truncated("option-data"));
                    }
                    options.push(DhcpOption::decode(code, &buf[pos..pos + len])?);
                    pos += len;
                }
            }
        }
        Ok(DhcpMessage {
            is_reply: op == 2,
            xid: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
            secs: u16::from_be_bytes([buf[8], buf[9]]),
            broadcast: u16::from_be_bytes([buf[10], buf[11]]) & 0x8000 != 0,
            ciaddr: Ipv4Addr::new(buf[12], buf[13], buf[14], buf[15]),
            yiaddr: Ipv4Addr::new(buf[16], buf[17], buf[18], buf[19]),
            siaddr: Ipv4Addr::new(buf[20], buf[21], buf[22], buf[23]),
            giaddr: Ipv4Addr::new(buf[24], buf[25], buf[26], buf[27]),
            chaddr: MacAddr::decode(&buf[28..34]).map_err(|_| DhcpError::Truncated("chaddr"))?,
            options,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac() -> MacAddr {
        MacAddr::new([0x00, 0x00, 0x59, 0xaa, 0xc6, 0xa3])
    }

    fn discover_with_108() -> DhcpMessage {
        let mut m = DhcpMessage::client(DhcpMessageType::Discover, 0xdead_beef, mac());
        m.options.push(DhcpOption::ParameterRequestList(vec![
            1, 3, 6, 15, 108, 114,
        ]));
        m.options.push(DhcpOption::HostName("macbook".into()));
        m
    }

    #[test]
    fn discover_roundtrip() {
        let m = discover_with_108();
        let decoded = DhcpMessage::decode(&m.encode()).unwrap();
        assert_eq!(decoded, m);
        assert!(decoded.requests_v6only());
        assert_eq!(decoded.message_type(), Some(DhcpMessageType::Discover));
    }

    #[test]
    fn offer_with_108_roundtrip() {
        let req = discover_with_108();
        let mut offer = DhcpMessage::reply(DhcpMessageType::Offer, &req);
        offer.yiaddr = "192.168.12.60".parse().unwrap();
        offer
            .options
            .push(DhcpOption::ServerId("192.168.12.251".parse().unwrap()));
        offer
            .options
            .push(DhcpOption::SubnetMask("255.255.255.0".parse().unwrap()));
        offer
            .options
            .push(DhcpOption::Router(vec!["192.168.12.1".parse().unwrap()]));
        offer
            .options
            .push(DhcpOption::DnsServers(vec!["192.168.12.250"
                .parse()
                .unwrap()]));
        offer.options.push(DhcpOption::LeaseTime(3600));
        offer.options.push(DhcpOption::V6OnlyPreferred(1800));
        offer
            .options
            .push(DhcpOption::DomainName("rfc8925.com".into()));
        offer.options.push(DhcpOption::CaptivePortal(
            "https://portal.rfc8925.com/why-no-internet".into(),
        ));
        let decoded = DhcpMessage::decode(&offer.encode()).unwrap();
        assert_eq!(decoded, offer);
        assert_eq!(decoded.v6only_wait(), Some(1800));
        assert_eq!(
            decoded.dns_servers(),
            vec!["192.168.12.250".parse::<Ipv4Addr>().unwrap()]
        );
    }

    #[test]
    fn no_108_in_prl_means_unsupported() {
        let mut m = DhcpMessage::client(DhcpMessageType::Discover, 1, mac());
        m.options
            .push(DhcpOption::ParameterRequestList(vec![1, 3, 6, 15]));
        assert!(!m.requests_v6only());
        assert_eq!(m.v6only_wait(), None);
    }

    #[test]
    fn bad_cookie_rejected() {
        let mut bytes = discover_with_108().encode();
        bytes[236] = 0;
        assert!(matches!(
            DhcpMessage::decode(&bytes),
            Err(DhcpError::BadCookie(_))
        ));
    }

    #[test]
    fn truncated_rejected() {
        let bytes = discover_with_108().encode();
        assert!(DhcpMessage::decode(&bytes[..239]).is_err());
    }

    #[test]
    fn pad_options_skipped() {
        let mut bytes = DhcpMessage::client(DhcpMessageType::Discover, 2, mac()).encode();
        // Insert pads before END: remove END, add pads, re-add END.
        assert_eq!(bytes.pop(), Some(255));
        bytes.extend_from_slice(&[0, 0, 0, 255]);
        let decoded = DhcpMessage::decode(&bytes).unwrap();
        assert_eq!(decoded.message_type(), Some(DhcpMessageType::Discover));
    }

    #[test]
    fn server_message_classification() {
        assert!(DhcpMessageType::Offer.is_server_message());
        assert!(DhcpMessageType::Ack.is_server_message());
        assert!(DhcpMessageType::Nak.is_server_message());
        assert!(!DhcpMessageType::Discover.is_server_message());
        assert!(!DhcpMessageType::Request.is_server_message());
    }

    #[test]
    fn unknown_option_preserved() {
        let mut m = DhcpMessage::client(DhcpMessageType::Inform, 3, mac());
        m.options.push(DhcpOption::Other(43, vec![9, 9, 9]));
        let decoded = DhcpMessage::decode(&m.encode()).unwrap();
        assert_eq!(
            decoded.option(43),
            Some(&DhcpOption::Other(43, vec![9, 9, 9]))
        );
    }
}
