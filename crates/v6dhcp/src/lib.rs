//! # v6dhcp — DHCPv4 with RFC 8925 for the sc24v6 testbed
//!
//! * RFC 2131 message codec with the option set the testbed uses, most
//!   importantly **option 108, IPv6-Only Preferred** (RFC 8925) — the
//!   mechanism that lets capable clients shut their IPv4 stack off ([`codec`])
//! * a DHCPv4 server with a lease pool and per-pool option configuration
//!   ([`server`])
//! * a DHCPv4 client state machine including the RFC 8925 `V6ONLY_WAIT`
//!   behaviour ([`client`])
//! * the managed switch's DHCPv4 snooping filter, used in the paper to block
//!   the 5G gateway's unkillable built-in pool ([`snoop`])

#![warn(missing_docs)]

pub mod client;
pub mod codec;
pub mod server;
pub mod snoop;

pub use client::{ClientEvent, ClientState, DhcpClient};
pub use codec::{DhcpMessage, DhcpMessageType, DhcpOption};
pub use server::{DhcpServer, ServerConfig};
pub use snoop::DhcpSnoop;
