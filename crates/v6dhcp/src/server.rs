//! A DHCPv4 server: address pool, lease database, and RFC 8925 option 108
//! handling ("the built-in DHCPv4 server was not capable of defining option
//! 108" is exactly the 5G-gateway defect the Raspberry Pi server fixes).

use crate::codec::{DhcpMessage, DhcpMessageType, DhcpOption};
use std::net::Ipv4Addr;
use v6addr::prefix::Ipv4Prefix;
use v6wire::fasthash::FastMap;
use v6wire::mac::MacAddr;

/// Static configuration of a DHCPv4 server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Server identifier (its own address).
    pub server_id: Ipv4Addr,
    /// Subnet being served.
    pub subnet: Ipv4Prefix,
    /// First..=last host numbers handed out.
    pub range: (u32, u32),
    /// Default router (option 3).
    pub router: Option<Ipv4Addr>,
    /// DNS resolvers (option 6) — point this at the poisoned server to arm
    /// the intervention.
    pub dns: Vec<Ipv4Addr>,
    /// Domain name (option 15).
    pub domain: Option<String>,
    /// Lease duration in seconds (option 51).
    pub lease_time: u32,
    /// RFC 8925: `Some(V6ONLY_WAIT)` enables option 108 for clients that
    /// request it; `None` disables (the 5G gateway's limitation).
    pub v6only_wait: Option<u32>,
    /// Service-account MACs that must retain IPv4 (paper §IV: "Service
    /// accounts will be created and tightly controlled for devices which
    /// must retain IPv4-only support on Argonne-Auth"). Exempt devices
    /// never receive option 108 even when they request it.
    pub v6only_exempt: std::collections::HashSet<MacAddr>,
    /// RFC 8910 captive-portal URI (option 114).
    pub captive_portal: Option<String>,
}

impl ServerConfig {
    /// The testbed's Raspberry Pi DHCP server from Fig. 4:
    /// 192.168.12.0/24, option 108 enabled, DNS pointed at the poisoned
    /// resolver.
    pub fn testbed(poisoned_dns: Ipv4Addr) -> ServerConfig {
        ServerConfig {
            server_id: "192.168.12.251".parse().expect("static ip"),
            subnet: "192.168.12.0/24".parse().expect("static prefix"),
            range: (20, 240),
            router: Some("192.168.12.1".parse().expect("static ip")),
            dns: vec![poisoned_dns],
            domain: Some("rfc8925.com".into()),
            lease_time: 3600,
            v6only_wait: Some(1800),
            v6only_exempt: std::collections::HashSet::new(),
            captive_portal: None,
        }
    }
}

/// A live lease.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    /// Assigned address.
    pub ip: Ipv4Addr,
    /// Absolute expiry (simulation seconds).
    pub expires: u64,
}

/// The server.
#[derive(Debug)]
pub struct DhcpServer {
    /// Configuration (mutable so experiments can flip option 108 on/off).
    pub config: ServerConfig,
    leases: FastMap<MacAddr, Lease>,
    /// Count of OFFERs carrying option 108, for the census.
    pub offers_with_108: u64,
    /// Count of OFFERs without option 108.
    pub offers_plain: u64,
}

impl DhcpServer {
    /// Create from config.
    pub fn new(config: ServerConfig) -> DhcpServer {
        DhcpServer {
            config,
            leases: FastMap::default(),
            offers_with_108: 0,
            offers_plain: 0,
        }
    }

    /// Restore the post-construction state: lease database flushed,
    /// OFFER counters zeroed. `config` is untouched — the warm-cell
    /// arena swaps it separately when the cell's policy differs.
    pub fn reset(&mut self) {
        self.leases.clear();
        self.offers_with_108 = 0;
        self.offers_plain = 0;
    }

    /// Current lease for `mac`, if unexpired.
    pub fn lease_for(&self, mac: MacAddr, now: u64) -> Option<Lease> {
        self.leases.get(&mac).copied().filter(|l| l.expires > now)
    }

    /// Number of live leases.
    pub fn live_leases(&self, now: u64) -> usize {
        self.leases.values().filter(|l| l.expires > now).count()
    }

    fn pick_address(&mut self, mac: MacAddr, now: u64) -> Option<Ipv4Addr> {
        if let Some(l) = self.lease_for(mac, now) {
            return Some(l.ip);
        }
        let in_use: std::collections::HashSet<Ipv4Addr> = self
            .leases
            .values()
            .filter(|l| l.expires > now)
            .map(|l| l.ip)
            .collect();
        let (lo, hi) = self.config.range;
        (lo..=hi)
            .map(|n| self.config.subnet.host(n))
            .find(|ip| !in_use.contains(ip) && *ip != self.config.server_id)
    }

    fn common_options(&self, reply: &mut DhcpMessage, client_gets_108: bool) {
        reply
            .options
            .push(DhcpOption::ServerId(self.config.server_id));
        reply
            .options
            .push(DhcpOption::LeaseTime(self.config.lease_time));
        let mask_bits = self.config.subnet.len();
        let mask = if mask_bits == 0 {
            Ipv4Addr::UNSPECIFIED
        } else {
            Ipv4Addr::from(u32::MAX << (32 - u32::from(mask_bits)))
        };
        reply.options.push(DhcpOption::SubnetMask(mask));
        if let Some(r) = self.config.router {
            reply.options.push(DhcpOption::Router(vec![r]));
        }
        if !self.config.dns.is_empty() {
            reply
                .options
                .push(DhcpOption::DnsServers(self.config.dns.clone()));
        }
        if let Some(d) = &self.config.domain {
            reply.options.push(DhcpOption::DomainName(d.clone()));
        }
        if let Some(url) = &self.config.captive_portal {
            reply.options.push(DhcpOption::CaptivePortal(url.clone()));
        }
        if client_gets_108 {
            if let Some(wait) = self.config.v6only_wait {
                reply.options.push(DhcpOption::V6OnlyPreferred(wait));
            }
        }
    }

    /// Process one client message; `now` in simulation seconds. Returns the
    /// reply to transmit, if any.
    pub fn handle(&mut self, msg: &DhcpMessage, now: u64) -> Option<DhcpMessage> {
        let mt = msg.message_type()?;
        // RFC 8925 §3.3: the server sends option 108 only when the client
        // listed it in its parameter request list — and AAA-exempt service
        // accounts never get it (paper §IV).
        let client_gets_108 = msg.requests_v6only()
            && self.config.v6only_wait.is_some()
            && !self.config.v6only_exempt.contains(&msg.chaddr);
        match mt {
            DhcpMessageType::Discover => {
                let ip = self.pick_address(msg.chaddr, now)?; // pool exhausted → silence
                let mut offer = DhcpMessage::reply(DhcpMessageType::Offer, msg);
                offer.yiaddr = ip;
                self.common_options(&mut offer, client_gets_108);
                if client_gets_108 {
                    self.offers_with_108 += 1;
                } else {
                    self.offers_plain += 1;
                }
                Some(offer)
            }
            DhcpMessageType::Request => {
                let requested = msg
                    .option(50)
                    .and_then(|o| match o {
                        DhcpOption::RequestedIp(ip) => Some(*ip),
                        _ => None,
                    })
                    .or_else(|| {
                        if msg.ciaddr.is_unspecified() {
                            None
                        } else {
                            Some(msg.ciaddr)
                        }
                    })?;
                // Verify the address is ours and either free or already his.
                let ours = self.config.subnet.contains(requested);
                let owner_ok = self
                    .leases
                    .iter()
                    .all(|(m, l)| *m == msg.chaddr || l.ip != requested || l.expires <= now);
                if !ours || !owner_ok {
                    return Some(DhcpMessage::reply(DhcpMessageType::Nak, msg));
                }
                self.leases.insert(
                    msg.chaddr,
                    Lease {
                        ip: requested,
                        expires: now + u64::from(self.config.lease_time),
                    },
                );
                let mut ack = DhcpMessage::reply(DhcpMessageType::Ack, msg);
                ack.yiaddr = requested;
                self.common_options(&mut ack, client_gets_108);
                Some(ack)
            }
            DhcpMessageType::Release | DhcpMessageType::Decline => {
                self.leases.remove(&msg.chaddr);
                None
            }
            DhcpMessageType::Inform => {
                let mut ack = DhcpMessage::reply(DhcpMessageType::Ack, msg);
                self.common_options(&mut ack, client_gets_108);
                Some(ack)
            }
            // Server-originated types arriving here are bogus.
            DhcpMessageType::Offer | DhcpMessageType::Ack | DhcpMessageType::Nak => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(n: u8) -> MacAddr {
        MacAddr::new([2, 0, 0, 0, 0, n])
    }

    fn server() -> DhcpServer {
        DhcpServer::new(ServerConfig::testbed("192.168.12.250".parse().unwrap()))
    }

    fn discover(m: MacAddr, with_108: bool) -> DhcpMessage {
        let mut d = DhcpMessage::client(DhcpMessageType::Discover, 7, m);
        let mut prl = vec![1, 3, 6, 15];
        if with_108 {
            prl.push(108);
        }
        d.options.push(DhcpOption::ParameterRequestList(prl));
        d
    }

    fn request_for(m: MacAddr, ip: Ipv4Addr) -> DhcpMessage {
        let mut r = DhcpMessage::client(DhcpMessageType::Request, 8, m);
        r.options.push(DhcpOption::RequestedIp(ip));
        r
    }

    fn request_for_108(m: MacAddr, ip: Ipv4Addr) -> DhcpMessage {
        let mut r = request_for(m, ip);
        r.options
            .push(DhcpOption::ParameterRequestList(vec![1, 3, 6, 15, 108]));
        r
    }

    #[test]
    fn dora_with_option_108() {
        let mut s = server();
        let offer = s.handle(&discover(mac(1), true), 0).unwrap();
        assert_eq!(offer.message_type(), Some(DhcpMessageType::Offer));
        assert_eq!(offer.v6only_wait(), Some(1800), "RFC8925 client gets 108");
        let ack = s.handle(&request_for_108(mac(1), offer.yiaddr), 1).unwrap();
        assert_eq!(ack.message_type(), Some(DhcpMessageType::Ack));
        assert_eq!(ack.v6only_wait(), Some(1800));
        assert_eq!(s.lease_for(mac(1), 2).unwrap().ip, offer.yiaddr);
    }

    #[test]
    fn legacy_client_gets_no_108() {
        // RFC 8925 §3.3: never volunteer option 108 to clients that didn't ask.
        let mut s = server();
        let offer = s.handle(&discover(mac(2), false), 0).unwrap();
        assert_eq!(offer.v6only_wait(), None);
        assert_eq!(
            offer.dns_servers(),
            vec!["192.168.12.250".parse::<Ipv4Addr>().unwrap()]
        );
        assert_eq!((s.offers_with_108, s.offers_plain), (0, 1));
    }

    #[test]
    fn server_without_108_support_never_sends_it() {
        // The 5G gateway's built-in server.
        let mut cfg = ServerConfig::testbed("192.168.12.250".parse().unwrap());
        cfg.v6only_wait = None;
        let mut s = DhcpServer::new(cfg);
        let offer = s.handle(&discover(mac(3), true), 0).unwrap();
        assert_eq!(offer.v6only_wait(), None);
    }

    #[test]
    fn stable_reoffer_same_address() {
        let mut s = server();
        let o1 = s.handle(&discover(mac(4), true), 0).unwrap();
        let _ = s.handle(&request_for(mac(4), o1.yiaddr), 1).unwrap();
        let o2 = s.handle(&discover(mac(4), true), 100).unwrap();
        assert_eq!(o1.yiaddr, o2.yiaddr, "existing lease reoffered");
    }

    #[test]
    fn conflicting_request_nakked() {
        let mut s = server();
        let o1 = s.handle(&discover(mac(5), true), 0).unwrap();
        s.handle(&request_for(mac(5), o1.yiaddr), 0).unwrap();
        let nak = s.handle(&request_for(mac(6), o1.yiaddr), 1).unwrap();
        assert_eq!(nak.message_type(), Some(DhcpMessageType::Nak));
        // Off-subnet request also NAKked.
        let nak2 = s
            .handle(&request_for(mac(7), "10.9.9.9".parse().unwrap()), 1)
            .unwrap();
        assert_eq!(nak2.message_type(), Some(DhcpMessageType::Nak));
    }

    #[test]
    fn pool_exhaustion_goes_silent() {
        // Paper §II: divisions exhaust their /24 wireless pools.
        let mut cfg = ServerConfig::testbed("192.168.12.250".parse().unwrap());
        cfg.range = (20, 22); // three addresses
        let mut s = DhcpServer::new(cfg);
        for i in 0..3u8 {
            let o = s.handle(&discover(mac(10 + i), false), 0).unwrap();
            s.handle(&request_for(mac(10 + i), o.yiaddr), 0).unwrap();
        }
        assert!(s.handle(&discover(mac(99), false), 0).is_none());
        // After expiry the pool frees up.
        assert!(s.handle(&discover(mac(99), false), 4000).is_some());
    }

    #[test]
    fn release_frees_address() {
        let mut s = server();
        let o = s.handle(&discover(mac(20), false), 0).unwrap();
        s.handle(&request_for(mac(20), o.yiaddr), 0).unwrap();
        assert_eq!(s.live_leases(1), 1);
        let rel = DhcpMessage::client(DhcpMessageType::Release, 9, mac(20));
        assert!(s.handle(&rel, 2).is_none());
        assert_eq!(s.live_leases(3), 0);
    }

    #[test]
    fn captive_portal_option_delivered() {
        let mut cfg = ServerConfig::testbed("192.168.12.250".parse().unwrap());
        cfg.captive_portal = Some("https://portal.rfc8925.com/explain".into());
        let mut s = DhcpServer::new(cfg);
        let offer = s.handle(&discover(mac(30), false), 0).unwrap();
        assert!(matches!(
            offer.option(114),
            Some(DhcpOption::CaptivePortal(u)) if u.contains("explain")
        ));
    }

    #[test]
    fn inform_gets_config_without_lease() {
        let mut s = server();
        let inform = DhcpMessage::client(DhcpMessageType::Inform, 5, mac(40));
        let ack = s.handle(&inform, 0).unwrap();
        assert_eq!(ack.message_type(), Some(DhcpMessageType::Ack));
        assert!(ack.yiaddr.is_unspecified());
        assert_eq!(s.live_leases(1), 0);
    }
}
