//! DHCPv4 snooping — the managed-switch feature the paper used to silence
//! the 5G gateway's unkillable built-in DHCP pool: "DHCPv4 snooping was
//! configured on the managed switch to block the 5G mobile Internet
//! gateway's DHCPv4 pool, and a Raspberry Pi DHCP server was utilized to
//! support DHCPv4 option 108" (§IV.A).

use crate::codec::{DhcpMessage, DhcpMessageType};
use std::collections::HashSet;

/// A switch port identifier.
pub type PortId = u32;

/// Why a message was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnoopVerdict {
    /// Forwarded.
    Permit,
    /// Server message arrived on an untrusted port.
    DropUntrustedServer,
}

/// Per-switch DHCP snooping state.
#[derive(Debug, Default)]
pub struct DhcpSnoop {
    trusted: HashSet<PortId>,
    /// Messages dropped, per the switch's counters.
    pub dropped: u64,
    /// Messages permitted.
    pub permitted: u64,
}

impl DhcpSnoop {
    /// Snooping with no trusted ports (drops *all* server traffic).
    pub fn new() -> DhcpSnoop {
        DhcpSnoop::default()
    }

    /// Mark `port` as trusted (where the legitimate server lives).
    pub fn trust(&mut self, port: PortId) -> &mut Self {
        self.trusted.insert(port);
        self
    }

    /// Un-trust a port.
    pub fn untrust(&mut self, port: PortId) -> &mut Self {
        self.trusted.remove(&port);
        self
    }

    /// Is `port` trusted?
    pub fn is_trusted(&self, port: PortId) -> bool {
        self.trusted.contains(&port)
    }

    /// Zero the drop/permit counters; the trusted-port set is
    /// configuration and survives (warm-cell arena reuse).
    pub fn reset(&mut self) {
        self.dropped = 0;
        self.permitted = 0;
    }

    /// Judge one DHCP message arriving on `ingress`.
    pub fn inspect(&mut self, ingress: PortId, msg: &DhcpMessage) -> SnoopVerdict {
        let is_server_msg = msg.is_reply
            || msg
                .message_type()
                .is_some_and(DhcpMessageType::is_server_message);
        if is_server_msg && !self.trusted.contains(&ingress) {
            self.dropped += 1;
            SnoopVerdict::DropUntrustedServer
        } else {
            self.permitted += 1;
            SnoopVerdict::Permit
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6wire::mac::MacAddr;

    fn mac() -> MacAddr {
        MacAddr::new([2, 0, 0, 0, 2, 1])
    }

    const GATEWAY_PORT: PortId = 1;
    const PI_PORT: PortId = 2;
    const CLIENT_PORT: PortId = 3;

    fn testbed_snoop() -> DhcpSnoop {
        // Fig. 4 topology: trust only the Raspberry Pi's port.
        let mut s = DhcpSnoop::new();
        s.trust(PI_PORT);
        s
    }

    #[test]
    fn gateway_offer_blocked_pi_offer_allowed() {
        let mut s = testbed_snoop();
        let req = DhcpMessage::client(DhcpMessageType::Discover, 1, mac());
        let offer = DhcpMessage::reply(DhcpMessageType::Offer, &req);
        assert_eq!(
            s.inspect(GATEWAY_PORT, &offer),
            SnoopVerdict::DropUntrustedServer,
            "the 5G gateway's pool must be silenced"
        );
        assert_eq!(s.inspect(PI_PORT, &offer), SnoopVerdict::Permit);
        assert_eq!((s.dropped, s.permitted), (1, 1));
    }

    #[test]
    fn client_messages_flow_from_any_port() {
        let mut s = testbed_snoop();
        for mt in [
            DhcpMessageType::Discover,
            DhcpMessageType::Request,
            DhcpMessageType::Release,
            DhcpMessageType::Inform,
        ] {
            let msg = DhcpMessage::client(mt, 2, mac());
            assert_eq!(s.inspect(CLIENT_PORT, &msg), SnoopVerdict::Permit, "{mt:?}");
        }
    }

    #[test]
    fn rogue_ack_and_nak_blocked() {
        let mut s = testbed_snoop();
        let req = DhcpMessage::client(DhcpMessageType::Request, 3, mac());
        for mt in [DhcpMessageType::Ack, DhcpMessageType::Nak] {
            let reply = DhcpMessage::reply(mt, &req);
            assert_eq!(
                s.inspect(CLIENT_PORT, &reply),
                SnoopVerdict::DropUntrustedServer
            );
        }
    }

    #[test]
    fn trust_is_revocable() {
        let mut s = testbed_snoop();
        s.untrust(PI_PORT);
        let req = DhcpMessage::client(DhcpMessageType::Discover, 4, mac());
        let offer = DhcpMessage::reply(DhcpMessageType::Offer, &req);
        assert_eq!(
            s.inspect(PI_PORT, &offer),
            SnoopVerdict::DropUntrustedServer
        );
        assert!(!s.is_trusted(PI_PORT));
    }
}
