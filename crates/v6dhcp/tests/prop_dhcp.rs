//! Property-based tests for DHCPv4: codec round-trips with arbitrary option
//! mixtures, and server-pool invariants (no double allocation, option 108
//! only on request).

use proptest::prelude::*;
use std::net::Ipv4Addr;
use v6dhcp::client::{ClientEvent, DhcpClient};
use v6dhcp::codec::{DhcpMessage, DhcpMessageType, DhcpOption};
use v6dhcp::server::{DhcpServer, ServerConfig};
use v6wire::mac::MacAddr;

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr::new)
}

fn arb_v4() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

fn arb_option() -> impl Strategy<Value = DhcpOption> {
    prop_oneof![
        arb_v4().prop_map(DhcpOption::SubnetMask),
        proptest::collection::vec(arb_v4(), 1..4).prop_map(DhcpOption::Router),
        proptest::collection::vec(arb_v4(), 1..4).prop_map(DhcpOption::DnsServers),
        "[a-z0-9.-]{1,40}".prop_map(DhcpOption::HostName),
        "[a-z0-9.-]{1,40}".prop_map(DhcpOption::DomainName),
        arb_v4().prop_map(DhcpOption::RequestedIp),
        any::<u32>().prop_map(DhcpOption::LeaseTime),
        arb_v4().prop_map(DhcpOption::ServerId),
        proptest::collection::vec(any::<u8>(), 1..16).prop_map(DhcpOption::ParameterRequestList),
        any::<u32>().prop_map(DhcpOption::V6OnlyPreferred),
        "[ -~]{1,60}".prop_map(DhcpOption::CaptivePortal),
        (160u8..250, proptest::collection::vec(any::<u8>(), 0..32))
            .prop_map(|(c, d)| DhcpOption::Other(c, d)),
    ]
}

proptest! {
    #[test]
    fn message_roundtrip(
        xid in any::<u32>(),
        mac in arb_mac(),
        is_reply in any::<bool>(),
        secs in any::<u16>(),
        broadcast in any::<bool>(),
        yiaddr in arb_v4(),
        options in proptest::collection::vec(arb_option(), 0..8),
        mt in 1u8..=8,
    ) {
        let mut m = DhcpMessage::client(
            DhcpMessageType::Discover, // replaced below
            xid,
            mac,
        );
        m.options.clear();
        m.options.push(DhcpOption::MessageType(match mt {
            1 => DhcpMessageType::Discover,
            2 => DhcpMessageType::Offer,
            3 => DhcpMessageType::Request,
            4 => DhcpMessageType::Decline,
            5 => DhcpMessageType::Ack,
            6 => DhcpMessageType::Nak,
            7 => DhcpMessageType::Release,
            _ => DhcpMessageType::Inform,
        }));
        m.options.extend(options);
        m.is_reply = is_reply;
        m.secs = secs;
        m.broadcast = broadcast;
        m.yiaddr = yiaddr;
        prop_assert_eq!(DhcpMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = DhcpMessage::decode(&bytes);
    }

    /// No two concurrent clients ever receive the same address, regardless
    /// of arrival order, and option 108 appears exactly for requesters.
    #[test]
    fn server_pool_no_double_allocation(
        macs in proptest::collection::hash_set(any::<[u8; 6]>(), 2..12),
        with_108 in any::<bool>(),
    ) {
        let mut server = DhcpServer::new(ServerConfig::testbed(
            "192.168.12.250".parse().unwrap(),
        ));
        let mut assigned = std::collections::HashSet::new();
        for m in macs {
            let mac = MacAddr::new(m);
            let mut client = DhcpClient::new(mac, with_108);
            let mut ev = client.start(0);
            let mut got: Option<Ipv4Addr> = None;
            for _ in 0..6 {
                match ev {
                    ClientEvent::Send(msg) => match server.handle(&msg, 0) {
                        Some(reply) => {
                            if reply.message_type() == Some(DhcpMessageType::Offer)
                                || reply.message_type() == Some(DhcpMessageType::Ack)
                            {
                                // Option 108 only for capable clients.
                                prop_assert_eq!(
                                    reply.v6only_wait().is_some(),
                                    with_108,
                                    "108 presence must track the PRL"
                                );
                            }
                            ev = client.receive(&reply, 0);
                        }
                        None => break,
                    },
                    ClientEvent::Configured { ip, .. } => {
                        got = Some(ip);
                        break;
                    }
                    ClientEvent::V6OnlyMode { .. } => break,
                    ClientEvent::Idle => break,
                }
            }
            if let Some(ip) = got {
                prop_assert!(!with_108, "capable clients must not bind");
                prop_assert!(assigned.insert(ip), "address {ip} double-allocated");
            }
        }
    }

    /// A lease, once expired, is reusable; before expiry it is not.
    #[test]
    fn lease_expiry_boundary(lease_time in 60u32..7200) {
        let mut cfg = ServerConfig::testbed("192.168.12.250".parse().unwrap());
        cfg.lease_time = lease_time;
        cfg.range = (20, 20); // single address
        let mut server = DhcpServer::new(cfg);
        let m1 = MacAddr::new([2, 0, 0, 0, 0, 1]);
        let m2 = MacAddr::new([2, 0, 0, 0, 0, 2]);
        // m1 takes the only address.
        let mut d = DhcpMessage::client(DhcpMessageType::Discover, 1, m1);
        d.options.push(DhcpOption::ParameterRequestList(vec![1, 3, 6]));
        let offer = server.handle(&d, 0).unwrap();
        let mut r = DhcpMessage::client(DhcpMessageType::Request, 1, m1);
        r.options.push(DhcpOption::RequestedIp(offer.yiaddr));
        server.handle(&r, 0).unwrap();
        // m2 cannot get an address until the lease expires.
        let d2 = DhcpMessage::client(DhcpMessageType::Discover, 2, m2);
        prop_assert!(server.handle(&d2, u64::from(lease_time) - 1).is_none());
        prop_assert!(server.handle(&d2, u64::from(lease_time) + 1).is_some());
    }
}
