//! RFC 1035 message wire format with name compression.

use crate::name::DnsName;
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};
use v6wire::fasthash::FastMap;

/// Decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DnsError {
    /// Ran out of bytes decoding `what`.
    Truncated(&'static str),
    /// A compression pointer loops or points forward.
    BadPointer(usize),
    /// A field had an unusable value.
    BadField(&'static str, u64),
}

impl fmt::Display for DnsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnsError::Truncated(w) => write!(f, "dns: truncated {w}"),
            DnsError::BadPointer(p) => write!(f, "dns: bad compression pointer {p}"),
            DnsError::BadField(w, v) => write!(f, "dns: bad {w} value {v}"),
        }
    }
}

impl std::error::Error for DnsError {}

/// Record/query types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RType {
    /// IPv4 address.
    A,
    /// Name server.
    Ns,
    /// Canonical name.
    Cname,
    /// Start of authority.
    Soa,
    /// Pointer (reverse DNS).
    Ptr,
    /// Mail exchanger.
    Mx,
    /// Text.
    Txt,
    /// IPv6 address.
    Aaaa,
    /// EDNS0 pseudo-record.
    Opt,
    /// Any (query only).
    Any,
    /// Unrecognized type, kept verbatim.
    Other(u16),
}

impl RType {
    /// Wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            RType::A => 1,
            RType::Ns => 2,
            RType::Cname => 5,
            RType::Soa => 6,
            RType::Ptr => 12,
            RType::Mx => 15,
            RType::Txt => 16,
            RType::Aaaa => 28,
            RType::Opt => 41,
            RType::Any => 255,
            RType::Other(v) => v,
        }
    }

    /// From wire value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => RType::A,
            2 => RType::Ns,
            5 => RType::Cname,
            6 => RType::Soa,
            12 => RType::Ptr,
            15 => RType::Mx,
            16 => RType::Txt,
            28 => RType::Aaaa,
            41 => RType::Opt,
            255 => RType::Any,
            other => RType::Other(other),
        }
    }
}

/// Response codes (RFC 1035 §4.1.1 + common extensions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rcode {
    /// No error.
    NoError,
    /// Format error.
    FormErr,
    /// Server failure.
    ServFail,
    /// Name does not exist.
    NxDomain,
    /// Not implemented.
    NotImp,
    /// Refused.
    Refused,
    /// Anything else.
    Other(u8),
}

impl Rcode {
    fn to_u8(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Other(v) => v,
        }
    }

    pub(crate) fn from_u8(v: u8) -> Self {
        match v {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Other(other),
        }
    }
}

/// Record data for the types the testbed serves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RData {
    /// A record.
    A(Ipv4Addr),
    /// AAAA record.
    Aaaa(Ipv6Addr),
    /// CNAME.
    Cname(DnsName),
    /// NS.
    Ns(DnsName),
    /// PTR.
    Ptr(DnsName),
    /// MX.
    Mx {
        /// Preference.
        preference: u16,
        /// Exchange host.
        exchange: DnsName,
    },
    /// TXT (one or more character-strings).
    Txt(Vec<String>),
    /// SOA.
    Soa {
        /// Primary name server.
        mname: DnsName,
        /// Responsible mailbox.
        rname: DnsName,
        /// Serial.
        serial: u32,
        /// Refresh interval.
        refresh: u32,
        /// Retry interval.
        retry: u32,
        /// Expire limit.
        expire: u32,
        /// Negative-caching TTL (RFC 2308 uses min(this, SOA TTL)).
        minimum: u32,
    },
    /// EDNS0 OPT pseudo-record (RFC 6891). The CLASS field carries the
    /// requestor's UDP payload size instead of IN, so it is kept
    /// structurally; the option list stays verbatim bytes and is
    /// interpreted by [`crate::edns`].
    Opt {
        /// Requestor's maximum UDP payload size (the wire CLASS field).
        payload_size: u16,
        /// The raw {code, length, data} option list.
        data: Vec<u8>,
    },
    /// Opaque data for unknown types.
    Raw(u16, Vec<u8>),
}

impl RData {
    /// The record type of this data.
    pub fn rtype(&self) -> RType {
        match self {
            RData::A(_) => RType::A,
            RData::Aaaa(_) => RType::Aaaa,
            RData::Cname(_) => RType::Cname,
            RData::Ns(_) => RType::Ns,
            RData::Ptr(_) => RType::Ptr,
            RData::Mx { .. } => RType::Mx,
            RData::Txt(_) => RType::Txt,
            RData::Soa { .. } => RType::Soa,
            RData::Opt { .. } => RType::Opt,
            RData::Raw(t, _) => RType::Other(*t),
        }
    }
}

/// A resource record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Owner name.
    pub name: DnsName,
    /// Time to live.
    pub ttl: u32,
    /// Data (type implied).
    pub data: RData,
}

impl Record {
    /// Convenience constructor.
    pub fn new(name: DnsName, ttl: u32, data: RData) -> Self {
        Record { name, ttl, data }
    }
}

/// A question.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Question {
    /// Queried name.
    pub name: DnsName,
    /// Queried type.
    pub rtype: RType,
}

impl Question {
    /// Convenience constructor.
    pub fn new(name: DnsName, rtype: RType) -> Self {
        Question { name, rtype }
    }
}

/// A complete DNS message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Transaction id.
    pub id: u16,
    /// Response flag.
    pub is_response: bool,
    /// Opcode (0 = standard query).
    pub opcode: u8,
    /// Authoritative answer.
    pub authoritative: bool,
    /// Truncation.
    pub truncated: bool,
    /// Recursion desired.
    pub recursion_desired: bool,
    /// Recursion available.
    pub recursion_available: bool,
    /// Response code.
    pub rcode: Rcode,
    /// Questions.
    pub questions: Vec<Question>,
    /// Answer records.
    pub answers: Vec<Record>,
    /// Authority records.
    pub authorities: Vec<Record>,
    /// Additional records.
    pub additionals: Vec<Record>,
}

impl Message {
    /// A recursion-desired query for one question.
    pub fn query(id: u16, question: Question) -> Message {
        Message {
            id,
            is_response: false,
            opcode: 0,
            authoritative: false,
            truncated: false,
            recursion_desired: true,
            recursion_available: false,
            rcode: Rcode::NoError,
            questions: vec![question],
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// A response skeleton mirroring `query`'s id and question.
    pub fn response_to(query: &Message, rcode: Rcode) -> Message {
        Message {
            id: query.id,
            is_response: true,
            opcode: query.opcode,
            authoritative: false,
            truncated: false,
            recursion_desired: query.recursion_desired,
            recursion_available: true,
            rcode,
            questions: query.questions.clone(),
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// All A answers.
    pub fn a_answers(&self) -> Vec<Ipv4Addr> {
        self.answers
            .iter()
            .filter_map(|r| match r.data {
                RData::A(a) => Some(a),
                _ => None,
            })
            .collect()
    }

    /// All AAAA answers.
    pub fn aaaa_answers(&self) -> Vec<Ipv6Addr> {
        self.answers
            .iter()
            .filter_map(|r| match r.data {
                RData::Aaaa(a) => Some(a),
                _ => None,
            })
            .collect()
    }

    /// Serialize to wire bytes with name compression.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128);
        let mut offsets: FastMap<&[String], u16> = FastMap::default();
        out.extend_from_slice(&self.id.to_be_bytes());
        let mut b2 = 0u8;
        if self.is_response {
            b2 |= 0x80;
        }
        b2 |= (self.opcode & 0x0f) << 3;
        if self.authoritative {
            b2 |= 0x04;
        }
        if self.truncated {
            b2 |= 0x02;
        }
        if self.recursion_desired {
            b2 |= 0x01;
        }
        out.push(b2);
        let mut b3 = 0u8;
        if self.recursion_available {
            b3 |= 0x80;
        }
        b3 |= self.rcode.to_u8() & 0x0f;
        out.push(b3);
        out.extend_from_slice(&(self.questions.len() as u16).to_be_bytes());
        out.extend_from_slice(&(self.answers.len() as u16).to_be_bytes());
        out.extend_from_slice(&(self.authorities.len() as u16).to_be_bytes());
        out.extend_from_slice(&(self.additionals.len() as u16).to_be_bytes());
        for q in &self.questions {
            encode_name(&mut out, &q.name, &mut offsets);
            out.extend_from_slice(&q.rtype.to_u16().to_be_bytes());
            out.extend_from_slice(&1u16.to_be_bytes()); // class IN
        }
        for r in self
            .answers
            .iter()
            .chain(self.authorities.iter())
            .chain(self.additionals.iter())
        {
            encode_record(&mut out, r, &mut offsets);
        }
        out
    }

    /// Parse from wire bytes.
    pub fn decode(buf: &[u8]) -> Result<Message, DnsError> {
        let mut pos = 0usize;
        let id = read_u16(buf, &mut pos)?;
        let b2 = read_u8(buf, &mut pos)?;
        let b3 = read_u8(buf, &mut pos)?;
        let qd = read_u16(buf, &mut pos)? as usize;
        let an = read_u16(buf, &mut pos)? as usize;
        let ns = read_u16(buf, &mut pos)? as usize;
        let ar = read_u16(buf, &mut pos)? as usize;
        let mut questions = Vec::with_capacity(qd);
        for _ in 0..qd {
            let name = decode_name(buf, &mut pos)?;
            let rtype = RType::from_u16(read_u16(buf, &mut pos)?);
            let _class = read_u16(buf, &mut pos)?;
            questions.push(Question { name, rtype });
        }
        let read_records = |n: usize, pos: &mut usize| -> Result<Vec<Record>, DnsError> {
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(decode_record(buf, pos)?);
            }
            Ok(out)
        };
        let answers = read_records(an, &mut pos)?;
        let authorities = read_records(ns, &mut pos)?;
        let additionals = read_records(ar, &mut pos)?;
        Ok(Message {
            id,
            is_response: b2 & 0x80 != 0,
            opcode: (b2 >> 3) & 0x0f,
            authoritative: b2 & 0x04 != 0,
            truncated: b2 & 0x02 != 0,
            recursion_desired: b2 & 0x01 != 0,
            recursion_available: b3 & 0x80 != 0,
            rcode: Rcode::from_u8(b3 & 0x0f),
            questions,
            answers,
            authorities,
            additionals,
        })
    }
}

pub(crate) fn read_u8(buf: &[u8], pos: &mut usize) -> Result<u8, DnsError> {
    let v = *buf.get(*pos).ok_or(DnsError::Truncated("u8"))?;
    *pos += 1;
    Ok(v)
}

pub(crate) fn read_u16(buf: &[u8], pos: &mut usize) -> Result<u16, DnsError> {
    if *pos + 2 > buf.len() {
        return Err(DnsError::Truncated("u16"));
    }
    let v = u16::from_be_bytes([buf[*pos], buf[*pos + 1]]);
    *pos += 2;
    Ok(v)
}

pub(crate) fn read_u32(buf: &[u8], pos: &mut usize) -> Result<u32, DnsError> {
    if *pos + 4 > buf.len() {
        return Err(DnsError::Truncated("u32"));
    }
    let v = u32::from_be_bytes([buf[*pos], buf[*pos + 1], buf[*pos + 2], buf[*pos + 3]]);
    *pos += 4;
    Ok(v)
}

/// Encode `name`, emitting a compression pointer when any suffix of it has
/// already been written (RFC 1035 §4.1.4).
///
/// The compression map is keyed by borrowed label slices: a suffix is just
/// `&labels[i..]` of a name the message already owns, so tracking it
/// allocates nothing. Because `DnsName` canonicalizes to lower case at
/// construction, slice equality is exactly DNS name equality, and the
/// first-occurrence pointer targets (hence the emitted bytes) are identical
/// to the historic owned-key implementation.
fn encode_name<'n>(out: &mut Vec<u8>, name: &'n DnsName, offsets: &mut FastMap<&'n [String], u16>) {
    let labels = name.labels();
    for i in 0..labels.len() {
        let suffix = &labels[i..];
        if let Some(&off) = offsets.get(suffix) {
            out.extend_from_slice(&(0xc000 | off).to_be_bytes());
            return;
        }
        if out.len() < 0x3fff {
            offsets.insert(suffix, out.len() as u16);
        }
        let l = labels[i].as_bytes();
        out.push(l.len() as u8);
        out.extend_from_slice(l);
    }
    out.push(0);
}

/// Decode a possibly-compressed name starting at `*pos`; leaves `*pos` just
/// past the name in the original stream.
fn decode_name(buf: &[u8], pos: &mut usize) -> Result<DnsName, DnsError> {
    let mut labels: Vec<String> = Vec::new();
    let mut cursor = *pos;
    let mut jumped = false;
    let mut end_pos = *pos;
    let mut hops = 0usize;
    loop {
        let len = *buf.get(cursor).ok_or(DnsError::Truncated("name"))? as usize;
        if len & 0xc0 == 0xc0 {
            let b2 = *buf.get(cursor + 1).ok_or(DnsError::Truncated("pointer"))? as usize;
            let target = ((len & 0x3f) << 8) | b2;
            if !jumped {
                end_pos = cursor + 2;
                jumped = true;
            }
            if target >= cursor {
                return Err(DnsError::BadPointer(target));
            }
            hops += 1;
            if hops > 64 {
                return Err(DnsError::BadPointer(target));
            }
            cursor = target;
            continue;
        }
        if len & 0xc0 != 0 {
            return Err(DnsError::BadField("label-length", len as u64));
        }
        cursor += 1;
        if len == 0 {
            if !jumped {
                end_pos = cursor;
            }
            break;
        }
        if cursor + len > buf.len() {
            return Err(DnsError::Truncated("label"));
        }
        // Labels must be ASCII: `DnsName` stores `String` labels, and a
        // non-ASCII byte would inflate under lossy UTF-8 conversion,
        // desynchronising string lengths from wire lengths (the borrowed
        // `NameRef` path checks wire lengths only). Reject at the wire
        // level so both decode paths apply the identical rule, then
        // lower-case in a single allocation per label.
        let bytes = &buf[cursor..cursor + len];
        if let Some(&bad) = bytes.iter().find(|b| !b.is_ascii()) {
            return Err(DnsError::BadField("label-byte", bad as u64));
        }
        let mut label = bytes.to_vec();
        label.make_ascii_lowercase();
        labels.push(String::from_utf8(label).expect("ascii bytes are valid utf-8"));
        cursor += len;
    }
    *pos = end_pos;
    // Label lengths were validated during the walk (1..=63 per the 0xc0
    // check); only the 255-octet total can still fail.
    DnsName::from_lowercased_labels(labels).map_err(|_| DnsError::BadField("name", 0))
}

fn encode_record<'n>(out: &mut Vec<u8>, r: &'n Record, offsets: &mut FastMap<&'n [String], u16>) {
    encode_name(out, &r.name, offsets);
    out.extend_from_slice(&r.data.rtype().to_u16().to_be_bytes());
    // The class field is IN, except for OPT where RFC 6891 repurposes it
    // as the requestor's UDP payload size.
    let class = match &r.data {
        RData::Opt { payload_size, .. } => *payload_size,
        _ => 1,
    };
    out.extend_from_slice(&class.to_be_bytes());
    out.extend_from_slice(&r.ttl.to_be_bytes());
    let len_pos = out.len();
    out.extend_from_slice(&[0, 0]);
    let data_start = out.len();
    match &r.data {
        RData::A(a) => out.extend_from_slice(&a.octets()),
        RData::Aaaa(a) => out.extend_from_slice(&a.octets()),
        RData::Cname(n) | RData::Ns(n) | RData::Ptr(n) => encode_name(out, n, offsets),
        RData::Mx {
            preference,
            exchange,
        } => {
            out.extend_from_slice(&preference.to_be_bytes());
            encode_name(out, exchange, offsets);
        }
        RData::Txt(strings) => {
            for s in strings {
                let b = s.as_bytes();
                out.push(b.len().min(255) as u8);
                out.extend_from_slice(&b[..b.len().min(255)]);
            }
        }
        RData::Soa {
            mname,
            rname,
            serial,
            refresh,
            retry,
            expire,
            minimum,
        } => {
            encode_name(out, mname, offsets);
            encode_name(out, rname, offsets);
            out.extend_from_slice(&serial.to_be_bytes());
            out.extend_from_slice(&refresh.to_be_bytes());
            out.extend_from_slice(&retry.to_be_bytes());
            out.extend_from_slice(&expire.to_be_bytes());
            out.extend_from_slice(&minimum.to_be_bytes());
        }
        RData::Opt { data, .. } => out.extend_from_slice(data),
        RData::Raw(_, data) => out.extend_from_slice(data),
    }
    let rdlen = (out.len() - data_start) as u16;
    out[len_pos..len_pos + 2].copy_from_slice(&rdlen.to_be_bytes());
}

fn decode_record(buf: &[u8], pos: &mut usize) -> Result<Record, DnsError> {
    let name = decode_name(buf, pos)?;
    let rtype = RType::from_u16(read_u16(buf, pos)?);
    let class = read_u16(buf, pos)?;
    let ttl = read_u32(buf, pos)?;
    let rdlen = read_u16(buf, pos)? as usize;
    if *pos + rdlen > buf.len() {
        return Err(DnsError::Truncated("rdata"));
    }
    let rdata_end = *pos + rdlen;
    let data = match rtype {
        RType::A => {
            if rdlen != 4 {
                return Err(DnsError::BadField("a-rdlen", rdlen as u64));
            }
            let d = RData::A(Ipv4Addr::new(
                buf[*pos],
                buf[*pos + 1],
                buf[*pos + 2],
                buf[*pos + 3],
            ));
            *pos = rdata_end;
            d
        }
        RType::Aaaa => {
            if rdlen != 16 {
                return Err(DnsError::BadField("aaaa-rdlen", rdlen as u64));
            }
            let mut o = [0u8; 16];
            o.copy_from_slice(&buf[*pos..rdata_end]);
            *pos = rdata_end;
            RData::Aaaa(Ipv6Addr::from(o))
        }
        RType::Cname => {
            let n = decode_name(buf, pos)?;
            *pos = rdata_end;
            RData::Cname(n)
        }
        RType::Ns => {
            let n = decode_name(buf, pos)?;
            *pos = rdata_end;
            RData::Ns(n)
        }
        RType::Ptr => {
            let n = decode_name(buf, pos)?;
            *pos = rdata_end;
            RData::Ptr(n)
        }
        RType::Mx => {
            let preference = read_u16(buf, pos)?;
            let exchange = decode_name(buf, pos)?;
            *pos = rdata_end;
            RData::Mx {
                preference,
                exchange,
            }
        }
        RType::Txt => {
            let mut strings = Vec::new();
            while *pos < rdata_end {
                let l = read_u8(buf, pos)? as usize;
                if *pos + l > rdata_end {
                    return Err(DnsError::Truncated("txt"));
                }
                strings.push(String::from_utf8_lossy(&buf[*pos..*pos + l]).into_owned());
                *pos += l;
            }
            RData::Txt(strings)
        }
        RType::Soa => {
            let mname = decode_name(buf, pos)?;
            let rname = decode_name(buf, pos)?;
            let serial = read_u32(buf, pos)?;
            let refresh = read_u32(buf, pos)?;
            let retry = read_u32(buf, pos)?;
            let expire = read_u32(buf, pos)?;
            let minimum = read_u32(buf, pos)?;
            *pos = rdata_end;
            RData::Soa {
                mname,
                rname,
                serial,
                refresh,
                retry,
                expire,
                minimum,
            }
        }
        RType::Opt => {
            let d = RData::Opt {
                payload_size: class,
                data: buf[*pos..rdata_end].to_vec(),
            };
            *pos = rdata_end;
            d
        }
        other => {
            let d = RData::Raw(other.to_u16(), buf[*pos..rdata_end].to_vec());
            *pos = rdata_end;
            d
        }
    };
    Ok(Record { name, ttl, data })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> DnsName {
        s.parse().unwrap()
    }

    fn soa() -> RData {
        RData::Soa {
            mname: n("ns1.rfc8925.com"),
            rname: n("hostmaster.rfc8925.com"),
            serial: 20_240_801,
            refresh: 7200,
            retry: 900,
            expire: 1209600,
            minimum: 300,
        }
    }

    #[test]
    fn query_roundtrip() {
        let q = Message::query(0x1234, Question::new(n("ip6.me"), RType::A));
        let decoded = Message::decode(&q.encode()).unwrap();
        assert_eq!(decoded, q);
    }

    #[test]
    fn response_with_all_rtypes_roundtrips() {
        let q = Message::query(7, Question::new(n("sc24.supercomputing.org"), RType::Any));
        let mut resp = Message::response_to(&q, Rcode::NoError);
        resp.authoritative = true;
        resp.answers = vec![
            Record::new(
                n("sc24.supercomputing.org"),
                300,
                RData::A("190.92.158.4".parse().unwrap()),
            ),
            Record::new(
                n("sc24.supercomputing.org"),
                300,
                RData::Aaaa("64:ff9b::be5c:9e04".parse().unwrap()),
            ),
            Record::new(
                n("www.sc24.supercomputing.org"),
                60,
                RData::Cname(n("sc24.supercomputing.org")),
            ),
            Record::new(
                n("sc24.supercomputing.org"),
                600,
                RData::Mx {
                    preference: 10,
                    exchange: n("mail.sc24.supercomputing.org"),
                },
            ),
            Record::new(
                n("sc24.supercomputing.org"),
                600,
                RData::Txt(vec!["v=spf1 -all".into()]),
            ),
        ];
        resp.authorities = vec![
            Record::new(
                n("supercomputing.org"),
                3600,
                RData::Ns(n("ns1.supercomputing.org")),
            ),
            Record::new(n("supercomputing.org"), 300, soa()),
        ];
        resp.additionals = vec![Record::new(
            n("ns1.supercomputing.org"),
            3600,
            RData::A("198.51.100.53".parse().unwrap()),
        )];
        let decoded = Message::decode(&resp.encode()).unwrap();
        assert_eq!(decoded, resp);
    }

    #[test]
    fn compression_shrinks_and_roundtrips() {
        let mut resp = Message::query(
            1,
            Question::new(n("a.very.long.domain.example.com"), RType::A),
        );
        resp.is_response = true;
        for i in 0..5 {
            resp.answers.push(Record::new(
                n("a.very.long.domain.example.com"),
                60,
                RData::A(Ipv4Addr::new(192, 0, 2, i)),
            ));
        }
        let bytes = resp.encode();
        // Five answers of the same 32-byte name must compress to pointers.
        assert!(
            bytes.len() < 12 + 36 + 5 * (2 + 10 + 4) + 20,
            "compression not effective: {} bytes",
            bytes.len()
        );
        assert_eq!(Message::decode(&bytes).unwrap(), resp);
    }

    #[test]
    fn forward_pointer_rejected() {
        // Pointer to self → must error, not loop.
        let mut bytes = Message::query(1, Question::new(n("x"), RType::A)).encode();
        // Overwrite the question name (starts at offset 12) with a pointer to
        // itself.
        bytes[12] = 0xc0;
        bytes[13] = 12;
        assert!(matches!(
            Message::decode(&bytes),
            Err(DnsError::BadPointer(_))
        ));
    }

    #[test]
    fn flags_roundtrip() {
        let mut m = Message::query(9, Question::new(n("ip6.me"), RType::Aaaa));
        m.is_response = true;
        m.authoritative = true;
        m.truncated = true;
        m.recursion_available = true;
        m.rcode = Rcode::NxDomain;
        let d = Message::decode(&m.encode()).unwrap();
        assert_eq!(d, m);
    }

    #[test]
    fn helper_accessors() {
        let q = Message::query(2, Question::new(n("ip6.me"), RType::A));
        let mut r = Message::response_to(&q, Rcode::NoError);
        r.answers.push(Record::new(
            n("ip6.me"),
            60,
            RData::A("23.153.8.71".parse().unwrap()),
        ));
        r.answers.push(Record::new(
            n("ip6.me"),
            60,
            RData::Aaaa("2001:4810:0:3::71".parse().unwrap()),
        ));
        assert_eq!(
            r.a_answers(),
            vec!["23.153.8.71".parse::<Ipv4Addr>().unwrap()]
        );
        assert_eq!(
            r.aaaa_answers(),
            vec!["2001:4810:0:3::71".parse::<Ipv6Addr>().unwrap()]
        );
    }

    #[test]
    fn truncated_input_errors() {
        let bytes = Message::query(3, Question::new(n("ip6.me"), RType::A)).encode();
        for cut in [0, 5, 11, bytes.len() - 1] {
            assert!(Message::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn opt_pseudo_record_roundtrips_payload_size() {
        // RFC 6891: CLASS carries the payload size, not IN; it must
        // survive a decode/encode cycle byte-identically.
        let mut m = Message::query(5, Question::new(n("ip6.me"), RType::A));
        m.additionals.push(Record::new(
            DnsName::root(),
            0,
            RData::Opt {
                payload_size: 1232,
                data: vec![0, 15, 0, 2, 0, 1], // EDE option, info-code 1
            },
        ));
        let bytes = m.encode();
        let decoded = Message::decode(&bytes).unwrap();
        assert_eq!(decoded, m);
        assert_eq!(decoded.encode(), bytes);
        match &decoded.additionals[0].data {
            RData::Opt { payload_size, data } => {
                assert_eq!(*payload_size, 1232);
                assert_eq!(data, &[0, 15, 0, 2, 0, 1]);
            }
            other => panic!("expected OPT, got {other:?}"),
        }
    }

    #[test]
    fn unknown_rtype_carried_raw() {
        let mut m = Message::query(4, Question::new(n("x.example"), RType::Other(99)));
        m.is_response = true;
        m.answers.push(Record::new(
            n("x.example"),
            5,
            RData::Raw(99, vec![1, 2, 3, 4, 5]),
        ));
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }
}
