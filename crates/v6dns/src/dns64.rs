//! RFC 6147 — DNS64: synthesize AAAA records from A records so IPv6-only
//! clients can reach IPv4-only services through NAT64.
//!
//! The testbed ran "a Raspberry Pi server running BIND9 DNS64 services …
//! with an address of fd00:976a::9" (paper §IV.A). This module is that
//! server's resolution logic; the poisoned variant layers
//! [`crate::poison::PoisonedResolver`] in front of the same engine.

use crate::codec::{Question, RData, RType, Rcode, Record};
use crate::server::{Answer, Resolver};
use std::net::Ipv6Addr;
use v6addr::prefix::Ipv6Prefix;
use v6addr::rfc6052::Nat64Prefix;

/// A DNS64 resolver wrapping an upstream.
///
/// ```
/// use v6dns::codec::{Question, RData, RType};
/// use v6dns::dns64::Dns64;
/// use v6dns::server::{GlobalDns, Resolver};
/// use v6dns::zone::Zone;
///
/// let mut zone = Zone::new("supercomputing.org".parse().unwrap(), 300);
/// zone.add_str("sc24", 120, RData::A("190.92.158.4".parse().unwrap()));
/// let mut g = GlobalDns::new();
/// g.add_zone(zone);
///
/// let mut dns64 = Dns64::well_known(g);
/// let ans = dns64.resolve(
///     &Question::new("sc24.supercomputing.org".parse().unwrap(), RType::Aaaa), 0);
/// assert_eq!(ans.records[0].data, RData::Aaaa("64:ff9b::be5c:9e04".parse().unwrap()));
/// ```
#[derive(Debug)]
pub struct Dns64<R> {
    upstream: R,
    prefix: Nat64Prefix,
    /// AAAA answers falling in these prefixes are treated as unusable and
    /// trigger synthesis anyway (RFC 6147 §5.1.4). Default: `::ffff:0:0/96`.
    pub exclude: Vec<Ipv6Prefix>,
    /// Count of synthesized responses, for the census.
    pub synthesized: u64,
}

impl<R: Resolver> Dns64<R> {
    /// DNS64 with the given translation prefix.
    pub fn new(upstream: R, prefix: Nat64Prefix) -> Dns64<R> {
        Dns64 {
            upstream,
            prefix,
            exclude: vec!["::ffff:0:0/96".parse().expect("static prefix")],
            synthesized: 0,
        }
    }

    /// DNS64 with the well-known prefix `64:ff9b::/96`.
    pub fn well_known(upstream: R) -> Dns64<R> {
        Self::new(upstream, Nat64Prefix::well_known())
    }

    /// The translation prefix in use.
    pub fn prefix(&self) -> Nat64Prefix {
        self.prefix
    }

    /// Access the upstream resolver.
    pub fn upstream_mut(&mut self) -> &mut R {
        &mut self.upstream
    }

    /// Zero the synthesis counter; prefix and exclude list are
    /// configuration and survive. The upstream is reset separately.
    pub fn reset(&mut self) {
        self.synthesized = 0;
    }

    fn usable(&self, a: Ipv6Addr) -> bool {
        !self.exclude.iter().any(|p| p.contains(a))
    }

    /// Synthesize an AAAA record set from an A answer (RFC 6147 §5.1.7):
    /// CNAME chain preserved, each A mapped through the prefix. The
    /// well-known prefix's global-only restriction is deliberately bypassed
    /// (`embed_unchecked`): the testbed translates lab-local space too.
    fn synthesize(&mut self, a_answer: &Answer) -> Answer {
        let mut records = Vec::with_capacity(a_answer.records.len());
        for r in &a_answer.records {
            match &r.data {
                RData::A(v4) => {
                    records.push(Record::new(
                        r.name.clone(),
                        r.ttl,
                        RData::Aaaa(self.prefix.embed_unchecked(*v4)),
                    ));
                }
                other => records.push(Record::new(r.name.clone(), r.ttl, other.clone())),
            }
        }
        self.synthesized += 1;
        Answer::positive(records)
    }
}

impl<R: Resolver> Resolver for Dns64<R> {
    fn resolve(&mut self, q: &Question, now: u64) -> Answer {
        // RFC 6147 §5.3: PTR queries for addresses under the translation
        // prefix are rewritten to the embedded IPv4 address's in-addr.arpa
        // name; the answer's owner stays the queried ip6.arpa name.
        if q.rtype == RType::Ptr {
            if let Some(addr) = crate::reverse::parse_ip6_arpa(&q.name) {
                if self.prefix.matches(addr) {
                    if let Ok(v4) = self.prefix.extract(addr) {
                        let rev = crate::reverse::in_addr_arpa_name(v4);
                        let mut ans = self.upstream.resolve(&Question::new(rev, RType::Ptr), now);
                        for r in &mut ans.records {
                            if matches!(r.data, RData::Ptr(_)) {
                                r.name = q.name.clone();
                            }
                        }
                        return ans;
                    }
                }
            }
            return self.upstream.resolve(q, now);
        }
        if q.rtype != RType::Aaaa {
            return self.upstream.resolve(q, now);
        }
        let native = self.upstream.resolve(q, now);
        let usable_aaaa = native.rcode == Rcode::NoError
            && native.records.iter().any(|r| match r.data {
                RData::Aaaa(a) => self.usable(a),
                _ => false,
            });
        if usable_aaaa {
            return native;
        }
        // No usable AAAA — try the A path. RFC 6147 synthesizes both on
        // NODATA and (configurably) on NXDOMAIN-with-A-somewhere; querying A
        // resolves the distinction naturally.
        let a_answer = self
            .upstream
            .resolve(&Question::new(q.name.clone(), RType::A), now);
        if a_answer.is_positive()
            && a_answer
                .records
                .iter()
                .any(|r| matches!(r.data, RData::A(_)))
        {
            return self.synthesize(&a_answer);
        }
        native
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::DnsName;
    use crate::server::GlobalDns;
    use crate::zone::Zone;

    fn n(s: &str) -> DnsName {
        s.parse().unwrap()
    }

    fn internet() -> GlobalDns {
        let mut g = GlobalDns::new();
        // IPv4-only service (like sc24.supercomputing.org in the paper).
        let mut sc = Zone::new(n("supercomputing.org"), 300);
        sc.add_str("sc24", 120, RData::A("190.92.158.4".parse().unwrap()));
        sc.add_str("www.sc24", 120, RData::Cname(n("sc24.supercomputing.org")));
        g.add_zone(sc);
        // Dual-stack service.
        let mut me = Zone::new(n("ip6.me"), 60);
        me.add_str("@", 60, RData::A("23.153.8.71".parse().unwrap()));
        me.add_str("@", 60, RData::Aaaa("2001:4810:0:3::71".parse().unwrap()));
        g.add_zone(me);
        // Service publishing only an unusable v4-mapped AAAA.
        let mut weird = Zone::new(n("weird.test"), 60);
        weird.add_str("@", 60, RData::Aaaa("::ffff:198.51.100.9".parse().unwrap()));
        weird.add_str("@", 60, RData::A("198.51.100.9".parse().unwrap()));
        g.add_zone(weird);
        g
    }

    #[test]
    fn synthesizes_for_v4_only_name() {
        // The paper's Fig. 7: sc24.supercomputing.org → 64:ff9b::be5c:9e04.
        let mut d = Dns64::well_known(internet());
        let a = d.resolve(&Question::new(n("sc24.supercomputing.org"), RType::Aaaa), 0);
        assert!(a.is_positive());
        assert_eq!(
            a.records[0].data,
            RData::Aaaa("64:ff9b::be5c:9e04".parse().unwrap())
        );
        assert_eq!(d.synthesized, 1);
    }

    #[test]
    fn native_aaaa_passes_through_untouched() {
        let mut d = Dns64::well_known(internet());
        let a = d.resolve(&Question::new(n("ip6.me"), RType::Aaaa), 0);
        assert!(a.is_positive());
        assert_eq!(
            a.records[0].data,
            RData::Aaaa("2001:4810:0:3::71".parse().unwrap())
        );
        assert_eq!(d.synthesized, 0);
    }

    #[test]
    fn a_queries_pass_through() {
        // DNS64 only synthesizes AAAA; the A path is untouched, which is why
        // the healthy DNS64 still "accepts IPv4 clients" (paper Fig. 7).
        let mut d = Dns64::well_known(internet());
        let a = d.resolve(&Question::new(n("ip6.me"), RType::A), 0);
        assert_eq!(a.records[0].data, RData::A("23.153.8.71".parse().unwrap()));
    }

    #[test]
    fn cname_chain_preserved_in_synthesis() {
        let mut d = Dns64::well_known(internet());
        let a = d.resolve(
            &Question::new(n("www.sc24.supercomputing.org"), RType::Aaaa),
            0,
        );
        assert!(a.is_positive());
        assert!(matches!(a.records[0].data, RData::Cname(_)));
        assert_eq!(
            a.records[1].data,
            RData::Aaaa("64:ff9b::be5c:9e04".parse().unwrap())
        );
    }

    #[test]
    fn excluded_aaaa_triggers_synthesis() {
        // RFC 6147 §5.1.4: v4-mapped AAAA answers are unusable.
        let mut d = Dns64::well_known(internet());
        let a = d.resolve(&Question::new(n("weird.test"), RType::Aaaa), 0);
        assert!(a.is_positive());
        assert_eq!(
            a.records.iter().filter(|r| matches!(r.data, RData::Aaaa(x) if x == "64:ff9b::c633:6409".parse::<Ipv6Addr>().unwrap())).count(),
            1,
            "synthesized from the A record, not the mapped AAAA"
        );
    }

    #[test]
    fn nxdomain_stays_negative() {
        let mut d = Dns64::well_known(internet());
        let a = d.resolve(&Question::new(n("missing.ip6.me"), RType::Aaaa), 0);
        assert_eq!(a.rcode, Rcode::NxDomain);
        assert_eq!(d.synthesized, 0);
    }

    #[test]
    fn custom_prefix_synthesis() {
        let p = Nat64Prefix::new("2001:db8:64::/96".parse().unwrap()).unwrap();
        let mut d = Dns64::new(internet(), p);
        let a = d.resolve(&Question::new(n("sc24.supercomputing.org"), RType::Aaaa), 0);
        assert_eq!(
            a.records[0].data,
            RData::Aaaa("2001:db8:64::be5c:9e04".parse().unwrap())
        );
    }

    #[test]
    fn ptr_of_translated_address_resolves_via_in_addr_arpa() {
        // RFC 6147 §5.3: reverse lookup of 64:ff9b::be5c:9e04 answers with
        // the IPv4 service's PTR, owner rewritten to the queried name.
        let mut g = internet();
        let mut rev = Zone::new(n("158.92.190.in-addr.arpa"), 300);
        rev.add_str("4", 300, RData::Ptr(n("sc24.supercomputing.org")));
        g.add_zone(rev);
        let mut d = Dns64::well_known(g);
        let qname = crate::reverse::ip6_arpa_name("64:ff9b::be5c:9e04".parse().unwrap());
        let ans = d.resolve(&Question::new(qname.clone(), RType::Ptr), 0);
        assert!(ans.is_positive(), "{ans:?}");
        assert_eq!(ans.records[0].name, qname, "owner is the queried name");
        assert_eq!(
            ans.records[0].data,
            RData::Ptr(n("sc24.supercomputing.org"))
        );
    }

    #[test]
    fn ptr_outside_prefix_passes_through() {
        let mut d = Dns64::well_known(internet());
        let qname = crate::reverse::ip6_arpa_name("2001:4810:0:3::71".parse().unwrap());
        let ans = d.resolve(&Question::new(qname, RType::Ptr), 0);
        // No reverse zone exists for it: plain negative pass-through.
        assert!(!ans.is_positive());
    }

    #[test]
    fn ttl_of_synthesized_follows_a_record() {
        let mut d = Dns64::well_known(internet());
        let a = d.resolve(&Question::new(n("sc24.supercomputing.org"), RType::Aaaa), 0);
        assert_eq!(a.records[0].ttl, 120);
    }
}
