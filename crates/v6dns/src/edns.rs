//! EDNS0 (RFC 6891) OPT interpretation and RFC 8914 Extended DNS Errors.
//!
//! The codec keeps OPT rdata as verbatim bytes so arbitrary wire input
//! re-emits byte-identically; this module is the semantic layer on top:
//! building OPT pseudo-records, walking the {code, length, data} option
//! list, and mapping the testbed's resolution-failure taxonomy onto EDE
//! info-codes so a resolver can tell its stub *why* resolution failed
//! instead of leaving only a timeout to observe.

use crate::codec::{Message, RData, Record};
use crate::name::DnsName;
use crate::server::ResolutionFailure;

/// Payload size a modern stub advertises (the DNS-flag-day-2020 value).
pub const DEFAULT_PAYLOAD_SIZE: u16 = 1232;

/// The pre-EDNS0 UDP message ceiling (RFC 1035 §4.2.1): responses to
/// queries without an OPT record truncate past this.
pub const CLASSIC_UDP_LIMIT: usize = 512;

/// RFC 8914 Extended DNS Error option code.
pub const OPTION_EDE: u16 = 15;

/// Private-use EDE info-code base (RFC 8914 §5.2 reserves 49152–65535).
/// The testbed's failure taxonomy lives here so it can never collide with
/// an IANA-assigned code.
pub const EDE_PRIVATE_BASE: u16 = 49152;

impl ResolutionFailure {
    /// The EDE info-code carrying this failure reason on the wire.
    pub fn ede_code(self) -> u16 {
        EDE_PRIVATE_BASE + self.index() as u16
    }

    /// Inverse of [`ResolutionFailure::ede_code`].
    pub fn from_ede_code(code: u16) -> Option<ResolutionFailure> {
        let idx = code.checked_sub(EDE_PRIVATE_BASE)? as usize;
        ResolutionFailure::ALL.get(idx).copied()
    }
}

/// Serialize an option list into OPT rdata bytes.
pub fn encode_options(options: &[(u16, Vec<u8>)]) -> Vec<u8> {
    let mut out = Vec::new();
    for (code, data) in options {
        out.extend_from_slice(&code.to_be_bytes());
        out.extend_from_slice(&(data.len() as u16).to_be_bytes());
        out.extend_from_slice(data);
    }
    out
}

/// Walk OPT rdata as {code, length, data} options. Malformed tails (a
/// length running past the rdata) end the walk; everything parsed up to
/// that point is returned, mirroring how resolvers skim unknown options.
pub fn decode_options(data: &[u8]) -> Vec<(u16, &[u8])> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos + 4 <= data.len() {
        let code = u16::from_be_bytes([data[pos], data[pos + 1]]);
        let len = u16::from_be_bytes([data[pos + 2], data[pos + 3]]) as usize;
        pos += 4;
        if pos + len > data.len() {
            break;
        }
        out.push((code, &data[pos..pos + len]));
        pos += len;
    }
    out
}

/// An OPT pseudo-record (owner = root, TTL = extended-flags = 0) carrying
/// `options`.
pub fn opt_record(payload_size: u16, options: &[(u16, Vec<u8>)]) -> Record {
    Record::new(
        DnsName::root(),
        0,
        RData::Opt {
            payload_size,
            data: encode_options(options),
        },
    )
}

/// An RFC 8914 Extended DNS Error option: 2-octet info-code plus UTF-8
/// extra text.
pub fn ede_option(info_code: u16, extra_text: &str) -> (u16, Vec<u8>) {
    let mut data = info_code.to_be_bytes().to_vec();
    data.extend_from_slice(extra_text.as_bytes());
    (OPTION_EDE, data)
}

/// The OPT record in a message's additional section, if any.
pub fn find_opt(msg: &Message) -> Option<(u16, &[u8])> {
    msg.additionals.iter().find_map(|r| match &r.data {
        RData::Opt { payload_size, data } => Some((*payload_size, data.as_slice())),
        _ => None,
    })
}

/// The UDP payload size a query advertises: its OPT class field, floored
/// at the classic 512-octet limit (RFC 6891 §6.2.3), or `None` when the
/// query carries no OPT at all.
pub fn advertised_payload_size(msg: &Message) -> Option<usize> {
    find_opt(msg).map(|(size, _)| usize::from(size).max(CLASSIC_UDP_LIMIT))
}

/// The first Extended DNS Error in a message: `(info_code, extra_text)`.
pub fn ede_of(msg: &Message) -> Option<(u16, String)> {
    let (_, data) = find_opt(msg)?;
    decode_options(data).into_iter().find_map(|(code, body)| {
        if code == OPTION_EDE && body.len() >= 2 {
            let info = u16::from_be_bytes([body[0], body[1]]);
            Some((info, String::from_utf8_lossy(&body[2..]).into_owned()))
        } else {
            None
        }
    })
}

/// The classified resolution failure a response advertises via EDE, if any.
pub fn failure_of(msg: &Message) -> Option<ResolutionFailure> {
    let (code, _) = ede_of(msg)?;
    ResolutionFailure::from_ede_code(code)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{Question, RType, Rcode};

    #[test]
    fn options_roundtrip() {
        let opts = vec![ede_option(1, "dnssec bogus"), (10, vec![1, 2, 3])];
        let bytes = encode_options(&opts);
        let walked = decode_options(&bytes);
        assert_eq!(walked.len(), 2);
        assert_eq!(walked[0].0, OPTION_EDE);
        assert_eq!(walked[1], (10, [1u8, 2, 3].as_slice()));
    }

    #[test]
    fn malformed_tail_ends_walk() {
        let mut bytes = encode_options(&[(10, vec![9])]);
        bytes.extend_from_slice(&[0, 15, 0, 99]); // claims 99 bytes, has 0
        let walked = decode_options(&bytes);
        assert_eq!(walked.len(), 1);
    }

    #[test]
    fn failure_reason_travels_in_ede() {
        let q = Message::query(1, Question::new("x.test".parse().unwrap(), RType::Aaaa));
        let mut resp = Message::response_to(&q, Rcode::ServFail);
        resp.additionals.push(opt_record(
            DEFAULT_PAYLOAD_SIZE,
            &[ede_option(
                ResolutionFailure::NoAaaaGlue.ede_code(),
                "ns1.v4only.test has no AAAA glue",
            )],
        ));
        let bytes = resp.encode();
        let decoded = Message::decode(&bytes).unwrap();
        assert_eq!(failure_of(&decoded), Some(ResolutionFailure::NoAaaaGlue));
        let (code, text) = ede_of(&decoded).unwrap();
        assert_eq!(code, EDE_PRIVATE_BASE);
        assert!(text.contains("no AAAA glue"));
    }

    #[test]
    fn every_failure_code_roundtrips() {
        for f in ResolutionFailure::ALL {
            assert_eq!(ResolutionFailure::from_ede_code(f.ede_code()), Some(f));
        }
        assert_eq!(ResolutionFailure::from_ede_code(0), None);
        assert_eq!(ResolutionFailure::from_ede_code(u16::MAX), None);
    }

    #[test]
    fn advertised_size_floors_at_classic_limit() {
        let mut q = Message::query(2, Question::new("x.test".parse().unwrap(), RType::A));
        assert_eq!(advertised_payload_size(&q), None);
        q.additionals.push(opt_record(100, &[]));
        assert_eq!(advertised_payload_size(&q), Some(CLASSIC_UDP_LIMIT));
    }
}
