//! # v6dns — DNS engine for the sc24v6 testbed
//!
//! A from-scratch DNS implementation covering everything the paper's
//! interventions need:
//!
//! * RFC 1035 wire codec with name compression ([`codec`], [`name`])
//! * authoritative zone storage with CNAME chasing and correct
//!   NXDOMAIN/NODATA distinction ([`zone`])
//! * a resolver engine with TTL caching and RFC 2308 negative caching
//!   ([`server`])
//! * RFC 6147 DNS64 AAAA synthesis ([`dns64`])
//! * the paper's IPv4 DNS interventions: dnsmasq-style wildcard A poisoning
//!   (`address=/#/23.153.8.71`) and the proposed BIND9 RPZ refinement
//!   ([`poison`])
//! * stub-resolver helpers: the DNS suffix search list behaviour that
//!   produces the paper's Figure 9 artefact ([`stub`])
//! * full delegation chains: NS cuts with (or deliberately without)
//!   A/AAAA glue, and an iterative referral walk with a classified
//!   failure taxonomy ([`zone`], [`server`])
//! * EDNS0/OPT with RFC 8914 Extended DNS Errors carrying that taxonomy
//!   stub-ward ([`edns`])
//! * an RFC 1035 §5 master-file dialect so delegation trees are authored
//!   as committed `.zone` fixtures ([`master`])

#![warn(missing_docs)]

pub mod codec;
pub mod dns64;
pub mod edns;
pub mod master;
pub mod name;
pub mod poison;
pub mod reverse;
pub mod server;
pub mod stub;
pub mod view;
pub mod zone;

pub use codec::{Message, Question, RData, RType, Rcode, Record};
pub use dns64::Dns64;
pub use name::DnsName;
pub use poison::{PoisonPolicy, PoisonedResolver};
pub use server::{CachingResolver, GlobalDns, ResolutionFailure, Resolver, ResolverTransport};
pub use view::{MessageView, NameRef, RDataRef, RecordRef};
pub use zone::{Zone, ZoneLookup};
