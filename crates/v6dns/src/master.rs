//! RFC 1035 §5 zone master files: a tokenizer, parser and canonical
//! emitter for the dialect subset the testbed uses, so delegation trees
//! are authored as committed `.zone` fixtures instead of Rust
//! constructors.
//!
//! ## Dialect
//!
//! * `;` starts a comment (outside quoted strings) running to end of line.
//! * Parentheses group a logical line across physical lines (the usual
//!   multi-line SOA idiom).
//! * Directives: `$ORIGIN <absolute-name.>` (required before the first
//!   record, may change mid-file) and `$TTL <seconds>` (default TTL for
//!   records that omit theirs).
//! * Records: `<owner> [<ttl>] [IN] <TYPE> <rdata…>`. Owners and rdata
//!   names ending in `.` are absolute; `@` means the current origin;
//!   anything else is relative to it. The only class is `IN`.
//! * Types: `SOA`, `NS`, `A`, `AAAA`, `CNAME`, `PTR`, `MX`, `TXT`
//!   (quoted strings, no escapes).
//! * The first record must be the zone's SOA, owned by the origin.
//!
//! The parser accepts that superset; [`emit`] writes one *canonical* form
//! (tab-separated fields, explicit TTLs, single-line SOA, owners relative
//! to the origin, rdata names absolute, records in owner order). Fixtures
//! committed in canonical form round-trip byte-identically:
//! `emit(parse(f)) == f`, which is what the `dns-realism` CI lane gates.

use crate::codec::{RData, RType, Record};
use crate::name::DnsName;
use crate::zone::Zone;
use std::fmt::Write as _;

/// Errors from the master-file parser and emitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MasterError {
    /// A parse error, pointing at the physical line where the logical
    /// line started.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// A record's RData has no master-file presentation (OPT, raw rdata).
    Unrepresentable {
        /// The record type that cannot be written.
        rtype: RType,
    },
}

impl core::fmt::Display for MasterError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MasterError::Syntax { line, msg } => write!(f, "zone file line {line}: {msg}"),
            MasterError::Unrepresentable { rtype } => {
                write!(f, "{rtype:?} records have no master-file form")
            }
        }
    }
}

impl std::error::Error for MasterError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Word(String),
    Quoted(String),
}

impl Token {
    fn word(&self, line: usize) -> Result<&str, MasterError> {
        match self {
            Token::Word(w) => Ok(w),
            Token::Quoted(_) => Err(syntax(line, "quoted string where a name/number belongs")),
        }
    }
}

fn syntax(line: usize, msg: impl Into<String>) -> MasterError {
    MasterError::Syntax {
        line,
        msg: msg.into(),
    }
}

/// Split `text` into logical lines of tokens: comments stripped, quoted
/// strings kept whole, parenthesized groups joined across physical lines.
fn tokenize(text: &str) -> Result<Vec<(usize, Vec<Token>)>, MasterError> {
    let mut logical: Vec<(usize, Vec<Token>)> = Vec::new();
    let mut cur: Vec<Token> = Vec::new();
    let mut cur_start = 0usize;
    let mut depth = 0usize;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        if cur.is_empty() {
            cur_start = line_no;
        }
        let mut chars = raw.chars().peekable();
        while let Some(c) = chars.next() {
            match c {
                ';' => break, // comment to end of physical line
                '(' => depth += 1,
                ')' => {
                    depth = depth
                        .checked_sub(1)
                        .ok_or_else(|| syntax(line_no, "unbalanced ')'"))?;
                }
                '"' => {
                    let mut s = String::new();
                    loop {
                        match chars.next() {
                            Some('"') => break,
                            Some(q) => s.push(q),
                            None => return Err(syntax(line_no, "unterminated quoted string")),
                        }
                    }
                    cur.push(Token::Quoted(s));
                }
                c if c.is_whitespace() => {}
                c => {
                    let mut w = String::new();
                    w.push(c);
                    while let Some(&nc) = chars.peek() {
                        if nc.is_whitespace() || matches!(nc, ';' | '(' | ')' | '"') {
                            break;
                        }
                        w.push(nc);
                        chars.next();
                    }
                    cur.push(Token::Word(w));
                }
            }
        }
        if depth == 0 && !cur.is_empty() {
            logical.push((cur_start, std::mem::take(&mut cur)));
        }
    }
    if depth != 0 {
        return Err(syntax(cur_start, "unclosed '(' at end of file"));
    }
    Ok(logical)
}

/// Resolve a name token: `@` = origin, trailing dot = absolute, otherwise
/// relative to the origin.
fn name_token(tok: &str, origin: &DnsName, line: usize) -> Result<DnsName, MasterError> {
    if tok == "@" {
        return Ok(origin.clone());
    }
    if tok == "." {
        return Ok(DnsName::root());
    }
    let parsed: DnsName = tok
        .parse()
        .map_err(|_| syntax(line, format!("bad name {tok:?}")))?;
    if tok.ends_with('.') {
        Ok(parsed)
    } else {
        parsed
            .with_suffix(origin)
            .map_err(|_| syntax(line, format!("name {tok:?} too long under origin")))
    }
}

fn num_token<T: std::str::FromStr>(tok: &str, what: &str, line: usize) -> Result<T, MasterError> {
    tok.parse()
        .map_err(|_| syntax(line, format!("bad {what} {tok:?}")))
}

/// Parse master-file `text` into a [`Zone`]. The `$ORIGIN` directive must
/// appear before the first record, and the first record must be the
/// zone's SOA.
pub fn parse(text: &str) -> Result<Zone, MasterError> {
    let mut origin: Option<DnsName> = None;
    let mut default_ttl: Option<u32> = None;
    let mut zone: Option<Zone> = None;
    for (line, tokens) in tokenize(text)? {
        let first = tokens[0].word(line)?;
        if first.eq_ignore_ascii_case("$ORIGIN") {
            let tok = tokens
                .get(1)
                .ok_or_else(|| syntax(line, "$ORIGIN needs a name"))?
                .word(line)?;
            if !tok.ends_with('.') {
                return Err(syntax(line, "$ORIGIN must be absolute (trailing dot)"));
            }
            origin = Some(name_token(tok, &DnsName::root(), line)?);
            continue;
        }
        if first.eq_ignore_ascii_case("$TTL") {
            let tok = tokens
                .get(1)
                .ok_or_else(|| syntax(line, "$TTL needs a value"))?
                .word(line)?;
            default_ttl = Some(num_token(tok, "TTL", line)?);
            continue;
        }
        if first.starts_with('$') {
            return Err(syntax(line, format!("unknown directive {first:?}")));
        }
        let origin = origin
            .as_ref()
            .ok_or_else(|| syntax(line, "record before $ORIGIN"))?;
        let owner = name_token(first, origin, line)?;
        let mut idx = 1;
        let mut ttl: Option<u32> = None;
        // Optional TTL, optional IN, in either traditional order.
        while let Some(tok) = tokens.get(idx) {
            let w = tok.word(line)?;
            if ttl.is_none() && w.chars().all(|c| c.is_ascii_digit()) {
                ttl = Some(num_token(w, "TTL", line)?);
                idx += 1;
            } else if w.eq_ignore_ascii_case("IN") {
                idx += 1;
            } else {
                break;
            }
        }
        let rtype = tokens
            .get(idx)
            .ok_or_else(|| syntax(line, "missing record type"))?
            .word(line)?
            .to_ascii_uppercase();
        let rdata = &tokens[idx + 1..];
        let ttl = ttl
            .or(default_ttl)
            .ok_or_else(|| syntax(line, "no TTL and no $TTL default"))?;
        let one = |what: &str| -> Result<&str, MasterError> {
            if rdata.len() != 1 {
                return Err(syntax(line, format!("{what} rdata wants 1 field")));
            }
            rdata[0].word(line)
        };
        let data = match rtype.as_str() {
            "A" => RData::A(num_token(one("A")?, "IPv4 address", line)?),
            "AAAA" => RData::Aaaa(num_token(one("AAAA")?, "IPv6 address", line)?),
            "NS" => RData::Ns(name_token(one("NS")?, origin, line)?),
            "CNAME" => RData::Cname(name_token(one("CNAME")?, origin, line)?),
            "PTR" => RData::Ptr(name_token(one("PTR")?, origin, line)?),
            "MX" => {
                if rdata.len() != 2 {
                    return Err(syntax(line, "MX rdata wants preference + exchange"));
                }
                RData::Mx {
                    preference: num_token(rdata[0].word(line)?, "MX preference", line)?,
                    exchange: name_token(rdata[1].word(line)?, origin, line)?,
                }
            }
            "TXT" => {
                if rdata.is_empty() {
                    return Err(syntax(line, "TXT rdata wants at least one string"));
                }
                let strings = rdata
                    .iter()
                    .map(|t| match t {
                        Token::Quoted(s) => Ok(s.clone()),
                        Token::Word(w) => Ok(w.clone()),
                    })
                    .collect::<Result<Vec<String>, MasterError>>()?;
                RData::Txt(strings)
            }
            "SOA" => {
                if rdata.len() != 7 {
                    return Err(syntax(line, "SOA rdata wants 7 fields"));
                }
                RData::Soa {
                    mname: name_token(rdata[0].word(line)?, origin, line)?,
                    rname: name_token(rdata[1].word(line)?, origin, line)?,
                    serial: num_token(rdata[2].word(line)?, "serial", line)?,
                    refresh: num_token(rdata[3].word(line)?, "refresh", line)?,
                    retry: num_token(rdata[4].word(line)?, "retry", line)?,
                    expire: num_token(rdata[5].word(line)?, "expire", line)?,
                    minimum: num_token(rdata[6].word(line)?, "minimum", line)?,
                }
            }
            other => return Err(syntax(line, format!("unsupported record type {other:?}"))),
        };
        if matches!(data, RData::Soa { .. }) {
            if zone.is_some() {
                return Err(syntax(line, "second SOA record"));
            }
            if owner != *origin {
                return Err(syntax(line, "SOA owner must be the origin"));
            }
            zone = Some(Zone::with_soa(
                origin.clone(),
                Record::new(owner, ttl, data),
            ));
        } else {
            let zone = zone
                .as_mut()
                .ok_or_else(|| syntax(line, "record before the SOA"))?;
            if !owner.is_subdomain_of(zone.origin()) {
                return Err(syntax(
                    line,
                    format!("owner {owner} outside zone {}", zone.origin()),
                ));
            }
            zone.add(&owner, ttl, data);
        }
    }
    zone.ok_or_else(|| syntax(1, "zone file has no SOA record"))
}

/// A name in absolute master-file form (trailing dot; root is `.`).
fn abs(name: &DnsName) -> String {
    if name.is_root() {
        ".".to_string()
    } else {
        format!("{name}.")
    }
}

/// An owner relative to `origin`: `@` at the apex, the leading labels
/// (no trailing dot) inside the zone, absolute form outside it.
fn rel(name: &DnsName, origin: &DnsName) -> String {
    if name == origin {
        return "@".to_string();
    }
    if name.is_subdomain_of(origin) {
        let keep = name.label_count() - origin.label_count();
        return name.labels()[..keep].join(".");
    }
    abs(name)
}

fn rdata_text(data: &RData) -> Result<(&'static str, String), MasterError> {
    Ok(match data {
        RData::A(a) => ("A", a.to_string()),
        RData::Aaaa(a) => ("AAAA", a.to_string()),
        RData::Ns(n) => ("NS", abs(n)),
        RData::Cname(n) => ("CNAME", abs(n)),
        RData::Ptr(n) => ("PTR", abs(n)),
        RData::Mx {
            preference,
            exchange,
        } => ("MX", format!("{preference} {}", abs(exchange))),
        RData::Txt(strings) => {
            let quoted: Vec<String> = strings.iter().map(|s| format!("\"{s}\"")).collect();
            ("TXT", quoted.join(" "))
        }
        RData::Soa {
            mname,
            rname,
            serial,
            refresh,
            retry,
            expire,
            minimum,
        } => (
            "SOA",
            format!(
                "{} {} {serial} {refresh} {retry} {expire} {minimum}",
                abs(mname),
                abs(rname)
            ),
        ),
        other => {
            return Err(MasterError::Unrepresentable {
                rtype: other.rtype(),
            })
        }
    })
}

/// Write `zone` in canonical master-file form: `$ORIGIN` first, then the
/// SOA, then every other record in owner order, tab-separated with
/// explicit TTLs. Canonical output re-parses to an equal zone, and a
/// fixture authored in this form survives `parse` → `emit` byte-identically.
pub fn emit(zone: &Zone) -> Result<String, MasterError> {
    let origin = zone.origin();
    let mut out = String::new();
    writeln!(out, "$ORIGIN {}", abs(origin)).expect("string write");
    let mut write_record = |r: &Record| -> Result<(), MasterError> {
        let (rtype, rdata) = rdata_text(&r.data)?;
        writeln!(
            out,
            "{}\t{}\tIN\t{}\t{}",
            rel(&r.name, origin),
            r.ttl,
            rtype,
            rdata
        )
        .expect("string write");
        Ok(())
    };
    write_record(zone.soa())?;
    for r in zone.iter_records() {
        if r == zone.soa() {
            continue; // already written first
        }
        write_record(r)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zone::ZoneLookup;

    fn n(s: &str) -> DnsName {
        s.parse().unwrap()
    }

    const CANONICAL: &str = "\
$ORIGIN test.
@\t3600\tIN\tSOA\tns1.test. hostmaster.test. 1 7200 900 1209600 300
dual\t3600\tIN\tNS\tns1.dual.test.
ns1.dual\t3600\tIN\tA\t203.0.113.1
ns1.dual\t3600\tIN\tAAAA\t2001:db8::1
ns1.v4only\t3600\tIN\tA\t203.0.113.53
v4only\t3600\tIN\tNS\tns1.v4only.test.
www\t120\tIN\tCNAME\twww.dual.test.
";

    #[test]
    fn canonical_fixture_roundtrips_byte_identically() {
        let zone = parse(CANONICAL).unwrap();
        let emitted = emit(&zone).unwrap();
        assert_eq!(emitted, CANONICAL);
        // And a second pass is a fixed point.
        assert_eq!(emit(&parse(&emitted).unwrap()).unwrap(), emitted);
    }

    #[test]
    fn parsed_zone_answers_and_refers() {
        let zone = parse(CANONICAL).unwrap();
        assert_eq!(zone.origin(), &n("test"));
        match zone.lookup(&n("www.dual.test"), RType::A) {
            ZoneLookup::Referral { cut, glue, .. } => {
                assert_eq!(cut, n("dual.test"));
                assert_eq!(glue.len(), 2);
            }
            other => panic!("expected referral, got {other:?}"),
        }
        match zone.lookup(&n("www.test"), RType::Cname) {
            ZoneLookup::Answer(rs) => {
                assert_eq!(rs[0].data, RData::Cname(n("www.dual.test")));
            }
            other => panic!("expected CNAME, got {other:?}"),
        }
    }

    #[test]
    fn parens_comments_and_defaults_are_accepted() {
        let sloppy = "\
; delegation fixture, sloppy dialect
$ORIGIN test. ; absolute
$TTL 3600
@ IN SOA ns1 hostmaster ( ; relative mname/rname
        1          ; serial
        7200 900 1209600
        300 )
mail IN MX 10 mx1.test.
mx1 300 IN A 198.51.100.25
note IN TXT \"hello; not a comment\" \"world\"
";
        let zone = parse(sloppy).unwrap();
        assert_eq!(zone.soa().ttl, 3600);
        match &zone.soa().data {
            RData::Soa { mname, minimum, .. } => {
                assert_eq!(mname, &n("ns1.test"));
                assert_eq!(*minimum, 300);
            }
            other => panic!("expected SOA, got {other:?}"),
        }
        match zone.lookup(&n("note.test"), RType::Txt) {
            ZoneLookup::Answer(rs) => {
                assert_eq!(
                    rs[0].data,
                    RData::Txt(vec!["hello; not a comment".into(), "world".into()])
                );
            }
            other => panic!("expected TXT, got {other:?}"),
        }
        // Sloppy input normalizes to canonical and then stays fixed.
        let canonical = emit(&zone).unwrap();
        assert_eq!(emit(&parse(&canonical).unwrap()).unwrap(), canonical);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let before_soa = "$ORIGIN test.\nwww 60 IN A 192.0.2.1\n";
        match parse(before_soa) {
            Err(MasterError::Syntax { line: 2, msg }) => assert!(msg.contains("before the SOA")),
            other => panic!("expected line-2 syntax error, got {other:?}"),
        }
        assert!(matches!(
            parse("www 60 IN A 192.0.2.1\n"),
            Err(MasterError::Syntax { line: 1, .. })
        ));
        let bad_type = format!("{CANONICAL}oops\t60\tIN\tHINFO\tx\n");
        assert!(matches!(
            parse(&bad_type),
            Err(MasterError::Syntax { line: 9, .. })
        ));
        let unclosed = "$ORIGIN test.\n@ 60 IN SOA ns1 hm ( 1 2 3 4\n";
        assert!(parse(unclosed).is_err());
    }

    #[test]
    fn second_soa_and_out_of_zone_owner_rejected() {
        let twice = format!(
            "{CANONICAL}@\t3600\tIN\tSOA\tns1.test. hostmaster.test. 2 7200 900 1209600 300\n"
        );
        assert!(matches!(parse(&twice), Err(MasterError::Syntax { .. })));
        let outside = format!("{CANONICAL}www.other.example.\t60\tIN\tA\t192.0.2.1\n");
        match parse(&outside) {
            Err(MasterError::Syntax { msg, .. }) => assert!(msg.contains("outside zone")),
            other => panic!("expected out-of-zone error, got {other:?}"),
        }
    }

    #[test]
    fn opt_records_have_no_master_form() {
        let mut zone = Zone::new(n("x.test"), 300);
        zone.add_str(
            "@",
            0,
            RData::Opt {
                payload_size: 1232,
                data: Vec::new(),
            },
        );
        assert_eq!(
            emit(&zone),
            Err(MasterError::Unrepresentable { rtype: RType::Opt })
        );
    }
}
