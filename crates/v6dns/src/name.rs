//! Domain names: case-insensitive label sequences with suffix arithmetic.

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// A fully-qualified domain name, stored as lower-cased labels.
///
/// DNS comparisons are case-insensitive (RFC 1035 §2.3.3); we canonicalize to
/// lower case at construction so `Eq`/`Hash`/`Ord` are cheap. The label
/// sequence is immutable after construction and names are cloned on every
/// query, cache hit, and answer record, so the storage is a shared
/// `Arc<[String]>`: `Clone` is a reference-count bump instead of a fresh
/// allocation per label.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DnsName {
    labels: Arc<[String]>,
}

/// Errors from name construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameError {
    /// A label was empty or longer than 63 octets.
    BadLabel(String),
    /// Total encoded length would exceed 255 octets.
    TooLong(usize),
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameError::BadLabel(l) => write!(f, "bad DNS label {l:?}"),
            NameError::TooLong(n) => write!(f, "DNS name too long ({n} octets)"),
        }
    }
}

impl std::error::Error for NameError {}

impl DnsName {
    /// The DNS root (empty name).
    pub fn root() -> DnsName {
        DnsName {
            labels: Arc::from([]),
        }
    }

    /// Build from labels, validating lengths.
    pub fn from_labels<I, S>(labels: I) -> Result<DnsName, NameError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut out = Vec::new();
        let mut total = 1; // trailing root byte
        for l in labels {
            let l = l.as_ref();
            if l.is_empty() || l.len() > 63 {
                return Err(NameError::BadLabel(l.into()));
            }
            total += l.len() + 1;
            out.push(l.to_ascii_lowercase());
        }
        if total > 255 {
            return Err(NameError::TooLong(total));
        }
        Ok(DnsName { labels: out.into() })
    }

    /// Build from labels the caller has already lower-cased and
    /// length-checked per label (1..=63 octets each) — the wire-decode fast
    /// path, which validates label lengths during the walk. Only the total
    /// 255-octet bound is re-checked here; the labels are adopted without
    /// another copy.
    pub(crate) fn from_lowercased_labels(labels: Vec<String>) -> Result<DnsName, NameError> {
        debug_assert!(labels
            .iter()
            .all(|l| !l.is_empty() && l.len() <= 63 && !l.bytes().any(|b| b.is_ascii_uppercase())));
        let total = 1 + labels.iter().map(|l| l.len() + 1).sum::<usize>();
        if total > 255 {
            return Err(NameError::TooLong(total));
        }
        Ok(DnsName {
            labels: labels.into(),
        })
    }

    /// The labels, most-specific first.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Is this the root name?
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// Is `self` equal to or a subdomain of `ancestor`?
    pub fn is_subdomain_of(&self, ancestor: &DnsName) -> bool {
        self.labels.len() >= ancestor.labels.len()
            && self.labels[self.labels.len() - ancestor.labels.len()..] == ancestor.labels[..]
    }

    /// The parent name (one label removed), or `None` at the root.
    pub fn parent(&self) -> Option<DnsName> {
        if self.labels.is_empty() {
            None
        } else {
            Some(DnsName {
                labels: self.labels[1..].to_vec().into(),
            })
        }
    }

    /// `self` with `suffix` appended — how a stub resolver applies its
    /// search list: `vpn.anl.gov` + `rfc8925.com` = `vpn.anl.gov.rfc8925.com`
    /// (the exact artefact in the paper's Figure 9).
    pub fn with_suffix(&self, suffix: &DnsName) -> Result<DnsName, NameError> {
        Self::from_labels(self.labels.iter().chain(suffix.labels.iter()))
    }

    /// Number of dots in the presentation form — the classic `ndots`
    /// heuristic deciding whether the search list applies first.
    pub fn ndots(&self) -> usize {
        self.labels.len().saturating_sub(1)
    }
}

impl FromStr for DnsName {
    type Err = NameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trimmed = s.strip_suffix('.').unwrap_or(s);
        if trimmed.is_empty() {
            return Ok(DnsName::root());
        }
        DnsName::from_labels(trimmed.split('.'))
    }
}

impl fmt::Display for DnsName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return write!(f, ".");
        }
        write!(f, "{}", self.labels.join("."))
    }
}

impl fmt::Debug for DnsName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_roundtrip() {
        let n: DnsName = "ip6.me".parse().unwrap();
        assert_eq!(n.to_string(), "ip6.me");
        let fqdn: DnsName = "sc24.supercomputing.org.".parse().unwrap();
        assert_eq!(fqdn.to_string(), "sc24.supercomputing.org");
        assert_eq!(fqdn.label_count(), 3);
    }

    #[test]
    fn case_insensitive() {
        let a: DnsName = "IP6.Me".parse().unwrap();
        let b: DnsName = "ip6.me".parse().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn root_parses() {
        assert!(".".parse::<DnsName>().unwrap().is_root());
        assert!("".parse::<DnsName>().unwrap().is_root());
        assert_eq!(DnsName::root().to_string(), ".");
    }

    #[test]
    fn subdomain_relation() {
        let zone: DnsName = "anl.gov".parse().unwrap();
        let host: DnsName = "vpn.anl.gov".parse().unwrap();
        assert!(host.is_subdomain_of(&zone));
        assert!(host.is_subdomain_of(&host));
        assert!(!zone.is_subdomain_of(&host));
        assert!(host.is_subdomain_of(&DnsName::root()));
        let evil: DnsName = "notanl.gov".parse().unwrap();
        assert!(!evil.is_subdomain_of(&zone), "label boundaries respected");
    }

    #[test]
    fn fig9_suffix_append() {
        // nslookup applied the search list: vpn.anl.gov.rfc8925.com.
        let q: DnsName = "vpn.anl.gov".parse().unwrap();
        let suffix: DnsName = "rfc8925.com".parse().unwrap();
        assert_eq!(
            q.with_suffix(&suffix).unwrap().to_string(),
            "vpn.anl.gov.rfc8925.com"
        );
    }

    #[test]
    fn validation() {
        assert!("a..b".parse::<DnsName>().is_err());
        let long = "x".repeat(64);
        assert!(long.parse::<DnsName>().is_err());
        let ok = "x".repeat(63);
        assert!(ok.parse::<DnsName>().is_ok());
        // 255-octet total limit.
        let many = vec!["abcdefgh"; 32].join(".");
        assert!(many.parse::<DnsName>().is_err());
    }

    #[test]
    fn parent_walk() {
        let n: DnsName = "a.b.c".parse().unwrap();
        let p = n.parent().unwrap();
        assert_eq!(p.to_string(), "b.c");
        assert_eq!(p.parent().unwrap().to_string(), "c");
        assert!(p.parent().unwrap().parent().unwrap().is_root());
        assert!(DnsName::root().parent().is_none());
    }

    #[test]
    fn ndots_heuristic() {
        assert_eq!("printer".parse::<DnsName>().unwrap().ndots(), 0);
        assert_eq!("vpn.anl.gov".parse::<DnsName>().unwrap().ndots(), 2);
    }
}
