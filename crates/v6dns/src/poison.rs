//! The paper's IPv4 DNS interventions.
//!
//! Section VI: "To facilitate the DNS A record poisoning, dnsmasq was used
//! with a two line configuration: one line of `address=/#/23.153.8.71` to
//! return any A record query with an answer of ip6.me's IPv4 address, and
//! another line of `server=192.168.12.251` to forward all other requests
//! (including AAAA queries) to the testbed's healthy DNS64 server."
//!
//! [`PoisonPolicy::WildcardA`] reproduces that dnsmasq behaviour faithfully —
//! including its documented defect: "Since dnsmasq has no logic to determine
//! if a real-world A record exists, it will answer A record queries even for
//! non-existent fully qualified domain names" (the Figure 9 artefact).
//!
//! [`PoisonPolicy::ResponsePolicyZone`] implements the conclusion's proposed
//! mitigation ("replacing the dnsmasq configuration … with a BIND9 Response
//! Policy Zone"): the upstream is consulted first and only *existing* names
//! have their A answers rewritten, so NXDOMAIN stays NXDOMAIN.

use crate::codec::{Question, RData, RType, Rcode, Record};
use crate::server::{Answer, Resolver};
use std::net::Ipv4Addr;

/// How A queries are intercepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoisonPolicy {
    /// dnsmasq `address=/#/<answer>`: every A query is answered locally with
    /// `answer`, existence never checked, nothing forwarded.
    WildcardA {
        /// The intervention address (ip6.me's 23.153.8.71 in the paper).
        answer: Ipv4Addr,
        /// TTL for the forged records.
        ttl: u32,
    },
    /// BIND9 RPZ-style rewrite: forward the A query upstream; rewrite only
    /// positive answers, pass negatives through unchanged.
    ResponsePolicyZone {
        /// The intervention address.
        answer: Ipv4Addr,
        /// TTL for the rewritten records.
        ttl: u32,
    },
    /// No intervention (control condition / Ansible-playbook rollback the
    /// conclusion mentions).
    Off,
}

/// A resolver applying an IPv4 intervention in front of `upstream` (the
/// healthy DNS64 in the paper's topology).
///
/// ```
/// use v6dns::codec::{Question, RData, RType};
/// use v6dns::poison::PoisonedResolver;
/// use v6dns::server::{GlobalDns, Resolver};
///
/// // dnsmasq semantics: every A query — even for names that don't exist —
/// // is answered with ip6.me's address.
/// let mut dns = PoisonedResolver::dnsmasq_ip6me(GlobalDns::new());
/// let a = dns.resolve(&Question::new("anything.example".parse().unwrap(), RType::A), 0);
/// assert_eq!(a.records[0].data, RData::A("23.153.8.71".parse().unwrap()));
/// ```
#[derive(Debug)]
pub struct PoisonedResolver<R> {
    upstream: R,
    /// Active policy (mutable so an experiment can flip it mid-run).
    pub policy: PoisonPolicy,
    /// A queries intercepted.
    pub poisoned_count: u64,
    /// Queries forwarded untouched.
    pub forwarded_count: u64,
}

impl<R: Resolver> PoisonedResolver<R> {
    /// Apply `policy` in front of `upstream`.
    pub fn new(upstream: R, policy: PoisonPolicy) -> PoisonedResolver<R> {
        PoisonedResolver {
            upstream,
            policy,
            poisoned_count: 0,
            forwarded_count: 0,
        }
    }

    /// The testbed's production configuration: wildcard-A to ip6.me.
    pub fn dnsmasq_ip6me(upstream: R) -> PoisonedResolver<R> {
        Self::new(
            upstream,
            PoisonPolicy::WildcardA {
                answer: Ipv4Addr::new(23, 153, 8, 71),
                ttl: 60,
            },
        )
    }

    /// Access the wrapped upstream.
    pub fn upstream_mut(&mut self) -> &mut R {
        &mut self.upstream
    }

    /// Zero the intercept/forward counters; the policy is configuration
    /// and survives. The upstream is reset separately.
    pub fn reset(&mut self) {
        self.poisoned_count = 0;
        self.forwarded_count = 0;
    }

    /// Counter snapshot (`poisoned`, `forwarded`) in the shared
    /// [`v6wire::metrics::Metrics`] form.
    pub fn metrics(&self) -> v6wire::metrics::Metrics {
        [
            ("poisoned", self.poisoned_count),
            ("forwarded", self.forwarded_count),
        ]
        .into_iter()
        .collect()
    }
}

impl<R: Resolver> Resolver for PoisonedResolver<R> {
    fn resolve(&mut self, q: &Question, now: u64) -> Answer {
        if q.rtype != RType::A {
            self.forwarded_count += 1;
            return self.upstream.resolve(q, now);
        }
        match self.policy {
            PoisonPolicy::Off => {
                self.forwarded_count += 1;
                self.upstream.resolve(q, now)
            }
            PoisonPolicy::WildcardA { answer, ttl } => {
                self.poisoned_count += 1;
                Answer::positive(vec![Record::new(q.name.clone(), ttl, RData::A(answer))])
            }
            PoisonPolicy::ResponsePolicyZone { answer, ttl } => {
                let real = self.upstream.resolve(q, now);
                if real.rcode == Rcode::NoError
                    && real.records.iter().any(|r| matches!(r.data, RData::A(_)))
                {
                    self.poisoned_count += 1;
                    let records = real
                        .records
                        .iter()
                        .map(|r| match r.data {
                            RData::A(_) => Record::new(r.name.clone(), ttl, RData::A(answer)),
                            _ => r.clone(),
                        })
                        .collect();
                    Answer::positive(records)
                } else {
                    self.forwarded_count += 1;
                    real
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dns64::Dns64;
    use crate::name::DnsName;
    use crate::server::GlobalDns;
    use crate::zone::Zone;

    fn n(s: &str) -> DnsName {
        s.parse().unwrap()
    }

    fn upstream() -> Dns64<GlobalDns> {
        let mut g = GlobalDns::new();
        let mut sc = Zone::new(n("supercomputing.org"), 300);
        sc.add_str("sc24", 120, RData::A("190.92.158.4".parse().unwrap()));
        g.add_zone(sc);
        let mut anl = Zone::new(n("anl.gov"), 300);
        anl.add_str("vpn", 120, RData::A("130.202.228.253".parse().unwrap()));
        g.add_zone(anl);
        let mut me = Zone::new(n("ip6.me"), 60);
        me.add_str("@", 60, RData::A("23.153.8.71".parse().unwrap()));
        me.add_str("@", 60, RData::Aaaa("2001:4810:0:3::71".parse().unwrap()));
        g.add_zone(me);
        Dns64::well_known(g)
    }

    #[test]
    fn wildcard_poisons_every_a_query() {
        let mut p = PoisonedResolver::dnsmasq_ip6me(upstream());
        for name in ["vpn.anl.gov", "sc24.supercomputing.org", "example.org"] {
            let a = p.resolve(&Question::new(n(name), RType::A), 0);
            assert_eq!(
                a.records[0].data,
                RData::A("23.153.8.71".parse().unwrap()),
                "{name} must be redirected"
            );
        }
        assert_eq!(p.poisoned_count, 3);
    }

    #[test]
    fn wildcard_answers_nonexistent_names_fig9() {
        // Fig. 9: vpn.anl.gov.rfc8925.com does not exist, yet dnsmasq answers.
        let mut p = PoisonedResolver::dnsmasq_ip6me(upstream());
        let a = p.resolve(&Question::new(n("vpn.anl.gov.rfc8925.com"), RType::A), 0);
        assert_eq!(a.rcode, Rcode::NoError);
        assert_eq!(a.records[0].data, RData::A("23.153.8.71".parse().unwrap()));
    }

    #[test]
    fn aaaa_forwarded_to_healthy_dns64() {
        // Fig. 9's other half: ping got the valid AAAA via NAT64 synthesis.
        let mut p = PoisonedResolver::dnsmasq_ip6me(upstream());
        let a = p.resolve(&Question::new(n("vpn.anl.gov"), RType::Aaaa), 0);
        assert!(a.is_positive());
        assert_eq!(
            a.records[0].data,
            RData::Aaaa("64:ff9b::82ca:e4fd".parse().unwrap())
        );
        assert_eq!(p.poisoned_count, 0);
        assert_eq!(p.forwarded_count, 1);
    }

    #[test]
    fn rpz_rewrites_existing_names() {
        let mut p = PoisonedResolver::new(
            upstream(),
            PoisonPolicy::ResponsePolicyZone {
                answer: "23.153.8.71".parse().unwrap(),
                ttl: 30,
            },
        );
        let a = p.resolve(&Question::new(n("vpn.anl.gov"), RType::A), 0);
        assert_eq!(a.records[0].data, RData::A("23.153.8.71".parse().unwrap()));
        assert_eq!(a.records[0].ttl, 30);
    }

    #[test]
    fn rpz_preserves_nxdomain() {
        // The conclusion's proposed fix: non-existent FQDNs stay NXDOMAIN.
        let mut p = PoisonedResolver::new(
            upstream(),
            PoisonPolicy::ResponsePolicyZone {
                answer: "23.153.8.71".parse().unwrap(),
                ttl: 30,
            },
        );
        let a = p.resolve(&Question::new(n("vpn.anl.gov.rfc8925.com"), RType::A), 0);
        assert_eq!(a.rcode, Rcode::NxDomain);
        assert!(a.records.is_empty());
        assert_eq!(p.poisoned_count, 0);
    }

    #[test]
    fn off_policy_is_transparent() {
        let mut p = PoisonedResolver::new(upstream(), PoisonPolicy::Off);
        let a = p.resolve(&Question::new(n("vpn.anl.gov"), RType::A), 0);
        assert_eq!(
            a.records[0].data,
            RData::A("130.202.228.253".parse().unwrap())
        );
        assert_eq!(p.poisoned_count, 0);
    }

    #[test]
    fn policy_flip_mid_run() {
        // The conclusion mentions "an Ansible playbook to remove the IPv4 DNS
        // interventions should major issues be reported".
        let mut p = PoisonedResolver::dnsmasq_ip6me(upstream());
        let before = p.resolve(&Question::new(n("vpn.anl.gov"), RType::A), 0);
        assert_eq!(
            before.records[0].data,
            RData::A("23.153.8.71".parse().unwrap())
        );
        p.policy = PoisonPolicy::Off;
        let after = p.resolve(&Question::new(n("vpn.anl.gov"), RType::A), 1);
        assert_eq!(
            after.records[0].data,
            RData::A("130.202.228.253".parse().unwrap())
        );
    }
}
