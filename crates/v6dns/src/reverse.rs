//! Reverse-DNS name arithmetic: `ip6.arpa` and `in-addr.arpa` forms, used
//! by DNS64's PTR handling (RFC 6147 §5.3) so that `ptr` lookups of
//! NAT64-synthesized addresses resolve to the real IPv4 service's name.

use crate::name::DnsName;
use std::net::{Ipv4Addr, Ipv6Addr};

/// The `ip6.arpa` reverse name of an IPv6 address
/// (32 nibbles, least-significant first).
pub fn ip6_arpa_name(addr: Ipv6Addr) -> DnsName {
    let octets = addr.octets();
    let mut labels = Vec::with_capacity(34);
    for o in octets.iter().rev() {
        labels.push(format!("{:x}", o & 0x0f));
        labels.push(format!("{:x}", o >> 4));
    }
    labels.push("ip6".to_string());
    labels.push("arpa".to_string());
    DnsName::from_labels(labels).expect("nibble labels are valid")
}

/// Parse an `ip6.arpa` name back into an address; `None` if the name is not
/// a full 32-nibble reverse name.
pub fn parse_ip6_arpa(name: &DnsName) -> Option<Ipv6Addr> {
    let labels = name.labels();
    if labels.len() != 34 || labels[32] != "ip6" || labels[33] != "arpa" {
        return None;
    }
    let mut octets = [0u8; 16];
    for (i, pair) in labels[..32].chunks(2).enumerate() {
        let lo = u8::from_str_radix(&pair[0], 16).ok()?;
        let hi = u8::from_str_radix(&pair[1], 16).ok()?;
        if pair[0].len() != 1 || pair[1].len() != 1 {
            return None;
        }
        // Labels run least-significant nibble first.
        octets[15 - i] = (hi << 4) | lo;
    }
    Some(Ipv6Addr::from(octets))
}

/// The `in-addr.arpa` reverse name of an IPv4 address.
pub fn in_addr_arpa_name(addr: Ipv4Addr) -> DnsName {
    let o = addr.octets();
    format!("{}.{}.{}.{}.in-addr.arpa", o[3], o[2], o[1], o[0])
        .parse()
        .expect("octet labels are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ip6_arpa_roundtrip() {
        let a: Ipv6Addr = "64:ff9b::be5c:9e04".parse().unwrap();
        let name = ip6_arpa_name(a);
        assert!(name.to_string().ends_with("ip6.arpa"));
        assert_eq!(name.label_count(), 34);
        assert_eq!(parse_ip6_arpa(&name), Some(a));
    }

    #[test]
    fn ip6_arpa_known_form() {
        let a: Ipv6Addr = "2001:db8::1".parse().unwrap();
        assert_eq!(
            ip6_arpa_name(a).to_string(),
            "1.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.8.b.d.0.1.0.0.2.ip6.arpa"
        );
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(parse_ip6_arpa(&"ip6.arpa".parse().unwrap()).is_none());
        assert!(parse_ip6_arpa(&"1.2.3.in-addr.arpa".parse().unwrap()).is_none());
        // 33 nibbles (one short).
        let short: DnsName = format!("{}ip6.arpa", "0.".repeat(31)).parse().unwrap();
        assert!(parse_ip6_arpa(&short).is_none());
    }

    #[test]
    fn in_addr_arpa_form() {
        assert_eq!(
            in_addr_arpa_name("190.92.158.4".parse().unwrap()).to_string(),
            "4.158.92.190.in-addr.arpa"
        );
    }
}
