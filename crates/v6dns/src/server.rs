//! Resolver engines: the simulated global DNS, and a TTL cache with RFC 2308
//! negative caching that any server in the testbed can layer on top.

use crate::codec::{Question, RData, RType, Rcode, Record};
use crate::name::DnsName;
use crate::zone::{Zone, ZoneLookup};
use std::sync::Arc;
use v6wire::clamp;
use v6wire::fasthash::FastMap;

/// Why a resolution failed, classified for the census breakdown and
/// carried stub-ward as an RFC 8914 Extended DNS Error (see
/// [`crate::edns`]). The Streibelt et al. PAM '23 taxonomy: resolution in
/// a v6-only network fails for *structural* reasons a timeout can't
/// distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResolutionFailure {
    /// An authoritative server on the delegation path has no address
    /// record (glue) the resolver's address family can use — the PAM '23
    /// "v6-only resolver cannot reach a v4-only-glue NS set" failure.
    NoAaaaGlue,
    /// The referral chain exceeded the resolver's depth budget.
    ReferralLoop,
    /// The stub answered from its RFC 2308 negative cache without
    /// re-querying.
    NegativeCached,
    /// The response was truncated (TC bit) and the stub has no TCP
    /// fallback.
    TruncatedNoTcp,
}

impl ResolutionFailure {
    /// Every failure reason, in stable census-column order.
    pub const ALL: [ResolutionFailure; 4] = [
        ResolutionFailure::NoAaaaGlue,
        ResolutionFailure::ReferralLoop,
        ResolutionFailure::NegativeCached,
        ResolutionFailure::TruncatedNoTcp,
    ];

    /// Manifest/census label.
    pub fn label(self) -> &'static str {
        match self {
            ResolutionFailure::NoAaaaGlue => "no-aaaa-glue",
            ResolutionFailure::ReferralLoop => "referral-loop",
            ResolutionFailure::NegativeCached => "negative-cached",
            ResolutionFailure::TruncatedNoTcp => "truncated-no-tcp",
        }
    }

    /// Position in [`ResolutionFailure::ALL`] (stable, used for census
    /// columns and the EDE private code offset).
    pub fn index(self) -> usize {
        match self {
            ResolutionFailure::NoAaaaGlue => 0,
            ResolutionFailure::ReferralLoop => 1,
            ResolutionFailure::NegativeCached => 2,
            ResolutionFailure::TruncatedNoTcp => 3,
        }
    }
}

/// The outcome of a resolution: an rcode, answer records, the SOA that
/// authorizes negative caching when the answer set is empty, and — when
/// resolution failed structurally — the classified reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Answer {
    /// Response code.
    pub rcode: Rcode,
    /// Answer-section records (CNAME chains included).
    pub records: Vec<Record>,
    /// SOA for negative answers.
    pub soa: Option<Record>,
    /// Classified failure reason, when resolution failed structurally.
    pub reason: Option<ResolutionFailure>,
}

impl Answer {
    /// A positive answer.
    pub fn positive(records: Vec<Record>) -> Answer {
        Answer {
            rcode: Rcode::NoError,
            records,
            soa: None,
            reason: None,
        }
    }

    /// NXDOMAIN with authority SOA.
    pub fn nxdomain(soa: Record) -> Answer {
        Answer {
            rcode: Rcode::NxDomain,
            records: Vec::new(),
            soa: Some(soa),
            reason: None,
        }
    }

    /// NOERROR/NODATA with authority SOA.
    pub fn nodata(soa: Record) -> Answer {
        Answer {
            rcode: Rcode::NoError,
            records: Vec::new(),
            soa: Some(soa),
            reason: None,
        }
    }

    /// Server failure.
    pub fn servfail() -> Answer {
        Answer {
            rcode: Rcode::ServFail,
            records: Vec::new(),
            soa: None,
            reason: None,
        }
    }

    /// Server failure with a classified reason.
    pub fn servfail_because(reason: ResolutionFailure) -> Answer {
        Answer {
            reason: Some(reason),
            ..Answer::servfail()
        }
    }

    /// Is this a usable positive answer?
    pub fn is_positive(&self) -> bool {
        self.rcode == Rcode::NoError && !self.records.is_empty()
    }
}

/// Address families a resolver can use to contact authoritative servers.
/// This is what makes the Streibelt et al. PAM '23 failure reproducible:
/// a v6-only resolver walking a delegation whose glue is v4-only has no
/// transport to the child NS set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolverTransport {
    /// Can reach IPv4-numbered authoritatives.
    pub v4: bool,
    /// Can reach IPv6-numbered authoritatives.
    pub v6: bool,
}

impl ResolverTransport {
    /// Dual-stack resolver: any glue family works.
    pub const DUAL: ResolverTransport = ResolverTransport { v4: true, v6: true };
    /// IPv6-only resolver: needs AAAA glue on every delegation step.
    pub const V6_ONLY: ResolverTransport = ResolverTransport {
        v4: false,
        v6: true,
    };
    /// IPv4-only resolver: needs A glue on every delegation step.
    pub const V4_ONLY: ResolverTransport = ResolverTransport {
        v4: true,
        v6: false,
    };

    /// Can this transport use the address in `data` to contact a server?
    pub fn can_use(self, data: &RData) -> bool {
        match data {
            RData::A(_) => self.v4,
            RData::Aaaa(_) => self.v6,
            _ => false,
        }
    }
}

/// Referral budget for one iterative descent. Delegation cuts are strictly
/// deeper than their parent zone's origin, so a well-formed walk is
/// structurally loop-free — the cap exists so a pathological tree (or a
/// fuzzer-built one) terminates with a classified
/// [`ResolutionFailure::ReferralLoop`] instead of walking 127 labels down.
pub const MAX_REFERRALS: usize = 8;

/// Anything that can answer DNS questions. `now` is simulation time in
/// seconds, used for TTL bookkeeping.
pub trait Resolver {
    /// Resolve one question.
    fn resolve(&mut self, q: &Question, now: u64) -> Answer;
}

impl<T: Resolver + ?Sized> Resolver for Box<T> {
    fn resolve(&mut self, q: &Question, now: u64) -> Answer {
        (**self).resolve(q, now)
    }
}

/// The simulated "rest of the internet's" DNS: a set of authoritative zones
/// resolved recursively, with cross-zone CNAME chasing.
///
/// This stands in for the real DNS hierarchy the testbed's Raspberry Pi
/// BIND9 forwarded to via the 5G uplink.
#[derive(Debug, Clone, Default)]
pub struct GlobalDns {
    /// Zone content is shared copy-on-write, so cloning a prebuilt
    /// database (one testbed instance per fleet cell) costs a reference
    /// bump instead of re-parsing every record.
    zones: Arc<Vec<Zone>>,
    /// Query counter for observability.
    pub queries: u64,
    /// When set, resolution is *iterative*: it starts at the shallowest
    /// enclosing zone and follows delegation referrals downward, and each
    /// referral is only followable if the glue offers an address this
    /// transport can use. `None` = flat recursive mode (longest-match
    /// zone answers directly), the pre-delegation behaviour.
    iterative: Option<ResolverTransport>,
    /// Referrals followed, for observability.
    pub referrals: u64,
}

impl GlobalDns {
    /// Empty database.
    pub fn new() -> GlobalDns {
        GlobalDns::default()
    }

    /// Add an authoritative zone.
    pub fn add_zone(&mut self, zone: Zone) -> &mut Self {
        Arc::make_mut(&mut self.zones).push(zone);
        self
    }

    /// Switch into iterative mode: resolution walks the delegation tree
    /// from the shallowest enclosing zone, contacting child servers only
    /// through `transport`-compatible glue.
    pub fn set_iterative(&mut self, transport: ResolverTransport) -> &mut Self {
        self.iterative = Some(transport);
        self
    }

    /// The iterative transport, if iterative mode is on.
    pub fn iterative_transport(&self) -> Option<ResolverTransport> {
        self.iterative
    }

    /// Zero the query/referral counters; zone content and resolution mode
    /// (shared copy-on-write) are configuration and survive (warm-cell
    /// arena reuse).
    pub fn reset(&mut self) {
        self.queries = 0;
        self.referrals = 0;
    }

    /// Longest-match zone for `name`.
    fn zone_for(&self, name: &DnsName) -> Option<&Zone> {
        self.zones
            .iter()
            .filter(|z| name.is_subdomain_of(z.origin()))
            .max_by_key(|z| z.origin().label_count())
    }

    fn root_soa() -> Record {
        Record::new(
            DnsName::root(),
            900,
            RData::Soa {
                mname: "a.root-servers.net".parse().expect("static name"),
                rname: "nstld.verisign-grs.com".parse().expect("static name"),
                serial: 20_240_815,
                refresh: 1800,
                retry: 900,
                expire: 604_800,
                minimum: 86_400,
            },
        )
    }
}

impl GlobalDns {
    /// Flat recursive resolution: the longest-match zone answers as if one
    /// recursive server held every zone locally.
    fn resolve_flat(&mut self, q: &Question) -> Answer {
        let mut chain: Vec<Record> = Vec::new();
        let mut current = q.name.clone();
        for _hop in 0..8 {
            let Some(zone) = self.zone_for(&current) else {
                // No delegation anywhere: the root says NXDOMAIN.
                return if chain.is_empty() {
                    Answer::nxdomain(Self::root_soa())
                } else {
                    // Dangling out-of-zone CNAME target.
                    Answer {
                        rcode: Rcode::NxDomain,
                        records: chain,
                        soa: Some(Self::root_soa()),
                        reason: None,
                    }
                };
            };
            match zone.lookup(&current, q.rtype) {
                ZoneLookup::Answer(mut rs) => {
                    // If the chain ends in an out-of-zone CNAME, keep chasing.
                    let last_is_cname = matches!(rs.last().map(|r| &r.data), Some(RData::Cname(_)));
                    if last_is_cname && q.rtype != RType::Cname && q.rtype != RType::Any {
                        let target = match &rs.last().expect("nonempty").data {
                            RData::Cname(t) => t.clone(),
                            _ => unreachable!("checked CNAME"),
                        };
                        chain.append(&mut rs);
                        current = target;
                        continue;
                    }
                    chain.append(&mut rs);
                    return Answer::positive(chain);
                }
                ZoneLookup::NoData { soa } => {
                    return Answer {
                        rcode: Rcode::NoError,
                        records: chain,
                        soa: Some(soa),
                        reason: None,
                    }
                }
                ZoneLookup::NxDomain { soa } => {
                    return Answer {
                        rcode: Rcode::NxDomain,
                        records: chain,
                        soa: Some(soa),
                        reason: None,
                    }
                }
                // A cut with no matching child zone is a lame delegation:
                // with longest-match zone selection a healthy child always
                // shadows its parent's cut, so reaching the parent's
                // referral means nobody can serve the name.
                ZoneLookup::Referral { .. } => return Answer::servfail(),
                ZoneLookup::NotInZone => unreachable!("zone_for guarantees membership"),
            }
        }
        Answer::servfail()
    }

    /// Iterative resolution (RFC 1034 §4.3.2): descend from the shallowest
    /// enclosing zone, following each referral only if its glue offers an
    /// address `transport` can use.
    ///
    /// Glue is decisive: when a parent carries glue for a cut, the child is
    /// reached (or not) through those addresses alone — a v6-only resolver
    /// facing v4-only glue fails with [`ResolutionFailure::NoAaaaGlue`]
    /// even if the child zone itself holds AAAA records for its servers,
    /// because the resolver has no way to ask the child anything. Glueless
    /// cuts fall back to looking the NS target addresses up in the zone
    /// tree itself.
    fn resolve_iterative(&mut self, q: &Question, transport: ResolverTransport) -> Answer {
        let zones = Arc::clone(&self.zones);
        let mut chain: Vec<Record> = Vec::new();
        let mut current = q.name.clone();
        'chase: for _hop in 0..8 {
            // Shallowest enclosing zone = the root of the authored tree.
            let start = zones
                .iter()
                .filter(|z| current.is_subdomain_of(z.origin()))
                .min_by_key(|z| z.origin().label_count());
            let Some(mut zone) = start else {
                return if chain.is_empty() {
                    Answer::nxdomain(Self::root_soa())
                } else {
                    Answer {
                        rcode: Rcode::NxDomain,
                        records: chain,
                        soa: Some(Self::root_soa()),
                        reason: None,
                    }
                };
            };
            for _referral in 0..=MAX_REFERRALS {
                match zone.lookup(&current, q.rtype) {
                    ZoneLookup::Answer(mut rs) => {
                        let last_is_cname =
                            matches!(rs.last().map(|r| &r.data), Some(RData::Cname(_)));
                        if last_is_cname && q.rtype != RType::Cname && q.rtype != RType::Any {
                            let target = match &rs.last().expect("nonempty").data {
                                RData::Cname(t) => t.clone(),
                                _ => unreachable!("checked CNAME"),
                            };
                            chain.append(&mut rs);
                            current = target;
                            continue 'chase;
                        }
                        chain.append(&mut rs);
                        return Answer::positive(chain);
                    }
                    ZoneLookup::NoData { soa } => {
                        return Answer {
                            rcode: Rcode::NoError,
                            records: chain,
                            soa: Some(soa),
                            reason: None,
                        }
                    }
                    ZoneLookup::NxDomain { soa } => {
                        return Answer {
                            rcode: Rcode::NxDomain,
                            records: chain,
                            soa: Some(soa),
                            reason: None,
                        }
                    }
                    ZoneLookup::Referral { cut, ns, glue } => {
                        self.referrals += 1;
                        if !referral_reachable(&zones, transport, &ns, &glue) {
                            return Answer::servfail_because(ResolutionFailure::NoAaaaGlue);
                        }
                        let Some(child) = zones.iter().find(|z| z.origin() == &cut) else {
                            // Lame delegation: reachable servers, no zone.
                            return Answer::servfail();
                        };
                        zone = child;
                    }
                    ZoneLookup::NotInZone => unreachable!("descent stays within enclosing zones"),
                }
            }
            return Answer::servfail_because(ResolutionFailure::ReferralLoop);
        }
        Answer::servfail()
    }
}

/// Can `transport` contact at least one server in a referral's NS set?
/// With glue present the glue addresses are decisive; a glueless cut falls
/// back to the NS targets' address records anywhere in the authored tree.
fn referral_reachable(
    zones: &[Zone],
    transport: ResolverTransport,
    ns: &[Record],
    glue: &[Record],
) -> bool {
    if !glue.is_empty() {
        return glue.iter().any(|r| transport.can_use(&r.data));
    }
    ns.iter().any(|r| match &r.data {
        RData::Ns(target) => zones
            .iter()
            .flat_map(|z| z.iter_records())
            .any(|rec| rec.name == *target && transport.can_use(&rec.data)),
        _ => false,
    })
}

impl Resolver for GlobalDns {
    fn resolve(&mut self, q: &Question, _now: u64) -> Answer {
        self.queries += 1;
        match self.iterative {
            Some(transport) => self.resolve_iterative(q, transport),
            None => self.resolve_flat(q),
        }
    }
}

#[derive(Debug, Clone)]
enum CacheEntry {
    Positive {
        records: Vec<Record>,
        expires: u64,
    },
    Negative {
        rcode: Rcode,
        soa: Record,
        expires: u64,
    },
}

/// A caching resolver (RFC 1035 TTL cache + RFC 2308 negative cache) in
/// front of any upstream.
#[derive(Debug)]
pub struct CachingResolver<R> {
    upstream: R,
    cache: FastMap<Question, CacheEntry>,
    /// Cache hits for observability.
    pub hits: u64,
    /// Cache misses for observability.
    pub misses: u64,
    /// Cap on positive TTLs (operators commonly clamp; 0 = no cap).
    pub max_ttl: u32,
}

impl<R: Resolver> CachingResolver<R> {
    /// Wrap `upstream`.
    pub fn new(upstream: R) -> CachingResolver<R> {
        CachingResolver {
            upstream,
            cache: FastMap::default(),
            hits: 0,
            misses: 0,
            max_ttl: 0,
        }
    }

    /// Access the wrapped upstream.
    pub fn upstream_mut(&mut self) -> &mut R {
        &mut self.upstream
    }

    /// Restore the post-construction state: cache flushed, hit/miss
    /// counters zeroed. The upstream is *not* touched — reset each
    /// layer explicitly via [`CachingResolver::upstream_mut`].
    pub fn reset(&mut self) {
        self.cache.clear();
        self.hits = 0;
        self.misses = 0;
    }

    /// Number of live cache entries at `now`.
    pub fn live_entries(&self, now: u64) -> usize {
        self.cache
            .values()
            .filter(|e| match e {
                CacheEntry::Positive { expires, .. } => *expires > now,
                CacheEntry::Negative { expires, .. } => *expires > now,
            })
            .count()
    }

    /// Drop expired entries.
    pub fn evict_expired(&mut self, now: u64) {
        self.cache.retain(|_, e| match e {
            CacheEntry::Positive { expires, .. } => *expires > now,
            CacheEntry::Negative { expires, .. } => *expires > now,
        });
    }

    fn effective_ttl(&self, ttl: u32) -> u32 {
        if self.max_ttl == 0 {
            ttl
        } else {
            ttl.min(self.max_ttl)
        }
    }

    /// Counter snapshot (`hits`, `misses`, `queries` = their sum) in the
    /// shared [`v6wire::metrics::Metrics`] form — the same shape every
    /// other instrumented testbed device reports, so fleet aggregation
    /// treats DNS caches like any other counter source.
    pub fn metrics(&self) -> v6wire::metrics::Metrics {
        [
            ("hits", self.hits),
            ("misses", self.misses),
            ("queries", self.hits + self.misses),
        ]
        .into_iter()
        .collect()
    }
}

impl<R: Resolver> Resolver for CachingResolver<R> {
    fn resolve(&mut self, q: &Question, now: u64) -> Answer {
        if let Some(entry) = self.cache.get(q) {
            match entry {
                CacheEntry::Positive { records, expires } if *expires > now => {
                    self.hits += 1;
                    let remaining = (*expires - now) as u32;
                    let records = records
                        .iter()
                        .map(|r| Record::new(r.name.clone(), r.ttl.min(remaining), r.data.clone()))
                        .collect();
                    return Answer::positive(records);
                }
                CacheEntry::Negative {
                    rcode,
                    soa,
                    expires,
                } if *expires > now => {
                    self.hits += 1;
                    return Answer {
                        rcode: *rcode,
                        records: Vec::new(),
                        soa: Some(soa.clone()),
                        reason: None,
                    };
                }
                _ => {}
            }
        }
        self.misses += 1;
        let answer = self.upstream.resolve(q, now);
        match (&answer.rcode, answer.records.is_empty(), &answer.soa) {
            (Rcode::NoError, false, _) => {
                let min_ttl = answer.records.iter().map(|r| r.ttl).min().unwrap_or(0);
                let ttl = self.effective_ttl(clamp::clamp_ttl(min_ttl));
                if ttl > 0 {
                    self.cache.insert(
                        q.clone(),
                        CacheEntry::Positive {
                            records: answer.records.clone(),
                            expires: clamp::expiry(now, ttl),
                        },
                    );
                }
            }
            (Rcode::NoError | Rcode::NxDomain, true, Some(soa)) => {
                // RFC 2308 §5: negative TTL = min(SOA TTL, SOA.minimum),
                // both RFC 2181-clamped first so a high-bit SOA minimum off
                // a hostile wire can't become a cache-forever entry.
                let neg_ttl = match &soa.data {
                    RData::Soa { minimum, .. } => clamp::negative_ttl(soa.ttl, *minimum),
                    _ => clamp::clamp_ttl(soa.ttl),
                };
                if neg_ttl > 0 {
                    self.cache.insert(
                        q.clone(),
                        CacheEntry::Negative {
                            rcode: answer.rcode,
                            soa: soa.clone(),
                            expires: clamp::expiry(now, neg_ttl),
                        },
                    );
                }
            }
            _ => {}
        }
        answer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> DnsName {
        s.parse().unwrap()
    }

    fn internet() -> GlobalDns {
        let mut g = GlobalDns::new();
        let mut sc = Zone::new(n("supercomputing.org"), 300);
        sc.add_str("sc24", 120, RData::A("190.92.158.4".parse().unwrap()));
        sc.add_str("www.sc24", 120, RData::Cname(n("sc24.supercomputing.org")));
        g.add_zone(sc);
        let mut me = Zone::new(n("ip6.me"), 60);
        me.add_str("@", 60, RData::A("23.153.8.71".parse().unwrap()));
        me.add_str("@", 60, RData::Aaaa("2001:4810:0:3::71".parse().unwrap()));
        g.add_zone(me);
        let mut alias = Zone::new(n("alias.test"), 60);
        alias.add_str("portal", 60, RData::Cname(n("ip6.me")));
        alias.add_str("dangling", 60, RData::Cname(n("gone.nowhere.test")));
        g.add_zone(alias);
        g
    }

    #[test]
    fn global_resolves_direct() {
        let mut g = internet();
        let a = g.resolve(&Question::new(n("sc24.supercomputing.org"), RType::A), 0);
        assert!(a.is_positive());
        assert_eq!(a.records[0].data, RData::A("190.92.158.4".parse().unwrap()));
    }

    #[test]
    fn global_chases_cname_across_zones() {
        let mut g = internet();
        let a = g.resolve(&Question::new(n("portal.alias.test"), RType::A), 0);
        assert!(a.is_positive());
        assert_eq!(a.records.len(), 2);
        assert!(matches!(a.records[0].data, RData::Cname(_)));
        assert_eq!(a.records[1].data, RData::A("23.153.8.71".parse().unwrap()));
    }

    #[test]
    fn global_dangling_cname_is_nxdomain_with_chain() {
        let mut g = internet();
        let a = g.resolve(&Question::new(n("dangling.alias.test"), RType::A), 0);
        assert_eq!(a.rcode, Rcode::NxDomain);
        assert_eq!(a.records.len(), 1);
    }

    #[test]
    fn global_unknown_tld_is_nxdomain() {
        let mut g = internet();
        let a = g.resolve(&Question::new(n("echolink.example.net"), RType::A), 0);
        assert_eq!(a.rcode, Rcode::NxDomain);
        assert!(a.soa.is_some());
    }

    #[test]
    fn cache_hits_within_ttl() {
        let mut c = CachingResolver::new(internet());
        let q = Question::new(n("ip6.me"), RType::A);
        let first = c.resolve(&q, 1000);
        assert!(first.is_positive());
        assert_eq!((c.hits, c.misses), (0, 1));
        let second = c.resolve(&q, 1030);
        assert!(second.is_positive());
        assert_eq!((c.hits, c.misses), (1, 1));
        // TTL decremented by elapsed time.
        assert_eq!(second.records[0].ttl, 30);
        // Expired at +61s: re-fetch.
        let third = c.resolve(&q, 1061);
        assert!(third.is_positive());
        assert_eq!((c.hits, c.misses), (1, 2));
        assert_eq!(third.records[0].ttl, 60);
    }

    #[test]
    fn negative_cache_rfc2308() {
        let mut c = CachingResolver::new(internet());
        let q = Question::new(n("missing.ip6.me"), RType::A);
        let a = c.resolve(&q, 0);
        assert_eq!(a.rcode, Rcode::NxDomain);
        assert_eq!(c.upstream_mut().queries, 1);
        // Negative TTL = min(SOA ttl, minimum) = 60.
        let a2 = c.resolve(&q, 59);
        assert_eq!(a2.rcode, Rcode::NxDomain);
        assert_eq!(c.upstream_mut().queries, 1, "served from negative cache");
        let _a3 = c.resolve(&q, 61);
        assert_eq!(c.upstream_mut().queries, 2, "negative entry expired");
    }

    #[test]
    fn nodata_cached_separately_from_nxdomain() {
        let mut c = CachingResolver::new(internet());
        // sc24 has A but no AAAA → NODATA, cacheable.
        let q = Question::new(n("sc24.supercomputing.org"), RType::Aaaa);
        let a = c.resolve(&q, 0);
        assert_eq!(a.rcode, Rcode::NoError);
        assert!(a.records.is_empty());
        c.resolve(&q, 10);
        assert_eq!(c.hits, 1);
        // The A query is a different cache key.
        let a2 = c.resolve(&Question::new(n("sc24.supercomputing.org"), RType::A), 10);
        assert!(a2.is_positive());
    }

    #[test]
    fn max_ttl_clamps() {
        let mut c = CachingResolver::new(internet());
        c.max_ttl = 10;
        let q = Question::new(n("ip6.me"), RType::A);
        c.resolve(&q, 0);
        c.resolve(&q, 11); // past the clamped TTL
        assert_eq!(c.misses, 2);
    }

    #[test]
    fn eviction_and_live_count() {
        let mut c = CachingResolver::new(internet());
        c.resolve(&Question::new(n("ip6.me"), RType::A), 0);
        c.resolve(&Question::new(n("ip6.me"), RType::Aaaa), 0);
        assert_eq!(c.live_entries(30), 2);
        assert_eq!(c.live_entries(61), 0);
        c.evict_expired(61);
        assert_eq!(c.live_entries(0), 0);
    }

    /// The delegated tree used by the iterative tests:
    /// `test` delegates `dual.test` (A+AAAA glue), `v4only.test` (A-only
    /// glue) and `glueless.test` (out-of-zone NS, address under dual.test).
    fn delegated_internet() -> GlobalDns {
        let mut g = GlobalDns::new();
        let mut root = Zone::new(n("test"), 300);
        root.add_str("dual", 3600, RData::Ns(n("ns1.dual.test")));
        root.add_str("ns1.dual", 3600, RData::A("203.0.113.1".parse().unwrap()));
        root.add_str(
            "ns1.dual",
            3600,
            RData::Aaaa("2001:db8::1".parse().unwrap()),
        );
        root.add_str("v4only", 3600, RData::Ns(n("ns1.v4only.test")));
        root.add_str(
            "ns1.v4only",
            3600,
            RData::A("203.0.113.53".parse().unwrap()),
        );
        root.add_str("glueless", 3600, RData::Ns(n("ns2.dual.test")));
        g.add_zone(root);

        let mut dual = Zone::new(n("dual.test"), 300);
        dual.add_str("www", 120, RData::Aaaa("2001:db8::80".parse().unwrap()));
        dual.add_str("ns2", 3600, RData::Aaaa("2001:db8::2".parse().unwrap()));
        g.add_zone(dual);

        let mut v4only = Zone::new(n("v4only.test"), 300);
        v4only.add_str("www", 120, RData::A("198.51.100.80".parse().unwrap()));
        v4only.add_str(
            "www",
            120,
            RData::Aaaa("2001:db8:dead::80".parse().unwrap()),
        );
        g.add_zone(v4only);

        let mut glueless = Zone::new(n("glueless.test"), 300);
        glueless.add_str("www", 120, RData::Aaaa("2001:db8:11::80".parse().unwrap()));
        g.add_zone(glueless);
        g
    }

    #[test]
    fn iterative_dual_transport_descends_through_referrals() {
        let mut g = delegated_internet();
        g.set_iterative(ResolverTransport::DUAL);
        let a = g.resolve(&Question::new(n("www.dual.test"), RType::Aaaa), 0);
        assert!(a.is_positive());
        assert_eq!(
            a.records[0].data,
            RData::Aaaa("2001:db8::80".parse().unwrap())
        );
        assert_eq!(g.referrals, 1);
    }

    #[test]
    fn iterative_v6_only_fails_on_v4_only_glue_with_reason() {
        let mut g = delegated_internet();
        g.set_iterative(ResolverTransport::V6_ONLY);
        let a = g.resolve(&Question::new(n("www.v4only.test"), RType::Aaaa), 0);
        assert_eq!(a.rcode, Rcode::ServFail);
        assert_eq!(a.reason, Some(ResolutionFailure::NoAaaaGlue));
        // The child zone HAS the AAAA — the resolver just can't ask for it.
        let mut dual = delegated_internet();
        dual.set_iterative(ResolverTransport::DUAL);
        let ok = dual.resolve(&Question::new(n("www.v4only.test"), RType::Aaaa), 0);
        assert!(ok.is_positive());
    }

    #[test]
    fn iterative_glueless_cut_uses_tree_addresses() {
        let mut g = delegated_internet();
        g.set_iterative(ResolverTransport::V6_ONLY);
        // glueless.test's NS is ns2.dual.test, whose AAAA lives in dual.test.
        let a = g.resolve(&Question::new(n("www.glueless.test"), RType::Aaaa), 0);
        assert!(a.is_positive());
        // A v4-only resolver finds no usable address for it anywhere.
        let mut v4 = delegated_internet();
        v4.set_iterative(ResolverTransport::V4_ONLY);
        let bad = v4.resolve(&Question::new(n("www.glueless.test"), RType::Aaaa), 0);
        assert_eq!(bad.reason, Some(ResolutionFailure::NoAaaaGlue));
    }

    #[test]
    fn iterative_matches_flat_outside_delegations() {
        let mut flat = delegated_internet();
        let mut iter = delegated_internet();
        iter.set_iterative(ResolverTransport::DUAL);
        for (name, rtype) in [
            ("www.dual.test", RType::Aaaa),
            ("www.v4only.test", RType::A),
            ("missing.test", RType::A),
            ("www.dual.test", RType::A), // NODATA
        ] {
            let q = Question::new(n(name), rtype);
            let a = flat.resolve(&q, 0);
            let b = iter.resolve(&q, 0);
            assert_eq!((a.rcode, a.records), (b.rcode, b.records), "{name}");
        }
    }

    #[test]
    fn iterative_referral_chain_is_capped() {
        let mut g = GlobalDns::new();
        // d1.test ← d2.d1.test ← … each zone delegating one level deeper,
        // every step with dual glue, one level past the budget.
        let depth = MAX_REFERRALS + 2;
        let mut origin = String::from("test");
        let mut parent = Zone::new(n("test"), 300);
        for i in 1..=depth {
            let child_origin = format!("d{i}.{origin}");
            parent.add_str(
                &format!("d{i}"),
                3600,
                RData::Ns(n(&format!("ns.{child_origin}"))),
            );
            parent.add_str(
                &format!("ns.d{i}"),
                3600,
                RData::Aaaa("2001:db8::53".parse().unwrap()),
            );
            g.add_zone(parent);
            parent = Zone::new(n(&child_origin), 300);
            origin = child_origin;
        }
        parent.add_str("www", 120, RData::Aaaa("2001:db8::80".parse().unwrap()));
        g.add_zone(parent);
        g.set_iterative(ResolverTransport::DUAL);
        let a = g.resolve(&Question::new(n(&format!("www.{origin}")), RType::Aaaa), 0);
        assert_eq!(a.rcode, Rcode::ServFail);
        assert_eq!(a.reason, Some(ResolutionFailure::ReferralLoop));
    }

    #[test]
    fn reset_clears_counters_but_keeps_mode() {
        let mut g = delegated_internet();
        g.set_iterative(ResolverTransport::V6_ONLY);
        g.resolve(&Question::new(n("www.dual.test"), RType::Aaaa), 0);
        assert!(g.queries > 0);
        g.reset();
        assert_eq!((g.queries, g.referrals), (0, 0));
        assert_eq!(g.iterative_transport(), Some(ResolverTransport::V6_ONLY));
    }

    #[test]
    fn answer_constructors() {
        assert!(Answer::positive(vec![Record::new(
            n("x.test"),
            1,
            RData::A(Ipv4Addr::LOCALHOST)
        )])
        .is_positive());
        assert!(!Answer::servfail().is_positive());
    }
}
