//! Resolver engines: the simulated global DNS, and a TTL cache with RFC 2308
//! negative caching that any server in the testbed can layer on top.

use crate::codec::{Question, RData, RType, Rcode, Record};
use crate::name::DnsName;
use crate::zone::{Zone, ZoneLookup};
use std::sync::Arc;
use v6wire::fasthash::FastMap;

/// The outcome of a resolution: an rcode, answer records, and the SOA that
/// authorizes negative caching when the answer set is empty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Answer {
    /// Response code.
    pub rcode: Rcode,
    /// Answer-section records (CNAME chains included).
    pub records: Vec<Record>,
    /// SOA for negative answers.
    pub soa: Option<Record>,
}

impl Answer {
    /// A positive answer.
    pub fn positive(records: Vec<Record>) -> Answer {
        Answer {
            rcode: Rcode::NoError,
            records,
            soa: None,
        }
    }

    /// NXDOMAIN with authority SOA.
    pub fn nxdomain(soa: Record) -> Answer {
        Answer {
            rcode: Rcode::NxDomain,
            records: Vec::new(),
            soa: Some(soa),
        }
    }

    /// NOERROR/NODATA with authority SOA.
    pub fn nodata(soa: Record) -> Answer {
        Answer {
            rcode: Rcode::NoError,
            records: Vec::new(),
            soa: Some(soa),
        }
    }

    /// Server failure.
    pub fn servfail() -> Answer {
        Answer {
            rcode: Rcode::ServFail,
            records: Vec::new(),
            soa: None,
        }
    }

    /// Is this a usable positive answer?
    pub fn is_positive(&self) -> bool {
        self.rcode == Rcode::NoError && !self.records.is_empty()
    }
}

/// Anything that can answer DNS questions. `now` is simulation time in
/// seconds, used for TTL bookkeeping.
pub trait Resolver {
    /// Resolve one question.
    fn resolve(&mut self, q: &Question, now: u64) -> Answer;
}

impl<T: Resolver + ?Sized> Resolver for Box<T> {
    fn resolve(&mut self, q: &Question, now: u64) -> Answer {
        (**self).resolve(q, now)
    }
}

/// The simulated "rest of the internet's" DNS: a set of authoritative zones
/// resolved recursively, with cross-zone CNAME chasing.
///
/// This stands in for the real DNS hierarchy the testbed's Raspberry Pi
/// BIND9 forwarded to via the 5G uplink.
#[derive(Debug, Clone, Default)]
pub struct GlobalDns {
    /// Zone content is shared copy-on-write, so cloning a prebuilt
    /// database (one testbed instance per fleet cell) costs a reference
    /// bump instead of re-parsing every record.
    zones: Arc<Vec<Zone>>,
    /// Query counter for observability.
    pub queries: u64,
}

impl GlobalDns {
    /// Empty database.
    pub fn new() -> GlobalDns {
        GlobalDns::default()
    }

    /// Add an authoritative zone.
    pub fn add_zone(&mut self, zone: Zone) -> &mut Self {
        Arc::make_mut(&mut self.zones).push(zone);
        self
    }

    /// Zero the query counter; zone content (shared copy-on-write) is
    /// configuration and survives (warm-cell arena reuse).
    pub fn reset(&mut self) {
        self.queries = 0;
    }

    /// Longest-match zone for `name`.
    fn zone_for(&self, name: &DnsName) -> Option<&Zone> {
        self.zones
            .iter()
            .filter(|z| name.is_subdomain_of(z.origin()))
            .max_by_key(|z| z.origin().label_count())
    }

    fn root_soa() -> Record {
        Record::new(
            DnsName::root(),
            900,
            RData::Soa {
                mname: "a.root-servers.net".parse().expect("static name"),
                rname: "nstld.verisign-grs.com".parse().expect("static name"),
                serial: 20_240_815,
                refresh: 1800,
                retry: 900,
                expire: 604_800,
                minimum: 86_400,
            },
        )
    }
}

impl Resolver for GlobalDns {
    fn resolve(&mut self, q: &Question, _now: u64) -> Answer {
        self.queries += 1;
        let mut chain: Vec<Record> = Vec::new();
        let mut current = q.name.clone();
        for _hop in 0..8 {
            let Some(zone) = self.zone_for(&current) else {
                // No delegation anywhere: the root says NXDOMAIN.
                return if chain.is_empty() {
                    Answer::nxdomain(Self::root_soa())
                } else {
                    // Dangling out-of-zone CNAME target.
                    Answer {
                        rcode: Rcode::NxDomain,
                        records: chain,
                        soa: Some(Self::root_soa()),
                    }
                };
            };
            match zone.lookup(&current, q.rtype) {
                ZoneLookup::Answer(mut rs) => {
                    // If the chain ends in an out-of-zone CNAME, keep chasing.
                    let last_is_cname = matches!(rs.last().map(|r| &r.data), Some(RData::Cname(_)));
                    if last_is_cname && q.rtype != RType::Cname && q.rtype != RType::Any {
                        let target = match &rs.last().expect("nonempty").data {
                            RData::Cname(t) => t.clone(),
                            _ => unreachable!("checked CNAME"),
                        };
                        chain.append(&mut rs);
                        current = target;
                        continue;
                    }
                    chain.append(&mut rs);
                    return Answer::positive(chain);
                }
                ZoneLookup::NoData { soa } => {
                    return Answer {
                        rcode: Rcode::NoError,
                        records: chain,
                        soa: Some(soa),
                    }
                }
                ZoneLookup::NxDomain { soa } => {
                    return Answer {
                        rcode: Rcode::NxDomain,
                        records: chain,
                        soa: Some(soa),
                    }
                }
                ZoneLookup::NotInZone => unreachable!("zone_for guarantees membership"),
            }
        }
        Answer::servfail()
    }
}

#[derive(Debug, Clone)]
enum CacheEntry {
    Positive {
        records: Vec<Record>,
        expires: u64,
    },
    Negative {
        rcode: Rcode,
        soa: Record,
        expires: u64,
    },
}

/// A caching resolver (RFC 1035 TTL cache + RFC 2308 negative cache) in
/// front of any upstream.
#[derive(Debug)]
pub struct CachingResolver<R> {
    upstream: R,
    cache: FastMap<Question, CacheEntry>,
    /// Cache hits for observability.
    pub hits: u64,
    /// Cache misses for observability.
    pub misses: u64,
    /// Cap on positive TTLs (operators commonly clamp; 0 = no cap).
    pub max_ttl: u32,
}

impl<R: Resolver> CachingResolver<R> {
    /// Wrap `upstream`.
    pub fn new(upstream: R) -> CachingResolver<R> {
        CachingResolver {
            upstream,
            cache: FastMap::default(),
            hits: 0,
            misses: 0,
            max_ttl: 0,
        }
    }

    /// Access the wrapped upstream.
    pub fn upstream_mut(&mut self) -> &mut R {
        &mut self.upstream
    }

    /// Restore the post-construction state: cache flushed, hit/miss
    /// counters zeroed. The upstream is *not* touched — reset each
    /// layer explicitly via [`CachingResolver::upstream_mut`].
    pub fn reset(&mut self) {
        self.cache.clear();
        self.hits = 0;
        self.misses = 0;
    }

    /// Number of live cache entries at `now`.
    pub fn live_entries(&self, now: u64) -> usize {
        self.cache
            .values()
            .filter(|e| match e {
                CacheEntry::Positive { expires, .. } => *expires > now,
                CacheEntry::Negative { expires, .. } => *expires > now,
            })
            .count()
    }

    /// Drop expired entries.
    pub fn evict_expired(&mut self, now: u64) {
        self.cache.retain(|_, e| match e {
            CacheEntry::Positive { expires, .. } => *expires > now,
            CacheEntry::Negative { expires, .. } => *expires > now,
        });
    }

    fn effective_ttl(&self, ttl: u32) -> u32 {
        if self.max_ttl == 0 {
            ttl
        } else {
            ttl.min(self.max_ttl)
        }
    }

    /// Counter snapshot (`hits`, `misses`, `queries` = their sum) in the
    /// shared [`v6wire::metrics::Metrics`] form — the same shape every
    /// other instrumented testbed device reports, so fleet aggregation
    /// treats DNS caches like any other counter source.
    pub fn metrics(&self) -> v6wire::metrics::Metrics {
        [
            ("hits", self.hits),
            ("misses", self.misses),
            ("queries", self.hits + self.misses),
        ]
        .into_iter()
        .collect()
    }
}

impl<R: Resolver> Resolver for CachingResolver<R> {
    fn resolve(&mut self, q: &Question, now: u64) -> Answer {
        if let Some(entry) = self.cache.get(q) {
            match entry {
                CacheEntry::Positive { records, expires } if *expires > now => {
                    self.hits += 1;
                    let remaining = (*expires - now) as u32;
                    let records = records
                        .iter()
                        .map(|r| Record::new(r.name.clone(), r.ttl.min(remaining), r.data.clone()))
                        .collect();
                    return Answer::positive(records);
                }
                CacheEntry::Negative {
                    rcode,
                    soa,
                    expires,
                } if *expires > now => {
                    self.hits += 1;
                    return Answer {
                        rcode: *rcode,
                        records: Vec::new(),
                        soa: Some(soa.clone()),
                    };
                }
                _ => {}
            }
        }
        self.misses += 1;
        let answer = self.upstream.resolve(q, now);
        match (&answer.rcode, answer.records.is_empty(), &answer.soa) {
            (Rcode::NoError, false, _) => {
                let min_ttl = answer.records.iter().map(|r| r.ttl).min().unwrap_or(0);
                let ttl = self.effective_ttl(min_ttl);
                if ttl > 0 {
                    self.cache.insert(
                        q.clone(),
                        CacheEntry::Positive {
                            records: answer.records.clone(),
                            expires: now + u64::from(ttl),
                        },
                    );
                }
            }
            (Rcode::NoError | Rcode::NxDomain, true, Some(soa)) => {
                // RFC 2308 §5: negative TTL = min(SOA TTL, SOA.minimum).
                let neg_ttl = match &soa.data {
                    RData::Soa { minimum, .. } => soa.ttl.min(*minimum),
                    _ => soa.ttl,
                };
                if neg_ttl > 0 {
                    self.cache.insert(
                        q.clone(),
                        CacheEntry::Negative {
                            rcode: answer.rcode,
                            soa: soa.clone(),
                            expires: now + u64::from(neg_ttl),
                        },
                    );
                }
            }
            _ => {}
        }
        answer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> DnsName {
        s.parse().unwrap()
    }

    fn internet() -> GlobalDns {
        let mut g = GlobalDns::new();
        let mut sc = Zone::new(n("supercomputing.org"), 300);
        sc.add_str("sc24", 120, RData::A("190.92.158.4".parse().unwrap()));
        sc.add_str("www.sc24", 120, RData::Cname(n("sc24.supercomputing.org")));
        g.add_zone(sc);
        let mut me = Zone::new(n("ip6.me"), 60);
        me.add_str("@", 60, RData::A("23.153.8.71".parse().unwrap()));
        me.add_str("@", 60, RData::Aaaa("2001:4810:0:3::71".parse().unwrap()));
        g.add_zone(me);
        let mut alias = Zone::new(n("alias.test"), 60);
        alias.add_str("portal", 60, RData::Cname(n("ip6.me")));
        alias.add_str("dangling", 60, RData::Cname(n("gone.nowhere.test")));
        g.add_zone(alias);
        g
    }

    #[test]
    fn global_resolves_direct() {
        let mut g = internet();
        let a = g.resolve(&Question::new(n("sc24.supercomputing.org"), RType::A), 0);
        assert!(a.is_positive());
        assert_eq!(a.records[0].data, RData::A("190.92.158.4".parse().unwrap()));
    }

    #[test]
    fn global_chases_cname_across_zones() {
        let mut g = internet();
        let a = g.resolve(&Question::new(n("portal.alias.test"), RType::A), 0);
        assert!(a.is_positive());
        assert_eq!(a.records.len(), 2);
        assert!(matches!(a.records[0].data, RData::Cname(_)));
        assert_eq!(a.records[1].data, RData::A("23.153.8.71".parse().unwrap()));
    }

    #[test]
    fn global_dangling_cname_is_nxdomain_with_chain() {
        let mut g = internet();
        let a = g.resolve(&Question::new(n("dangling.alias.test"), RType::A), 0);
        assert_eq!(a.rcode, Rcode::NxDomain);
        assert_eq!(a.records.len(), 1);
    }

    #[test]
    fn global_unknown_tld_is_nxdomain() {
        let mut g = internet();
        let a = g.resolve(&Question::new(n("echolink.example.net"), RType::A), 0);
        assert_eq!(a.rcode, Rcode::NxDomain);
        assert!(a.soa.is_some());
    }

    #[test]
    fn cache_hits_within_ttl() {
        let mut c = CachingResolver::new(internet());
        let q = Question::new(n("ip6.me"), RType::A);
        let first = c.resolve(&q, 1000);
        assert!(first.is_positive());
        assert_eq!((c.hits, c.misses), (0, 1));
        let second = c.resolve(&q, 1030);
        assert!(second.is_positive());
        assert_eq!((c.hits, c.misses), (1, 1));
        // TTL decremented by elapsed time.
        assert_eq!(second.records[0].ttl, 30);
        // Expired at +61s: re-fetch.
        let third = c.resolve(&q, 1061);
        assert!(third.is_positive());
        assert_eq!((c.hits, c.misses), (1, 2));
        assert_eq!(third.records[0].ttl, 60);
    }

    #[test]
    fn negative_cache_rfc2308() {
        let mut c = CachingResolver::new(internet());
        let q = Question::new(n("missing.ip6.me"), RType::A);
        let a = c.resolve(&q, 0);
        assert_eq!(a.rcode, Rcode::NxDomain);
        assert_eq!(c.upstream_mut().queries, 1);
        // Negative TTL = min(SOA ttl, minimum) = 60.
        let a2 = c.resolve(&q, 59);
        assert_eq!(a2.rcode, Rcode::NxDomain);
        assert_eq!(c.upstream_mut().queries, 1, "served from negative cache");
        let _a3 = c.resolve(&q, 61);
        assert_eq!(c.upstream_mut().queries, 2, "negative entry expired");
    }

    #[test]
    fn nodata_cached_separately_from_nxdomain() {
        let mut c = CachingResolver::new(internet());
        // sc24 has A but no AAAA → NODATA, cacheable.
        let q = Question::new(n("sc24.supercomputing.org"), RType::Aaaa);
        let a = c.resolve(&q, 0);
        assert_eq!(a.rcode, Rcode::NoError);
        assert!(a.records.is_empty());
        c.resolve(&q, 10);
        assert_eq!(c.hits, 1);
        // The A query is a different cache key.
        let a2 = c.resolve(&Question::new(n("sc24.supercomputing.org"), RType::A), 10);
        assert!(a2.is_positive());
    }

    #[test]
    fn max_ttl_clamps() {
        let mut c = CachingResolver::new(internet());
        c.max_ttl = 10;
        let q = Question::new(n("ip6.me"), RType::A);
        c.resolve(&q, 0);
        c.resolve(&q, 11); // past the clamped TTL
        assert_eq!(c.misses, 2);
    }

    #[test]
    fn eviction_and_live_count() {
        let mut c = CachingResolver::new(internet());
        c.resolve(&Question::new(n("ip6.me"), RType::A), 0);
        c.resolve(&Question::new(n("ip6.me"), RType::Aaaa), 0);
        assert_eq!(c.live_entries(30), 2);
        assert_eq!(c.live_entries(61), 0);
        c.evict_expired(61);
        assert_eq!(c.live_entries(0), 0);
    }

    #[test]
    fn answer_constructors() {
        assert!(Answer::positive(vec![Record::new(
            n("x.test"),
            1,
            RData::A(Ipv4Addr::LOCALHOST)
        )])
        .is_positive());
        assert!(!Answer::servfail().is_positive());
    }
}
