//! Stub-resolver behaviours: DNS suffix search lists and query candidate
//! ordering. Different operating systems apply the search list differently;
//! the combination of "suffix-first" clients with the wildcard-A poisoner is
//! exactly what produced the paper's Figure 9.

use crate::name::DnsName;

/// When the search list is applied relative to the literal name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchOrder {
    /// Try the name as-is first, then with each suffix (glibc with
    /// `ndots`-satisfied names, `ping` on Windows).
    AsIsFirst,
    /// Try suffixed names first, then as-is (Windows `nslookup` devolution —
    /// the Figure 9 behaviour).
    SuffixFirst,
    /// Never apply the search list (FQDN given with trailing dot).
    Never,
}

/// A stub resolver configuration: search list + ndots threshold.
#[derive(Debug, Clone)]
pub struct SearchList {
    /// Suffixes, in configuration order (e.g. `rfc8925.com` from DHCPv4
    /// option 15 or the RA DNSSL).
    pub suffixes: Vec<DnsName>,
    /// Names with at least this many dots skip suffixing in `AsIsFirst`
    /// mode's first pass (glibc default 1).
    pub ndots: usize,
}

impl SearchList {
    /// A search list with glibc's default `ndots: 1`.
    pub fn new(suffixes: Vec<DnsName>) -> SearchList {
        SearchList { suffixes, ndots: 1 }
    }

    /// An empty search list.
    pub fn empty() -> SearchList {
        SearchList::new(Vec::new())
    }

    /// The candidate FQDNs to try, in order, for a user-typed `name`.
    ///
    /// `was_fqdn` marks a trailing-dot input which disables searching
    /// entirely.
    pub fn candidates(&self, name: &DnsName, was_fqdn: bool, order: SearchOrder) -> Vec<DnsName> {
        if was_fqdn || matches!(order, SearchOrder::Never) || self.suffixes.is_empty() {
            return vec![name.clone()];
        }
        let suffixed: Vec<DnsName> = self
            .suffixes
            .iter()
            .filter_map(|s| name.with_suffix(s).ok())
            .collect();
        match order {
            SearchOrder::AsIsFirst => {
                if name.ndots() >= self.ndots {
                    std::iter::once(name.clone()).chain(suffixed).collect()
                } else {
                    suffixed.into_iter().chain(Some(name.clone())).collect()
                }
            }
            SearchOrder::SuffixFirst => suffixed.into_iter().chain(Some(name.clone())).collect(),
            SearchOrder::Never => unreachable!("handled above"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> DnsName {
        s.parse().unwrap()
    }

    fn testbed_list() -> SearchList {
        SearchList::new(vec![n("rfc8925.com")])
    }

    #[test]
    fn fig9_nslookup_tries_suffixed_first() {
        let list = testbed_list();
        let c = list.candidates(&n("vpn.anl.gov"), false, SearchOrder::SuffixFirst);
        assert_eq!(
            c,
            vec![n("vpn.anl.gov.rfc8925.com"), n("vpn.anl.gov")],
            "Windows nslookup devolution order"
        );
    }

    #[test]
    fn multi_dot_name_goes_as_is_first_under_glibc() {
        let list = testbed_list();
        let c = list.candidates(&n("vpn.anl.gov"), false, SearchOrder::AsIsFirst);
        assert_eq!(c, vec![n("vpn.anl.gov"), n("vpn.anl.gov.rfc8925.com")]);
    }

    #[test]
    fn single_label_searches_first_under_glibc() {
        let list = testbed_list();
        let c = list.candidates(&n("printer"), false, SearchOrder::AsIsFirst);
        assert_eq!(c, vec![n("printer.rfc8925.com"), n("printer")]);
    }

    #[test]
    fn fqdn_disables_search() {
        let list = testbed_list();
        let c = list.candidates(&n("vpn.anl.gov"), true, SearchOrder::SuffixFirst);
        assert_eq!(c, vec![n("vpn.anl.gov")]);
    }

    #[test]
    fn empty_list_is_identity() {
        let list = SearchList::empty();
        let c = list.candidates(&n("host"), false, SearchOrder::SuffixFirst);
        assert_eq!(c, vec![n("host")]);
    }

    #[test]
    fn multiple_suffixes_in_order() {
        let list = SearchList::new(vec![n("scinet.sc24"), n("rfc8925.com")]);
        let c = list.candidates(&n("portal"), false, SearchOrder::SuffixFirst);
        assert_eq!(
            c,
            vec![
                n("portal.scinet.sc24"),
                n("portal.rfc8925.com"),
                n("portal")
            ]
        );
    }

    #[test]
    fn never_order() {
        let list = testbed_list();
        let c = list.candidates(&n("printer"), false, SearchOrder::Never);
        assert_eq!(c, vec![n("printer")]);
    }
}
