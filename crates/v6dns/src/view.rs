//! Borrowed, zero-copy DNS message views.
//!
//! [`MessageView::parse`] validates a whole RFC 1035 message in one pass —
//! header, question section, every resource record including nested
//! compressed names and per-type rdata shape — without allocating. Names are
//! captured as [`NameRef`]: the message slice plus the positions of each
//! label's length byte (the dnstrie "borrow name" technique), so label bytes
//! are read straight from the wire on demand.
//!
//! The contract with [`crate::codec::Message::decode`] is strict
//! observational equality, machine-checked by `tests/conformance.rs`:
//! `MessageView::parse` accepts exactly the inputs `Message::decode` accepts,
//! returns the **same** [`DnsError`] value on the rest, and
//! [`MessageView::to_message`] (which re-walks the wire with its own
//! constructors — it never calls the owned decoder) equals the owned parse.

use crate::codec::{
    read_u16, read_u32, read_u8, DnsError, Message, Question, RData, RType, Rcode, Record,
};
use crate::name::DnsName;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Max labels a [`NameRef`] records. Any name within the 255-octet total
/// bound has at most 127 labels (each costs ≥ 2 octets), so the cap is never
/// hit by a valid name; longer walks keep counting octets and fail the total
/// check exactly like the owned decoder.
const MAX_LABELS: usize = 128;

/// A domain name borrowed from message bytes: label positions into the
/// original buffer, compression already resolved.
#[derive(Clone, Copy)]
pub struct NameRef<'a> {
    msg: &'a [u8],
    /// Position of each label's length byte in `msg`, most-specific first.
    lpos: [u32; MAX_LABELS],
    labs: u8,
}

impl<'a> NameRef<'a> {
    /// Decode a possibly-compressed name starting at `*pos`; leaves `*pos`
    /// just past the name in the original stream. Accept/reject behaviour is
    /// identical to the owned `decode_name`, including pointer-direction,
    /// hop-budget and total-length policy.
    pub fn parse(msg: &'a [u8], pos: &mut usize) -> Result<NameRef<'a>, DnsError> {
        let mut lpos = [0u32; MAX_LABELS];
        let mut labs = 0usize;
        let mut total = 1usize; // trailing root byte
        let mut cursor = *pos;
        let mut jumped = false;
        let mut end_pos = *pos;
        let mut hops = 0usize;
        loop {
            let len = *msg.get(cursor).ok_or(DnsError::Truncated("name"))? as usize;
            if len & 0xc0 == 0xc0 {
                let b2 = *msg.get(cursor + 1).ok_or(DnsError::Truncated("pointer"))? as usize;
                let target = ((len & 0x3f) << 8) | b2;
                if !jumped {
                    end_pos = cursor + 2;
                    jumped = true;
                }
                if target >= cursor {
                    return Err(DnsError::BadPointer(target));
                }
                hops += 1;
                if hops > 64 {
                    return Err(DnsError::BadPointer(target));
                }
                cursor = target;
                continue;
            }
            if len & 0xc0 != 0 {
                return Err(DnsError::BadField("label-length", len as u64));
            }
            cursor += 1;
            if len == 0 {
                if !jumped {
                    end_pos = cursor;
                }
                break;
            }
            if cursor + len > msg.len() {
                return Err(DnsError::Truncated("label"));
            }
            // Same wire-level ASCII rule as the owned `decode_name`: labels
            // holding non-ASCII bytes are rejected outright on both paths.
            if let Some(&bad) = msg[cursor..cursor + len].iter().find(|b| !b.is_ascii()) {
                return Err(DnsError::BadField("label-byte", bad as u64));
            }
            if labs < MAX_LABELS {
                lpos[labs] = (cursor - 1) as u32;
            }
            labs += 1;
            total += len + 1;
            cursor += len;
        }
        *pos = end_pos;
        if total > 255 {
            // Same error the owned path reports when `DnsName::from_labels`
            // rejects the total length.
            return Err(DnsError::BadField("name", 0));
        }
        Ok(NameRef {
            msg,
            lpos,
            labs: labs as u8,
        })
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        usize::from(self.labs)
    }

    /// Is this the root name?
    pub fn is_root(&self) -> bool {
        self.labs == 0
    }

    /// Iterate the raw label bytes, most-specific first, straight from the
    /// wire (original casing, no unescaping).
    pub fn labels(&self) -> impl Iterator<Item = &'a [u8]> + '_ {
        (0..usize::from(self.labs)).map(|i| {
            let at = self.lpos[i] as usize;
            let len = usize::from(self.msg[at]);
            &self.msg[at + 1..at + 1 + len]
        })
    }

    /// Build the owned, lower-cased [`DnsName`] (one allocation per label).
    pub fn to_name(&self) -> DnsName {
        let labels = self
            .labels()
            .map(|raw| {
                // `parse` rejected any non-ASCII byte, so the lossless
                // conversion cannot fail and lengths match the wire.
                let mut label = raw.to_vec();
                label.make_ascii_lowercase();
                String::from_utf8(label).expect("ascii bytes are valid utf-8")
            })
            .collect::<Vec<_>>();
        DnsName::from_lowercased_labels(labels).expect("NameRef enforced the 255-octet bound")
    }
}

impl std::fmt::Debug for NameRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_root() {
            return write!(f, ".");
        }
        for (i, l) in self.labels().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{}", String::from_utf8_lossy(l))?;
        }
        Ok(())
    }
}

/// A question borrowed from message bytes.
#[derive(Debug, Clone, Copy)]
pub struct QuestionRef<'a> {
    /// Queried name.
    pub name: NameRef<'a>,
    /// Queried type.
    pub rtype: RType,
}

impl QuestionRef<'_> {
    /// Build the owned question.
    pub fn to_question(&self) -> Question {
        Question {
            name: self.name.to_name(),
            rtype: self.rtype,
        }
    }
}

/// Record data borrowed from message bytes.
// The Soa variant carries two NameRefs, each a label-position array sized
// for the 255-octet worst case. Boxing them would trade the lint for an
// allocation on the zero-copy path and cost `Copy`.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Copy)]
pub enum RDataRef<'a> {
    /// A record.
    A(Ipv4Addr),
    /// AAAA record.
    Aaaa(Ipv6Addr),
    /// CNAME.
    Cname(NameRef<'a>),
    /// NS.
    Ns(NameRef<'a>),
    /// PTR.
    Ptr(NameRef<'a>),
    /// MX.
    Mx {
        /// Preference.
        preference: u16,
        /// Exchange host.
        exchange: NameRef<'a>,
    },
    /// TXT: the raw rdata (a validated run of character-strings).
    Txt(&'a [u8]),
    /// SOA.
    Soa {
        /// Primary name server.
        mname: NameRef<'a>,
        /// Responsible mailbox.
        rname: NameRef<'a>,
        /// Serial.
        serial: u32,
        /// Refresh interval.
        refresh: u32,
        /// Retry interval.
        retry: u32,
        /// Expire limit.
        expire: u32,
        /// Negative-caching TTL.
        minimum: u32,
    },
    /// EDNS0 OPT pseudo-record (RFC 6891): payload size from the CLASS
    /// field, option list as verbatim bytes.
    Opt {
        /// Requestor's maximum UDP payload size.
        payload_size: u16,
        /// The raw {code, length, data} option list.
        data: &'a [u8],
    },
    /// Opaque rdata for unknown types.
    Raw(u16, &'a [u8]),
}

impl RDataRef<'_> {
    /// Build the owned record data.
    pub fn to_rdata(&self) -> RData {
        match *self {
            RDataRef::A(a) => RData::A(a),
            RDataRef::Aaaa(a) => RData::Aaaa(a),
            RDataRef::Cname(n) => RData::Cname(n.to_name()),
            RDataRef::Ns(n) => RData::Ns(n.to_name()),
            RDataRef::Ptr(n) => RData::Ptr(n.to_name()),
            RDataRef::Mx {
                preference,
                exchange,
            } => RData::Mx {
                preference,
                exchange: exchange.to_name(),
            },
            RDataRef::Txt(raw) => {
                let mut strings = Vec::new();
                let mut pos = 0usize;
                while pos < raw.len() {
                    let l = usize::from(raw[pos]);
                    pos += 1;
                    strings.push(String::from_utf8_lossy(&raw[pos..pos + l]).into_owned());
                    pos += l;
                }
                RData::Txt(strings)
            }
            RDataRef::Soa {
                mname,
                rname,
                serial,
                refresh,
                retry,
                expire,
                minimum,
            } => RData::Soa {
                mname: mname.to_name(),
                rname: rname.to_name(),
                serial,
                refresh,
                retry,
                expire,
                minimum,
            },
            RDataRef::Opt { payload_size, data } => RData::Opt {
                payload_size,
                data: data.to_vec(),
            },
            RDataRef::Raw(t, raw) => RData::Raw(t, raw.to_vec()),
        }
    }
}

/// A resource record borrowed from message bytes.
#[derive(Debug, Clone, Copy)]
pub struct RecordRef<'a> {
    /// Owner name.
    pub name: NameRef<'a>,
    /// Time to live.
    pub ttl: u32,
    /// Data (type implied).
    pub data: RDataRef<'a>,
}

impl RecordRef<'_> {
    /// Build the owned record.
    pub fn to_record(&self) -> Record {
        Record {
            name: self.name.to_name(),
            ttl: self.ttl,
            data: self.data.to_rdata(),
        }
    }
}

/// Parse one record at `*pos` — the single implementation used both by the
/// validating first pass and by the post-validation iterators.
fn parse_record<'a>(buf: &'a [u8], pos: &mut usize) -> Result<RecordRef<'a>, DnsError> {
    let name = NameRef::parse(buf, pos)?;
    let rtype = RType::from_u16(read_u16(buf, pos)?);
    let class = read_u16(buf, pos)?;
    let ttl = read_u32(buf, pos)?;
    let rdlen = read_u16(buf, pos)? as usize;
    if *pos + rdlen > buf.len() {
        return Err(DnsError::Truncated("rdata"));
    }
    let rdata_end = *pos + rdlen;
    let data = match rtype {
        RType::A => {
            if rdlen != 4 {
                return Err(DnsError::BadField("a-rdlen", rdlen as u64));
            }
            let d = RDataRef::A(Ipv4Addr::new(
                buf[*pos],
                buf[*pos + 1],
                buf[*pos + 2],
                buf[*pos + 3],
            ));
            *pos = rdata_end;
            d
        }
        RType::Aaaa => {
            if rdlen != 16 {
                return Err(DnsError::BadField("aaaa-rdlen", rdlen as u64));
            }
            let mut o = [0u8; 16];
            o.copy_from_slice(&buf[*pos..rdata_end]);
            *pos = rdata_end;
            RDataRef::Aaaa(Ipv6Addr::from(o))
        }
        RType::Cname => {
            let n = NameRef::parse(buf, pos)?;
            *pos = rdata_end;
            RDataRef::Cname(n)
        }
        RType::Ns => {
            let n = NameRef::parse(buf, pos)?;
            *pos = rdata_end;
            RDataRef::Ns(n)
        }
        RType::Ptr => {
            let n = NameRef::parse(buf, pos)?;
            *pos = rdata_end;
            RDataRef::Ptr(n)
        }
        RType::Mx => {
            let preference = read_u16(buf, pos)?;
            let exchange = NameRef::parse(buf, pos)?;
            *pos = rdata_end;
            RDataRef::Mx {
                preference,
                exchange,
            }
        }
        RType::Txt => {
            let txt_start = *pos;
            while *pos < rdata_end {
                let l = read_u8(buf, pos)? as usize;
                if *pos + l > rdata_end {
                    return Err(DnsError::Truncated("txt"));
                }
                *pos += l;
            }
            RDataRef::Txt(&buf[txt_start..rdata_end])
        }
        RType::Soa => {
            let mname = NameRef::parse(buf, pos)?;
            let rname = NameRef::parse(buf, pos)?;
            let serial = read_u32(buf, pos)?;
            let refresh = read_u32(buf, pos)?;
            let retry = read_u32(buf, pos)?;
            let expire = read_u32(buf, pos)?;
            let minimum = read_u32(buf, pos)?;
            *pos = rdata_end;
            RDataRef::Soa {
                mname,
                rname,
                serial,
                refresh,
                retry,
                expire,
                minimum,
            }
        }
        RType::Opt => {
            let d = RDataRef::Opt {
                payload_size: class,
                data: &buf[*pos..rdata_end],
            };
            *pos = rdata_end;
            d
        }
        other => {
            let d = RDataRef::Raw(other.to_u16(), &buf[*pos..rdata_end]);
            *pos = rdata_end;
            d
        }
    };
    Ok(RecordRef { name, ttl, data })
}

fn parse_question<'a>(buf: &'a [u8], pos: &mut usize) -> Result<QuestionRef<'a>, DnsError> {
    let name = NameRef::parse(buf, pos)?;
    let rtype = RType::from_u16(read_u16(buf, pos)?);
    let _class = read_u16(buf, pos)?;
    Ok(QuestionRef { name, rtype })
}

/// A DNS message validated in one pass and borrowed from the wire.
#[derive(Debug, Clone, Copy)]
pub struct MessageView<'a> {
    msg: &'a [u8],
    /// Transaction id.
    pub id: u16,
    /// Response flag.
    pub is_response: bool,
    /// Opcode.
    pub opcode: u8,
    /// Authoritative answer.
    pub authoritative: bool,
    /// Truncation.
    pub truncated: bool,
    /// Recursion desired.
    pub recursion_desired: bool,
    /// Recursion available.
    pub recursion_available: bool,
    /// Response code.
    pub rcode: Rcode,
    /// Section entry counts: questions, answers, authorities, additionals.
    counts: [u16; 4],
    /// Byte offset where each section starts.
    starts: [usize; 4],
}

impl<'a> MessageView<'a> {
    /// Validate and borrow a whole message. Accepts exactly the inputs
    /// [`Message::decode`] accepts and returns the same error on the rest.
    pub fn parse(buf: &'a [u8]) -> Result<MessageView<'a>, DnsError> {
        let mut pos = 0usize;
        let id = read_u16(buf, &mut pos)?;
        let b2 = read_u8(buf, &mut pos)?;
        let b3 = read_u8(buf, &mut pos)?;
        let qd = read_u16(buf, &mut pos)?;
        let an = read_u16(buf, &mut pos)?;
        let ns = read_u16(buf, &mut pos)?;
        let ar = read_u16(buf, &mut pos)?;
        let counts = [qd, an, ns, ar];
        let mut starts = [0usize; 4];
        starts[0] = pos;
        for _ in 0..qd {
            parse_question(buf, &mut pos)?;
        }
        for (section, &n) in counts.iter().enumerate().skip(1) {
            starts[section] = pos;
            for _ in 0..n {
                parse_record(buf, &mut pos)?;
            }
        }
        Ok(MessageView {
            msg: buf,
            id,
            is_response: b2 & 0x80 != 0,
            opcode: (b2 >> 3) & 0x0f,
            authoritative: b2 & 0x04 != 0,
            truncated: b2 & 0x02 != 0,
            recursion_desired: b2 & 0x01 != 0,
            recursion_available: b3 & 0x80 != 0,
            rcode: Rcode::from_u8(b3 & 0x0f),
            counts,
            starts,
        })
    }

    /// Iterate the questions (infallible after validation).
    pub fn questions(&self) -> impl Iterator<Item = QuestionRef<'a>> + '_ {
        let mut pos = self.starts[0];
        (0..self.counts[0]).map(move |_| {
            parse_question(self.msg, &mut pos).expect("validated by MessageView::parse")
        })
    }

    fn records(&self, section: usize) -> impl Iterator<Item = RecordRef<'a>> + '_ {
        let mut pos = self.starts[section];
        (0..self.counts[section]).map(move |_| {
            parse_record(self.msg, &mut pos).expect("validated by MessageView::parse")
        })
    }

    /// Iterate the answer records.
    pub fn answers(&self) -> impl Iterator<Item = RecordRef<'a>> + '_ {
        self.records(1)
    }

    /// Iterate the authority records.
    pub fn authorities(&self) -> impl Iterator<Item = RecordRef<'a>> + '_ {
        self.records(2)
    }

    /// Iterate the additional records.
    pub fn additionals(&self) -> impl Iterator<Item = RecordRef<'a>> + '_ {
        self.records(3)
    }

    /// All AAAA answer addresses, read without materializing records.
    pub fn aaaa_answers(&self) -> impl Iterator<Item = Ipv6Addr> + '_ {
        self.answers().filter_map(|r| match r.data {
            RDataRef::Aaaa(a) => Some(a),
            _ => None,
        })
    }

    /// All A answer addresses, read without materializing records.
    pub fn a_answers(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        self.answers().filter_map(|r| match r.data {
            RDataRef::A(a) => Some(a),
            _ => None,
        })
    }

    /// Build the owned [`Message`] by re-walking the wire (never calls
    /// [`Message::decode`], so the two stay differentially comparable).
    pub fn to_message(&self) -> Message {
        Message {
            id: self.id,
            is_response: self.is_response,
            opcode: self.opcode,
            authoritative: self.authoritative,
            truncated: self.truncated,
            recursion_desired: self.recursion_desired,
            recursion_available: self.recursion_available,
            rcode: self.rcode,
            questions: self.questions().map(|q| q.to_question()).collect(),
            answers: self.answers().map(|r| r.to_record()).collect(),
            authorities: self.authorities().map(|r| r.to_record()).collect(),
            additionals: self.additionals().map(|r| r.to_record()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> DnsName {
        s.parse().unwrap()
    }

    #[test]
    fn view_matches_owned_on_compressed_response() {
        let q = Message::query(7, Question::new(n("sc24.supercomputing.org"), RType::Any));
        let mut resp = Message::response_to(&q, Rcode::NoError);
        resp.answers = vec![
            Record::new(
                n("sc24.supercomputing.org"),
                300,
                RData::Aaaa("64:ff9b::be5c:9e04".parse().unwrap()),
            ),
            Record::new(
                n("www.sc24.supercomputing.org"),
                60,
                RData::Cname(n("sc24.supercomputing.org")),
            ),
            Record::new(
                n("sc24.supercomputing.org"),
                600,
                RData::Txt(vec!["v=spf1 -all".into()]),
            ),
        ];
        let bytes = resp.encode();
        let owned = Message::decode(&bytes).unwrap();
        let view = MessageView::parse(&bytes).unwrap();
        assert_eq!(view.to_message(), owned);
        assert_eq!(
            view.aaaa_answers().collect::<Vec<_>>(),
            owned.aaaa_answers()
        );
    }

    #[test]
    fn truncations_agree_with_owned() {
        let q = Message::query(3, Question::new(n("ip6.me"), RType::A));
        let bytes = q.encode();
        for cut in 0..bytes.len() {
            let owned = Message::decode(&bytes[..cut]).err();
            let view = MessageView::parse(&bytes[..cut]).err();
            assert_eq!(owned, view, "cut at {cut}");
        }
    }

    #[test]
    fn forward_pointer_rejected_identically() {
        let mut bytes = Message::query(1, Question::new(n("x"), RType::A)).encode();
        bytes[12] = 0xc0;
        bytes[13] = 12;
        assert_eq!(
            Message::decode(&bytes).err(),
            MessageView::parse(&bytes).err()
        );
        assert!(matches!(
            MessageView::parse(&bytes),
            Err(DnsError::BadPointer(12))
        ));
    }

    #[test]
    fn opt_record_view_matches_owned() {
        let mut m = Message::query(11, Question::new(n("ip6.me"), RType::Aaaa));
        m.additionals.push(Record::new(
            DnsName::root(),
            0,
            RData::Opt {
                payload_size: 4096,
                data: vec![0, 15, 0, 2, 0xc0, 0],
            },
        ));
        let bytes = m.encode();
        let owned = Message::decode(&bytes).unwrap();
        let view = MessageView::parse(&bytes).unwrap();
        assert_eq!(view.to_message(), owned);
        let first = view.additionals().next().unwrap();
        match first.data {
            RDataRef::Opt { payload_size, data } => {
                assert_eq!(payload_size, 4096);
                assert_eq!(data, &[0, 15, 0, 2, 0xc0, 0]);
            }
            other => panic!("expected OPT, got {other:?}"),
        }
    }

    #[test]
    fn name_ref_preserves_wire_casing_but_to_name_lowercases() {
        // Hand-build: header + one question "IP6.Me" A IN.
        let mut bytes = vec![0, 9, 0x01, 0, 0, 1, 0, 0, 0, 0, 0, 0];
        bytes.extend_from_slice(&[3]);
        bytes.extend_from_slice(b"IP6");
        bytes.extend_from_slice(&[2]);
        bytes.extend_from_slice(b"Me");
        bytes.extend_from_slice(&[0, 0, 1, 0, 1]);
        let view = MessageView::parse(&bytes).unwrap();
        let q = view.questions().next().unwrap();
        let raw: Vec<&[u8]> = q.name.labels().collect();
        assert_eq!(raw, vec![b"IP6".as_slice(), b"Me".as_slice()]);
        assert_eq!(q.name.to_name(), n("ip6.me"));
    }
}
