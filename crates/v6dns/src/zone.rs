//! Authoritative zone storage: exact and wildcard owners, CNAME chasing and
//! the NXDOMAIN / NODATA distinction that the poisoning ablation (wildcard-A
//! vs RPZ) hinges on.

use crate::codec::{RData, RType, Record};
use crate::name::DnsName;
use std::collections::BTreeMap;

/// Result of an authoritative lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoneLookup {
    /// Records found (any CNAME chain is included, target records last).
    Answer(Vec<Record>),
    /// The name exists but has no records of the requested type.
    NoData {
        /// The zone SOA for negative caching.
        soa: Record,
    },
    /// The name does not exist at all.
    NxDomain {
        /// The zone SOA for negative caching.
        soa: Record,
    },
    /// The name sits at or below a delegation cut: this zone is not
    /// authoritative for it and answers with the child NS set plus
    /// whatever A/AAAA glue it carries for those servers.
    Referral {
        /// The delegated child origin.
        cut: DnsName,
        /// NS records at the cut.
        ns: Vec<Record>,
        /// A/AAAA glue for the NS targets, as stored in this zone.
        glue: Vec<Record>,
    },
    /// The name is not within this zone's cut.
    NotInZone,
}

/// An authoritative zone.
#[derive(Debug, Clone)]
pub struct Zone {
    origin: DnsName,
    soa: Record,
    /// Owner → records at that owner. Wildcard owners are stored with their
    /// literal `*` label.
    records: BTreeMap<DnsName, Vec<Record>>,
}

impl Zone {
    /// Create a zone with a generated SOA (serial 1, negative TTL
    /// `negative_ttl`).
    pub fn new(origin: DnsName, negative_ttl: u32) -> Zone {
        let soa = Record::new(
            origin.clone(),
            negative_ttl,
            RData::Soa {
                mname: DnsName::from_labels(
                    ["ns1"]
                        .iter()
                        .map(|s| s.to_string())
                        .chain(origin.labels().iter().cloned()),
                )
                .expect("origin + ns1 label valid"),
                rname: DnsName::from_labels(
                    ["hostmaster"]
                        .iter()
                        .map(|s| s.to_string())
                        .chain(origin.labels().iter().cloned()),
                )
                .expect("origin + hostmaster label valid"),
                serial: 1,
                refresh: 7200,
                retry: 900,
                expire: 1_209_600,
                minimum: negative_ttl,
            },
        );
        let mut records = BTreeMap::new();
        records.insert(origin.clone(), vec![soa.clone()]);
        Zone {
            origin,
            soa,
            records,
        }
    }

    /// Create a zone adopting an explicit SOA record (the master-file
    /// parser's entry point, where the SOA is authored in the zone file
    /// rather than generated). Panics if `soa` is not an SOA record owned
    /// by `origin`.
    pub fn with_soa(origin: DnsName, soa: Record) -> Zone {
        assert!(
            matches!(soa.data, RData::Soa { .. }) && soa.name == origin,
            "SOA record must be an SOA owned by the origin"
        );
        let mut records = BTreeMap::new();
        records.insert(origin.clone(), vec![soa.clone()]);
        Zone {
            origin,
            soa,
            records,
        }
    }

    /// The zone origin.
    pub fn origin(&self) -> &DnsName {
        &self.origin
    }

    /// The SOA record.
    pub fn soa(&self) -> &Record {
        &self.soa
    }

    /// Add a record. The owner must be within the zone.
    pub fn add(&mut self, name: &DnsName, ttl: u32, data: RData) -> &mut Self {
        assert!(
            name.is_subdomain_of(&self.origin),
            "{name} is outside zone {}",
            self.origin
        );
        self.records
            .entry(name.clone())
            .or_default()
            .push(Record::new(name.clone(), ttl, data));
        self
    }

    /// Convenience: add by relative or absolute string owner.
    pub fn add_str(&mut self, owner: &str, ttl: u32, data: RData) -> &mut Self {
        let name: DnsName = if owner == "@" {
            self.origin.clone()
        } else {
            let abs: DnsName = owner.parse().expect("valid owner");
            if abs.is_subdomain_of(&self.origin) {
                abs
            } else {
                abs.with_suffix(&self.origin).expect("joined name valid")
            }
        };
        self.add(&name, ttl, data)
    }

    /// Iterate every record in owner order (SOA first at the apex).
    pub fn iter_records(&self) -> impl Iterator<Item = &Record> {
        self.records.values().flatten()
    }

    /// The delegation cut covering `name`, if one exists: the shallowest
    /// strict subdomain of the origin, at or above `name`, holding NS
    /// records. Apex NS records are the zone's own server set, not a cut.
    fn cut_for(&self, name: &DnsName) -> Option<&DnsName> {
        let origin_labs = self.origin.label_count();
        // Ancestors of `name` strictly below the origin, shallowest first.
        for depth in (origin_labs + 1)..=name.label_count() {
            let mut candidate = name.clone();
            while candidate.label_count() > depth {
                candidate = candidate.parent().expect("label_count > 0");
            }
            if let Some(rs) = self.records.get(&candidate) {
                if rs.iter().any(|r| matches!(r.data, RData::Ns(_))) {
                    // Return the stored key so the borrow outlives `candidate`.
                    return self.records.get_key_value(&candidate).map(|(k, _)| k);
                }
            }
        }
        None
    }

    /// Does any record exist at `name` (or under it, making it an empty
    /// non-terminal)?
    fn name_exists(&self, name: &DnsName) -> bool {
        if self.records.contains_key(name) {
            return true;
        }
        // Empty non-terminal: some stored owner is a subdomain of `name`.
        self.records.keys().any(|k| k.is_subdomain_of(name))
    }

    fn wildcard_for(&self, name: &DnsName) -> Option<&Vec<Record>> {
        // Walk up: for a.b.origin try *.b.origin, *.origin.
        let mut candidate = name.parent();
        while let Some(parent) = candidate {
            if !parent.is_subdomain_of(&self.origin) {
                break;
            }
            let wc = DnsName::from_labels(
                ["*"]
                    .iter()
                    .map(|s| s.to_string())
                    .chain(parent.labels().iter().cloned()),
            )
            .expect("wildcard name valid");
            if let Some(rs) = self.records.get(&wc) {
                return Some(rs);
            }
            candidate = parent.parent();
        }
        None
    }

    /// Authoritative lookup with CNAME chasing (bounded to 8 hops).
    ///
    /// Names at or below a delegation cut produce a [`ZoneLookup::Referral`]
    /// (RFC 1034 §4.3.2 step 3b) — including lookups of the glue names
    /// themselves, which this zone carries but is not authoritative for.
    pub fn lookup(&self, name: &DnsName, rtype: RType) -> ZoneLookup {
        if !name.is_subdomain_of(&self.origin) {
            return ZoneLookup::NotInZone;
        }
        if let Some(cut) = self.cut_for(name) {
            let ns: Vec<Record> = self.records[cut]
                .iter()
                .filter(|r| matches!(r.data, RData::Ns(_)))
                .cloned()
                .collect();
            let glue = ns
                .iter()
                .filter_map(|r| match &r.data {
                    RData::Ns(target) => self.records.get(target),
                    _ => None,
                })
                .flatten()
                .filter(|r| matches!(r.data, RData::A(_) | RData::Aaaa(_)))
                .cloned()
                .collect();
            return ZoneLookup::Referral {
                cut: cut.clone(),
                ns,
                glue,
            };
        }
        let mut chain: Vec<Record> = Vec::new();
        let mut current = name.clone();
        for _hop in 0..8 {
            let direct = self.records.get(&current);
            let (records, synth_owner) = match direct {
                Some(rs) => (Some(rs), None),
                None => (self.wildcard_for(&current), Some(current.clone())),
            };
            match records {
                Some(rs) => {
                    let matching: Vec<Record> = rs
                        .iter()
                        .filter(|r| {
                            rtype == RType::Any
                                || r.data.rtype() == rtype
                                // SOA only answers explicit SOA/ANY queries.
                                && !(matches!(r.data, RData::Soa { .. }) && rtype != RType::Soa)
                        })
                        .map(|r| synthesize(r, synth_owner.as_ref()))
                        .collect();
                    if !matching.is_empty() {
                        chain.extend(matching);
                        return ZoneLookup::Answer(chain);
                    }
                    // CNAME redirection applies to any type except CNAME itself.
                    if rtype != RType::Cname {
                        if let Some(c) = rs.iter().find(|r| matches!(r.data, RData::Cname(_))) {
                            let c = synthesize(c, synth_owner.as_ref());
                            let target = match &c.data {
                                RData::Cname(t) => t.clone(),
                                _ => unreachable!("filtered to CNAME"),
                            };
                            chain.push(c);
                            if !target.is_subdomain_of(&self.origin) {
                                // Out-of-zone target: return the partial chain;
                                // the resolver continues elsewhere.
                                return ZoneLookup::Answer(chain);
                            }
                            current = target;
                            continue;
                        }
                    }
                    return ZoneLookup::NoData {
                        soa: self.soa.clone(),
                    };
                }
                None => {
                    return if self.name_exists(&current) {
                        ZoneLookup::NoData {
                            soa: self.soa.clone(),
                        }
                    } else {
                        ZoneLookup::NxDomain {
                            soa: self.soa.clone(),
                        }
                    };
                }
            }
        }
        // CNAME loop: answer with what we have (resolvers treat as ServFail).
        ZoneLookup::Answer(chain)
    }
}

/// Rewrite a wildcard record's owner to the queried name (RFC 1034 §4.3.3).
fn synthesize(r: &Record, owner: Option<&DnsName>) -> Record {
    match owner {
        Some(o) => Record::new(o.clone(), r.ttl, r.data.clone()),
        None => r.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> DnsName {
        s.parse().unwrap()
    }

    fn test_zone() -> Zone {
        let mut z = Zone::new(n("supercomputing.org"), 300);
        z.add_str("sc24", 300, RData::A("190.92.158.4".parse().unwrap()));
        z.add_str("www.sc24", 300, RData::Cname(n("sc24.supercomputing.org")));
        z.add_str(
            "mail",
            300,
            RData::Mx {
                preference: 10,
                exchange: n("mx1.supercomputing.org"),
            },
        );
        z.add_str("mx1", 300, RData::A("198.51.100.25".parse().unwrap()));
        z.add_str("*.pages", 60, RData::A("203.0.113.80".parse().unwrap()));
        z
    }

    #[test]
    fn direct_answer() {
        let z = test_zone();
        match z.lookup(&n("sc24.supercomputing.org"), RType::A) {
            ZoneLookup::Answer(rs) => {
                assert_eq!(rs.len(), 1);
                assert_eq!(rs[0].data, RData::A("190.92.158.4".parse().unwrap()));
            }
            other => panic!("expected answer, got {other:?}"),
        }
    }

    #[test]
    fn cname_chased_in_zone() {
        let z = test_zone();
        match z.lookup(&n("www.sc24.supercomputing.org"), RType::A) {
            ZoneLookup::Answer(rs) => {
                assert_eq!(rs.len(), 2);
                assert!(matches!(rs[0].data, RData::Cname(_)));
                assert!(matches!(rs[1].data, RData::A(_)));
            }
            other => panic!("expected chained answer, got {other:?}"),
        }
    }

    #[test]
    fn cname_query_returns_cname_itself() {
        let z = test_zone();
        match z.lookup(&n("www.sc24.supercomputing.org"), RType::Cname) {
            ZoneLookup::Answer(rs) => {
                assert_eq!(rs.len(), 1);
                assert!(matches!(rs[0].data, RData::Cname(_)));
            }
            other => panic!("expected CNAME, got {other:?}"),
        }
    }

    #[test]
    fn nodata_vs_nxdomain() {
        let z = test_zone();
        // sc24 exists but has no AAAA → NODATA.
        assert!(matches!(
            z.lookup(&n("sc24.supercomputing.org"), RType::Aaaa),
            ZoneLookup::NoData { .. }
        ));
        // nothing.supercomputing.org doesn't exist → NXDOMAIN.
        assert!(matches!(
            z.lookup(&n("nothing.supercomputing.org"), RType::A),
            ZoneLookup::NxDomain { .. }
        ));
    }

    #[test]
    fn empty_non_terminal_is_nodata() {
        let z = test_zone();
        // www.sc24 exists ⇒ sc24 exists; but "pages" itself holds no records
        // while *.pages does ⇒ pages is an empty non-terminal, NODATA not
        // NXDOMAIN.
        assert!(matches!(
            z.lookup(&n("pages.supercomputing.org"), RType::A),
            ZoneLookup::NoData { .. }
        ));
    }

    #[test]
    fn wildcard_synthesis() {
        let z = test_zone();
        match z.lookup(&n("team7.pages.supercomputing.org"), RType::A) {
            ZoneLookup::Answer(rs) => {
                assert_eq!(rs[0].name, n("team7.pages.supercomputing.org"));
                assert_eq!(rs[0].data, RData::A("203.0.113.80".parse().unwrap()));
            }
            other => panic!("expected wildcard answer, got {other:?}"),
        }
        // Wildcard does not cover the owner itself at a different type.
        assert!(matches!(
            z.lookup(&n("team7.pages.supercomputing.org"), RType::Aaaa),
            ZoneLookup::NoData { .. }
        ));
    }

    #[test]
    fn out_of_zone() {
        let z = test_zone();
        assert_eq!(z.lookup(&n("ip6.me"), RType::A), ZoneLookup::NotInZone);
    }

    #[test]
    fn apex_soa_not_leaked_into_a_queries() {
        let z = test_zone();
        assert!(matches!(
            z.lookup(&n("supercomputing.org"), RType::A),
            ZoneLookup::NoData { .. }
        ));
        match z.lookup(&n("supercomputing.org"), RType::Soa) {
            ZoneLookup::Answer(rs) => assert!(matches!(rs[0].data, RData::Soa { .. })),
            other => panic!("expected SOA, got {other:?}"),
        }
    }

    #[test]
    fn cname_loop_terminates() {
        let mut z = Zone::new(n("loop.test"), 60);
        z.add_str("a", 60, RData::Cname(n("b.loop.test")));
        z.add_str("b", 60, RData::Cname(n("a.loop.test")));
        // Must not hang; returns the partial chain.
        match z.lookup(&n("a.loop.test"), RType::A) {
            ZoneLookup::Answer(rs) => assert!(rs.len() <= 16),
            other => panic!("expected bounded answer, got {other:?}"),
        }
    }

    #[test]
    fn delegation_cut_refers_instead_of_answering() {
        let mut z = Zone::new(n("test"), 300);
        z.add_str(
            "ns1.v4only",
            3600,
            RData::A("203.0.113.53".parse().unwrap()),
        );
        z.add_str("v4only", 3600, RData::Ns(n("ns1.v4only.test")));
        // At the cut, below the cut, and the glue name itself all refer.
        for q in ["v4only.test", "www.v4only.test", "ns1.v4only.test"] {
            match z.lookup(&n(q), RType::A) {
                ZoneLookup::Referral { cut, ns, glue } => {
                    assert_eq!(cut, n("v4only.test"), "query {q}");
                    assert_eq!(ns.len(), 1);
                    assert_eq!(glue.len(), 1);
                    assert_eq!(glue[0].data, RData::A("203.0.113.53".parse().unwrap()));
                }
                other => panic!("expected referral for {q}, got {other:?}"),
            }
        }
        // Siblings outside the cut still answer normally.
        assert!(matches!(
            z.lookup(&n("missing.test"), RType::A),
            ZoneLookup::NxDomain { .. }
        ));
    }

    #[test]
    fn apex_ns_is_not_a_cut() {
        let mut z = test_zone();
        z.add_str("@", 3600, RData::Ns(n("ns1.supercomputing.org")));
        assert!(matches!(
            z.lookup(&n("sc24.supercomputing.org"), RType::A),
            ZoneLookup::Answer(_)
        ));
        match z.lookup(&n("supercomputing.org"), RType::Ns) {
            ZoneLookup::Answer(rs) => assert!(matches!(rs[0].data, RData::Ns(_))),
            other => panic!("expected apex NS answer, got {other:?}"),
        }
    }

    #[test]
    fn glueless_cut_refers_with_empty_glue() {
        let mut z = Zone::new(n("test"), 300);
        z.add_str("lame", 3600, RData::Ns(n("ns.elsewhere.example")));
        match z.lookup(&n("www.lame.test"), RType::Aaaa) {
            ZoneLookup::Referral { ns, glue, .. } => {
                assert_eq!(ns.len(), 1);
                assert!(glue.is_empty(), "out-of-zone NS target has no glue");
            }
            other => panic!("expected referral, got {other:?}"),
        }
    }

    #[test]
    fn with_soa_adopts_the_given_record() {
        let soa = Record::new(
            n("fixture.test"),
            172_800,
            RData::Soa {
                mname: n("ns1.fixture.test"),
                rname: n("hostmaster.fixture.test"),
                serial: 2_024_081_500,
                refresh: 7200,
                retry: 900,
                expire: 1_209_600,
                minimum: 300,
            },
        );
        let z = Zone::with_soa(n("fixture.test"), soa.clone());
        assert_eq!(z.soa(), &soa);
        match z.lookup(&n("fixture.test"), RType::Soa) {
            ZoneLookup::Answer(rs) => assert_eq!(rs[0], soa),
            other => panic!("expected SOA answer, got {other:?}"),
        }
    }

    #[test]
    fn out_of_zone_cname_returns_partial_chain() {
        let mut z = Zone::new(n("rfc8925.com"), 60);
        z.add_str("portal", 60, RData::Cname(n("ip6.me")));
        match z.lookup(&n("portal.rfc8925.com"), RType::A) {
            ZoneLookup::Answer(rs) => {
                assert_eq!(rs.len(), 1);
                assert_eq!(rs[0].data, RData::Cname(n("ip6.me")));
            }
            other => panic!("expected partial chain, got {other:?}"),
        }
    }
}
