//! Differential codec-conformance suite: the borrowed [`MessageView`] layer
//! against the owned [`Message`] codec, over the committed corpus in
//! `tests/corpus/` plus proptest-generated messages.
//!
//! Invariants proven here:
//!
//! 1. **Parse equality** — on every input, `Message::decode` and
//!    `MessageView::parse` accept or reject together; on accept,
//!    `view.to_message()` equals the owned decode.
//! 2. **Error identity** — on reject, both return the same `DnsError` value,
//!    for every truncation point, every single-byte corruption, and the
//!    hand-built RFC 1035 pathologies (pointer loops, forward pointers,
//!    reserved label flags, hop-count blowups, >255-octet names).
//! 3. **Byte-identical re-emission** — `decode(bytes).encode() == bytes` and
//!    `MessageView::parse(bytes).to_message().encode() == bytes` for every
//!    corpus and generated message (the encoder is canonical: lowercase
//!    names, greedy backward compression).

use proptest::prelude::*;
use v6dns::codec::DnsError;
use v6dns::{DnsName, Message, MessageView, Question, RData, RType, Rcode, Record};

const GOOD_MESSAGES: &[(&str, &[u8])] = &[
    (
        "query_a",
        include_bytes!("../../../tests/corpus/dns_query_a.bin"),
    ),
    (
        "dns64_response",
        include_bytes!("../../../tests/corpus/dns_dns64_response.bin"),
    ),
    (
        "poisoned_a",
        include_bytes!("../../../tests/corpus/dns_poisoned_a.bin"),
    ),
    (
        "all_rtypes",
        include_bytes!("../../../tests/corpus/dns_all_rtypes.bin"),
    ),
];

const BAD_MESSAGES: &[(&str, &[u8])] = &[
    (
        "bad_truncated",
        include_bytes!("../../../tests/corpus/dns_bad_truncated.bin"),
    ),
    (
        "bad_pointer_loop",
        include_bytes!("../../../tests/corpus/dns_bad_pointer_loop.bin"),
    ),
];

/// Both decode paths applied to the same bytes, results compared. Returns
/// the owned decode when both accept.
fn differential(raw: &[u8]) -> Option<Message> {
    let owned = Message::decode(raw);
    let view = MessageView::parse(raw);
    match (&owned, &view) {
        (Ok(o), Ok(v)) => assert_eq!(*o, v.to_message(), "decode divergence"),
        (Err(oe), Err(ve)) => assert_eq!(oe, ve, "error divergence"),
        _ => panic!(
            "accept/reject divergence: owned {:?} vs view {:?}",
            owned.as_ref().err(),
            view.as_ref().err()
        ),
    }
    owned.ok()
}

#[test]
fn corpus_good_messages_decode_identically_and_reemit() {
    for (name, raw) in GOOD_MESSAGES {
        let msg = differential(raw).unwrap_or_else(|| panic!("{name}: corpus message rejected"));
        // The owned encoder is canonical, so a decode → encode round trip
        // must reproduce the committed bytes exactly — from both paths.
        assert_eq!(&msg.encode(), raw, "{name}: owned re-emission drifted");
        let via_view = MessageView::parse(raw).unwrap().to_message().encode();
        assert_eq!(&via_view, raw, "{name}: view re-emission drifted");
    }
}

#[test]
fn corpus_bad_messages_fail_identically() {
    for (name, raw) in BAD_MESSAGES {
        assert!(
            differential(raw).is_none(),
            "{name}: adversarial corpus message unexpectedly decoded"
        );
    }
    // Pin the documented failure modes.
    assert!(matches!(
        Message::decode(BAD_MESSAGES[0].1),
        Err(DnsError::Truncated(_))
    ));
    assert_eq!(
        Message::decode(BAD_MESSAGES[1].1),
        Err(DnsError::BadPointer(12))
    );
}

#[test]
fn corpus_adversarial_messages_derive_from_their_sources() {
    // Pin the provenance documented in tests/corpus/README.md.
    let (_, all_rtypes) = GOOD_MESSAGES[3];
    let cut = all_rtypes.len() * 2 / 3;
    assert_eq!(BAD_MESSAGES[0].1, &all_rtypes[..cut]);
    let query = Message::query(
        1,
        Question::new(DnsName::from_labels(["x"]).unwrap(), RType::A),
    );
    let mut looped = query.encode();
    looped[12] = 0xc0; // question name → pointer to itself (offset 12)
    looped[13] = 12;
    assert_eq!(BAD_MESSAGES[1].1, &looped[..]);
}

#[test]
fn corpus_truncation_sweep_errors_identically() {
    for (_, raw) in GOOD_MESSAGES.iter().chain(BAD_MESSAGES) {
        for cut in 0..raw.len() {
            let _ = differential(&raw[..cut]);
        }
    }
}

#[test]
fn corpus_corruption_sweep_errors_identically() {
    for (_, raw) in GOOD_MESSAGES {
        let mut work = raw.to_vec();
        for i in 0..work.len() {
            for flip in [0x01, 0x80, 0xc0, 0xff] {
                work[i] ^= flip;
                let _ = differential(&work);
                work[i] ^= flip;
            }
        }
    }
}

/// Build a raw message by hand: header with the given counts, then `body`.
fn raw_message(qd: u16, an: u16, body: &[u8]) -> Vec<u8> {
    let mut out = vec![0x12, 0x34, 0x01, 0x00];
    out.extend_from_slice(&qd.to_be_bytes());
    out.extend_from_slice(&an.to_be_bytes());
    out.extend_from_slice(&[0, 0, 0, 0]); // ns, ar
    out.extend_from_slice(body);
    out
}

#[test]
fn forward_pointer_rejected_identically() {
    // Question name is a pointer to a target *after* the cursor — forbidden
    // (only backward pointers terminate).
    let msg = raw_message(1, 0, &[0xc0, 0x20, 0, 1, 0, 1]);
    assert!(differential(&msg).is_none());
    assert_eq!(Message::decode(&msg), Err(DnsError::BadPointer(0x20)));
}

#[test]
fn reserved_label_flags_rejected_identically() {
    // 0x40 and 0x80 length prefixes are reserved (RFC 1035 §4.1.4 only
    // defines 0b00 and 0b11).
    for flag in [0x40u8, 0x80] {
        let msg = raw_message(1, 0, &[flag, b'a', 0, 0, 1, 0, 1]);
        assert!(differential(&msg).is_none());
        assert_eq!(
            Message::decode(&msg),
            Err(DnsError::BadField("label-length", flag as u64))
        );
    }
}

#[test]
fn pointer_hop_blowup_rejected_identically() {
    // A backward chain of >64 pointers, hidden in an unknown-type rdata so
    // the chain bytes themselves are never interpreted as labels. A second
    // record's CNAME rdata enters the chain at its far end.
    const HOPS: usize = 70;
    let mut body = Vec::new();
    // Record 1: root name, type 999 (opaque), rdata = root label + chain.
    body.extend_from_slice(&[0x00]); // name: root
    body.extend_from_slice(&999u16.to_be_bytes());
    body.extend_from_slice(&1u16.to_be_bytes()); // class IN
    body.extend_from_slice(&0u32.to_be_bytes()); // ttl
    let rdata_start = 12 + body.len() + 2; // absolute offset of rdata[0]
    body.extend_from_slice(&((1 + 2 * HOPS) as u16).to_be_bytes());
    body.push(0x00); // chain terminus: a root label
    let mut prev = rdata_start; // each pointer targets the byte before it
    for i in 0..HOPS {
        let here = rdata_start + 1 + 2 * i;
        body.push(0xc0 | (prev >> 8) as u8);
        body.push(prev as u8);
        prev = here;
    }
    // Record 2: root name, CNAME whose rdata enters the chain at `prev`.
    body.extend_from_slice(&[0x00]);
    body.extend_from_slice(&RType::Cname.to_u16().to_be_bytes());
    body.extend_from_slice(&1u16.to_be_bytes());
    body.extend_from_slice(&0u32.to_be_bytes());
    body.extend_from_slice(&2u16.to_be_bytes());
    body.push(0xc0 | (prev >> 8) as u8);
    body.push(prev as u8);

    let msg = raw_message(0, 2, &body);
    assert!(differential(&msg).is_none());
    assert!(
        matches!(Message::decode(&msg), Err(DnsError::BadPointer(_))),
        "expected hop-limit BadPointer, got {:?}",
        Message::decode(&msg)
    );

    // Control: a chain just under the hop limit decodes on both paths.
    let mut short = Vec::new();
    short.extend_from_slice(&[0x00]);
    short.extend_from_slice(&999u16.to_be_bytes());
    short.extend_from_slice(&1u16.to_be_bytes());
    short.extend_from_slice(&0u32.to_be_bytes());
    let rdata_start = 12 + short.len() + 2;
    const OK_HOPS: usize = 60;
    short.extend_from_slice(&((1 + 2 * OK_HOPS) as u16).to_be_bytes());
    short.push(0x00);
    let mut prev = rdata_start;
    for i in 0..OK_HOPS {
        let here = rdata_start + 1 + 2 * i;
        short.push(0xc0 | (prev >> 8) as u8);
        short.push(prev as u8);
        prev = here;
    }
    short.extend_from_slice(&[0x00]);
    short.extend_from_slice(&RType::Cname.to_u16().to_be_bytes());
    short.extend_from_slice(&1u16.to_be_bytes());
    short.extend_from_slice(&0u32.to_be_bytes());
    short.extend_from_slice(&2u16.to_be_bytes());
    short.push(0xc0 | (prev >> 8) as u8);
    short.push(prev as u8);
    let ok_msg = raw_message(0, 2, &short);
    let decoded = differential(&ok_msg).expect("sub-limit chain must decode");
    assert_eq!(decoded.answers[1].data, RData::Cname(DnsName::root()));
}

#[test]
fn oversized_name_rejected_identically() {
    // Four maximal labels: 4 × (1 + 63) + 1 root = 257 octets > 255.
    let mut body = Vec::new();
    for _ in 0..4 {
        body.push(63);
        body.extend_from_slice(&[b'x'; 63]);
    }
    body.extend_from_slice(&[0x00, 0, 1, 0, 1]);
    let msg = raw_message(1, 0, &body);
    assert!(differential(&msg).is_none());
    assert_eq!(Message::decode(&msg), Err(DnsError::BadField("name", 0)));

    // Control: three maximal labels (193 octets) decode on both paths.
    let mut body = Vec::new();
    for _ in 0..3 {
        body.push(63);
        body.extend_from_slice(&[b'x'; 63]);
    }
    body.extend_from_slice(&[0x00, 0, 1, 0, 1]);
    let msg = raw_message(1, 0, &body);
    let decoded = differential(&msg).expect("255-octet-max name must decode");
    assert_eq!(decoded.questions[0].name.label_count(), 3);
}

#[test]
fn txt_char_string_overrun_rejected_identically() {
    // TXT rdata whose inner length byte points past rdata_end.
    let mut body = Vec::new();
    body.extend_from_slice(&[0x00]); // name: root
    body.extend_from_slice(&RType::Txt.to_u16().to_be_bytes());
    body.extend_from_slice(&1u16.to_be_bytes());
    body.extend_from_slice(&0u32.to_be_bytes());
    body.extend_from_slice(&3u16.to_be_bytes()); // rdlen 3
    body.extend_from_slice(&[10, b'a', b'b']); // claims 10, only 2 present
    let msg = raw_message(0, 1, &body);
    assert!(differential(&msg).is_none());
    assert_eq!(Message::decode(&msg), Err(DnsError::Truncated("txt")));
}

#[test]
fn bad_address_rdlen_rejected_identically() {
    for (rtype, rdlen, what) in [(RType::A, 5u16, "a-rdlen"), (RType::Aaaa, 15, "aaaa-rdlen")] {
        let mut body = Vec::new();
        body.extend_from_slice(&[0x00]);
        body.extend_from_slice(&rtype.to_u16().to_be_bytes());
        body.extend_from_slice(&1u16.to_be_bytes());
        body.extend_from_slice(&0u32.to_be_bytes());
        body.extend_from_slice(&rdlen.to_be_bytes());
        body.resize(body.len() + rdlen as usize, 0);
        let msg = raw_message(0, 1, &body);
        assert!(differential(&msg).is_none());
        assert_eq!(
            Message::decode(&msg),
            Err(DnsError::BadField(what, rdlen as u64))
        );
    }
}

const LABEL_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789-";

fn arb_label() -> impl Strategy<Value = String> {
    prop_oneof![
        proptest::collection::vec(prop::sample::select(LABEL_CHARS.to_vec()), 1..13)
            .prop_map(|cs| cs.into_iter().map(char::from).collect()),
        Just("x".repeat(63)),
    ]
}

fn arb_name() -> impl Strategy<Value = DnsName> {
    proptest::collection::vec(arb_label(), 0..4).prop_map(|labels| {
        // Drop trailing labels if the total would exceed 255 octets (only
        // possible with multiple 63-octet labels).
        let mut ls = labels;
        loop {
            match DnsName::from_labels(ls.clone()) {
                Ok(n) => return n,
                Err(_) => {
                    ls.pop();
                }
            }
        }
    })
}

fn arb_rdata() -> impl Strategy<Value = RData> {
    prop_oneof![
        any::<u32>().prop_map(|v| RData::A(std::net::Ipv4Addr::from(v))),
        any::<u128>().prop_map(|v| RData::Aaaa(std::net::Ipv6Addr::from(v))),
        arb_name().prop_map(RData::Cname),
        arb_name().prop_map(RData::Ns),
        arb_name().prop_map(RData::Ptr),
        (any::<u16>(), arb_name()).prop_map(|(preference, exchange)| RData::Mx {
            preference,
            exchange
        }),
        proptest::collection::vec(arb_label(), 1..3).prop_map(RData::Txt),
        (arb_name(), arb_name(), any::<u32>()).prop_map(|(mname, rname, serial)| RData::Soa {
            mname,
            rname,
            serial,
            refresh: 7200,
            retry: 900,
            expire: 86400,
            minimum: 300,
        }),
        (
            512u16..4097u16,
            proptest::collection::vec(any::<u8>(), 0..12)
        )
            .prop_map(|(payload_size, data)| RData::Opt { payload_size, data }),
        (256u16.., proptest::collection::vec(any::<u8>(), 0..16))
            .prop_map(|(t, d)| RData::Raw(t, d)),
    ]
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        any::<u16>(),
        arb_label(),
        arb_name(),
        proptest::collection::vec(arb_rdata(), 0..5),
        any::<bool>(),
        0u8..6,
    )
        .prop_map(|(id, host, suffix, rdatas, authoritative, rcode)| {
            // All names share a suffix so the encoder's compression map and
            // the view's pointer walk both get exercised on every case.
            let qname = DnsName::from_labels([host])
                .unwrap()
                .with_suffix(&suffix)
                .unwrap_or(suffix.clone());
            let mut msg = Message::query(id, Question::new(qname.clone(), RType::Aaaa));
            msg.is_response = true;
            msg.authoritative = authoritative;
            msg.rcode = Rcode::from_u16_lossy(rcode as u16);
            for (i, data) in rdatas.into_iter().enumerate() {
                let rec = Record::new(qname.clone(), 60 * (i as u32 + 1), data);
                match i % 3 {
                    0 => msg.answers.push(rec),
                    1 => msg.authorities.push(rec),
                    _ => msg.additionals.push(rec),
                }
            }
            msg
        })
}

/// Map 0..6 onto real rcodes without reaching into codec internals.
trait RcodeLossy {
    fn from_u16_lossy(v: u16) -> Rcode;
}
impl RcodeLossy for Rcode {
    fn from_u16_lossy(v: u16) -> Rcode {
        match v {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            _ => Rcode::Refused,
        }
    }
}

proptest! {
    #[test]
    fn generated_messages_roundtrip_identically(msg in arb_message()) {
        let bytes = msg.encode();
        let decoded = differential(&bytes).expect("canonical encoding must decode");
        prop_assert_eq!(&decoded, &msg);
        prop_assert_eq!(decoded.encode(), bytes.clone());
        prop_assert_eq!(
            MessageView::parse(&bytes).unwrap().to_message().encode(),
            bytes
        );
    }

    #[test]
    fn generated_names_roundtrip_with_casing_folded(labels in proptest::collection::vec(arb_label(), 0..4)) {
        // Uppercase on the wire, lowercase after decode — both paths agree.
        let lower = match DnsName::from_labels(labels) {
            Ok(n) => n,
            Err(_) => return, // >255 total: generation artefact, skip
        };
        let msg = Message::query(7, Question::new(lower.clone(), RType::A));
        let mut bytes = msg.encode();
        for b in &mut bytes[12..] {
            b.make_ascii_uppercase();
        }
        let decoded = differential(&bytes).expect("uppercased name must decode");
        prop_assert_eq!(&decoded.questions[0].name, &lower);
    }

    #[test]
    fn generated_messages_truncate_identically(msg in arb_message(), cut in any::<prop::sample::Index>()) {
        let bytes = msg.encode();
        let at = cut.index(bytes.len());
        let _ = differential(&bytes[..at]);
    }

    #[test]
    fn generated_messages_corrupt_identically(msg in arb_message(), at in any::<prop::sample::Index>(), flip in 1u8..) {
        let mut bytes = msg.encode();
        let i = at.index(bytes.len());
        bytes[i] ^= flip;
        let _ = differential(&bytes);
    }

    #[test]
    fn random_bytes_never_panic_and_agree(raw in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = differential(&raw);
    }
}
