//! Property tests for the iterative resolver over randomly generated
//! delegation trees.
//!
//! The generator grows trees up to four zones deep with a mixed glue
//! policy per cut (dual, A-only, AAAA-only, or glueless with the
//! addresses held by the child). The properties pinned here:
//!
//! * **Differential**: for every leaf, iterative resolution either
//!   answers identically to the flat (single-recursive-server) view of
//!   the same zones, or fails with a *classified*
//!   [`ResolutionFailure`] — never an unexplained SERVFAIL, never a
//!   wrong answer.
//! * **Reachability is exactly the glue algebra**: a leaf resolves iff
//!   every cut on its ancestor path offers an address the transport can
//!   use (glueless cuts fall back to the child's own NS addresses).
//! * **Loop-freedom**: every descent terminates within
//!   [`MAX_REFERRALS`] referrals; over-deep chains classify as
//!   [`ResolutionFailure::ReferralLoop`] instead of walking forever.

use proptest::prelude::*;
use std::net::{Ipv4Addr, Ipv6Addr};
use v6dns::codec::{Question, RData, RType, Rcode};
use v6dns::name::DnsName;
use v6dns::server::{GlobalDns, ResolutionFailure, Resolver, ResolverTransport, MAX_REFERRALS};
use v6dns::zone::Zone;

fn n(s: &str) -> DnsName {
    s.parse().expect("static name")
}

/// How the parent's cut for a zone is glued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Glue {
    /// A + AAAA glue in the parent: reachable over any transport.
    Dual,
    /// A-only glue: unreachable over a v6-only transport.
    AOnly,
    /// AAAA-only glue: unreachable over a v4-only transport.
    AaaaOnly,
    /// No glue in the parent; the child holds dual NS addresses, so the
    /// resolver's glueless fallback reaches it over any transport.
    Glueless,
}

impl Glue {
    fn of(code: u8) -> Glue {
        match code % 4 {
            0 => Glue::Dual,
            1 => Glue::AOnly,
            2 => Glue::AaaaOnly,
            _ => Glue::Glueless,
        }
    }

    /// Can `transport` cross a cut glued this way?
    fn crossable(self, transport: ResolverTransport) -> bool {
        match self {
            Glue::Dual | Glue::Glueless => true,
            Glue::AOnly => transport.can_use(&RData::A(Ipv4Addr::LOCALHOST)),
            Glue::AaaaOnly => transport.can_use(&RData::Aaaa(Ipv6Addr::LOCALHOST)),
        }
    }
}

/// One zone of a generated tree.
struct Node {
    origin: DnsName,
    parent: Option<usize>,
    glue: Glue,
    depth: usize,
}

/// Decode a raw edge list into a tree rooted at `test`, depth ≤ 4
/// zones. Each edge attaches a new zone under an existing one (edges
/// that would exceed the depth bound are dropped, keeping the
/// structural invariant the resolver's loop-freedom argument rests on).
fn build_tree(edges: &[(u8, u8)]) -> Vec<Node> {
    let mut nodes = vec![Node {
        origin: n("test"),
        parent: None,
        glue: Glue::Dual,
        depth: 0,
    }];
    for (i, &(p, g)) in edges.iter().enumerate() {
        let parent = (p as usize) % nodes.len();
        if nodes[parent].depth >= 3 {
            continue;
        }
        let origin = format!("z{i}.{}", nodes[parent].origin);
        nodes.push(Node {
            origin: origin.parse().expect("generated labels are valid"),
            parent: Some(parent),
            glue: Glue::of(g),
            depth: nodes[parent].depth + 1,
        });
    }
    nodes
}

/// Publish the tree as authoritative zones: every zone owns a dual-stack
/// `www` leaf and its own `ns1` addresses; every cut carries an NS for
/// `ns1.<child>` plus whatever glue its [`Glue`] mode prescribes.
fn build_zones(nodes: &[Node]) -> Vec<Zone> {
    let mut zones: Vec<Zone> = nodes
        .iter()
        .enumerate()
        .map(|(i, node)| {
            let mut z = Zone::new(node.origin.clone(), 300);
            z.add_str("www", 60, RData::A(Ipv4Addr::new(10, 9, i as u8, 1)));
            z.add_str(
                "www",
                60,
                RData::Aaaa(Ipv6Addr::new(0xfd09, 0, 0, 0, 0, 0, 0, i as u16 + 1)),
            );
            z.add_str("ns1", 60, RData::A(Ipv4Addr::new(10, 9, i as u8, 53)));
            z.add_str(
                "ns1",
                60,
                RData::Aaaa(Ipv6Addr::new(0xfd09, 0, 0, 0, 0, 0, 0x53, i as u16 + 1)),
            );
            z
        })
        .collect();
    for (i, node) in nodes.iter().enumerate() {
        let Some(p) = node.parent else { continue };
        let ns: DnsName = format!("ns1.{}", node.origin).parse().expect("valid");
        zones[p].add(&node.origin, 300, RData::Ns(ns.clone()));
        let (a, aaaa) = match node.glue {
            Glue::Dual => (true, true),
            Glue::AOnly => (true, false),
            Glue::AaaaOnly => (false, true),
            Glue::Glueless => (false, false),
        };
        if a {
            zones[p].add(&ns, 300, RData::A(Ipv4Addr::new(10, 9, i as u8, 53)));
        }
        if aaaa {
            zones[p].add(
                &ns,
                300,
                RData::Aaaa(Ipv6Addr::new(0xfd09, 0, 0, 0, 0, 0, 0x53, i as u16 + 1)),
            );
        }
    }
    zones
}

fn global(zones: &[Zone], iterative: Option<ResolverTransport>) -> GlobalDns {
    let mut g = GlobalDns::new();
    for z in zones {
        g.add_zone(z.clone());
    }
    if let Some(t) = iterative {
        g.set_iterative(t);
    }
    g
}

/// Every cut on the path from the root to `i` is crossable.
fn reachable(nodes: &[Node], mut i: usize, transport: ResolverTransport) -> bool {
    while let Some(p) = nodes[i].parent {
        if !nodes[i].glue.crossable(transport) {
            return false;
        }
        i = p;
    }
    true
}

proptest! {
    #[test]
    fn iterative_matches_flat_or_classifies(
        edges in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..12),
        transport_code in 0u8..3,
    ) {
        let transport = match transport_code {
            0 => ResolverTransport::DUAL,
            1 => ResolverTransport::V6_ONLY,
            _ => ResolverTransport::V4_ONLY,
        };
        let nodes = build_tree(&edges);
        let zones = build_zones(&nodes);
        let mut flat = global(&zones, None);
        let mut iter = global(&zones, Some(transport));
        for (i, node) in nodes.iter().enumerate() {
            let leaf: DnsName = format!("www.{}", node.origin).parse().expect("valid");
            for rtype in [RType::A, RType::Aaaa] {
                let q = Question::new(leaf.clone(), rtype);
                let reference = flat.resolve(&q, 0);
                prop_assert!(reference.is_positive(), "flat always answers its own tree");
                iter.reset();
                let answer = iter.resolve(&q, 0);
                // Loop-freedom: one descent never follows more than the
                // referral budget (the cap fires before the counter can
                // pass it).
                prop_assert!(iter.referrals as usize <= MAX_REFERRALS);
                if reachable(&nodes, i, transport) {
                    prop_assert_eq!(&answer.rcode, &reference.rcode);
                    prop_assert_eq!(&answer.records, &reference.records);
                    prop_assert_eq!(answer.reason, None);
                } else {
                    // Unreachable is *classified*, never a bare timeout
                    // or a wrong answer.
                    prop_assert_eq!(&answer.rcode, &Rcode::ServFail);
                    prop_assert_eq!(answer.reason, Some(ResolutionFailure::NoAaaaGlue));
                }
            }
        }
    }

    #[test]
    fn descent_always_terminates_within_the_referral_cap(
        depth in 1usize..14,
        glue_code in 0u8..4,
    ) {
        // A straight chain, possibly deeper than the referral budget:
        // the resolver must return — with the answer when the chain is
        // short enough and every cut crossable, with a classified
        // failure otherwise. It must never walk unboundedly.
        // build_tree clamps at depth 4; author the over-deep chain by
        // hand instead so the cap itself is exercised.
        let mut nodes = vec![Node { origin: n("deep"), parent: None, glue: Glue::Dual, depth: 0 }];
        for i in 0..depth {
            let origin = format!("c{i}.{}", nodes[i].origin);
            nodes.push(Node {
                origin: origin.parse().expect("valid"),
                parent: Some(i),
                glue: Glue::of(glue_code),
                depth: i + 1,
            });
        }
        let zones = build_zones(&nodes);
        let mut g = global(&zones, Some(ResolverTransport::DUAL));
        let leaf: DnsName = format!("www.{}", nodes[depth].origin).parse().expect("valid");
        let answer = g.resolve(&Question::new(leaf, RType::Aaaa), 0);
        prop_assert!(g.referrals as usize <= MAX_REFERRALS + 1);
        if depth <= MAX_REFERRALS {
            prop_assert!(answer.is_positive());
        } else {
            prop_assert_eq!(answer.reason, Some(ResolutionFailure::ReferralLoop));
        }
    }
}
