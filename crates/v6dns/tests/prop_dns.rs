//! Property-based tests for the DNS engine: codec round-trips with
//! arbitrary record mixtures, name algebra, cache TTL monotonicity, and
//! poisoning-policy invariants.

use proptest::prelude::*;
use std::net::{Ipv4Addr, Ipv6Addr};
use v6dns::codec::{Message, Question, RData, RType, Rcode, Record};
use v6dns::dns64::Dns64;
use v6dns::name::DnsName;
use v6dns::poison::{PoisonPolicy, PoisonedResolver};
use v6dns::server::{Answer, CachingResolver, Resolver};
use v6dns::stub::{SearchList, SearchOrder};
use v6dns::zone::Zone;

fn arb_label() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,14}"
        .prop_map(|s| s.trim_end_matches('-').to_string())
        .prop_filter("non-empty", |s| !s.is_empty())
}

fn arb_name() -> impl Strategy<Value = DnsName> {
    proptest::collection::vec(arb_label(), 1..5)
        .prop_map(|labels| DnsName::from_labels(labels).expect("valid labels"))
}

fn arb_rdata() -> impl Strategy<Value = RData> {
    prop_oneof![
        any::<u32>().prop_map(|v| RData::A(Ipv4Addr::from(v))),
        any::<u128>().prop_map(|v| RData::Aaaa(Ipv6Addr::from(v))),
        arb_name().prop_map(RData::Cname),
        arb_name().prop_map(RData::Ns),
        arb_name().prop_map(RData::Ptr),
        (any::<u16>(), arb_name()).prop_map(|(preference, exchange)| RData::Mx {
            preference,
            exchange
        }),
        proptest::collection::vec("[ -~]{0,40}", 1..3).prop_map(RData::Txt),
    ]
}

fn arb_record() -> impl Strategy<Value = Record> {
    (arb_name(), any::<u32>(), arb_rdata()).prop_map(|(n, ttl, d)| Record::new(n, ttl, d))
}

proptest! {
    #[test]
    fn message_roundtrip(
        id in any::<u16>(),
        qname in arb_name(),
        answers in proptest::collection::vec(arb_record(), 0..6),
        authorities in proptest::collection::vec(arb_record(), 0..3),
        rcode in 0u8..6,
    ) {
        let q = Message::query(id, Question::new(qname, RType::A));
        let mut resp = Message::response_to(&q, Rcode::NoError);
        resp.rcode = match rcode {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            _ => Rcode::Refused,
        };
        resp.answers = answers;
        resp.authorities = authorities;
        let bytes = resp.encode();
        prop_assert_eq!(Message::decode(&bytes).unwrap(), resp);
    }

    #[test]
    fn name_display_parse_roundtrip(name in arb_name()) {
        let s = name.to_string();
        let parsed: DnsName = s.parse().unwrap();
        prop_assert_eq!(parsed, name);
    }

    #[test]
    fn suffix_append_preserves_subdomain(base in arb_name(), suffix in arb_name()) {
        if let Ok(joined) = base.with_suffix(&suffix) {
            prop_assert!(joined.is_subdomain_of(&suffix));
            prop_assert_eq!(
                joined.label_count(),
                base.label_count() + suffix.label_count()
            );
        }
    }

    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Message::decode(&bytes);
    }

    #[test]
    fn cache_ttls_never_increase(ttl in 1u32..10000, elapsed in 0u64..20000) {
        let mut zone = Zone::new("p.test".parse().unwrap(), 60);
        zone.add_str("a", ttl, RData::A(Ipv4Addr::new(192, 0, 2, 1)));
        let mut g = v6dns::server::GlobalDns::new();
        g.add_zone(zone);
        let mut cache = CachingResolver::new(g);
        let q = Question::new("a.p.test".parse().unwrap(), RType::A);
        let first = cache.resolve(&q, 0);
        prop_assert!(first.is_positive());
        let later = cache.resolve(&q, elapsed);
        if later.is_positive() {
            for r in &later.records {
                prop_assert!(r.ttl <= ttl, "ttl grew: {} > {}", r.ttl, ttl);
            }
        }
    }

    /// Wildcard-A answers *every* A query with exactly the configured
    /// address, and never touches AAAA.
    #[test]
    fn wildcard_poison_total_and_family_scoped(name in arb_name(), answer in any::<u32>()) {
        let answer = Ipv4Addr::from(answer);
        let base = v6dns::server::GlobalDns::new();
        let mut p = PoisonedResolver::new(
            base,
            PoisonPolicy::WildcardA { answer, ttl: 60 },
        );
        let a = p.resolve(&Question::new(name.clone(), RType::A), 0);
        prop_assert!(a.is_positive());
        prop_assert_eq!(&a.records[0].data, &RData::A(answer));
        prop_assert_eq!(&a.records[0].name, &name);
        let aaaa = p.resolve(&Question::new(name, RType::Aaaa), 0);
        prop_assert!(!aaaa.is_positive(), "AAAA must pass through (empty upstream)");
    }

    /// RPZ never converts a negative answer into a positive one.
    #[test]
    fn rpz_preserves_negativity(name in arb_name(), answer in any::<u32>()) {
        let base = v6dns::server::GlobalDns::new(); // resolves nothing
        let mut p = PoisonedResolver::new(
            base,
            PoisonPolicy::ResponsePolicyZone {
                answer: Ipv4Addr::from(answer),
                ttl: 60,
            },
        );
        let a = p.resolve(&Question::new(name, RType::A), 0);
        prop_assert_eq!(a.rcode, Rcode::NxDomain);
        prop_assert!(a.records.is_empty());
    }

    /// DNS64 synthesis embeds exactly the A answers, in order.
    #[test]
    fn dns64_synthesis_faithful(addrs in proptest::collection::vec(any::<u32>(), 1..5)) {
        let mut zone = Zone::new("s.test".parse().unwrap(), 60);
        for a in &addrs {
            zone.add_str("only4", 60, RData::A(Ipv4Addr::from(*a)));
        }
        let mut g = v6dns::server::GlobalDns::new();
        g.add_zone(zone);
        let mut d = Dns64::well_known(g);
        let ans = d.resolve(&Question::new("only4.s.test".parse().unwrap(), RType::Aaaa), 0);
        prop_assert!(ans.is_positive());
        let got: Vec<Ipv6Addr> = ans
            .records
            .iter()
            .filter_map(|r| match r.data {
                RData::Aaaa(x) => Some(x),
                _ => None,
            })
            .collect();
        let expect: Vec<Ipv6Addr> = addrs
            .iter()
            .map(|a| d.prefix().embed_unchecked(Ipv4Addr::from(*a)))
            .collect();
        prop_assert_eq!(got, expect);
    }

    /// The search list emits the as-typed name exactly once, last or first
    /// according to the order policy.
    #[test]
    fn search_list_contains_original_once(
        name in arb_name(),
        suffixes in proptest::collection::vec(arb_name(), 0..3),
        suffix_first in any::<bool>(),
    ) {
        let list = SearchList::new(suffixes);
        let order = if suffix_first { SearchOrder::SuffixFirst } else { SearchOrder::AsIsFirst };
        let cands = list.candidates(&name, false, order);
        prop_assert_eq!(cands.iter().filter(|c| **c == name).count(), 1);
        prop_assert!(!cands.is_empty());
    }

    /// Cache accounting: over any interleaving of queries (repeated
    /// names, mixed record types, advancing clock, mid-stream evictions)
    /// every resolve is classified as exactly one hit or miss, and the
    /// `metrics()` snapshot reports the same ledger.
    #[test]
    fn cache_hits_plus_misses_equals_queries_served(
        hosts in proptest::collection::vec(arb_label(), 1..4),
        queries in proptest::collection::vec(
            (any::<prop::sample::Index>(), any::<bool>(), 0u64..600, any::<bool>()),
            1..40,
        ),
    ) {
        let mut zone = Zone::new("acct.test".parse().unwrap(), 60);
        for h in &hosts {
            zone.add_str(h, 120, RData::A(Ipv4Addr::new(198, 51, 100, 7)));
        }
        let mut g = v6dns::server::GlobalDns::new();
        g.add_zone(zone);
        let mut cache = CachingResolver::new(g);
        let mut served = 0u64;
        let mut clock = 0u64;
        for (idx, use_aaaa, advance, evict) in queries {
            clock += advance;
            if evict {
                cache.evict_expired(clock);
            }
            let host = &hosts[idx.index(hosts.len())];
            let rtype = if use_aaaa { RType::Aaaa } else { RType::A };
            let name: DnsName = format!("{host}.acct.test").parse().unwrap();
            let _ = cache.resolve(&Question::new(name, rtype), clock);
            served += 1;
            prop_assert_eq!(cache.hits + cache.misses, served);
        }
        let m = cache.metrics();
        prop_assert_eq!(m.get("hits"), cache.hits);
        prop_assert_eq!(m.get("misses"), cache.misses);
        prop_assert_eq!(m.get("queries"), served);
    }

    /// A positive zone answer is reproducible (lookup is pure).
    #[test]
    fn zone_lookup_pure(ttl in 1u32..1000, host in arb_label()) {
        let mut zone = Zone::new("z.test".parse().unwrap(), 60);
        zone.add_str(&host, ttl, RData::A(Ipv4Addr::new(203, 0, 113, 7)));
        let name: DnsName = format!("{host}.z.test").parse().unwrap();
        let a = zone.lookup(&name, RType::A);
        let b = zone.lookup(&name, RType::A);
        prop_assert_eq!(a, b);
    }
}

/// Directed check kept alongside the properties: an `Answer` made negative
/// by the resolver still carries the SOA needed for RFC 2308.
#[test]
fn negative_answers_carry_soa() {
    let mut zone = Zone::new("neg.test".parse().unwrap(), 60);
    zone.add_str("x", 60, RData::A(Ipv4Addr::new(192, 0, 2, 1)));
    let mut g = v6dns::server::GlobalDns::new();
    g.add_zone(zone);
    let a: Answer = g.resolve(
        &Question::new("missing.neg.test".parse().unwrap(), RType::A),
        0,
    );
    assert_eq!(a.rcode, Rcode::NxDomain);
    assert!(a.soa.is_some());
}
