//! Master-file round-trip gate over the committed `.zone` fixtures in
//! `tests/corpus/zones/` (the delegation tree the testbed's
//! broken-delegation scenario resolves through).
//!
//! Every fixture is committed in canonical form, so `emit(parse(f))`
//! must reproduce the file byte-identically — any drift in the
//! tokenizer, parser, or emitter (or a hand edit that breaks canonical
//! form) fails here. This is what the `dns-realism` CI lane runs.

use v6dns::master::{emit, parse};
use v6dns::zone::ZoneLookup;
use v6dns::{DnsName, RType};

const FIXTURES: &[(&str, &str)] = &[
    (
        "org.zone",
        include_str!("../../../tests/corpus/zones/org.zone"),
    ),
    (
        "supercomputing-org.zone",
        include_str!("../../../tests/corpus/zones/supercomputing-org.zone"),
    ),
    (
        "me.zone",
        include_str!("../../../tests/corpus/zones/me.zone"),
    ),
    (
        "ip6-me.zone",
        include_str!("../../../tests/corpus/zones/ip6-me.zone"),
    ),
    (
        "mirror-sc24.zone",
        include_str!("../../../tests/corpus/zones/mirror-sc24.zone"),
    ),
    (
        "anl-gov.zone",
        include_str!("../../../tests/corpus/zones/anl-gov.zone"),
    ),
    (
        "vtc-example.zone",
        include_str!("../../../tests/corpus/zones/vtc-example.zone"),
    ),
];

fn n(s: &str) -> DnsName {
    s.parse().unwrap()
}

#[test]
fn every_fixture_roundtrips_byte_identically() {
    for (name, text) in FIXTURES {
        let zone = parse(text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let emitted = emit(&zone).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(&emitted, text, "{name} is not in canonical form");
        // And emit∘parse is a fixed point, not just an involution on
        // this particular input.
        let again = emit(&parse(&emitted).unwrap()).unwrap();
        assert_eq!(again, emitted, "{name} canonical form is unstable");
    }
}

#[test]
fn fixtures_carry_at_least_the_soa() {
    for (name, text) in FIXTURES {
        let zone = parse(text).unwrap();
        assert!(
            zone.iter_records().count() >= 1,
            "{name} parsed to an empty zone"
        );
    }
}

#[test]
fn org_fixture_delegates_with_v4_only_glue() {
    // The broken-delegation scenario's load-bearing property: the org
    // zone refers sc24.supercomputing.org to an authoritative whose
    // glue has an A record but no AAAA.
    let org = parse(FIXTURES[0].1).unwrap();
    match org.lookup(&n("sc24.supercomputing.org"), RType::Aaaa) {
        ZoneLookup::Referral { cut, glue, .. } => {
            assert_eq!(cut, n("supercomputing.org"));
            assert!(glue.iter().any(|r| matches!(r.data, v6dns::RData::A(_))));
            assert!(!glue.iter().any(|r| matches!(r.data, v6dns::RData::Aaaa(_))));
        }
        other => panic!("expected referral, got {other:?}"),
    }
}

#[test]
fn me_fixture_delegates_with_dual_glue() {
    let me = parse(FIXTURES[2].1).unwrap();
    match me.lookup(&n("ip6.me"), RType::Aaaa) {
        ZoneLookup::Referral { cut, glue, .. } => {
            assert_eq!(cut, n("ip6.me"));
            assert!(glue.iter().any(|r| matches!(r.data, v6dns::RData::A(_))));
            assert!(glue.iter().any(|r| matches!(r.data, v6dns::RData::Aaaa(_))));
        }
        other => panic!("expected referral, got {other:?}"),
    }
}
