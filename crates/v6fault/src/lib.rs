//! # v6fault — seeded, deterministic fault injection for the testbed
//!
//! The paper's testbed lives on an unreliable 5G uplink with commodity
//! Raspberry Pi resolvers; its claims only hold if clients survive loss,
//! latency, and resolver outages. This crate describes *what goes wrong
//! and when* as plain data — a [`FaultPlan`] of per-link [`Impairment`]s
//! plus a virtual-time [`Outage`] schedule — which the `v6sim` engine
//! consults at its link layer.
//!
//! Two properties shape the whole design:
//!
//! 1. **`FaultPlan::default()` is a no-op.** The engine skips the fault
//!    path entirely when [`FaultPlan::is_noop`] holds, so every existing
//!    scenario stays bit-identical.
//! 2. **Every decision is a pure hash.** Whether a given frame is
//!    dropped, delayed, duplicated, or corrupted is a function of
//!    `(plan seed, link identity, decision counter)` — no shared RNG
//!    state, no evaluation-order sensitivity — so a faulted fleet run is
//!    exactly as reproducible as a clean one, serial or parallel.
//!
//! Times are expressed in plain microseconds of virtual time, keeping
//! this crate free of any dependency on the simulator (which depends on
//! us, not the other way around).

#![warn(missing_docs)]

/// Probability expressed in per-mille (0..=1000); integers keep the
/// sampling exact and the plan `Eq`-comparable.
pub type PerMille = u16;

/// SplitMix64 — the same finalizer the in-tree `rand` shim seeds with,
/// reimplemented here so the crate stays dependency-free.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over a node name — a stable, order-independent link identity.
fn name_hash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A per-link packet impairment profile. All probabilities are per
/// frame; all delays are microseconds of virtual time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Impairment {
    /// Probability a frame is silently dropped.
    pub drop_per_mille: PerMille,
    /// Fixed extra one-way latency added to every frame.
    pub extra_latency_us: u64,
    /// Uniform random extra latency in `0..=jitter_us`.
    pub jitter_us: u64,
    /// Probability a frame is held back by up to
    /// [`Impairment::reorder_window_us`] (overtaken by later frames).
    pub reorder_per_mille: PerMille,
    /// Maximum hold-back applied to reordered frames.
    pub reorder_window_us: u64,
    /// Probability a frame is delivered twice.
    pub duplicate_per_mille: PerMille,
    /// Probability a payload byte is flipped (receivers see a frame that
    /// fails to parse and drop it themselves).
    pub corrupt_per_mille: PerMille,
    /// Probability the frame is cut to half its length.
    pub truncate_per_mille: PerMille,
}

impl Impairment {
    /// True when no field can ever alter a frame.
    pub fn is_noop(&self) -> bool {
        *self == Impairment::default()
    }
}

/// Selects the link(s) a fault applies to, by node name. `None` matches
/// any endpoint; matching is direction-agnostic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EndpointMatch {
    /// One endpoint name (wildcard when `None`).
    pub a: Option<String>,
    /// The other endpoint name (wildcard when `None`).
    pub b: Option<String>,
}

impl EndpointMatch {
    /// Match every link.
    pub fn any() -> EndpointMatch {
        EndpointMatch::default()
    }

    /// Match every link with `name` on either end.
    pub fn node(name: &str) -> EndpointMatch {
        EndpointMatch {
            a: Some(name.to_string()),
            b: None,
        }
    }

    /// Match the link joining `a` and `b` (in either direction).
    pub fn between(a: &str, b: &str) -> EndpointMatch {
        EndpointMatch {
            a: Some(a.to_string()),
            b: Some(b.to_string()),
        }
    }

    /// Does the directed hop `from -> to` fall under this selector?
    pub fn matches(&self, from: &str, to: &str) -> bool {
        let hit =
            |want: &Option<String>, name: &str| want.as_deref().map(|w| w == name).unwrap_or(true);
        (hit(&self.a, from) && hit(&self.b, to)) || (hit(&self.a, to) && hit(&self.b, from))
    }
}

/// An impairment bound to a set of links.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkFault {
    /// Which links are impaired.
    pub on: EndpointMatch,
    /// How.
    pub impairment: Impairment,
}

/// A scheduled hard outage: every frame on matching links is dropped
/// while `start_us <= now < end_us` (a link flap, a crashed resolver's
/// cable, a rebooting gateway).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outage {
    /// Which links go dark.
    pub on: EndpointMatch,
    /// Window start, microseconds of virtual time (inclusive).
    pub start_us: u64,
    /// Window end, microseconds of virtual time (exclusive).
    pub end_us: u64,
}

/// A complete, seeded fault schedule. The default plan is empty and the
/// engine treats it as "faults compiled out".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed mixed into every sampling decision.
    pub seed: u64,
    /// Steady-state per-link impairments (first match wins).
    pub links: Vec<LinkFault>,
    /// Scheduled hard outages (any match drops the frame).
    pub outages: Vec<Outage>,
}

/// A [`FaultPlan`] resolved against one directed link, cached by the
/// engine so per-frame judging never touches node names again.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompiledLink {
    /// Index into [`FaultPlan::links`] of the first matching fault.
    imp: Option<usize>,
    /// Indices into [`FaultPlan::outages`] that cover this link.
    outages: Vec<usize>,
    /// Order-independent link identity mixed into every decision.
    link_salt: u64,
}

impl CompiledLink {
    /// True when no fault in the plan can ever touch this link.
    pub fn is_clean(&self) -> bool {
        self.imp.is_none() && self.outages.is_empty()
    }
}

/// What the plan decided for one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// How many copies to schedule (0 = dropped, 2 = duplicated).
    pub copies: u8,
    /// Extra one-way delay beyond the link's base latency.
    pub extra_delay_us: u64,
    /// Flip a payload byte before delivery.
    pub corrupt: bool,
    /// Cut the frame to half length before delivery.
    pub truncate: bool,
    /// The drop came from an [`Outage`] window, not random loss.
    pub outage: bool,
}

impl Delivery {
    /// The untouched-frame verdict.
    pub const CLEAN: Delivery = Delivery {
        copies: 1,
        extra_delay_us: 0,
        corrupt: false,
        truncate: false,
        outage: false,
    };
}

impl FaultPlan {
    /// True when the plan can never alter any frame — the engine's
    /// licence to skip the fault path entirely.
    pub fn is_noop(&self) -> bool {
        self.links.iter().all(|l| l.impairment.is_noop()) && self.outages.is_empty()
    }

    /// A stable 64-bit digest of the whole plan — seed, every link
    /// impairment, every outage window — for run manifests.
    ///
    /// Two plans digest equal iff they would judge every frame
    /// identically (field-for-field equality), and the digest depends
    /// only on plan data, never on pointer identity or build order, so
    /// it is reproducible across processes and architectures.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0x6661_756c_7470_6c61; // "faultpla"
        let mut mix = |v: u64| h = splitmix64(h ^ v);
        mix(self.seed);
        let mix_match = |h: &mut u64, m: &EndpointMatch| {
            let side = |s: &Option<String>| s.as_deref().map(name_hash).unwrap_or(0x2a);
            *h = splitmix64(*h ^ side(&m.a).rotate_left(7) ^ side(&m.b));
        };
        for l in &self.links {
            mix_match(&mut h, &l.on);
            let i = &l.impairment;
            for v in [
                u64::from(i.drop_per_mille),
                i.extra_latency_us,
                i.jitter_us,
                u64::from(i.reorder_per_mille),
                i.reorder_window_us,
                u64::from(i.duplicate_per_mille),
                u64::from(i.corrupt_per_mille),
                u64::from(i.truncate_per_mille),
            ] {
                h = splitmix64(h ^ v);
            }
        }
        for o in &self.outages {
            mix_match(&mut h, &o.on);
            h = splitmix64(h ^ o.start_us.rotate_left(13) ^ o.end_us);
        }
        h
    }

    /// Resolve the plan against the directed hop `from -> to`.
    pub fn compile(&self, from: &str, to: &str) -> CompiledLink {
        let imp = self
            .links
            .iter()
            .position(|l| !l.impairment.is_noop() && l.on.matches(from, to));
        let outages = self
            .outages
            .iter()
            .enumerate()
            .filter(|(_, o)| o.on.matches(from, to))
            .map(|(i, _)| i)
            .collect();
        // XOR keeps the salt direction-independent, so A->B and B->A of
        // the same link draw from distinct streams only via `decision`.
        let link_salt = name_hash(from) ^ name_hash(to);
        CompiledLink {
            imp,
            outages,
            link_salt,
        }
    }

    /// Roll the dice for one frame on a compiled link.
    ///
    /// `at_us` is the frame's transmit time; `decision` must be unique
    /// per judged frame (the engine uses a dedicated counter). The same
    /// `(plan, link, at_us, decision)` always returns the same verdict.
    pub fn judge(&self, link: &CompiledLink, at_us: u64, decision: u64) -> Delivery {
        for &oi in &link.outages {
            let o = &self.outages[oi];
            if at_us >= o.start_us && at_us < o.end_us {
                return Delivery {
                    copies: 0,
                    outage: true,
                    ..Delivery::CLEAN
                };
            }
        }
        let Some(ii) = link.imp else {
            return Delivery::CLEAN;
        };
        let imp = &self.links[ii].impairment;
        let roll = |salt: u64| -> u64 {
            splitmix64(
                self.seed
                    ^ link.link_salt.rotate_left(17)
                    ^ decision.wrapping_mul(0x2545_f491_4f6c_dd1d)
                    ^ salt.wrapping_mul(0x9e37_79b9),
            )
        };
        let hits = |salt: u64, p: PerMille| p > 0 && roll(salt) % 1000 < u64::from(p);
        if hits(1, imp.drop_per_mille) {
            return Delivery {
                copies: 0,
                ..Delivery::CLEAN
            };
        }
        let mut extra = imp.extra_latency_us;
        if imp.jitter_us > 0 {
            extra += roll(2) % (imp.jitter_us + 1);
        }
        if hits(3, imp.reorder_per_mille) && imp.reorder_window_us > 0 {
            extra += roll(4) % (imp.reorder_window_us + 1);
        }
        Delivery {
            copies: if hits(5, imp.duplicate_per_mille) {
                2
            } else {
                1
            },
            extra_delay_us: extra,
            corrupt: hits(6, imp.corrupt_per_mille),
            truncate: hits(7, imp.truncate_per_mille),
            outage: false,
        }
    }

    /// Total scheduled outage time that has already elapsed by `now_us`,
    /// summed over every window (clipped to `now_us`). Feeds the
    /// `fault.outage_secs` metric.
    pub fn outage_micros_until(&self, now_us: u64) -> u64 {
        self.outages
            .iter()
            .map(|o| o.end_us.min(now_us).saturating_sub(o.start_us.min(now_us)))
            .sum()
    }

    /// Deterministic uniform sample in `0..=max_us` for auxiliary jitter
    /// (host backoff timers reuse the plan-style mixing without needing
    /// an RNG object).
    pub fn jitter_sample(seed: u64, entropy: u64, max_us: u64) -> u64 {
        if max_us == 0 {
            return 0;
        }
        splitmix64(seed ^ entropy.wrapping_mul(0x2545_f491_4f6c_dd1d)) % (max_us + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy(p: PerMille) -> FaultPlan {
        FaultPlan {
            seed: 7,
            links: vec![LinkFault {
                on: EndpointMatch::any(),
                impairment: Impairment {
                    drop_per_mille: p,
                    ..Impairment::default()
                },
            }],
            outages: Vec::new(),
        }
    }

    #[test]
    fn default_plan_is_noop_and_clean_everywhere() {
        let plan = FaultPlan::default();
        assert!(plan.is_noop());
        let link = plan.compile("a", "b");
        assert!(link.is_clean());
        assert_eq!(plan.judge(&link, 0, 1), Delivery::CLEAN);
        assert_eq!(plan.outage_micros_until(u64::MAX), 0);
    }

    #[test]
    fn zero_probability_impairment_is_noop() {
        let plan = lossy(0);
        assert!(plan.is_noop(), "all-zero impairment must compile out");
    }

    #[test]
    fn judgement_is_a_pure_function() {
        let plan = lossy(500);
        let link = plan.compile("sw", "pi");
        for d in 0..200 {
            assert_eq!(plan.judge(&link, 1_000, d), plan.judge(&link, 1_000, d));
        }
    }

    #[test]
    fn drop_rate_lands_near_the_requested_probability() {
        let plan = lossy(250);
        let link = plan.compile("gw", "internet");
        let dropped = (0..4000)
            .filter(|&d| plan.judge(&link, 0, d).copies == 0)
            .count();
        assert!(
            (700..1300).contains(&dropped),
            "250‰ over 4000 frames gave {dropped} drops"
        );
    }

    #[test]
    fn selector_matches_either_direction_and_wildcards() {
        let m = EndpointMatch::between("sw", "pi");
        assert!(m.matches("sw", "pi") && m.matches("pi", "sw"));
        assert!(!m.matches("sw", "gw"));
        let n = EndpointMatch::node("pi");
        assert!(n.matches("pi", "anything") && n.matches("anything", "pi"));
        assert!(!n.matches("a", "b"));
        assert!(EndpointMatch::any().matches("x", "y"));
    }

    #[test]
    fn outage_window_drops_exactly_inside_the_window() {
        let plan = FaultPlan {
            seed: 0,
            links: Vec::new(),
            outages: vec![Outage {
                on: EndpointMatch::node("pi"),
                start_us: 1_000,
                end_us: 2_000,
            }],
        };
        assert!(!plan.is_noop());
        let link = plan.compile("sw", "pi");
        assert_eq!(plan.judge(&link, 999, 1), Delivery::CLEAN);
        let hit = plan.judge(&link, 1_000, 2);
        assert_eq!((hit.copies, hit.outage), (0, true));
        assert_eq!(plan.judge(&link, 2_000, 3), Delivery::CLEAN);
        // Unmatched links never go dark.
        let other = plan.compile("gw", "internet");
        assert_eq!(plan.judge(&other, 1_500, 4), Delivery::CLEAN);
        // Elapsed-outage accounting clips to `now`.
        assert_eq!(plan.outage_micros_until(0), 0);
        assert_eq!(plan.outage_micros_until(1_500), 500);
        assert_eq!(plan.outage_micros_until(10_000), 1_000);
    }

    #[test]
    fn latency_jitter_and_duplication_apply() {
        let plan = FaultPlan {
            seed: 3,
            links: vec![LinkFault {
                on: EndpointMatch::any(),
                impairment: Impairment {
                    extra_latency_us: 30_000,
                    jitter_us: 20_000,
                    duplicate_per_mille: 1000,
                    ..Impairment::default()
                },
            }],
            outages: Vec::new(),
        };
        let link = plan.compile("a", "b");
        let mut saw_jitter_spread = false;
        let first = plan.judge(&link, 0, 0).extra_delay_us;
        for d in 0..100 {
            let v = plan.judge(&link, 0, d);
            assert_eq!(v.copies, 2, "1000‰ duplication always doubles");
            assert!((30_000..=50_000).contains(&v.extra_delay_us));
            saw_jitter_spread |= v.extra_delay_us != first;
        }
        assert!(saw_jitter_spread, "jitter must actually vary");
    }

    #[test]
    fn first_matching_link_fault_wins() {
        let plan = FaultPlan {
            seed: 1,
            links: vec![
                LinkFault {
                    on: EndpointMatch::node("pi"),
                    impairment: Impairment {
                        drop_per_mille: 1000,
                        ..Impairment::default()
                    },
                },
                LinkFault {
                    on: EndpointMatch::any(),
                    impairment: Impairment {
                        duplicate_per_mille: 1000,
                        ..Impairment::default()
                    },
                },
            ],
            outages: Vec::new(),
        };
        let pi = plan.compile("sw", "pi");
        assert_eq!(
            plan.judge(&pi, 0, 1).copies,
            0,
            "pi rule shadows the wildcard"
        );
        let other = plan.compile("sw", "gw");
        assert_eq!(plan.judge(&other, 0, 1).copies, 2);
    }

    #[test]
    fn digest_tracks_plan_content() {
        assert_eq!(FaultPlan::default().digest(), FaultPlan::default().digest());
        let mut plan = FaultPlan {
            seed: 7,
            links: vec![LinkFault {
                on: EndpointMatch::between("5g-gw", "internet"),
                impairment: Impairment {
                    drop_per_mille: 25,
                    ..Impairment::default()
                },
            }],
            outages: vec![Outage {
                on: EndpointMatch::node("raspberry-pi"),
                start_us: 1_000,
                end_us: 2_000,
            }],
        };
        let d = plan.digest();
        assert_eq!(d, plan.clone().digest(), "digest is a pure function");
        assert_ne!(d, FaultPlan::default().digest());
        plan.outages[0].end_us += 1;
        assert_ne!(d, plan.digest(), "any field change moves the digest");
    }

    #[test]
    fn jitter_sample_is_bounded_and_deterministic() {
        for e in 0..50 {
            let v = FaultPlan::jitter_sample(9, e, 100);
            assert!(v <= 100);
            assert_eq!(v, FaultPlan::jitter_sample(9, e, 100));
        }
        assert_eq!(FaultPlan::jitter_sample(9, 1, 0), 0);
    }
}
