//! # v6fleet — parallel multi-seed scenario fleet runner
//!
//! Runs many independent [`Scenario`]s — cells of the paper's Fig. 4
//! evaluation matrix, each with its own seed and virtual clock — across
//! a pool of worker threads, and aggregates the results into a
//! [`FleetReport`].
//!
//! The report is **deterministic by construction**: every scenario is a
//! pure function of its descriptor (`v6testbed` guarantees this — one
//! seeded RNG, one virtual clock, a totally ordered event queue), and
//! the aggregation step orders results by scenario position, not by
//! completion order. So a 64-scenario fleet on 8 threads produces a
//! report equal — field for field, including every per-node counter —
//! to the same fleet run serially. Wall-clock figures, which genuinely
//! differ run to run, live in the separate [`WallStats`] and never
//! participate in report comparison.
//!
//! ```
//! use v6fleet::FleetRunner;
//! use v6testbed::Scenario;
//!
//! let scenarios: Vec<Scenario> = Scenario::matrix(0x5c24).into_iter().take(4).collect();
//! let parallel = FleetRunner::new(4).run(&scenarios);
//! let serial = FleetRunner::new(1).run(&scenarios);
//! assert_eq!(parallel.report, serial.report);
//! ```

#![warn(missing_docs)]

pub mod population;
pub mod sketch;

pub use population::{PopulationReport, PopulationRun, PopulationSpec};
pub use sketch::{nearest_rank, CensusSketch, LatencySketch, SketchPercentiles};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use v6testbed::scenario::ResolutionFailure;
use v6testbed::{CellArena, Scenario, ScenarioResult, TraceMode};

/// Streaming hooks into a running fleet: an observer shared across the
/// pool's workers, notified as each unit of work completes and *before*
/// the deterministic aggregation step. This is how a long-lived service
/// (`v6labd`) publishes live progress — census counters, latency
/// sketches, metrics totals — while a job is still executing, without
/// perturbing the report (observers get shared references; the results
/// the report aggregates are exactly the ones the observer saw).
///
/// Methods default to no-ops so an observer implements only the hooks
/// it needs. Implementations must be `Sync`: workers call them
/// concurrently, in completion order (which is scheduling-dependent —
/// anything an observer accumulates must therefore be order-independent,
/// e.g. a [`CensusSketch`] merge, if it is later compared across runs).
pub trait FleetObserver: Sync {
    /// Scenario `index` of the input list finished with `result`.
    fn scenario_done(&self, index: usize, result: &ScenarioResult) {
        let _ = (index, result);
    }

    /// Population shard `shard` folded its index range into `sketch`.
    fn shard_done(&self, shard: usize, sketch: &sketch::CensusSketch) {
        let _ = (shard, sketch);
    }
}

/// The do-nothing observer behind the plain `run`/`run_population`
/// entry points.
pub(crate) struct NoopObserver;

impl FleetObserver for NoopObserver {}

/// A pool of worker threads that drains a scenario list.
///
/// Scheduling is a shared atomic cursor: each worker claims the next
/// unclaimed scenario index and runs it to completion, so threads that
/// draw short scenarios automatically pick up more work (the "work
/// stealing" is the queue itself — there is nothing to steal back
/// because items are claimed one at a time).
#[derive(Debug, Clone, Copy)]
pub struct FleetRunner {
    threads: usize,
    trace_mode: TraceMode,
}

impl FleetRunner {
    /// A runner with `threads` workers (at least one). Scenarios run
    /// under [`TraceMode::Hops`] — trace verbosity never perturbs the
    /// simulation, so the report is identical in every mode; use
    /// [`FleetRunner::with_trace_mode`] to pick `Off` (fastest) or
    /// `Full` (eager per-frame summaries).
    pub fn new(threads: usize) -> FleetRunner {
        assert!(threads >= 1, "a fleet needs at least one worker");
        FleetRunner {
            threads,
            trace_mode: TraceMode::Hops,
        }
    }

    /// The same runner with an explicit engine trace mode.
    pub fn with_trace_mode(mut self, trace_mode: TraceMode) -> FleetRunner {
        self.trace_mode = trace_mode;
        self
    }

    /// Number of worker threads this runner spawns.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The engine trace mode scenarios run under.
    pub fn trace_mode(&self) -> TraceMode {
        self.trace_mode
    }

    /// Run every scenario and aggregate.
    ///
    /// Panics in a scenario propagate to the caller (a broken testbed
    /// build should fail the fleet, not vanish into a worker).
    pub fn run(&self, scenarios: &[Scenario]) -> FleetRun {
        self.run_observed(scenarios, &NoopObserver)
    }

    /// [`FleetRunner::run`] with a streaming [`FleetObserver`]: every
    /// finished scenario is reported to `observer` as it completes,
    /// before aggregation. The returned report is identical to
    /// [`FleetRunner::run`]'s — observation never perturbs the fleet.
    ///
    /// Cells run warm: each worker owns a [`CellArena`] and recycles a
    /// built testbed between cells instead of rebuilding one per cell.
    /// Warm results are byte-identical to cold ones (`run_serial`, which
    /// stays on the cold path, is the baseline the determinism tests
    /// compare against).
    pub fn run_observed(&self, scenarios: &[Scenario], observer: &dyn FleetObserver) -> FleetRun {
        let started = Instant::now();
        let mode = self.trace_mode;
        let results: Vec<ScenarioResult> = if self.threads == 1 {
            let mut arena = CellArena::new();
            scenarios
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let r = arena.run_with_trace(s, mode);
                    observer.scenario_done(i, &r);
                    r
                })
                .collect()
        } else {
            let cursor = AtomicUsize::new(0);
            let slots: Mutex<Vec<Option<ScenarioResult>>> = Mutex::new(vec![None; scenarios.len()]);
            std::thread::scope(|scope| {
                let workers: Vec<_> = (0..self.threads)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut arena = CellArena::new();
                            loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some(s) = scenarios.get(i) else { break };
                                let r = arena.run_with_trace(s, mode);
                                observer.scenario_done(i, &r);
                                slots.lock().expect("no poisoned worker")[i] = Some(r);
                            }
                        })
                    })
                    .collect();
                for w in workers {
                    w.join().expect("fleet worker panicked");
                }
            });
            slots
                .into_inner()
                .expect("workers joined")
                .into_iter()
                .map(|r| r.expect("every slot filled"))
                .collect()
        };
        let wall = WallStats {
            threads: self.threads,
            elapsed: started.elapsed(),
            scenarios: scenarios.len(),
        };
        FleetRun {
            report: FleetReport::aggregate(results),
            wall,
        }
    }
}

/// What [`FleetRunner::run`] hands back: the deterministic report plus
/// the run's (non-deterministic) wall-clock figures.
#[derive(Debug, Clone)]
pub struct FleetRun {
    /// Deterministic aggregate — equal across same-input runs.
    pub report: FleetReport,
    /// Wall-clock throughput of this particular run.
    pub wall: WallStats,
}

/// Wall-clock figures for one fleet execution. Deliberately kept out of
/// [`FleetReport`] so report equality is meaningful.
#[derive(Debug, Clone, Copy)]
pub struct WallStats {
    /// Worker threads used.
    pub threads: usize,
    /// Real time the fleet took.
    pub elapsed: Duration,
    /// Scenarios executed.
    pub scenarios: usize,
}

impl WallStats {
    /// Scenarios per wall-clock second.
    pub fn scenarios_per_sec(&self) -> f64 {
        self.scenarios as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Aggregate IPv6-only census over a whole fleet, SC23-naive vs
/// SC24-accurate methodology (paper §III.A) plus the intervention and
/// RFC 8925 engagement totals the evaluation tracks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetCensus {
    /// Clients that associated (one per scenario).
    pub associated: usize,
    /// SC23-style count: everyone on the SSID.
    pub naive_v6only: usize,
    /// SC24-style count: IPv6 works and no IPv4 data path remains.
    pub accurate_v6only: usize,
    /// Clients still holding an IPv4 path.
    pub with_v4_path: usize,
    /// Clients where RFC 8925 engaged.
    pub rfc8925_engaged: usize,
    /// Clients redirected to the intervention page.
    pub intervened: usize,
    /// Scenarios where injected faults visibly bit: frames lost to the
    /// fault plan, or NAT64 bindings refused by a saturated table. Zero
    /// on every clean fleet, so pre-fault reports are unchanged.
    pub degraded: usize,
    /// Clients per classified DNS resolution failure, indexed by
    /// [`ResolutionFailure::index`]. Each client is counted at most
    /// once, under its most severe reason (lowest index wins) — the
    /// same projection `CellObservation::dns_failure` carries. All
    /// zero on fleets whose resolution never failed, so pre-existing
    /// reports only gain zero-valued columns.
    pub dns_failures: [usize; ResolutionFailure::ALL.len()],
}

/// `p50` / `p90` / `max` over a per-scenario quantity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Percentiles {
    /// Median (nearest-rank).
    pub p50: u64,
    /// 90th percentile (nearest-rank).
    pub p90: u64,
    /// Maximum.
    pub max: u64,
}

impl Percentiles {
    fn of(mut samples: Vec<u64>) -> Percentiles {
        samples.sort_unstable();
        // nearest_rank handles the once-latent edge cases uniformly:
        // empty → 0 (== default), one element → itself at every q, and
        // the computed rank is clamped so float rounding can't index
        // past either end.
        Percentiles {
            p50: nearest_rank(&samples, 0.50),
            p90: nearest_rank(&samples, 0.90),
            max: samples.last().copied().unwrap_or(0),
        }
    }
}

/// Virtual-clock timing distribution across the fleet. All figures are
/// simulation time — identical for identical inputs regardless of how
/// many threads did the work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetTiming {
    /// Virtual microseconds at which scenarios finished.
    pub completed_us: Percentiles,
    /// Engine events processed per scenario.
    pub events: Percentiles,
}

/// The deterministic aggregate of a fleet run.
///
/// Contains every per-scenario [`ScenarioResult`] (in scenario order),
/// the fleet-wide census, and virtual-clock timing percentiles. Two
/// fleets over the same scenario list compare equal with `==` no matter
/// the thread count or completion order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetReport {
    /// Per-scenario results, ordered as the input scenarios were.
    pub results: Vec<ScenarioResult>,
    /// Aggregate census.
    pub census: FleetCensus,
    /// Virtual-clock timing distribution.
    pub timing: FleetTiming,
}

impl FleetReport {
    /// Fold per-scenario results (already in scenario order) into the
    /// fleet-wide aggregate.
    pub fn aggregate(results: Vec<ScenarioResult>) -> FleetReport {
        let mut census = FleetCensus::default();
        for r in &results {
            census.associated += 1;
            census.naive_v6only += usize::from(r.census.naive_counted);
            census.accurate_v6only += usize::from(r.census.accurate_counted);
            census.with_v4_path += usize::from(r.census.has_v4);
            census.rfc8925_engaged += usize::from(r.verdict.rfc8925_engaged);
            census.intervened += usize::from(r.verdict.intervened);
            let nat64_refusals = r
                .metrics
                .node("5g-gw")
                .map(|n| n.device.get("nat64.dropped_table_full"))
                .unwrap_or(0);
            census.degraded +=
                usize::from(r.metrics.faults.total_dropped() > 0 || nat64_refusals > 0);
            if let Some(f) = r.dns_failure() {
                census.dns_failures[f.index()] += 1;
            }
        }
        let timing = FleetTiming {
            completed_us: Percentiles::of(
                results.iter().map(|r| r.completed_at.as_micros()).collect(),
            ),
            events: Percentiles::of(
                results
                    .iter()
                    .map(|r| r.metrics.engine.events_processed)
                    .collect(),
            ),
        };
        FleetReport {
            results,
            census,
            timing,
        }
    }

    /// Census broken down by OS profile (sorted by profile name): which
    /// populations still reach the explanation portal, hold a v4 path,
    /// or degrade under the injected faults. The per-profile rows are
    /// what the clean-vs-impaired diff in `examples/fleet_census.rs`
    /// compares.
    pub fn census_by_os(&self) -> Vec<(String, FleetCensus)> {
        let mut rows: std::collections::BTreeMap<String, FleetCensus> =
            std::collections::BTreeMap::new();
        for r in &self.results {
            let sub = FleetReport::aggregate(vec![r.clone()]).census;
            let row = rows.entry(r.census.os.clone()).or_default();
            row.associated += sub.associated;
            row.naive_v6only += sub.naive_v6only;
            row.accurate_v6only += sub.accurate_v6only;
            row.with_v4_path += sub.with_v4_path;
            row.rfc8925_engaged += sub.rfc8925_engaged;
            row.intervened += sub.intervened;
            row.degraded += sub.degraded;
            for (a, b) in row.dns_failures.iter_mut().zip(sub.dns_failures) {
                *a += b;
            }
        }
        rows.into_iter().collect()
    }

    /// Sum every per-scenario [`v6sim::metrics::MetricsSnapshot`] into
    /// one fleet-wide totals block — the metrics section a canonical run
    /// manifest serializes.
    ///
    /// Every field is a plain sum across scenarios except
    /// `engine.queue_high_water`, which is the fleet-wide maximum (each
    /// scenario runs its own event queue, so summing high-water marks
    /// would describe no real queue). Node rows are merged by node name
    /// and ordered by name, so the totals are independent of scenario
    /// order, thread count, and trace mode — the same invariances the
    /// per-scenario results already guarantee.
    pub fn metrics_totals(&self) -> FleetMetricsTotals {
        let mut engine = v6sim::metrics::EngineMetrics::default();
        let mut faults = v6sim::metrics::FaultCounters::default();
        let mut pool = v6sim::metrics::PoolCounters::default();
        let mut trace = v6sim::metrics::TraceCounters::default();
        let mut nodes: std::collections::BTreeMap<
            String,
            (v6sim::metrics::LinkCounters, v6wire::metrics::Metrics),
        > = std::collections::BTreeMap::new();
        for r in &self.results {
            let m = &r.metrics;
            engine.events_processed += m.engine.events_processed;
            engine.frames_delivered += m.engine.frames_delivered;
            engine.frames_forwarded += m.engine.frames_forwarded;
            engine.frames_dropped_unlinked += m.engine.frames_dropped_unlinked;
            engine.timers_fired += m.engine.timers_fired;
            engine.queue_high_water = engine.queue_high_water.max(m.engine.queue_high_water);
            faults.dropped += m.faults.dropped;
            faults.outage_dropped += m.faults.outage_dropped;
            faults.delayed += m.faults.delayed;
            faults.duplicated += m.faults.duplicated;
            faults.corrupted += m.faults.corrupted;
            faults.truncated += m.faults.truncated;
            faults.outage_micros += m.faults.outage_micros;
            pool.allocated += m.pool.allocated;
            pool.reused += m.pool.reused;
            trace.suppressed += m.trace.suppressed;
            trace.capture_suppressed += m.trace.capture_suppressed;
            for n in &m.nodes {
                let (link, device) = nodes.entry(n.name.clone()).or_default();
                link.frames_tx += n.link.frames_tx;
                link.frames_rx += n.link.frames_rx;
                link.bytes_tx += n.link.bytes_tx;
                link.bytes_rx += n.link.bytes_rx;
                link.drops_unlinked += n.link.drops_unlinked;
                link.timer_fires += n.link.timer_fires;
                device.merge(&n.device);
            }
        }
        FleetMetricsTotals {
            engine,
            faults,
            pool,
            trace,
            nodes: nodes
                .into_iter()
                .map(|(name, (link, device))| NodeTotals { name, link, device })
                .collect(),
        }
    }

    /// Sum one named device counter for the node called `node` across
    /// every scenario (e.g. `("5g-gw", "nat64.outbound")`).
    pub fn sum_device_counter(&self, node: &str, counter: &str) -> u64 {
        self.results
            .iter()
            .filter_map(|r| r.metrics.node(node))
            .map(|n| n.device.get(counter))
            .sum()
    }

    /// Render the whole report: one row per scenario, then the census
    /// and timing summary. Stable across runs (it contains no wall-clock
    /// data), so it can be diffed like the golden traces.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.results {
            out.push_str(&r.render());
            out.push('\n');
        }
        let c = &self.census;
        out.push_str(&format!(
            "census: associated={} naive-v6only={} accurate-v6only={} with-v4-path={} rfc8925={} intervened={}",
            c.associated, c.naive_v6only, c.accurate_v6only, c.with_v4_path, c.rfc8925_engaged, c.intervened,
        ));
        if c.degraded > 0 {
            out.push_str(&format!(" degraded={}", c.degraded));
        }
        out.push('\n');
        if c.dns_failures.iter().any(|&n| n > 0) {
            out.push_str("dns-fail:");
            for f in ResolutionFailure::ALL {
                out.push_str(&format!(" {}={}", f.label(), c.dns_failures[f.index()]));
            }
            out.push('\n');
        }
        let t = &self.timing;
        out.push_str(&format!(
            "sim-timing: completed_us p50={} p90={} max={}; events p50={} p90={} max={}\n",
            t.completed_us.p50,
            t.completed_us.p90,
            t.completed_us.max,
            t.events.p50,
            t.events.p90,
            t.events.max,
        ));
        out
    }
}

/// One node's fleet-wide totals: engine link counters and device
/// counters summed across every scenario the node appeared in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeTotals {
    /// The node's name (shared across scenarios by construction — every
    /// cell builds the same Fig. 4 topology).
    pub name: String,
    /// Summed physical-layer counters.
    pub link: v6sim::metrics::LinkCounters,
    /// Summed device counters.
    pub device: v6wire::metrics::Metrics,
}

/// Fleet-wide metrics sums — see [`FleetReport::metrics_totals`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetMetricsTotals {
    /// Engine totals (sums; `queue_high_water` is the fleet max).
    pub engine: v6sim::metrics::EngineMetrics,
    /// Injected-fault totals.
    pub faults: v6sim::metrics::FaultCounters,
    /// Frame-pool totals.
    pub pool: v6sim::metrics::PoolCounters,
    /// Trace/capture cap-overflow totals.
    pub trace: v6sim::metrics::TraceCounters,
    /// Per-node rows, ordered by node name.
    pub nodes: Vec<NodeTotals>,
}

impl FleetMetricsTotals {
    /// The frame-conservation identity the engine guarantees, as plain
    /// data for the manifest: `sum(tx) == forwarded + dropped_unlinked`
    /// and `sum(rx) == delivered`, fleet-wide.
    pub fn conservation(&self) -> (u64, u64) {
        let tx: u64 = self.nodes.iter().map(|n| n.link.frames_tx).sum();
        let rx: u64 = self.nodes.iter().map(|n| n.link.frames_rx).sum();
        (tx, rx)
    }
}

/// Convenience: run `scenarios` one at a time on the calling thread,
/// each on a freshly built testbed (the *cold* path). The baseline the
/// parallel — and, since warm-cell execution, recycled — paths are
/// checked against.
pub fn run_serial(scenarios: &[Scenario]) -> FleetReport {
    FleetReport::aggregate(scenarios.iter().map(Scenario::run).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6host::profiles::OsProfile;
    use v6testbed::scenario::{FaultVariant, PoisonVariant, TopologyVariant};
    use v6testbed::Scenario;

    fn tiny_fleet() -> Vec<Scenario> {
        [
            OsProfile::macos(),
            OsProfile::nintendo_switch(),
            OsProfile::windows_10(),
        ]
        .into_iter()
        .enumerate()
        .map(|(i, os)| Scenario {
            os,
            topology: TopologyVariant::PaperDefault,
            poison: PoisonVariant::WildcardA,
            fault: FaultVariant::Clean,
            seed: 0x900 + i as u64,
        })
        .collect()
    }

    #[test]
    fn parallel_equals_serial() {
        let scenarios = tiny_fleet();
        let serial = run_serial(&scenarios);
        let parallel = FleetRunner::new(3).run(&scenarios);
        assert_eq!(serial, parallel.report);
        assert_eq!(serial.render(), parallel.report.render());
    }

    #[test]
    fn census_counts_the_expected_population() {
        let report = run_serial(&tiny_fleet());
        assert_eq!(report.census.associated, 3);
        // macOS honours option 108; the console and Win10 differ on v4.
        assert!(report.census.rfc8925_engaged >= 1);
        assert!(
            report.census.intervened >= 1,
            "the v4-only console lands on the page"
        );
        assert!(report.timing.events.max >= report.timing.events.p50);
    }

    #[test]
    fn metrics_totals_sum_across_scenarios() {
        let report = run_serial(&tiny_fleet());
        let t = report.metrics_totals();
        let events: u64 = report
            .results
            .iter()
            .map(|r| r.metrics.engine.events_processed)
            .sum();
        assert_eq!(t.engine.events_processed, events);
        let (tx, rx) = t.conservation();
        assert_eq!(
            tx,
            t.engine.frames_forwarded + t.engine.frames_dropped_unlinked
        );
        assert_eq!(rx, t.engine.frames_delivered);
        assert!(
            t.nodes.windows(2).all(|w| w[0].name < w[1].name),
            "rows in name order"
        );
        let gw = t
            .nodes
            .iter()
            .find(|n| n.name == "5g-gw")
            .expect("gateway row");
        assert_eq!(
            gw.device.get("nat64.outbound"),
            report.sum_device_counter("5g-gw", "nat64.outbound"),
        );
    }

    #[test]
    fn percentiles_nearest_rank() {
        let p = Percentiles::of(vec![10, 20, 30, 40]);
        assert_eq!((p.p50, p.p90, p.max), (20, 40, 40));
        assert_eq!(Percentiles::of(vec![]), Percentiles::default());
        let one = Percentiles::of(vec![7]);
        assert_eq!((one.p50, one.p90, one.max), (7, 7, 7));
    }
}
