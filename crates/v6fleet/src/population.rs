//! Population-scale census: sample host cells from weighted OS / app /
//! fault distributions and fold them through the worker pool into a
//! streaming [`CensusSketch`].
//!
//! The two determinism guarantees, and how they're structural rather
//! than incidental:
//!
//! 1. **Shard layout can't leak into the sample.** Each cell is derived
//!    from `(population seed, cell index)` alone by a splittable PRNG —
//!    there is no sequential RNG stream whose position depends on which
//!    shard drew first. Cell 0x4242 is the same cell whether the census
//!    ran as one shard or a thousand.
//! 2. **Shard layout can't leak into the aggregate.** Every shard folds
//!    its cells into a [`CensusSketch`], and sketch merge is an exact
//!    integer monoid (associative + commutative, `merge == union`) —
//!    proven by the property tests in `tests/population.rs`.
//!
//! Together: same spec ⇒ byte-identical [`PopulationReport`] for any
//! thread count and any shard count.

use crate::sketch::CensusSketch;
use crate::{FleetCensus, FleetObserver, FleetRunner, NoopObserver, SketchPercentiles, WallStats};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use v6testbed::scenario::FaultVariant;
use v6testbed::{CellArena, CellSpec, OsProfileId, PoisonVariant, TopologyVariant};

const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// The splitmix64 finalizer — a strong 64-bit mix.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A tiny splittable PRNG: the stream for one cell, keyed entirely by
/// `(population seed, cell index)`. This is splitmix64 started from a
/// per-cell derived state, so draws for cell `i` are independent of
/// every other cell and of any shard layout.
struct CellRng {
    state: u64,
}

impl CellRng {
    fn for_cell(seed: u64, index: u64) -> CellRng {
        CellRng {
            state: seed ^ mix(index.wrapping_add(0x5c24).wrapping_mul(GOLDEN)),
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        mix(self.state)
    }
}

/// Draw from a cumulative-weight table: `r` modulo the total weight
/// lands in exactly one entry's interval. A zero-weight entry owns an
/// empty interval, so it is unreachable — the statistical-sanity test
/// pins that down.
fn pick<T: Copy>(weights: &[(T, u32)], r: u64) -> T {
    let total: u64 = weights.iter().map(|&(_, w)| u64::from(w)).sum();
    assert!(
        total > 0,
        "a weighted dimension needs positive total weight"
    );
    let mut point = r % total;
    for &(item, w) in weights {
        let w = u64::from(w);
        if point < w {
            return item;
        }
        point -= w;
    }
    unreachable!("point < total by construction")
}

/// A deterministic description of a simulated client population: how
/// many cells, the master seed, and weighted distributions over every
/// matrix dimension. The spec *is* the population — `cell(i)` derives
/// the i-th member on the fly, so a million-host census stores no cell
/// list anywhere.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PopulationSpec {
    /// Master seed; every cell's RNG is split from this.
    pub seed: u64,
    /// Number of host cells in the population.
    pub size: u64,
    /// Relative weight per OS profile (interned table ids). Zero-weight
    /// entries are legal and never sampled.
    pub os_weights: Vec<(OsProfileId, u32)>,
    /// Relative weight per topology variant.
    pub topology_weights: Vec<(TopologyVariant, u32)>,
    /// Relative weight per IPv4-DNS intervention.
    pub poison_weights: Vec<(PoisonVariant, u32)>,
    /// Relative weight per fault regime.
    pub fault_weights: Vec<(FaultVariant, u32)>,
}

impl PopulationSpec {
    /// The paper-inspired default mix: a conference-floor client mix
    /// dominated by recent Windows/macOS/mobile, mostly on the deployed
    /// topology with the wildcard-A intervention, with a minority of
    /// fault-impaired cells. The legacy printer is configured at weight
    /// zero — present in the table, never sampled (it doesn't run the
    /// browse workload in the wild either).
    pub fn paper_default(seed: u64, size: u64) -> PopulationSpec {
        let os_weights = OsProfileId::all()
            .map(|id| {
                let w = match id.name() {
                    "Windows XP" => 8,
                    "Windows 10" => 240,
                    "Windows 10 (IPv6 disabled)" => 12,
                    "Windows 11" => 210,
                    "Windows 11 (RFC8925)" => 45,
                    "Linux" => 40,
                    "macOS" => 170,
                    "iOS" => 140,
                    "Android" => 120,
                    "Nintendo Switch" => 15,
                    "Legacy printer" => 0,
                    other => unreachable!("unweighted profile {other}"),
                };
                (id, w)
            })
            .collect();
        PopulationSpec {
            seed,
            size,
            os_weights,
            topology_weights: vec![
                (TopologyVariant::PaperDefault, 900),
                (TopologyVariant::RawGateway, 100),
            ],
            poison_weights: vec![
                (PoisonVariant::Off, 100),
                (PoisonVariant::WildcardA, 700),
                (PoisonVariant::Rpz, 200),
            ],
            fault_weights: vec![
                (FaultVariant::Clean, 850),
                (FaultVariant::LossyUplink, 80),
                (FaultVariant::Dns64Outage, 40),
                (FaultVariant::Nat64Exhaustion, 30),
                // Present in the table (so the manifest documents the
                // regime and its weight) but never sampled: a broken
                // delegation tree is an internet-side condition, not a
                // per-client mix. The total weight is unchanged, so
                // every previously sampled cell stays the same cell.
                (FaultVariant::BrokenDelegation, 0),
            ],
        }
    }

    /// Derive the `index`-th cell. A pure function of
    /// `(self.seed, index)` — shard layout, thread count, and sampling
    /// order cannot change what any cell is.
    pub fn cell(&self, index: u64) -> CellSpec {
        debug_assert!(index < self.size, "cell index out of population");
        let mut rng = CellRng::for_cell(self.seed, index);
        let os = pick(&self.os_weights, rng.next());
        let topology = pick(&self.topology_weights, rng.next());
        let poison = pick(&self.poison_weights, rng.next());
        let fault = pick(&self.fault_weights, rng.next());
        CellSpec {
            os,
            topology,
            poison,
            fault,
            seed: rng.next(),
        }
    }

    /// FNV-1a digest over every field that defines the population —
    /// seed, size, and all four weight tables. Two specs with the same
    /// digest sample the same cells; the manifest stores this so a
    /// silently edited weight can't masquerade as the golden run.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.eat(self.seed);
        h.eat(self.size);
        for &(id, w) in &self.os_weights {
            h.eat(1);
            h.eat(u64::from(id.0));
            h.eat(u64::from(w));
        }
        for &(t, w) in &self.topology_weights {
            h.eat(2);
            h.eat_label(t.label());
            h.eat(u64::from(w));
        }
        for &(p, w) in &self.poison_weights {
            h.eat(3);
            h.eat_label(p.label());
            h.eat(u64::from(w));
        }
        for &(f, w) in &self.fault_weights {
            h.eat(4);
            h.eat_label(f.label());
            h.eat(u64::from(w));
        }
        h.0
    }
}

/// Incremental FNV-1a over little-endian u64 words and label bytes.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn eat_byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn eat(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.eat_byte(b);
        }
    }

    fn eat_label(&mut self, s: &str) {
        for &b in s.as_bytes() {
            self.eat_byte(b);
        }
        self.eat_byte(0);
    }
}

/// The deterministic aggregate of a population census: the spec's
/// digest and size plus the merged [`CensusSketch`]. Equal with `==`
/// (and byte-equal through the canonical manifest) for the same spec,
/// no matter the thread or shard count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PopulationReport {
    /// [`PopulationSpec::digest`] of the spec that produced this.
    pub spec_digest: u64,
    /// Cells sampled (== spec size).
    pub size: u64,
    /// The merged streaming aggregate.
    pub sketch: CensusSketch,
}

impl PopulationReport {
    /// Per-OS census rows for every profile that actually appeared,
    /// sorted by profile name (matching
    /// [`FleetReport::census_by_os`](crate::FleetReport::census_by_os)).
    pub fn census_by_os(&self) -> Vec<(String, FleetCensus)> {
        let mut rows: Vec<(String, FleetCensus)> = OsProfileId::all()
            .zip(&self.sketch.by_os)
            .filter(|(_, c)| c.associated > 0)
            .map(|(id, c)| (id.name().to_string(), *c))
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }

    /// Virtual completion-time percentiles (µs, sketch resolution).
    pub fn completed_us(&self) -> SketchPercentiles {
        self.sketch.completed_us.percentiles()
    }

    /// Engine events-per-cell percentiles (sketch resolution).
    pub fn events(&self) -> SketchPercentiles {
        self.sketch.events.percentiles()
    }

    /// Digest of the full report: spec digest, census counters, per-OS
    /// rows, fault mix, and the complete latency distributions. The
    /// single number the determinism tests compare.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.eat(self.spec_digest);
        h.eat(self.size);
        h.eat(self.sketch.samples);
        let mut census = |c: &FleetCensus| {
            h.eat(c.associated as u64);
            h.eat(c.naive_v6only as u64);
            h.eat(c.accurate_v6only as u64);
            h.eat(c.with_v4_path as u64);
            h.eat(c.rfc8925_engaged as u64);
            h.eat(c.intervened as u64);
            h.eat(c.degraded as u64);
            for &n in &c.dns_failures {
                h.eat(n as u64);
            }
        };
        census(&self.sketch.census);
        for row in &self.sketch.by_os {
            census(row);
        }
        for &n in &self.sketch.fault_mix {
            h.eat(n);
        }
        h.eat(self.sketch.completed_us.digest());
        h.eat(self.sketch.events.digest());
        h.0
    }

    /// Render the census summary — stable across runs, like
    /// [`FleetReport::render`](crate::FleetReport::render).
    pub fn render(&self) -> String {
        let c = &self.sketch.census;
        let mut out = format!(
            "population: size={} spec={:016x}\ncensus: associated={} naive-v6only={} accurate-v6only={} with-v4-path={} rfc8925={} intervened={} degraded={}\n",
            self.size, self.spec_digest,
            c.associated, c.naive_v6only, c.accurate_v6only, c.with_v4_path,
            c.rfc8925_engaged, c.intervened, c.degraded,
        );
        for (name, row) in self.census_by_os() {
            out.push_str(&format!(
                "  {name}: n={} accurate-v6only={} v4-path={} intervened={} degraded={}\n",
                row.associated, row.accurate_v6only, row.with_v4_path, row.intervened, row.degraded,
            ));
        }
        out.push_str("fault-mix:");
        for (f, &n) in FaultVariant::ALL.iter().zip(&self.sketch.fault_mix) {
            out.push_str(&format!(" {}={}", f.label(), n));
        }
        out.push('\n');
        if c.dns_failures.iter().any(|&n| n > 0) {
            out.push_str("dns-fail:");
            for f in v6testbed::scenario::ResolutionFailure::ALL {
                out.push_str(&format!(" {}={}", f.label(), c.dns_failures[f.index()]));
            }
            out.push('\n');
        }
        let t = self.completed_us();
        let e = self.events();
        out.push_str(&format!(
            "sim-timing: completed_us p50={} p90={} p99={} max={}; events p50={} p90={} p99={} max={}\n",
            t.p50, t.p90, t.p99, t.max, e.p50, e.p90, e.p99, e.max,
        ));
        out
    }
}

/// What [`FleetRunner::run_population`] hands back: the deterministic
/// report plus this run's wall-clock figures.
#[derive(Debug, Clone)]
pub struct PopulationRun {
    /// Deterministic aggregate — equal across same-spec runs.
    pub report: PopulationReport,
    /// Wall-clock throughput of this particular run.
    pub wall: WallStats,
}

/// Fold one contiguous index range of the population into a sketch —
/// the census hot loop. Cells run warm on the caller's [`CellArena`]:
/// at most six distinct build configurations exist (topology × poison,
/// trace always `Off`), so after the first few cells every cell runs on
/// a recycled testbed. Warm observations are byte-identical to
/// [`CellSpec::run_observation`] (the differential suite in
/// `tests/warm_cold.rs` holds the line).
fn fold_range(arena: &mut CellArena, spec: &PopulationSpec, lo: u64, hi: u64) -> CensusSketch {
    let mut sketch = CensusSketch::new();
    for i in lo..hi {
        let cell = spec.cell(i);
        sketch.fold(cell, arena.run_observation(cell));
    }
    sketch
}

/// Split `[0, size)` into `shards` near-equal contiguous ranges.
fn shard_bounds(size: u64, shards: usize) -> Vec<(u64, u64)> {
    let shards = shards as u64;
    let base = size / shards;
    let extra = size % shards;
    let mut bounds = Vec::with_capacity(shards as usize);
    let mut lo = 0;
    for s in 0..shards {
        let hi = lo + base + u64::from(s < extra);
        bounds.push((lo, hi));
        lo = hi;
    }
    bounds
}

impl FleetRunner {
    /// Run a population census: sample every cell in `spec`, fold each
    /// shard into a [`CensusSketch`] on whichever worker claims it, and
    /// merge the shard sketches into one [`PopulationReport`].
    ///
    /// Memory is O(shards × sketch), independent of population size —
    /// no per-cell result is ever materialized. The report is invariant
    /// to both `shards` and the runner's thread count (see the module
    /// docs for why that's structural).
    pub fn run_population(&self, spec: &PopulationSpec, shards: usize) -> PopulationRun {
        self.run_population_observed(spec, shards, &NoopObserver)
    }

    /// [`FleetRunner::run_population`] with a streaming
    /// [`FleetObserver`]: each shard's sketch is reported (by
    /// reference, via [`FleetObserver::shard_done`]) the moment its
    /// index range is folded — while other shards are still running.
    /// The observer typically [`CensusSketch::merge_from`]s it into a
    /// live accumulator; the deterministic final merge happens after,
    /// over exactly the same sketches, so the returned report is
    /// byte-identical to the unobserved run.
    pub fn run_population_observed(
        &self,
        spec: &PopulationSpec,
        shards: usize,
        observer: &dyn FleetObserver,
    ) -> PopulationRun {
        assert!(shards >= 1, "a census needs at least one shard");
        let started = Instant::now();
        let bounds = shard_bounds(spec.size, shards);
        let sketches: Vec<CensusSketch> = if self.threads() == 1 {
            let mut arena = CellArena::new();
            bounds
                .iter()
                .enumerate()
                .map(|(i, &(lo, hi))| {
                    let sketch = fold_range(&mut arena, spec, lo, hi);
                    observer.shard_done(i, &sketch);
                    sketch
                })
                .collect()
        } else {
            let cursor = AtomicUsize::new(0);
            let slots: Mutex<Vec<Option<CensusSketch>>> = Mutex::new(vec![None; bounds.len()]);
            std::thread::scope(|scope| {
                let workers: Vec<_> = (0..self.threads())
                    .map(|_| {
                        scope.spawn(|| {
                            let mut arena = CellArena::new();
                            loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some(&(lo, hi)) = bounds.get(i) else {
                                    break;
                                };
                                let sketch = fold_range(&mut arena, spec, lo, hi);
                                observer.shard_done(i, &sketch);
                                slots.lock().expect("no poisoned worker")[i] = Some(sketch);
                            }
                        })
                    })
                    .collect();
                for w in workers {
                    w.join().expect("census worker panicked");
                }
            });
            slots
                .into_inner()
                .expect("workers joined")
                .into_iter()
                .map(|s| s.expect("every shard folded"))
                .collect()
        };
        let mut sketch = CensusSketch::new();
        for s in &sketches {
            sketch.merge_from(s);
        }
        let wall = WallStats {
            threads: self.threads(),
            elapsed: started.elapsed(),
            scenarios: spec.size as usize,
        };
        PopulationRun {
            report: PopulationReport {
                spec_digest: spec.digest(),
                size: spec.size,
                sketch,
            },
            wall,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_bounds_cover_the_population_exactly() {
        for (size, shards) in [(10u64, 3usize), (7, 7), (5, 8), (1_000_000, 13), (0, 2)] {
            let bounds = shard_bounds(size, shards);
            assert_eq!(bounds.len(), shards);
            assert_eq!(bounds.first().map(|b| b.0), Some(0));
            assert_eq!(bounds.last().map(|b| b.1), Some(size));
            for w in bounds.windows(2) {
                assert_eq!(w[0].1, w[1].0, "contiguous");
                assert!(w[0].1 - w[0].0 <= (size / shards as u64) + 1, "balanced");
            }
        }
    }

    #[test]
    fn cells_are_a_pure_function_of_seed_and_index() {
        let spec = PopulationSpec::paper_default(0x5c24, 1000);
        let again = PopulationSpec::paper_default(0x5c24, 1000);
        for i in [0u64, 1, 17, 999] {
            assert_eq!(spec.cell(i), again.cell(i));
        }
        let reseeded = PopulationSpec::paper_default(0x5c25, 1000);
        assert!(
            (0..1000).any(|i| spec.cell(i) != reseeded.cell(i)),
            "a different master seed samples a different population"
        );
        assert_ne!(spec.digest(), reseeded.digest());
    }

    #[test]
    fn weighted_pick_respects_empty_intervals() {
        let weights = [(0u8, 0u32), (1, 5), (2, 0), (3, 5)];
        for r in 0..1000u64 {
            let got = pick(&weights, r);
            assert!(got == 1 || got == 3, "zero-weight entries are unreachable");
        }
    }
}
