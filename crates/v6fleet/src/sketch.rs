//! Streaming census aggregation: compact, mergeable sketches.
//!
//! A population census never materializes per-cell results — each shard
//! folds its cells into a [`CensusSketch`] and shards merge at the end.
//! For that to be trustworthy at a million rows, the merge must be an
//! *exact* commutative monoid: every field is an integer counter (sums
//! commute and associate bit-for-bit; there is no float anywhere), so
//! `merge(a, b)` equals aggregating the union of the underlying cells
//! no matter how the cells were split across shards or threads. The
//! property tests in `tests/population.rs` pin this down.
//!
//! Virtual-time latency distributions use a [`LatencySketch`]: a fixed
//! table of logarithmic buckets (exact below [`LatencySketch::LINEAR`],
//! then 16 sub-buckets per power of two, ≤ 1/16 relative width) in the
//! style of HdrHistogram. Bucket counts merge by addition, so quantile
//! queries after any merge order return identical values.

use crate::FleetCensus;
use v6testbed::os_profiles;
use v6testbed::scenario::{CellObservation, CellSpec, FaultVariant};
use v6wire::clamp;

/// Nearest-rank quantile over an already-sorted slice.
///
/// The edge cases are explicit (they were latent in the original
/// percentile fold): an empty slice reports `0`, a single element is
/// every quantile of itself, and the computed rank is clamped into
/// `[1, len]` so no float rounding of `len * q` can index out of range.
/// The rank arithmetic is [`clamp::nearest_rank_index`] — the single
/// copy this path, the bucketed sketch, and the DNS TTL caches share.
pub fn nearest_rank(sorted: &[u64], q: f64) -> u64 {
    match clamp::nearest_rank_index(sorted.len(), q) {
        Some(i) => sorted[i],
        None => 0,
    }
}

/// Fixed-bucket logarithmic histogram of `u64` samples with exact
/// `count`/`min`/`max` and nearest-rank quantile queries.
///
/// Values below [`LatencySketch::LINEAR`] are recorded exactly; above
/// that, each power of two splits into 16 sub-buckets, so a reported
/// quantile is the upper bound of the true value's bucket — at most
/// 1/16 above it. All state is integer counts: merging two sketches is
/// exact element-wise addition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencySketch {
    counts: Vec<u64>,
    /// Total samples recorded.
    pub count: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl Default for LatencySketch {
    fn default() -> Self {
        LatencySketch::new()
    }
}

impl LatencySketch {
    /// Values below this are bucketed exactly (one bucket per value).
    pub const LINEAR: u64 = 16;
    /// Sub-buckets per power of two above the linear range.
    const SUB: usize = 16;
    /// Bucket count: 16 linear + 16 per remaining power of two. The
    /// last representable msb is 63, giving index (63-3)*16 + 15 = 975.
    const BUCKETS: usize = 976;

    /// An empty sketch.
    pub fn new() -> LatencySketch {
        LatencySketch {
            counts: vec![0; Self::BUCKETS],
            count: 0,
            min: 0,
            max: 0,
        }
    }

    /// The bucket index of `v`. Monotone in `v`, so ranks over bucket
    /// counts line up with ranks over the raw samples.
    fn bucket(v: u64) -> usize {
        if v < Self::LINEAR {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros() as usize; // >= 4
        let sub = ((v >> (msb - 4)) & 0xF) as usize;
        (msb - 3) * Self::SUB + sub
    }

    /// The largest value that lands in bucket `i` — the representative
    /// a quantile query reports (conservative: never below the true
    /// sample, at most 1/16 above it).
    fn bucket_high(i: usize) -> u64 {
        if i < Self::LINEAR as usize {
            return i as u64;
        }
        let msb = i / Self::SUB + 3;
        let sub = (i % Self::SUB) as u64;
        let width = 1u64 << (msb - 4);
        ((Self::SUB as u64 + sub) * width).wrapping_add(width - 1)
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket(v)] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
    }

    /// A point-in-time copy of the live sketch. This is the read side
    /// of the streaming API: a concurrent reader (the daemon's
    /// `/metrics` endpoint) takes the lock, snapshots, releases — no
    /// serialize/re-parse round trip, and the writer's sketch is never
    /// consumed or disturbed.
    pub fn snapshot(&self) -> LatencySketch {
        self.clone()
    }

    /// The standard `p50`/`p90`/`p99`/`max` row of this sketch.
    pub fn percentiles(&self) -> SketchPercentiles {
        SketchPercentiles::of(self)
    }

    /// Fold `other` into `self` by reference: exact element-wise
    /// addition, so the result is independent of merge order and
    /// grouping. The source is untouched — a worker can publish its
    /// shard sketch into a shared live accumulator and still hand the
    /// same sketch to the final deterministic merge.
    pub fn merge_from(&mut self, other: &LatencySketch) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        if other.count > 0 {
            if self.count == 0 {
                self.min = other.min;
                self.max = other.max;
            } else {
                self.min = self.min.min(other.min);
                self.max = self.max.max(other.max);
            }
        }
        self.count += other.count;
    }

    /// Alias of [`LatencySketch::merge_from`], kept for the original
    /// merge-suite call sites.
    pub fn merge(&mut self, other: &LatencySketch) {
        self.merge_from(other);
    }

    /// Nearest-rank quantile estimate: the upper bound of the bucket
    /// holding the rank-`ceil(q·count)` sample (clamped to `[1, count]`;
    /// `0` on an empty sketch, the sample itself on a one-element
    /// sketch). Never below the exact nearest-rank value and at most
    /// 1/16 above it — the exact-vs-sketch test pins both bounds.
    pub fn quantile(&self, q: f64) -> u64 {
        let Some(idx) = clamp::nearest_rank_index(self.count as usize, q) else {
            return 0;
        };
        let rank = idx as u64 + 1;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The max is exact; don't report a bucket bound beyond it.
                return Self::bucket_high(i).min(self.max);
            }
        }
        self.max
    }

    /// FNV-1a digest over the full bucket table plus count/min/max —
    /// pins the entire recorded distribution, not just the quantiles a
    /// report happens to surface.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(self.count);
        eat(self.min);
        eat(self.max);
        for &c in &self.counts {
            eat(c);
        }
        h
    }
}

/// The `p50`/`p90`/`p99`/`max` row a population report surfaces from a
/// [`LatencySketch`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SketchPercentiles {
    /// Median (nearest-rank, sketch resolution).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Maximum (exact).
    pub max: u64,
}

impl SketchPercentiles {
    /// Read the standard row off a sketch.
    pub fn of(s: &LatencySketch) -> SketchPercentiles {
        SketchPercentiles {
            p50: s.quantile(0.50),
            p90: s.quantile(0.90),
            p99: s.quantile(0.99),
            max: s.max,
        }
    }
}

/// The streaming aggregate of a (shard of a) population census: census
/// counters, per-OS and per-fault breakdowns, and virtual-time latency
/// sketches. Every field is an integer count, so [`CensusSketch::merge`]
/// is exactly associative and commutative, and folding cells shard by
/// shard equals folding them all in one pass — the algebra the
/// population determinism guarantees stand on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CensusSketch {
    /// Cells folded in so far.
    pub samples: u64,
    /// Fleet-wide census counters.
    pub census: FleetCensus,
    /// Per-OS census rows, indexed by `OsProfileId` (interned table
    /// order, fixed length).
    pub by_os: Vec<FleetCensus>,
    /// Cells per fault variant, indexed by [`FaultVariant::index`].
    pub fault_mix: [u64; FaultVariant::ALL.len()],
    /// Distribution of virtual completion times (µs).
    pub completed_us: LatencySketch,
    /// Distribution of engine events per cell.
    pub events: LatencySketch,
}

impl Default for CensusSketch {
    fn default() -> Self {
        CensusSketch::new()
    }
}

impl CensusSketch {
    /// An empty sketch sized to the interned profile table.
    pub fn new() -> CensusSketch {
        CensusSketch {
            samples: 0,
            census: FleetCensus::default(),
            by_os: vec![FleetCensus::default(); os_profiles().len()],
            fault_mix: [0; FaultVariant::ALL.len()],
            completed_us: LatencySketch::new(),
            events: LatencySketch::new(),
        }
    }

    /// Fold one observed cell into the sketch.
    pub fn fold(&mut self, spec: CellSpec, obs: CellObservation) {
        self.samples += 1;
        Self::count(&mut self.census, obs);
        Self::count(&mut self.by_os[spec.os.0 as usize], obs);
        self.fault_mix[spec.fault.index()] += 1;
        self.completed_us.record(obs.completed_us);
        self.events.record(obs.events);
    }

    fn count(c: &mut FleetCensus, obs: CellObservation) {
        c.associated += 1;
        c.naive_v6only += usize::from(obs.naive_counted);
        c.accurate_v6only += usize::from(obs.accurate_counted);
        c.with_v4_path += usize::from(obs.has_v4);
        c.rfc8925_engaged += usize::from(obs.rfc8925_engaged);
        c.intervened += usize::from(obs.intervened);
        c.degraded += usize::from(obs.degraded);
        if let Some(f) = obs.dns_failure {
            c.dns_failures[f.index()] += 1;
        }
    }

    fn add_census(a: &mut FleetCensus, b: &FleetCensus) {
        a.associated += b.associated;
        a.naive_v6only += b.naive_v6only;
        a.accurate_v6only += b.accurate_v6only;
        a.with_v4_path += b.with_v4_path;
        a.rfc8925_engaged += b.rfc8925_engaged;
        a.intervened += b.intervened;
        a.degraded += b.degraded;
        for (x, y) in a.dns_failures.iter_mut().zip(b.dns_failures) {
            *x += y;
        }
    }

    /// A point-in-time copy of the live census. Plain element-wise
    /// copies of integer tables — the streaming `/metrics` endpoint
    /// snapshots under its lock instead of serializing the sketch and
    /// re-parsing it on the read side.
    pub fn snapshot(&self) -> CensusSketch {
        self.clone()
    }

    /// Fold another shard's sketch into this one by reference. Pure
    /// integer sums — associative, commutative, and equal to having
    /// folded the union of cells directly. The source sketch is left
    /// intact, so a shard can be published into a live accumulator
    /// *and* merged into the final report without cloning.
    pub fn merge_from(&mut self, other: &CensusSketch) {
        assert_eq!(
            self.by_os.len(),
            other.by_os.len(),
            "sketches must come from the same profile table"
        );
        self.samples += other.samples;
        Self::add_census(&mut self.census, &other.census);
        for (a, b) in self.by_os.iter_mut().zip(&other.by_os) {
            Self::add_census(a, b);
        }
        for (a, b) in self.fault_mix.iter_mut().zip(&other.fault_mix) {
            *a += b;
        }
        self.completed_us.merge_from(&other.completed_us);
        self.events.merge_from(&other.events);
    }

    /// Alias of [`CensusSketch::merge_from`], kept for the original
    /// merge-suite call sites.
    pub fn merge(&mut self, other: &CensusSketch) {
        self.merge_from(other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_bounded() {
        let mut prev = 0usize;
        for v in [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            100,
            1_000,
            65_535,
            1 << 30,
            u64::MAX,
        ] {
            let b = LatencySketch::bucket(v);
            assert!(b >= prev, "bucket({v}) went backwards");
            assert!(b < LatencySketch::BUCKETS);
            assert!(
                LatencySketch::bucket_high(b) >= v || b == LatencySketch::BUCKETS - 1,
                "upper bound of bucket({v}) below the value"
            );
            prev = b;
        }
    }

    #[test]
    fn quantile_edge_cases_empty_single_pair() {
        let s = LatencySketch::new();
        assert_eq!((s.quantile(0.5), s.quantile(0.99), s.max), (0, 0, 0));
        let mut one = LatencySketch::new();
        one.record(7);
        assert_eq!(one.quantile(0.50), 7);
        assert_eq!(one.quantile(0.99), 7);
        assert_eq!((one.min, one.max), (7, 7));
        let mut two = LatencySketch::new();
        two.record(3);
        two.record(9);
        assert_eq!(two.quantile(0.50), 3, "rank ceil(2*0.5)=1 → first");
        assert_eq!(two.quantile(0.90), 9);
        assert_eq!(nearest_rank(&[3, 9], 0.5), 3);
        assert_eq!(nearest_rank(&[], 0.5), 0);
        assert_eq!(nearest_rank(&[7], 0.99), 7);
    }

    #[test]
    fn snapshot_is_a_detached_point_in_time_copy() {
        let mut live = LatencySketch::new();
        live.record(10);
        let snap = live.snapshot();
        live.record(20);
        assert_eq!((snap.count, snap.max), (1, 10), "snapshot is frozen");
        assert_eq!((live.count, live.max), (2, 20), "live keeps recording");
        assert_eq!(snap.percentiles().p50, 10);
        // merge_from leaves the source intact for the final merge path.
        let mut acc = LatencySketch::new();
        acc.merge_from(&live);
        assert_eq!(acc, live);
        let mut census = CensusSketch::new();
        let frozen = census.snapshot();
        census.samples += 1;
        assert_eq!(frozen.samples, 0);
        assert_eq!(census.snapshot().samples, 1);
    }

    #[test]
    fn merge_equals_union_for_latency_sketches() {
        let samples: Vec<u64> = (0..500).map(|i| (i * i * 31 + 7) % 100_000).collect();
        let mut whole = LatencySketch::new();
        let mut left = LatencySketch::new();
        let mut right = LatencySketch::new();
        for (i, &v) in samples.iter().enumerate() {
            whole.record(v);
            if i % 3 == 0 {
                left.record(v)
            } else {
                right.record(v)
            }
        }
        let mut merged = left.clone();
        merged.merge(&right);
        assert_eq!(merged, whole);
        assert_eq!(merged.digest(), whole.digest());
        // Commutes too.
        let mut flipped = right.clone();
        flipped.merge(&left);
        assert_eq!(flipped, whole);
    }
}
