//! Population census lockdown: the merge algebra proven by property
//! tests, differential determinism across thread/shard layouts, the
//! sampler's statistical sanity, and exact-vs-sketch percentile
//! agreement.
//!
//! These are the tests ISSUE 6 stakes the 1M-cell census on: nobody can
//! eyeball a million-row report, so the aggregation has to be correct
//! by algebra, not by inspection.

use proptest::prelude::*;
use v6fleet::{nearest_rank, CensusSketch, FleetRunner, LatencySketch, PopulationSpec};
use v6testbed::scenario::{CellObservation, FaultVariant, PathFamily, ResolutionFailure};
use v6testbed::{CellSpec, OsProfileId};

/// A synthetic observation derived from 64 bits — exercises every
/// counter the sketch folds without paying for a simulation run.
fn synth_obs(bits: u64) -> CellObservation {
    let fam = |b: u64| match b % 3 {
        0 => PathFamily::V6,
        1 => PathFamily::V4,
        _ => PathFamily::Fail,
    };
    CellObservation {
        rfc8925_engaged: bits & 0x01 != 0,
        has_v4: bits & 0x02 != 0,
        sc24: fam(bits >> 2),
        ip6me: fam(bits >> 4),
        intervened: bits & 0x40 != 0,
        naive_counted: true,
        accurate_counted: bits & 0x80 != 0,
        degraded: bits & 0x100 != 0,
        dns_failure: match (bits >> 45) % 5 {
            0 => None,
            k => Some(ResolutionFailure::ALL[(k - 1) as usize]),
        },
        completed_us: (bits >> 9) % 30_000_000,
        events: (bits >> 13) % 100_000,
    }
}

/// Pair each synthetic observation with a real sampled cell.
fn synth_cells(seed: u64, obs_bits: &[u64]) -> Vec<(CellSpec, CellObservation)> {
    let spec = PopulationSpec::paper_default(seed, obs_bits.len().max(1) as u64);
    obs_bits
        .iter()
        .enumerate()
        .map(|(i, &bits)| (spec.cell(i as u64), synth_obs(bits)))
        .collect()
}

fn fold_all(cells: &[(CellSpec, CellObservation)]) -> CensusSketch {
    let mut s = CensusSketch::new();
    for &(spec, obs) in cells {
        s.fold(spec, obs);
    }
    s
}

fn merged(a: &CensusSketch, b: &CensusSketch) -> CensusSketch {
    let mut m = a.snapshot();
    m.merge_from(b);
    m
}

proptest! {
    /// The algebra the streaming census stands on: over random cell
    /// populations and random 3-way shard splits, sketch merge is
    /// associative, commutative, and equal to folding the union — so
    /// no shard layout can produce a different aggregate.
    #[test]
    fn merge_is_an_exact_monoid_over_random_shard_splits(
        seed in any::<u64>(),
        obs_bits in prop::collection::vec(any::<u64>(), 0..120),
        assignment in prop::collection::vec(0..3u8, 0..120),
    ) {
        let cells = synth_cells(seed, &obs_bits);
        let whole = fold_all(&cells);
        // Random (not contiguous) 3-way split of the same cells.
        let mut shards = [Vec::new(), Vec::new(), Vec::new()];
        for (i, &cell) in cells.iter().enumerate() {
            let which = assignment.get(i).copied().unwrap_or((i % 3) as u8);
            shards[usize::from(which)].push(cell);
        }
        let [a, b, c] = shards.map(|s| fold_all(&s));
        // Associative: (a⊕b)⊕c == a⊕(b⊕c).
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
        // Commutative: a⊕b == b⊕a.
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
        // Union: any grouping equals folding every cell in one pass.
        prop_assert_eq!(merged(&merged(&c, &a), &b), whole);
    }

    /// The latency sketch alone obeys the same algebra, including its
    /// digest (which covers the full bucket table).
    #[test]
    fn latency_sketch_merge_equals_union(
        samples in prop::collection::vec(0..50_000_000u64, 0..200),
        split in any::<u64>(),
    ) {
        let mut whole = LatencySketch::new();
        let mut left = LatencySketch::new();
        let mut right = LatencySketch::new();
        for (i, &v) in samples.iter().enumerate() {
            whole.record(v);
            if (split >> (i % 64)) & 1 == 0 {
                left.record(v);
            } else {
                right.record(v);
            }
        }
        let mut ab = left.snapshot();
        ab.merge_from(&right);
        let mut ba = right.snapshot();
        ba.merge_from(&left);
        prop_assert_eq!(&ab, &whole);
        prop_assert_eq!(&ba, &whole);
        prop_assert_eq!(ab.digest(), whole.digest());
    }

    /// Sketch quantiles against the exact nearest-rank computation on
    /// small populations: never below the exact value, and within the
    /// bucket's 1/16 relative width above it (+1 for the linear range).
    #[test]
    fn sketch_percentiles_agree_with_exact(
        samples in prop::collection::vec(0..40_000_000u64, 1..150),
    ) {
        let mut sketch = LatencySketch::new();
        for &v in &samples {
            sketch.record(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.50, 0.90, 0.99] {
            let exact = nearest_rank(&sorted, q);
            let approx = sketch.quantile(q);
            prop_assert!(approx >= exact, "q={q}: sketch {approx} below exact {exact}");
            prop_assert!(
                approx <= exact + exact / 16 + 1,
                "q={q}: sketch {approx} beyond 1/16 above exact {exact}"
            );
        }
        prop_assert_eq!(sketch.max, *sorted.last().unwrap());
    }
}

/// Same spec ⇒ byte-identical report across 1-vs-N threads and shard
/// counts 1, 3, 8 — the population mirror of `tests/fleet.rs`'s
/// cross-thread guarantees. Small population, real simulation runs.
#[test]
fn report_is_identical_across_threads_and_shards() {
    let spec = PopulationSpec::paper_default(0x5c24, 36);
    let baseline = FleetRunner::new(1).run_population(&spec, 1);
    for (threads, shards) in [(1, 3), (1, 8), (3, 1), (3, 3), (4, 8)] {
        let run = FleetRunner::new(threads).run_population(&spec, shards);
        assert_eq!(
            run.report, baseline.report,
            "threads={threads} shards={shards} drifted from the 1×1 baseline"
        );
        assert_eq!(run.report.digest(), baseline.report.digest());
    }
}

/// The streaming aggregation equals the materializing one: running the
/// same cells through the classic FleetRunner (full ScenarioResults)
/// produces the same census and per-OS rows the sketch reports.
#[test]
fn streaming_census_equals_materialized_fleet() {
    let spec = PopulationSpec::paper_default(0xbeef, 12);
    let population = FleetRunner::new(1).run_population(&spec, 1).report;
    let scenarios: Vec<_> = (0..spec.size).map(|i| spec.cell(i).to_scenario()).collect();
    let fleet = v6fleet::run_serial(&scenarios);
    assert_eq!(population.sketch.census, fleet.census);
    assert_eq!(population.census_by_os(), fleet.census_by_os());
    assert_eq!(
        population.sketch.completed_us.max,
        fleet.timing.completed_us.max
    );
    assert_eq!(population.sketch.events.max, fleet.timing.events.max);
}

/// The streaming hook the `/metrics` endpoint rides on: an observer
/// merging each shard sketch as it lands (via the non-consuming
/// `merge_from`) ends up with exactly the final report's sketch, and
/// every shard is reported exactly once — on serial and pooled runs.
#[test]
fn observed_shards_merge_to_the_final_sketch() {
    use std::sync::Mutex;
    use v6fleet::FleetObserver;

    struct Live {
        sketch: Mutex<CensusSketch>,
        seen: Mutex<Vec<usize>>,
    }
    impl FleetObserver for Live {
        fn shard_done(&self, shard: usize, sketch: &CensusSketch) {
            self.sketch.lock().unwrap().merge_from(sketch);
            self.seen.lock().unwrap().push(shard);
        }
    }

    let spec = PopulationSpec::paper_default(0x5c24, 24);
    for (threads, shards) in [(1, 5), (3, 5)] {
        let live = Live {
            sketch: Mutex::new(CensusSketch::new()),
            seen: Mutex::new(Vec::new()),
        };
        let run = FleetRunner::new(threads).run_population_observed(&spec, shards, &live);
        assert_eq!(*live.sketch.lock().unwrap(), run.report.sketch);
        let mut seen = live.seen.lock().unwrap().clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..shards).collect::<Vec<_>>());
        // The observed run is the plain run — same bytes.
        let plain = FleetRunner::new(threads).run_population(&spec, shards);
        assert_eq!(run.report, plain.report);
    }
}

/// Fixed seed, 100k sampled cells (sampling only — no simulation):
/// per-dimension empirical frequencies land within tolerance of the
/// configured weights, and the zero-weight profile never appears.
#[test]
fn sampler_tracks_configured_weights_at_100k() {
    const N: u64 = 100_000;
    let spec = PopulationSpec::paper_default(0x5c24, N);
    let mut os_counts = vec![0u64; spec.os_weights.len()];
    let mut fault_counts = [0u64; FaultVariant::ALL.len()];
    let mut raw_gw = 0u64;
    let mut poison_off = 0u64;
    for i in 0..N {
        let cell = spec.cell(i);
        os_counts[cell.os.0 as usize] += 1;
        fault_counts[cell.fault.index()] += 1;
        raw_gw += u64::from(cell.topology.label() == "raw-gw");
        poison_off += u64::from(cell.poison.label() == "off");
    }
    // ±1 percentage point absolute: ~7σ at n=100k for the largest
    // weights, far tighter than any plausible sampler bug.
    let tolerance = 0.01;
    let os_total: u64 = spec.os_weights.iter().map(|&(_, w)| u64::from(w)).sum();
    for &(id, w) in &spec.os_weights {
        let expected = f64::from(w) / os_total as f64;
        let got = os_counts[id.0 as usize] as f64 / N as f64;
        if w == 0 {
            assert_eq!(
                os_counts[id.0 as usize],
                0,
                "zero-weight profile {} was sampled",
                id.name()
            );
        } else {
            assert!(
                (got - expected).abs() < tolerance,
                "{}: expected {expected:.4}, got {got:.4}",
                id.name()
            );
        }
    }
    let zero_weight_exists = spec.os_weights.iter().any(|&(_, w)| w == 0);
    assert!(
        zero_weight_exists,
        "paper_default must configure a zero-weight profile"
    );
    for (f, &(variant, w)) in FaultVariant::ALL.iter().zip(&spec.fault_weights) {
        assert_eq!(*f, variant, "fault weights in ALL order");
        let expected = f64::from(w) / 1000.0;
        let got = fault_counts[f.index()] as f64 / N as f64;
        assert!(
            (got - expected).abs() < tolerance,
            "{}: {got:.4} vs {expected:.4}",
            f.label()
        );
    }
    assert!((raw_gw as f64 / N as f64 - 0.100).abs() < tolerance);
    assert!((poison_off as f64 / N as f64 - 0.100).abs() < tolerance);
}

/// The nearest-rank edge cases that were latent before the sketch
/// landed: empty and single-element inputs, at every exposed level.
#[test]
fn percentile_edge_cases_empty_and_single() {
    assert_eq!(nearest_rank(&[], 0.50), 0);
    assert_eq!(nearest_rank(&[], 0.99), 0);
    assert_eq!(nearest_rank(&[42], 0.50), 42);
    assert_eq!(nearest_rank(&[42], 0.99), 42);
    let empty = LatencySketch::new();
    assert_eq!((empty.quantile(0.5), empty.quantile(0.99)), (0, 0));
    let mut single = LatencySketch::new();
    single.record(1_234_567);
    for q in [0.50, 0.90, 0.99] {
        let v = single.quantile(q);
        assert!((1_234_567..=1_234_567 + 1_234_567 / 16 + 1).contains(&v));
    }
    // An empty population's report renders all-zero percentiles rather
    // than panicking.
    let spec = PopulationSpec::paper_default(1, 0);
    let report = FleetRunner::new(2).run_population(&spec, 3).report;
    assert_eq!(report.sketch.samples, 0);
    assert_eq!(report.completed_us().p99, 0);
    assert_eq!(report.events().p50, 0);
}

/// OS ids round-trip through the interned table and the by-OS rows are
/// keyed by exactly that table.
#[test]
fn by_os_rows_are_keyed_by_the_interned_table() {
    let spec = PopulationSpec::paper_default(7, 200);
    let mut expected = vec![0u64; spec.os_weights.len()];
    for i in 0..spec.size {
        expected[spec.cell(i).os.0 as usize] += 1;
    }
    // Fold with synthetic observations — row placement is what's under
    // test, not simulation output.
    let mut sketch = CensusSketch::new();
    for i in 0..spec.size {
        sketch.fold(spec.cell(i), synth_obs(i.wrapping_mul(0x9e3779b97f4a7c15)));
    }
    for id in OsProfileId::all() {
        assert_eq!(
            sketch.by_os[id.0 as usize].associated as u64,
            expected[id.0 as usize],
            "row for {}",
            id.name()
        );
    }
}
