//! # v6host — client operating-system models for the sc24v6 testbed
//!
//! The paper's Section V results are determined entirely by how different
//! client operating systems configure themselves and resolve names. This
//! crate models those behaviours as a packet-level host stack
//! ([`stack::Host`]) parameterized by an [`profiles::OsProfile`]:
//!
//! * SLAAC (EUI-64 or RFC 7217 IIDs), default-router selection by RFC 4191
//!   preference, RDNSS collection
//! * DHCPv4 with RFC 8925 option 108 — capable clients disable IPv4 and
//!   activate their CLAT
//! * resolver preference: RDNSS-first (Windows 10 / Linux), DHCPv4-first
//!   (some Windows 11), IPv4-resolver-only (Windows XP)
//! * application tasks: browse (HTTP over the mini TCP), ping, nslookup
//!   with suffix search list, IPv4-literal apps (Echolink, Fig. 2)
//! * split-tunnel VPN behaviour ([`vpn`], Figs. 8 and 11)

#![warn(missing_docs)]

pub mod profiles;
pub mod stack;
pub mod tasks;
pub mod vpn;

pub use profiles::{IidScheme, OsProfile, ResolverPreference};
pub use stack::Host;
pub use tasks::{AppTask, TaskOutcome};
pub use vpn::VpnConfig;
