//! Operating-system behaviour profiles, as documented in the paper.

use v6dns::stub::SearchOrder;

/// Which resolver a host prefers when it has both an RA-learned IPv6 RDNSS
/// and a DHCPv4-learned IPv4 resolver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolverPreference {
    /// Prefer the IPv6 RDNSS resolver (paper §VI: "most Linux operating
    /// systems … along with Windows 10 will prefer the IPv6 RDNSS resolver
    /// received via RA instead of the DHCPv4 provided DNS resolver").
    RdnssFirst,
    /// Prefer the DHCPv4-provided resolver (paper §VI: "some versions of
    /// Windows 11 will prefer the IPv4 DNS server received via DHCPv4").
    Dhcpv4First,
    /// Only an IPv4 resolver transport exists (paper §V: "Windows XP,
    /// released in 2001 without support for IPv6 DNS resolvers").
    V4Only,
}

/// SLAAC interface-identifier scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IidScheme {
    /// Modified EUI-64 from the MAC (Windows XP, embedded devices).
    Eui64,
    /// RFC 7217 stable-private (modern OSes).
    StablePrivate,
}

/// A client operating system's network behaviour.
#[derive(Debug, Clone)]
pub struct OsProfile {
    /// Display name ("Windows 10", "Nintendo Switch", ...).
    pub name: String,
    /// IPv6 stack present and enabled.
    pub ipv6_enabled: bool,
    /// IPv4 stack present and enabled.
    pub ipv4_enabled: bool,
    /// Implements RFC 8925 (requests and honours option 108).
    pub supports_rfc8925: bool,
    /// Ships a CLAT to activate when IPv6-only (464XLAT).
    pub has_clat: bool,
    /// Resolver transport/ordering behaviour.
    pub resolver_preference: ResolverPreference,
    /// Whether the OS configures resolvers from RA RDNSS at all.
    pub honors_rdnss: bool,
    /// SLAAC IID scheme.
    pub iid_scheme: IidScheme,
    /// Search-list behaviour of its lookup tools (`nslookup` devolution on
    /// Windows vs. glibc ndots).
    pub search_order: SearchOrder,
    /// RFC 8305 Happy Eyeballs: stagger-launch the next address family
    /// 250 ms after the first attempt instead of waiting for its timeout.
    pub happy_eyeballs: bool,
    /// Retries a truncated (TC-bit) UDP answer over TCP (RFC 1035 §4.2.2).
    /// Modern stub resolvers do; legacy and embedded stacks give up on the
    /// truncated answer instead.
    pub tcp_dns_fallback: bool,
}

impl OsProfile {
    fn base(name: &str) -> OsProfile {
        OsProfile {
            name: name.into(),
            ipv6_enabled: true,
            ipv4_enabled: true,
            supports_rfc8925: false,
            has_clat: false,
            resolver_preference: ResolverPreference::RdnssFirst,
            honors_rdnss: true,
            iid_scheme: IidScheme::StablePrivate,
            search_order: SearchOrder::AsIsFirst,
            happy_eyeballs: false,
            tcp_dns_fallback: true,
        }
    }

    /// Windows XP (Fig. 7): IPv6 stack on, but DNS only over IPv4; EUI-64.
    pub fn windows_xp() -> OsProfile {
        OsProfile {
            resolver_preference: ResolverPreference::V4Only,
            honors_rdnss: false,
            iid_scheme: IidScheme::Eui64,
            search_order: SearchOrder::SuffixFirst,
            tcp_dns_fallback: false,
            ..Self::base("Windows XP")
        }
    }

    /// Windows 10 (Fig. 10): dual-stack, prefers RDNSS, no RFC 8925.
    pub fn windows_10() -> OsProfile {
        OsProfile {
            search_order: SearchOrder::SuffixFirst,
            ..Self::base("Windows 10")
        }
    }

    /// Windows 10 with IPv6 disabled by the user (the Fig. 5 client).
    pub fn windows_10_v6_disabled() -> OsProfile {
        OsProfile {
            ipv6_enabled: false,
            name: "Windows 10 (IPv6 disabled)".into(),
            ..Self::windows_10()
        }
    }

    /// Windows 11 as observed in §VI: prefers the DHCPv4 resolver; RFC 8925
    /// "upcoming", so not yet enabled.
    pub fn windows_11() -> OsProfile {
        OsProfile {
            resolver_preference: ResolverPreference::Dhcpv4First,
            search_order: SearchOrder::SuffixFirst,
            ..Self::base("Windows 11")
        }
    }

    /// The anticipated Windows 11 with RFC 8925 + CLAT (paper reference 29):
    /// "Once a version of Windows 11 with RFC8925 support is released, it is
    /// presumed that only the IPv6 DNS server received via RDNSS will be
    /// used."
    pub fn windows_11_rfc8925() -> OsProfile {
        OsProfile {
            supports_rfc8925: true,
            has_clat: true,
            resolver_preference: ResolverPreference::RdnssFirst,
            name: "Windows 11 (RFC8925)".into(),
            ..Self::windows_11()
        }
    }

    /// A stock Linux distribution: RDNSS-first, no RFC 8925 yet (§VI).
    pub fn linux() -> OsProfile {
        Self::base("Linux")
    }

    /// macOS: RFC 8925 + CLAT (paper §I: Apple adopted option 108).
    pub fn macos() -> OsProfile {
        OsProfile {
            supports_rfc8925: true,
            has_clat: true,
            ..Self::base("macOS")
        }
    }

    /// iOS: RFC 8925 + CLAT.
    pub fn ios() -> OsProfile {
        OsProfile {
            supports_rfc8925: true,
            has_clat: true,
            ..Self::base("iOS")
        }
    }

    /// Android: RFC 8925 + CLAT (Google adopted option 108).
    pub fn android() -> OsProfile {
        OsProfile {
            supports_rfc8925: true,
            has_clat: true,
            ..Self::base("Android")
        }
    }

    /// Nintendo Switch (Fig. 6): IPv4 only.
    pub fn nintendo_switch() -> OsProfile {
        OsProfile {
            ipv6_enabled: false,
            resolver_preference: ResolverPreference::V4Only,
            honors_rdnss: false,
            tcp_dns_fallback: false,
            ..Self::base("Nintendo Switch")
        }
    }

    /// A legacy IPv4-only embedded device (printer/IoT class).
    pub fn legacy_printer() -> OsProfile {
        OsProfile {
            ipv6_enabled: false,
            resolver_preference: ResolverPreference::V4Only,
            honors_rdnss: false,
            iid_scheme: IidScheme::Eui64,
            tcp_dns_fallback: false,
            ..Self::base("Legacy printer")
        }
    }

    /// Is this an IPv4-only device as shipped?
    pub fn is_v4_only(&self) -> bool {
        !self.ipv6_enabled && self.ipv4_enabled
    }

    /// The complete cast of Section V, for the device-compatibility matrix
    /// (TBL-A in DESIGN.md).
    pub fn all_paper_profiles() -> Vec<OsProfile> {
        vec![
            Self::windows_xp(),
            Self::windows_10(),
            Self::windows_10_v6_disabled(),
            Self::windows_11(),
            Self::windows_11_rfc8925(),
            Self::linux(),
            Self::macos(),
            Self::ios(),
            Self::android(),
            Self::nintendo_switch(),
            Self::legacy_printer(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_documented_behaviours() {
        assert_eq!(
            OsProfile::windows_xp().resolver_preference,
            ResolverPreference::V4Only
        );
        assert_eq!(OsProfile::windows_xp().iid_scheme, IidScheme::Eui64);
        assert_eq!(
            OsProfile::windows_10().resolver_preference,
            ResolverPreference::RdnssFirst
        );
        assert_eq!(
            OsProfile::windows_11().resolver_preference,
            ResolverPreference::Dhcpv4First
        );
        assert!(!OsProfile::windows_11().supports_rfc8925);
        assert!(OsProfile::windows_11_rfc8925().supports_rfc8925);
        assert!(OsProfile::macos().supports_rfc8925 && OsProfile::macos().has_clat);
        assert!(OsProfile::nintendo_switch().is_v4_only());
        assert!(!OsProfile::linux().supports_rfc8925);
    }

    #[test]
    fn cast_is_complete() {
        let all = OsProfile::all_paper_profiles();
        assert_eq!(all.len(), 11);
        let v4_only = all.iter().filter(|p| p.is_v4_only()).count();
        assert_eq!(v4_only, 3, "v6-disabled Win10, Switch, printer");
        let rfc8925 = all.iter().filter(|p| p.supports_rfc8925).count();
        assert_eq!(rfc8925, 4, "macOS, iOS, Android, future Win11");
        let no_tcp = all.iter().filter(|p| !p.tcp_dns_fallback).count();
        assert_eq!(no_tcp, 3, "XP, Switch, printer lack TCP retry");
    }
}
