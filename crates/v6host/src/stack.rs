//! The packet-level host network stack, parameterized by an
//! [`OsProfile`] — see [`crate::profiles`] for the cast.
//!
//! One `Host` is one client device on the testbed: it autoconfigures over
//! SLAAC and DHCPv4 (honouring RFC 8925 when its OS does), resolves names
//! through the resolver its OS prefers, orders destinations with RFC 6724,
//! and runs user-level [`AppTask`]s whose [`TaskOutcome`]s the experiments
//! assert on.

use crate::profiles::{IidScheme, OsProfile, ResolverPreference};
use crate::tasks::{AppTask, TaskOutcome};
use crate::vpn::VpnConfig;
use std::any::Any;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use v6addr::class::{v6_class, V6Class};
use v6addr::prefix::{Ipv4Prefix, Ipv6Prefix};
use v6addr::rfc6052::Nat64Prefix;
use v6addr::rfc6724::{
    mapped, select_source, sort_destinations, CandidateSource, DestCandidate, PolicyTable,
};
use v6addr::slaac;
use v6dhcp::client::{ClientEvent, DhcpClient};
use v6dns::codec::{Message as DnsMessage, Question, RData, RType, Rcode, Record};
use v6dns::edns;
use v6dns::name::DnsName;
use v6dns::server::ResolutionFailure;
use v6dns::stub::SearchList;
use v6sim::engine::{Ctx, Node};
use v6sim::tcp::TcpEndpoint;
use v6sim::time::SimTime;
use v6wire::arp::{ArpOp, ArpPacket};
use v6wire::clamp;
use v6wire::ethernet::{EtherType, EthernetFrame};
use v6wire::fasthash::FastMap;
use v6wire::icmpv4::Icmpv4Message;
use v6wire::icmpv6::{all_routers, solicited_node, Icmpv6Message};
use v6wire::ipv4::{proto, Ipv4Packet};
use v6wire::ipv6::Ipv6Packet;
use v6wire::mac::MacAddr;
use v6wire::ndp::{NdpOption, NeighborAdvertisement, NeighborSolicitation, RouterPreference};
use v6wire::packet::{build_arp, build_icmpv6};
use v6wire::tcp::TcpSegment;
use v6wire::udp::{port, UdpDatagram};
use v6wire::view::{FrameView, Icmp4View, Icmp6View, Ipv4View, Ipv6View, L3View, L4View};
use v6xlat::clat::Clat;

const PORT_FLOOR: u16 = 49152;
/// First-attempt DNS timeout. Later attempts rotate through the resolver
/// chain glibc-style (attempt `n` targets resolver `n % chain_len`) with
/// the timeout doubling each full cycle plus deterministic jitter, so a
/// resolver outage is survived by retransmission instead of a single
/// fixed 800 ms verdict.
const DNS_TIMEOUT_BASE: SimTime = SimTime::from_millis(400);
/// Retransmission rounds through the whole chain before giving up.
const DNS_TRIES_PER_RESOLVER: u32 = 4;
/// Cap on the exponential doubling (base << 3 = 3.2 s).
const DNS_BACKOFF_CAP: u32 = 3;
/// DHCP DISCOVER/REQUEST retries before giving up (RFC 2131 backoff).
const DHCP_MAX_TRIES: u32 = 5;
const ATTEMPT_TIMEOUT: SimTime = SimTime::from_millis(500);
const TASK_DEADLINE: SimTime = SimTime::from_secs(8);

// Timer token layout: kind << 48 | a << 16 | b.
const TK_DHCP: u64 = 1;
const TK_RS: u64 = 2;
const TK_DNS: u64 = 3;
const TK_ATTEMPT: u64 = 4;
const TK_DEADLINE: u64 = 5;
const TK_PING: u64 = 6;
const TK_HE: u64 = 7;

/// RFC 8305 §5: Connection Attempt Delay between staggered attempts.
const HE_DELAY: SimTime = SimTime::from_millis(250);

fn token(kind: u64, a: u64, b: u64) -> u64 {
    (kind << 48) | (a << 16) | b
}

fn untoken(t: u64) -> (u64, u64, u64) {
    (t >> 48, (t >> 16) & 0xffff_ffff, t & 0xffff)
}

/// A router learned from RAs.
#[derive(Debug, Clone, Copy)]
struct RouterEntry {
    ll: Ipv6Addr,
    mac: MacAddr,
    pref: RouterPreference,
}

/// IPv4 configuration from DHCP.
#[derive(Debug, Clone)]
struct V4Config {
    addr: Ipv4Addr,
    prefix: Ipv4Prefix,
    router: Option<Ipv4Addr>,
    dns: Vec<Ipv4Addr>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum FlowKey {
    V6 {
        local: (Ipv6Addr, u16),
        remote: (Ipv6Addr, u16),
    },
    V4 {
        local: (Ipv4Addr, u16),
        remote: (Ipv4Addr, u16),
    },
    /// An IPv4 application flow carried through the CLAT.
    ClatV4 {
        local: (Ipv4Addr, u16),
        remote: (Ipv4Addr, u16),
    },
}

struct Flow {
    ep: TcpEndpoint,
    task: u64,
    /// Which candidate (by index) this flow is trying.
    attempt: usize,
    request_sent: bool,
}

#[derive(Debug)]
enum Phase {
    Resolving {
        a: Option<Vec<Record>>,
        aaaa: Option<Vec<Record>>,
        /// Retransmission attempt (resolver = attempt % chain length).
        attempt: u32,
    },
    NslookupTrying {
        candidates: Vec<DnsName>,
        name_idx: usize,
        /// Retransmission attempt (resolver = attempt % chain length).
        attempt: u32,
    },
    Connecting {
        candidates: Vec<IpAddr>,
        /// How many candidates have been launched so far.
        launched: usize,
    },
    AwaitingPing {
        ident: u16,
    },
    Done,
}

struct TaskState {
    task: AppTask,
    phase: Phase,
}

struct DnsWait {
    task: u64,
    rtype: RType,
    /// The queried name (needed to re-ask over TCP after truncation).
    name: DnsName,
    /// The resolver the query went to (the TCP retry targets the same one).
    resolver: IpAddr,
}

/// An in-flight DNS-over-TCP retry (RFC 1035 §4.2.2) after a TC-bit
/// truncated UDP answer.
struct DnsTcpFlow {
    ep: TcpEndpoint,
    /// The 2-octet-length-prefixed query, sent once the handshake lands.
    query: Vec<u8>,
    sent: bool,
}

/// A client device.
pub struct Host {
    name: String,
    /// The OS behaviour model.
    pub profile: OsProfile,
    /// The NIC MAC address.
    pub mac: MacAddr,
    secret: u64,
    /// Link-local address (always configured when IPv6 is on).
    pub link_local: Ipv6Addr,
    /// SLAAC addresses with their prefixes.
    pub v6_addrs: Vec<(Ipv6Addr, Ipv6Prefix)>,
    onlink6: Vec<Ipv6Prefix>,
    routers6: Vec<RouterEntry>,
    /// Resolvers learned from RA RDNSS.
    pub rdnss: Vec<Ipv6Addr>,
    /// Search domains (RA DNSSL + DHCP option 15).
    pub search_domains: Vec<DnsName>,
    dhcp: DhcpClient,
    dhcp_tries: u32,
    v4: Option<V4Config>,
    /// RFC 8925 engaged: IPv4 is administratively off.
    pub v6only_mode: bool,
    /// Active CLAT, when the OS has one and RFC 8925 engaged.
    pub clat: Option<Clat>,
    /// User-configured resolver override (the Fig. 6 escape hatch).
    pub dns_override: Option<IpAddr>,
    /// NAT64 prefix learned from an RA PREF64 option (RFC 8781); the CLAT
    /// uses it instead of assuming the well-known prefix.
    pub pref64: Option<Ipv6Prefix>,
    /// Captive-portal URI delivered by DHCP option 114 (RFC 8910).
    pub captive_portal: Option<String>,
    /// VPN policy, when this device runs the VPN client (Figs. 8/11).
    pub vpn: Option<VpnConfig>,
    neigh6: FastMap<Ipv6Addr, MacAddr>,
    arp4: FastMap<Ipv4Addr, MacAddr>,
    pend6: FastMap<Ipv6Addr, Vec<Ipv6Packet>>,
    pend4: FastMap<Ipv4Addr, Vec<Ipv4Packet>>,
    dns_wait: FastMap<u16, DnsWait>,
    /// RFC 2308 stub negative cache: (name, rtype) → absolute expiry
    /// (sim-seconds), TTL = min(SOA TTL, SOA.minimum) via [`clamp`].
    neg_cache: FastMap<(DnsName, RType), u64>,
    /// DNS-over-TCP retries in flight, keyed like application flows.
    dns_tcp: FastMap<FlowKey, DnsTcpFlow>,
    next_dns_id: u16,
    next_port: u16,
    flows: FastMap<FlowKey, Flow>,
    tasks: FastMap<u64, TaskState>,
    next_task: u64,
    /// Completed task outcomes, in completion order.
    pub results: Vec<(u64, TaskOutcome)>,
    policy: PolicyTable,
    /// Queries the stack answered from an RDNSS resolver (census aid).
    pub dns_via_v6: u64,
    /// Queries sent to an IPv4 resolver.
    pub dns_via_v4: u64,
    /// DNS attempts that hit their timeout.
    pub dns_timeouts: u64,
    /// DNS queries re-sent after a timeout (any resolver).
    pub dns_retransmits: u64,
    /// Retransmissions that rotated to a different resolver.
    pub dns_failovers: u64,
    /// DHCP DISCOVER/REQUEST retransmissions (RFC 2131 backoff).
    pub dhcp_retries: u64,
    /// Classified resolution failures, indexed by
    /// [`ResolutionFailure::index`] — EDE codes parsed from responses plus
    /// the stub's own negative-cache hits and no-TCP truncation give-ups.
    pub dns_fail: [u64; 4],
}

impl Host {
    /// A host with the given OS profile. `seed` diversifies MAC/IIDs.
    pub fn new(name: impl Into<String>, profile: OsProfile, seed: u64) -> Host {
        let name = name.into();
        let mac = MacAddr::new([
            0x02,
            0x10,
            (seed >> 24) as u8,
            (seed >> 16) as u8,
            (seed >> 8) as u8,
            seed as u8,
        ]);
        let supports_8925 = profile.supports_rfc8925;
        let iid = u128::from(slaac::eui64_iid(mac.0));
        Host {
            link_local: Ipv6Prefix::new("fe80::".parse().expect("static"), 64)
                .expect("static")
                .with_iid(iid),
            profile,
            mac,
            secret: seed ^ SECRET_SALT,
            v6_addrs: Vec::new(),
            onlink6: Vec::new(),
            routers6: Vec::new(),
            rdnss: Vec::new(),
            search_domains: Vec::new(),
            dhcp: DhcpClient::new(mac, supports_8925),
            dhcp_tries: 0,
            v4: None,
            v6only_mode: false,
            clat: None,
            dns_override: None,
            pref64: None,
            captive_portal: None,
            vpn: None,
            neigh6: FastMap::default(),
            arp4: FastMap::default(),
            pend6: FastMap::default(),
            pend4: FastMap::default(),
            dns_wait: FastMap::default(),
            neg_cache: FastMap::default(),
            dns_tcp: FastMap::default(),
            next_dns_id: (seed as u16) | 1,
            next_port: PORT_FLOOR,
            flows: FastMap::default(),
            tasks: FastMap::default(),
            next_task: 1,
            results: Vec::new(),
            policy: PolicyTable::default(),
            dns_via_v6: 0,
            dns_via_v4: 0,
            dns_timeouts: 0,
            dns_retransmits: 0,
            dns_failovers: 0,
            dhcp_retries: 0,
            dns_fail: [0; 4],
            name,
        }
    }

    /// Does the host currently have a usable IPv4 data path (own stack)?
    pub fn v4_active(&self) -> bool {
        self.profile.ipv4_enabled && !self.v6only_mode && self.v4.is_some()
    }

    /// Does the host have a global-scope IPv6 address?
    pub fn v6_global_active(&self) -> bool {
        self.profile.ipv6_enabled
            && self.v6_addrs.iter().any(|(a, _)| {
                v6_class(*a).is_global_unicast_like()
                    || matches!(v6_class(*a), V6Class::UniqueLocal)
            })
    }

    /// Queue an application task; returns its id. Outcomes appear in
    /// [`Host::results`]. Must be called through
    /// [`v6sim::engine::Network::with_node`] so actions flush.
    pub fn run_task(&mut self, task: AppTask, ctx: &mut Ctx) -> u64 {
        let id = self.next_task;
        self.next_task += 1;
        ctx.timer_in(TASK_DEADLINE, token(TK_DEADLINE, id, 0));
        let state = TaskState {
            task: task.clone(),
            phase: Phase::Done, // placeholder, set below
        };
        self.tasks.insert(id, state);
        self.start_task(id, ctx);
        id
    }

    /// The outcome of task `id`, if finished.
    pub fn outcome(&self, id: u64) -> Option<&TaskOutcome> {
        self.results.iter().find(|(t, _)| *t == id).map(|(_, o)| o)
    }

    // ------------------------------------------------------------------
    // Address & routing helpers
    // ------------------------------------------------------------------

    fn sources(&self) -> Vec<CandidateSource> {
        let mut out = Vec::new();
        if self.profile.ipv6_enabled {
            for (a, p) in &self.v6_addrs {
                out.push(CandidateSource::plain(*a, 1, p.len()));
            }
        }
        if self.v4_active() {
            let v4 = self.v4.as_ref().expect("v4_active checked");
            out.push(CandidateSource::plain(mapped(v4.addr), 1, 128));
        }
        out
    }

    fn pick_v6_source(&self, dst: Ipv6Addr) -> Option<Ipv6Addr> {
        if v6_class(dst).scope() == v6addr::class::Scope::LinkLocal {
            return Some(self.link_local);
        }
        let cands: Vec<CandidateSource> = self
            .v6_addrs
            .iter()
            .map(|(a, p)| CandidateSource::plain(*a, 1, p.len()))
            .collect();
        select_source(dst, &cands, 1, &self.policy)
            .map(|c| c.addr)
            .or(Some(self.link_local))
    }

    fn default_router(&self) -> Option<RouterEntry> {
        self.routers6.iter().copied().max_by_key(|r| r.pref)
    }

    fn alloc_port(&mut self) -> u16 {
        let p = self.next_port;
        self.next_port = self.next_port.checked_add(1).unwrap_or(PORT_FLOOR);
        p
    }

    fn alloc_dns_id(&mut self) -> u16 {
        self.next_dns_id = self.next_dns_id.wrapping_add(1).max(1);
        self.next_dns_id
    }

    fn send_v6(&mut self, pkt: Ipv6Packet, ctx: &mut Ctx) {
        let dst = pkt.dst;
        if dst.is_multicast() {
            let frame = EthernetFrame::new(
                MacAddr::for_ipv6_multicast(dst),
                self.mac,
                EtherType::Ipv6,
                pkt.encode(),
            );
            ctx.send(0, frame.encode());
            return;
        }
        let on_link = v6_class(dst).scope() == v6addr::class::Scope::LinkLocal
            || self.onlink6.iter().any(|p| p.contains(dst));
        let next_hop = if on_link {
            dst
        } else {
            match self.default_router() {
                Some(r) => r.ll,
                None => return, // no route
            }
        };
        if let Some(&mac) = self.neigh6.get(&next_hop) {
            let frame = EthernetFrame::new(mac, self.mac, EtherType::Ipv6, pkt.encode());
            ctx.send(0, frame.encode());
        } else {
            self.pend6.entry(next_hop).or_default().push(pkt);
            let src = self.pick_v6_source(next_hop).unwrap_or(self.link_local);
            let ns = Icmpv6Message::NeighborSolicitation(NeighborSolicitation {
                target: next_hop,
                options: vec![NdpOption::SourceLinkLayer(self.mac)],
            });
            let group = solicited_node(next_hop);
            let frame = build_icmpv6(
                self.mac,
                MacAddr::for_ipv6_multicast(group),
                src,
                group,
                &ns,
            );
            ctx.send(0, frame);
        }
    }

    fn send_v4(&mut self, pkt: Ipv4Packet, ctx: &mut Ctx) {
        let Some(v4) = self.v4.clone() else { return };
        let dst = pkt.dst;
        if dst == Ipv4Addr::BROADCAST {
            let frame =
                EthernetFrame::new(MacAddr::BROADCAST, self.mac, EtherType::Ipv4, pkt.encode());
            ctx.send(0, frame.encode());
            return;
        }
        let next_hop = if v4.prefix.contains(dst) {
            dst
        } else {
            match v4.router {
                Some(r) => r,
                None => return,
            }
        };
        if let Some(&mac) = self.arp4.get(&next_hop) {
            let frame = EthernetFrame::new(mac, self.mac, EtherType::Ipv4, pkt.encode());
            ctx.send(0, frame.encode());
        } else {
            self.pend4.entry(next_hop).or_default().push(pkt);
            let req = ArpPacket::request(self.mac, v4.addr, next_hop);
            ctx.send(0, build_arp(self.mac, MacAddr::BROADCAST, &req));
        }
    }

    /// Send a TCP segment for a flow.
    fn send_segment(&mut self, key: FlowKey, seg: TcpSegment, ctx: &mut Ctx) {
        match key {
            FlowKey::V6 { local, remote } => {
                let pkt = Ipv6Packet::new(
                    local.0,
                    remote.0,
                    proto::TCP,
                    seg.encode_v6(local.0, remote.0),
                );
                self.send_v6(pkt, ctx);
            }
            FlowKey::V4 { local, remote } => {
                let pkt = Ipv4Packet::new(
                    local.0,
                    remote.0,
                    proto::TCP,
                    seg.encode_v4(local.0, remote.0),
                );
                self.send_v4(pkt, ctx);
            }
            FlowKey::ClatV4 { local, remote } => {
                let v4pkt = Ipv4Packet::new(
                    local.0,
                    remote.0,
                    proto::TCP,
                    seg.encode_v4(local.0, remote.0),
                );
                if let Some(clat) = &self.clat {
                    if let Ok(v6pkt) = clat.v4_out(&v4pkt) {
                        self.send_v6(v6pkt, ctx);
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Autoconfiguration
    // ------------------------------------------------------------------

    fn send_rs(&mut self, ctx: &mut Ctx) {
        let rs = Icmpv6Message::RouterSolicitation(v6wire::ndp::RouterSolicitation {
            options: vec![NdpOption::SourceLinkLayer(self.mac)],
        });
        let frame = build_icmpv6(
            self.mac,
            MacAddr::for_ipv6_multicast(all_routers()),
            self.link_local,
            all_routers(),
            &rs,
        );
        ctx.send(0, frame);
    }

    fn start_dhcp(&mut self, ctx: &mut Ctx) {
        let now = ctx.now.as_secs();
        // First try opens a fresh exchange; later tries retransmit the
        // in-flight DISCOVER/REQUEST with the same xid (RFC 2131 §4.1).
        let ev = if self.dhcp_tries == 0 {
            self.dhcp.start(now)
        } else {
            self.dhcp.retransmit(now)
        };
        if let ClientEvent::Send(msg) = ev {
            let dgram = UdpDatagram::new(port::DHCP_CLIENT, port::DHCP_SERVER, msg.encode());
            let frame = v6wire::packet::build_udp_v4(
                self.mac,
                MacAddr::BROADCAST,
                Ipv4Addr::UNSPECIFIED,
                Ipv4Addr::BROADCAST,
                &dgram,
            );
            ctx.send(0, frame);
            self.dhcp_tries += 1;
            if self.dhcp_tries < DHCP_MAX_TRIES {
                // 4 s, 8 s, 16 s, ... ±1 s of deterministic jitter.
                let ms = v6dhcp::client::retry_backoff_ms(self.dhcp_tries - 1, self.secret);
                ctx.timer_in(
                    SimTime::from_millis(ms),
                    token(TK_DHCP, self.dhcp_tries as u64, 0),
                );
            }
        }
    }

    fn on_ra(&mut self, src_ll: Ipv6Addr, src_mac: MacAddr, ra: &v6wire::ndp::RouterAdvertisement) {
        if !self.profile.ipv6_enabled {
            return;
        }
        self.neigh6.insert(src_ll, src_mac);
        if ra.router_lifetime > 0 {
            match self.routers6.iter_mut().find(|r| r.ll == src_ll) {
                Some(r) => {
                    r.pref = ra.preference;
                    r.mac = src_mac;
                }
                None => self.routers6.push(RouterEntry {
                    ll: src_ll,
                    mac: src_mac,
                    pref: ra.preference,
                }),
            }
        }
        for opt in &ra.options {
            match opt {
                NdpOption::PrefixInformation {
                    prefix,
                    prefix_len,
                    on_link,
                    autonomous,
                    ..
                } => {
                    let Ok(p) = Ipv6Prefix::new(*prefix, *prefix_len) else {
                        continue;
                    };
                    if *on_link && !self.onlink6.contains(&p) {
                        self.onlink6.push(p);
                    }
                    if *autonomous && *prefix_len == 64 {
                        let addr = match self.profile.iid_scheme {
                            IidScheme::Eui64 => slaac::eui64_address(p, self.mac.0),
                            IidScheme::StablePrivate => {
                                slaac::stable_private_address(p, 1, 0, self.secret)
                            }
                        };
                        if !self.v6_addrs.iter().any(|(a, _)| *a == addr) {
                            self.v6_addrs.push((addr, p));
                            self.maybe_activate_clat();
                        }
                    }
                }
                NdpOption::Rdnss { servers, .. } => {
                    for s in servers {
                        if !self.rdnss.contains(s) {
                            self.rdnss.push(*s);
                        }
                    }
                }
                NdpOption::Dnssl { domains, .. } => {
                    for d in domains {
                        if let Ok(n) = d.parse::<DnsName>() {
                            if !self.search_domains.contains(&n) {
                                self.search_domains.push(n);
                            }
                        }
                    }
                }
                NdpOption::Pref64 {
                    prefix, prefix_len, ..
                } => {
                    if let Ok(p) = Ipv6Prefix::new(*prefix, *prefix_len) {
                        self.pref64 = Some(p);
                        self.maybe_activate_clat();
                    }
                }
                _ => {}
            }
        }
    }

    fn maybe_activate_clat(&mut self) {
        if self.v6only_mode && self.profile.has_clat && self.clat.is_none() {
            if let Some((addr, prefix)) = self.v6_addrs.first() {
                // Dedicated CLAT address: a distinct IID under the same /64.
                let clat_v6 = prefix.with_iid(u128::from(addr.octets()[15]) << 64 | 0xc1a7);
                // PLAT prefix: PREF64 when the RA provided one (RFC 8781),
                // the well-known prefix otherwise (the paper's testbed).
                let plat = self
                    .pref64
                    .and_then(|p| Nat64Prefix::new(p).ok())
                    .unwrap_or_else(Nat64Prefix::well_known);
                self.clat = Some(Clat::new(clat_v6, plat));
            }
        }
    }

    fn on_dhcp_reply(&mut self, msg: &v6dhcp::codec::DhcpMessage, ctx: &mut Ctx) {
        let now = ctx.now.as_secs();
        match self.dhcp.receive(msg, now) {
            ClientEvent::Send(reply) => {
                let dgram = UdpDatagram::new(port::DHCP_CLIENT, port::DHCP_SERVER, reply.encode());
                let frame = v6wire::packet::build_udp_v4(
                    self.mac,
                    MacAddr::BROADCAST,
                    Ipv4Addr::UNSPECIFIED,
                    Ipv4Addr::BROADCAST,
                    &dgram,
                );
                ctx.send(0, frame);
            }
            ClientEvent::Configured {
                ip,
                mask,
                router,
                dns,
                domain,
                captive_portal,
            } => {
                if captive_portal.is_some() {
                    self.captive_portal = captive_portal;
                }
                let plen = u32::from(mask).leading_ones() as u8;
                self.v4 = Some(V4Config {
                    addr: ip,
                    prefix: Ipv4Prefix::new(ip, plen)
                        .unwrap_or_else(|_| Ipv4Prefix::new(ip, 24).expect("fallback /24 valid")),
                    router,
                    dns,
                });
                if let Some(d) = domain {
                    if let Ok(n) = d.parse::<DnsName>() {
                        if !self.search_domains.contains(&n) {
                            self.search_domains.push(n);
                        }
                    }
                }
            }
            ClientEvent::V6OnlyMode { .. } => {
                self.v6only_mode = true;
                self.v4 = None;
                self.maybe_activate_clat();
            }
            ClientEvent::Idle => {}
        }
    }

    // ------------------------------------------------------------------
    // DNS stub resolver
    // ------------------------------------------------------------------

    /// Resolver addresses in the order this OS tries them.
    pub fn resolver_chain(&self) -> Vec<IpAddr> {
        if let Some(o) = self.dns_override {
            return vec![o];
        }
        let v6: Vec<IpAddr> = if self.profile.honors_rdnss && self.profile.ipv6_enabled {
            self.rdnss.iter().map(|a| IpAddr::V6(*a)).collect()
        } else {
            Vec::new()
        };
        let v4: Vec<IpAddr> = if self.v4_active() {
            self.v4
                .as_ref()
                .map(|c| c.dns.iter().map(|a| IpAddr::V4(*a)).collect())
                .unwrap_or_default()
        } else {
            Vec::new()
        };
        match self.profile.resolver_preference {
            ResolverPreference::RdnssFirst => v6.into_iter().chain(v4).collect(),
            ResolverPreference::Dhcpv4First => v4.into_iter().chain(v6).collect(),
            ResolverPreference::V4Only => v4,
        }
    }

    /// Send one UDP query, unless the stub's RFC 2308 negative cache
    /// already holds a live "no such data" entry for this (name, rtype) —
    /// then nothing is sent and `false` comes back: the caller completes
    /// that side locally with an empty answer.
    fn send_dns_query(
        &mut self,
        task: u64,
        name: &DnsName,
        rtype: RType,
        resolver: IpAddr,
        ctx: &mut Ctx,
    ) -> bool {
        let now = ctx.now.as_secs();
        let cache_key = (name.clone(), rtype);
        if let Some(&expiry) = self.neg_cache.get(&cache_key) {
            if expiry > now {
                self.dns_fail[ResolutionFailure::NegativeCached.index()] += 1;
                return false;
            }
            self.neg_cache.remove(&cache_key);
        }
        let id = self.alloc_dns_id();
        let sport = self.alloc_port();
        self.dns_wait.insert(
            id,
            DnsWait {
                task,
                rtype,
                name: name.clone(),
                resolver,
            },
        );
        let query = DnsMessage::query(id, Question::new(name.clone(), rtype));
        let dgram = UdpDatagram::new(sport, port::DNS, query.encode());
        match resolver {
            IpAddr::V6(dst) => {
                self.dns_via_v6 += 1;
                let src = self.pick_v6_source(dst).unwrap_or(self.link_local);
                let pkt = Ipv6Packet::new(src, dst, proto::UDP, dgram.encode_v6(src, dst));
                self.send_v6(pkt, ctx);
            }
            IpAddr::V4(dst) => {
                self.dns_via_v4 += 1;
                let Some(v4) = &self.v4 else { return true };
                let src = v4.addr;
                let pkt = Ipv4Packet::new(src, dst, proto::UDP, dgram.encode_v4(src, dst));
                self.send_v4(pkt, ctx);
            }
        }
        true
    }

    // ------------------------------------------------------------------
    // Task engine
    // ------------------------------------------------------------------

    fn finish(&mut self, id: u64, outcome: TaskOutcome) {
        if let Some(state) = self.tasks.get_mut(&id) {
            if matches!(state.phase, Phase::Done) && self.results.iter().any(|(t, _)| *t == id) {
                return;
            }
            state.phase = Phase::Done;
            self.results.push((id, outcome));
        }
    }

    fn start_task(&mut self, id: u64, ctx: &mut Ctx) {
        let task = match self.tasks.get(&id) {
            Some(s) => s.task.clone(),
            None => return,
        };
        match task {
            AppTask::Browse { ref name, .. } | AppTask::Ping { ref name } => {
                let name = name.clone();
                self.begin_resolving(id, &name, 0, ctx);
            }
            AppTask::Nslookup { ref name, rtype } => {
                let list = SearchList::new(self.search_domains.clone());
                let candidates = list.candidates(name, false, self.profile.search_order);
                if let Some(state) = self.tasks.get_mut(&id) {
                    state.phase = Phase::NslookupTrying {
                        candidates: candidates.clone(),
                        name_idx: 0,
                        attempt: 0,
                    };
                }
                self.try_nslookup(id, rtype, ctx);
            }
            AppTask::LiteralV4 { addr, port } => {
                self.connect_v4_literal(id, addr, port, ctx);
            }
            AppTask::VpnReach { addr, port } => {
                let Some(vpn) = self.vpn.clone() else {
                    self.finish(id, TaskOutcome::NoRoute);
                    return;
                };
                let target = if vpn.goes_direct(addr) {
                    addr
                } else {
                    vpn.concentrator
                };
                let target_port = if vpn.goes_direct(addr) { port } else { 443 };
                self.connect_v4_literal(id, target, target_port, ctx);
            }
        }
    }

    /// Jittered exponential timeout for DNS attempt `attempt` over a
    /// chain of `chain_len` resolvers. The first attempt is fixed (clean
    /// runs stay reproducible down to the frame); retransmissions add a
    /// deterministic jitter drawn from the host secret so a fleet of
    /// hosts never retries in lockstep.
    fn dns_attempt_timeout(&self, task: u64, attempt: u32, chain_len: usize) -> SimTime {
        let round = attempt / chain_len.max(1) as u32;
        let base_us = DNS_TIMEOUT_BASE.as_micros() << round.min(DNS_BACKOFF_CAP);
        let jitter_us = if attempt == 0 {
            0
        } else {
            v6sim::fault::FaultPlan::jitter_sample(
                self.secret,
                token(TK_DNS, task, u64::from(attempt)),
                base_us / 4,
            )
        };
        SimTime::from_micros(base_us + jitter_us)
    }

    fn begin_resolving(&mut self, id: u64, name: &DnsName, attempt: u32, ctx: &mut Ctx) {
        let chain = self.resolver_chain();
        if chain.is_empty() || attempt >= chain.len() as u32 * DNS_TRIES_PER_RESOLVER {
            self.finish(id, TaskOutcome::DnsFailed);
            return;
        }
        if let Some(state) = self.tasks.get_mut(&id) {
            state.phase = Phase::Resolving {
                a: None,
                aaaa: None,
                attempt,
            };
        }
        // glibc-style rotation: attempt n targets resolver n % chain_len,
        // so a dead first resolver costs one base timeout, not a full
        // per-resolver backoff ladder.
        let resolver = chain[attempt as usize % chain.len()];
        let name = name.clone();
        // Query AAAA only when the host could use it; A only when a v4 or
        // CLAT path exists. Always at least one.
        let want_aaaa = self.profile.ipv6_enabled;
        let want_a = true; // A answers are consumed even by v6-only hosts? No —
                           // but querying A is what real stacks do; sorting drops it.
        if !want_aaaa || !self.send_dns_query(id, &name, RType::Aaaa, resolver, ctx) {
            // Not wanted, or answered from the negative cache: that side
            // is complete with an empty answer, no packet on the wire.
            if let Some(state) = self.tasks.get_mut(&id) {
                if let Phase::Resolving { aaaa, .. } = &mut state.phase {
                    *aaaa = Some(Vec::new());
                }
            }
        }
        if want_a && !self.send_dns_query(id, &name, RType::A, resolver, ctx) {
            if let Some(state) = self.tasks.get_mut(&id) {
                if let Phase::Resolving { a, .. } = &mut state.phase {
                    *a = Some(Vec::new());
                }
            }
        }
        // Both sides may have completed locally (negative cache): nothing
        // is in flight, so proceed now instead of arming a timer.
        if matches!(
            self.tasks.get(&id),
            Some(TaskState {
                phase: Phase::Resolving {
                    a: Some(_),
                    aaaa: Some(_),
                    ..
                },
                ..
            })
        ) {
            self.proceed_after_resolution(id, ctx);
            return;
        }
        let timeout = self.dns_attempt_timeout(id, attempt, chain.len());
        ctx.timer_in(timeout, token(TK_DNS, id, u64::from(attempt)));
    }

    fn try_nslookup(&mut self, id: u64, rtype: RType, ctx: &mut Ctx) {
        let (name, attempt) = match self.tasks.get(&id) {
            Some(TaskState {
                phase:
                    Phase::NslookupTrying {
                        candidates,
                        name_idx,
                        attempt,
                    },
                ..
            }) => {
                if *name_idx >= candidates.len() {
                    self.finish(id, TaskOutcome::DnsFailed);
                    return;
                }
                (candidates[*name_idx].clone(), *attempt)
            }
            _ => return,
        };
        let chain = self.resolver_chain();
        if chain.is_empty() || attempt >= chain.len() as u32 * DNS_TRIES_PER_RESOLVER {
            self.finish(id, TaskOutcome::DnsFailed);
            return;
        }
        let resolver = chain[attempt as usize % chain.len()];
        if !self.send_dns_query(id, &name, rtype, resolver, ctx) {
            // Negative-cached: this candidate is a known miss; devolve to
            // the next search-list name without touching the wire.
            if let Some(TaskState {
                phase: Phase::NslookupTrying { name_idx, .. },
                ..
            }) = self.tasks.get_mut(&id)
            {
                *name_idx += 1;
            }
            self.try_nslookup(id, rtype, ctx);
            return;
        }
        let timeout = self.dns_attempt_timeout(id, attempt, chain.len());
        ctx.timer_in(timeout, token(TK_DNS, id, u64::from(attempt)));
    }

    fn on_dns_response(&mut self, msg: &DnsMessage, ctx: &mut Ctx) {
        let Some(wait) = self.dns_wait.remove(&msg.id) else {
            return;
        };
        // Count any classified failure reason the resolver attached as an
        // RFC 8914 Extended DNS Error (the census reads these back out).
        if let Some(reason) = edns::failure_of(msg) {
            self.dns_fail[reason.index()] += 1;
        }
        // TC bit: RFC 1035 §4.2.2 says re-ask over TCP. OSes without that
        // fallback give up on the (empty) truncated answer, which the
        // census classifies as `truncated-no-tcp`.
        if msg.truncated {
            if self.profile.tcp_dns_fallback {
                self.start_dns_tcp(wait.task, wait.name, wait.rtype, wait.resolver, ctx);
                return;
            }
            self.dns_fail[ResolutionFailure::TruncatedNoTcp.index()] += 1;
        }
        // RFC 2308: a name error / no-data answer carrying an SOA is
        // cacheable for min(SOA TTL, SOA.minimum).
        if msg.rcode == Rcode::NxDomain
            || (msg.rcode == Rcode::NoError && msg.answers.is_empty() && !msg.truncated)
        {
            let soa = msg.authorities.iter().find_map(|r| match r.data {
                RData::Soa { minimum, .. } => Some((r.ttl, minimum)),
                _ => None,
            });
            if let (Some(q), Some((soa_ttl, minimum))) = (msg.questions.first(), soa) {
                let ttl = clamp::negative_ttl(soa_ttl, minimum);
                if ttl > 0 {
                    self.neg_cache.insert(
                        (q.name.clone(), q.rtype),
                        clamp::expiry(ctx.now.as_secs(), ttl),
                    );
                }
            }
        }
        let id = wait.task;
        let Some(state) = self.tasks.get_mut(&id) else {
            return;
        };
        match &mut state.phase {
            Phase::Resolving { a, aaaa, .. } => {
                let records: Vec<Record> = if msg.rcode == Rcode::NoError {
                    msg.answers.clone()
                } else {
                    Vec::new()
                };
                match wait.rtype {
                    RType::A => *a = Some(records),
                    RType::Aaaa => *aaaa = Some(records),
                    _ => {}
                }
                if let (Some(_), Some(_)) = (&a, &aaaa) {
                    self.proceed_after_resolution(id, ctx);
                }
            }
            Phase::NslookupTrying {
                candidates,
                name_idx,
                attempt: _,
            } => {
                if msg.rcode == Rcode::NoError && !msg.answers.is_empty() {
                    let answered = candidates[*name_idx].clone();
                    let records = msg.answers.clone();
                    self.finish(
                        id,
                        TaskOutcome::DnsAnswer {
                            records,
                            answered_name: answered,
                        },
                    );
                } else {
                    *name_idx += 1;
                    let rtype = wait.rtype;
                    self.try_nslookup(id, rtype, ctx);
                }
            }
            _ => {}
        }
    }

    /// Re-ask a truncated query over TCP (RFC 1035 §4.2.2): connect to the
    /// same resolver on port 53 and send the query with a 2-octet length
    /// prefix. The pending attempt timer keeps covering failure — if the
    /// TCP path stalls, the normal UDP retransmission ladder resumes.
    fn start_dns_tcp(
        &mut self,
        task: u64,
        name: DnsName,
        rtype: RType,
        resolver: IpAddr,
        ctx: &mut Ctx,
    ) {
        let id = self.alloc_dns_id();
        let lport = self.alloc_port();
        let key = match resolver {
            IpAddr::V6(remote) => {
                let Some(local) = self.pick_v6_source(remote) else {
                    return;
                };
                FlowKey::V6 {
                    local: (local, lport),
                    remote: (remote, port::DNS),
                }
            }
            IpAddr::V4(remote) => {
                if self.v4_active() {
                    let local = self.v4.as_ref().expect("active").addr;
                    FlowKey::V4 {
                        local: (local, lport),
                        remote: (remote, port::DNS),
                    }
                } else if let Some(clat) = &self.clat {
                    FlowKey::ClatV4 {
                        local: (clat.host_v4, lport),
                        remote: (remote, port::DNS),
                    }
                } else {
                    return;
                }
            }
        };
        self.dns_wait.insert(
            id,
            DnsWait {
                task,
                rtype,
                name: name.clone(),
                resolver,
            },
        );
        let query = DnsMessage::query(id, Question::new(name, rtype));
        let wire = query.encode();
        let mut framed = Vec::with_capacity(wire.len() + 2);
        framed.extend_from_slice(&(wire.len() as u16).to_be_bytes());
        framed.extend_from_slice(&wire);
        let iss = (task as u32) << 8 | u32::from(id) & 0xff;
        let (ep, syn) = TcpEndpoint::connect(lport, port::DNS, iss);
        self.dns_tcp.insert(
            key,
            DnsTcpFlow {
                ep,
                query: framed,
                sent: false,
            },
        );
        self.send_segment(key, syn, ctx);
    }

    fn on_dns_tcp(&mut self, key: FlowKey, seg: TcpSegment, ctx: &mut Ctx) {
        let Some(flow) = self.dns_tcp.get_mut(&key) else {
            return;
        };
        let replies = flow.ep.on_segment(&seg);
        for r in replies {
            self.send_segment(key, r, ctx);
        }
        self.drive_dns_tcp(key, ctx);
    }

    fn drive_dns_tcp(&mut self, key: FlowKey, ctx: &mut Ctx) {
        let Some(flow) = self.dns_tcp.get_mut(&key) else {
            return;
        };
        let mut out: Vec<TcpSegment> = Vec::new();
        if flow.ep.is_established() && !flow.sent {
            flow.sent = true;
            let q = std::mem::take(&mut flow.query);
            out.extend(flow.ep.send(&q));
        }
        // A complete length-prefixed response?
        let mut answer = None;
        if flow.ep.received.len() >= 2 {
            let need = u16::from_be_bytes([flow.ep.received[0], flow.ep.received[1]]) as usize;
            if flow.ep.received.len() >= 2 + need {
                answer = DnsMessage::decode(&flow.ep.received[2..2 + need]).ok();
                out.extend(flow.ep.close());
            }
        }
        let closed = flow.ep.is_closed();
        for s in out {
            self.send_segment(key, s, ctx);
        }
        if let Some(msg) = answer {
            self.dns_tcp.remove(&key);
            // Re-enter the one response path; a TCP answer is never
            // truncated, so this cannot recurse back here.
            self.on_dns_response(&msg, ctx);
        } else if closed {
            self.dns_tcp.remove(&key);
        }
    }

    /// The most severe classified resolution failure this host saw, if any
    /// (lowest [`ResolutionFailure::index`] wins — the census projection
    /// rule).
    pub fn dns_failure(&self) -> Option<ResolutionFailure> {
        ResolutionFailure::ALL
            .into_iter()
            .find(|f| self.dns_fail[f.index()] > 0)
    }

    fn proceed_after_resolution(&mut self, id: u64, ctx: &mut Ctx) {
        let (a, aaaa, task) = match self.tasks.get(&id) {
            Some(TaskState {
                phase: Phase::Resolving { a, aaaa, .. },
                task,
            }) => (
                a.clone().unwrap_or_default(),
                aaaa.clone().unwrap_or_default(),
                task.clone(),
            ),
            _ => return,
        };
        let mut dests: Vec<DestCandidate> = Vec::new();
        for r in aaaa.iter().chain(a.iter()) {
            match r.data {
                RData::Aaaa(addr) => dests.push(DestCandidate::plain(addr)),
                RData::A(addr) => dests.push(DestCandidate::v4(addr)),
                _ => {}
            }
        }
        if dests.is_empty() {
            self.finish(id, TaskOutcome::DnsFailed);
            return;
        }
        let sources = self.sources();
        let ordered = sort_destinations(&dests, &sources, 1, &self.policy);
        // Keep only destinations with a usable source.
        let usable: Vec<IpAddr> = ordered
            .iter()
            .filter(|d| select_source(d.addr, &sources, 1, &self.policy).is_some())
            .map(|d| match v6_class(d.addr) {
                V6Class::V4Mapped(v4) => IpAddr::V4(v4),
                _ => IpAddr::V6(d.addr),
            })
            .collect();
        if usable.is_empty() {
            self.finish(id, TaskOutcome::Unreachable);
            return;
        }
        match task {
            AppTask::Browse { .. } => {
                if let Some(state) = self.tasks.get_mut(&id) {
                    state.phase = Phase::Connecting {
                        candidates: usable.clone(),
                        launched: 0,
                    };
                }
                self.launch_next(id, ctx);
            }
            AppTask::Ping { .. } => {
                let dst = usable[0];
                let ident = (id as u16) | 0x4000;
                if let Some(state) = self.tasks.get_mut(&id) {
                    state.phase = Phase::AwaitingPing { ident };
                }
                self.send_ping(ident, dst, ctx);
                ctx.timer_in(ATTEMPT_TIMEOUT, token(TK_PING, id, 0));
            }
            _ => {}
        }
    }

    fn send_ping(&mut self, ident: u16, dst: IpAddr, ctx: &mut Ctx) {
        match dst {
            IpAddr::V6(d) => {
                let src = self.pick_v6_source(d).unwrap_or(self.link_local);
                let msg = Icmpv6Message::EchoRequest {
                    ident,
                    seq: 1,
                    payload: vec![0x61; 32],
                };
                let pkt = Ipv6Packet::new(src, d, proto::ICMPV6, msg.encode(src, d));
                self.send_v6(pkt, ctx);
            }
            IpAddr::V4(d) => {
                let Some(v4) = &self.v4 else { return };
                let msg = Icmpv4Message::EchoRequest {
                    ident,
                    seq: 1,
                    payload: vec![0x61; 32],
                };
                let pkt = Ipv4Packet::new(v4.addr, d, proto::ICMP, msg.encode());
                self.send_v4(pkt, ctx);
            }
        }
    }

    /// Launch the next unlaunched candidate for a Connecting task
    /// (RFC 8305-style: with Happy Eyeballs enabled, later candidates start
    /// after `HE_DELAY` without waiting for earlier ones to fail).
    fn launch_next(&mut self, id: u64, ctx: &mut Ctx) {
        let (dst, attempt, more_after) = match self.tasks.get_mut(&id) {
            Some(TaskState {
                phase:
                    Phase::Connecting {
                        candidates,
                        launched,
                    },
                ..
            }) => {
                if *launched >= candidates.len() {
                    // Nothing left to launch; if no flow is in flight the
                    // task is dead.
                    if !self.flows.values().any(|f| f.task == id) {
                        self.finish(id, TaskOutcome::Unreachable);
                    }
                    return;
                }
                let attempt = *launched;
                *launched += 1;
                (candidates[attempt], attempt, *launched < candidates.len())
            }
            _ => return,
        };
        let lport = self.alloc_port();
        let iss = (id as u32) << 8 | attempt as u32;
        let key = match dst {
            IpAddr::V6(remote) => self.pick_v6_source(remote).map(|local| FlowKey::V6 {
                local: (local, lport),
                remote: (remote, 80),
            }),
            IpAddr::V4(remote) => {
                if self.v4_active() {
                    let local = self.v4.as_ref().expect("active").addr;
                    Some(FlowKey::V4 {
                        local: (local, lport),
                        remote: (remote, 80),
                    })
                } else if self.clat.is_some() {
                    let local = self.clat.as_ref().expect("checked").host_v4;
                    Some(FlowKey::ClatV4 {
                        local: (local, lport),
                        remote: (remote, 80),
                    })
                } else {
                    None
                }
            }
        };
        let Some(key) = key else {
            // Unusable candidate: try the next immediately.
            self.launch_next(id, ctx);
            return;
        };
        let (ep, syn) = TcpEndpoint::connect(lport, 80, iss);
        self.flows.insert(
            key,
            Flow {
                ep,
                task: id,
                attempt,
                request_sent: false,
            },
        );
        self.send_segment(key, syn, ctx);
        ctx.timer_in(ATTEMPT_TIMEOUT, token(TK_ATTEMPT, id, attempt as u64));
        if more_after && self.profile.happy_eyeballs {
            // Stagger the next family without waiting for this one to fail.
            ctx.timer_in(HE_DELAY, token(TK_HE, id, attempt as u64 + 1));
        }
    }

    /// A flow for `id` went away (RST or timeout): decide what happens next.
    fn after_flow_gone(&mut self, id: u64, ctx: &mut Ctx) {
        if self.flows.values().any(|f| f.task == id) {
            return; // a sibling attempt is still in flight
        }
        if let Some(TaskState {
            phase:
                Phase::Connecting {
                    candidates,
                    launched,
                },
            ..
        }) = self.tasks.get(&id)
        {
            if *launched < candidates.len() {
                self.launch_next(id, ctx);
            } else {
                self.finish(id, TaskOutcome::Unreachable);
            }
        }
    }

    /// Direct v4 TCP connect used by LiteralV4/VpnReach (no DNS involved).
    fn connect_v4_literal(&mut self, id: u64, addr: Ipv4Addr, dport: u16, ctx: &mut Ctx) {
        if let Some(state) = self.tasks.get_mut(&id) {
            state.phase = Phase::Connecting {
                candidates: vec![IpAddr::V4(addr)],
                launched: 1,
            };
        }
        let lport = self.alloc_port();
        let iss = (id as u32) << 8;
        if self.v4_active() {
            let local = self.v4.as_ref().expect("active").addr;
            let (ep, syn) = TcpEndpoint::connect(lport, dport, iss);
            let key = FlowKey::V4 {
                local: (local, lport),
                remote: (addr, dport),
            };
            self.flows.insert(
                key,
                Flow {
                    ep,
                    task: id,
                    attempt: 0,
                    request_sent: false,
                },
            );
            self.send_segment(key, syn, ctx);
            ctx.timer_in(ATTEMPT_TIMEOUT, token(TK_ATTEMPT, id, 0));
        } else if self.clat.is_some() {
            let local = self.clat.as_ref().expect("checked").host_v4;
            let (ep, syn) = TcpEndpoint::connect(lport, dport, iss);
            let key = FlowKey::ClatV4 {
                local: (local, lport),
                remote: (addr, dport),
            };
            self.flows.insert(
                key,
                Flow {
                    ep,
                    task: id,
                    attempt: 0,
                    request_sent: false,
                },
            );
            self.send_segment(key, syn, ctx);
            ctx.timer_in(ATTEMPT_TIMEOUT, token(TK_ATTEMPT, id, 0));
        } else {
            self.finish(id, TaskOutcome::NoRoute);
        }
    }

    fn drive_flow(&mut self, key: FlowKey, ctx: &mut Ctx) {
        let Some(flow) = self.flows.get_mut(&key) else {
            return;
        };
        let id = flow.task;
        let established = flow.ep.is_established();
        let closed_by_rst =
            flow.ep.is_closed() && !flow.ep.peer_closed && flow.ep.received.is_empty();
        let task = self.tasks.get(&id).map(|s| s.task.clone());
        if closed_by_rst {
            self.flows.remove(&key);
            match task {
                Some(AppTask::Browse { .. }) => self.after_flow_gone(id, ctx),
                _ => self.finish(id, TaskOutcome::Unreachable),
            }
            return;
        }
        if established {
            // Happy Eyeballs: the winner cancels the sibling attempts.
            let siblings: Vec<FlowKey> = self
                .flows
                .iter()
                .filter(|(k, f)| f.task == id && **k != key)
                .map(|(k, _)| *k)
                .collect();
            for k in siblings {
                self.flows.remove(&k);
            }
            let peer = match key {
                FlowKey::V6 { remote, .. } => IpAddr::V6(remote.0),
                FlowKey::V4 { remote, .. } | FlowKey::ClatV4 { remote, .. } => IpAddr::V4(remote.0),
            };
            match &task {
                Some(AppTask::Browse { name, path }) => {
                    let flow = self.flows.get_mut(&key).expect("present");
                    if !flow.request_sent {
                        flow.request_sent = true;
                        let req = format!("GET {path} HTTP/1.1\r\nHost: {name}\r\n\r\n");
                        let segs = flow.ep.send(req.as_bytes());
                        for s in segs {
                            self.send_segment(key, s, ctx);
                        }
                    }
                }
                Some(AppTask::LiteralV4 { .. }) | Some(AppTask::VpnReach { .. }) => {
                    self.flows.remove(&key);
                    self.finish(
                        id,
                        TaskOutcome::HttpOk {
                            status: 0,
                            body: String::new(),
                            peer,
                        },
                    );
                    return;
                }
                _ => {}
            }
        }
        // Completed HTTP response? (Server closes after responding.)
        let flow = self.flows.get_mut(&key).expect("present");
        if flow.ep.peer_closed && !flow.ep.received.is_empty() {
            let raw = String::from_utf8_lossy(&flow.ep.received).into_owned();
            let fins = flow.ep.close();
            if let Some(fin) = fins.into_iter().next() {
                self.send_segment(key, fin, ctx);
            }
            let peer = match key {
                FlowKey::V6 { remote, .. } => IpAddr::V6(remote.0),
                FlowKey::V4 { remote, .. } | FlowKey::ClatV4 { remote, .. } => IpAddr::V4(remote.0),
            };
            self.flows.remove(&key);
            let (status, body) = parse_http_response(&raw);
            self.finish(id, TaskOutcome::HttpOk { status, body, peer });
        }
    }

    // ------------------------------------------------------------------
    // Frame ingestion
    // ------------------------------------------------------------------

    fn my_v6_addr(&self, a: Ipv6Addr) -> bool {
        a == self.link_local
            || self.v6_addrs.iter().any(|(x, _)| *x == a)
            || self.clat.as_ref().map(|c| c.clat_v6 == a).unwrap_or(false)
    }

    fn handle_v6(&mut self, parsed: &FrameView<'_>, ip: &Ipv6View<'_>, ctx: &mut Ctx) {
        if !self.profile.ipv6_enabled {
            return;
        }
        // CLAT return traffic.
        if let Some(clat) = self.clat.clone() {
            if ip.dst == clat.clat_v6 {
                // NDP for the CLAT address is handled below like any other
                // local address; data packets are translated back to v4.
                if !matches!(
                    parsed.l4,
                    L4View::Icmp6(Icmp6View::NeighborSolicitation { .. })
                ) {
                    if let Ok(v4pkt) = clat.v6_in(&ip.to_packet()) {
                        self.handle_clat_v4(&v4pkt, ctx);
                    }
                    return;
                }
            }
        }
        let unicast_to_us = self.my_v6_addr(ip.dst);
        let multicast = ip.dst.is_multicast();
        if !unicast_to_us && !multicast {
            return;
        }
        match &parsed.l4 {
            L4View::Icmp6(Icmp6View::RouterAdvertisement(ra)) => {
                self.on_ra(ip.src, parsed.eth.src, &ra.to_ra());
            }
            L4View::Icmp6(Icmp6View::NeighborSolicitation { target, .. })
                if self.my_v6_addr(*target) =>
            {
                self.neigh6.insert(ip.src, parsed.eth.src);
                let na = Icmpv6Message::NeighborAdvertisement(NeighborAdvertisement {
                    router: false,
                    solicited: true,
                    override_flag: true,
                    target: *target,
                    options: vec![NdpOption::TargetLinkLayer(self.mac)],
                });
                let frame = build_icmpv6(self.mac, parsed.eth.src, *target, ip.src, &na);
                ctx.send(0, frame);
            }
            L4View::Icmp6(Icmp6View::NeighborAdvertisement {
                target, options, ..
            }) => {
                let mac = options
                    .iter()
                    .find_map(|o| match o.to_option() {
                        NdpOption::TargetLinkLayer(m) => Some(m),
                        _ => None,
                    })
                    .unwrap_or(parsed.eth.src);
                self.neigh6.insert(*target, mac);
                if let Some(pending) = self.pend6.remove(target) {
                    for pkt in pending {
                        self.send_v6(pkt, ctx);
                    }
                }
            }
            L4View::Icmp6(Icmp6View::EchoRequest {
                ident,
                seq,
                payload,
            }) if unicast_to_us => {
                let reply = Icmpv6Message::EchoReply {
                    ident: *ident,
                    seq: *seq,
                    payload: payload.to_vec(),
                };
                let frame = build_icmpv6(self.mac, parsed.eth.src, ip.dst, ip.src, &reply);
                ctx.send(0, frame);
            }
            L4View::Icmp6(Icmp6View::EchoReply { ident, .. }) if unicast_to_us => {
                self.on_ping_reply(*ident, IpAddr::V6(ip.src));
            }
            L4View::Udp(udp) if unicast_to_us && udp.src_port == port::DNS => {
                if let Ok(msg) = DnsMessage::decode(udp.payload) {
                    self.on_dns_response(&msg, ctx);
                }
            }
            L4View::Tcp(seg) if unicast_to_us => {
                let key = FlowKey::V6 {
                    local: (ip.dst, seg.dst_port),
                    remote: (ip.src, seg.src_port),
                };
                self.on_tcp(key, seg.to_segment(), ctx);
            }
            _ => {}
        }
    }

    fn on_tcp(&mut self, key: FlowKey, seg: TcpSegment, ctx: &mut Ctx) {
        if self.dns_tcp.contains_key(&key) {
            self.on_dns_tcp(key, seg, ctx);
            return;
        }
        let Some(flow) = self.flows.get_mut(&key) else {
            return;
        };
        let replies = flow.ep.on_segment(&seg);
        for r in replies {
            self.send_segment(key, r, ctx);
        }
        self.drive_flow(key, ctx);
    }

    fn on_ping_reply(&mut self, ident: u16, from: IpAddr) {
        let matching: Vec<u64> = self
            .tasks
            .iter()
            .filter_map(|(id, s)| match &s.phase {
                Phase::AwaitingPing { ident: i, .. } if *i == ident => Some(*id),
                _ => None,
            })
            .collect();
        for id in matching {
            self.finish(id, TaskOutcome::PingReply { peer: from });
        }
    }

    fn handle_clat_v4(&mut self, pkt: &Ipv4Packet, ctx: &mut Ctx) {
        match pkt.protocol {
            proto::TCP => {
                if let Ok(seg) = TcpSegment::decode_v4(&pkt.payload, pkt.src, pkt.dst) {
                    let key = FlowKey::ClatV4 {
                        local: (pkt.dst, seg.dst_port),
                        remote: (pkt.src, seg.src_port),
                    };
                    self.on_tcp(key, seg, ctx);
                }
            }
            proto::ICMP => {
                if let Ok(Icmpv4Message::EchoReply { ident, .. }) =
                    Icmpv4Message::decode(&pkt.payload)
                {
                    self.on_ping_reply(ident, IpAddr::V4(pkt.src));
                }
            }
            _ => {}
        }
    }

    fn handle_v4(&mut self, parsed: &FrameView<'_>, ip: &Ipv4View<'_>, ctx: &mut Ctx) {
        if !self.profile.ipv4_enabled {
            return;
        }
        // DHCP replies are accepted before we have an address.
        if let L4View::Udp(udp) = &parsed.l4 {
            if udp.dst_port == port::DHCP_CLIENT && udp.src_port == port::DHCP_SERVER {
                if let Ok(msg) = v6dhcp::codec::DhcpMessage::decode(udp.payload) {
                    if msg.chaddr == self.mac {
                        self.on_dhcp_reply(&msg, ctx);
                    }
                }
                return;
            }
        }
        let Some(my) = self.v4.as_ref().map(|c| c.addr) else {
            return;
        };
        if ip.dst != my {
            return;
        }
        match &parsed.l4 {
            L4View::Udp(udp) if udp.src_port == port::DNS => {
                if let Ok(msg) = DnsMessage::decode(udp.payload) {
                    self.on_dns_response(&msg, ctx);
                }
            }
            L4View::Tcp(seg) => {
                let key = FlowKey::V4 {
                    local: (ip.dst, seg.dst_port),
                    remote: (ip.src, seg.src_port),
                };
                self.on_tcp(key, seg.to_segment(), ctx);
            }
            L4View::Icmp4(Icmp4View::EchoRequest {
                ident,
                seq,
                payload,
            }) => {
                let reply = Icmpv4Message::EchoReply {
                    ident: *ident,
                    seq: *seq,
                    payload: payload.to_vec(),
                };
                let frame =
                    v6wire::packet::build_icmpv4(self.mac, parsed.eth.src, my, ip.src, &reply);
                ctx.send(0, frame);
            }
            L4View::Icmp4(Icmp4View::EchoReply { ident, .. }) => {
                self.on_ping_reply(*ident, IpAddr::V4(ip.src));
            }
            _ => {}
        }
    }
}

/// Parse a minimal HTTP/1.1 response into (status, body).
fn parse_http_response(raw: &str) -> (u16, String) {
    let mut status = 0u16;
    if let Some(line) = raw.lines().next() {
        let mut parts = line.split_whitespace();
        if parts
            .next()
            .map(|p| p.starts_with("HTTP/"))
            .unwrap_or(false)
        {
            status = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0);
        }
    }
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

impl Node for Host {
    fn name(&self) -> &str {
        &self.name
    }

    fn device_metrics(&self) -> v6wire::metrics::Metrics {
        let mut m: v6wire::metrics::Metrics = [
            ("dns.via_v6", self.dns_via_v6),
            ("dns.via_v4", self.dns_via_v4),
            ("dns.timeouts", self.dns_timeouts),
            ("dns.retransmits", self.dns_retransmits),
            ("dns.failovers", self.dns_failovers),
            ("dhcp.retries", self.dhcp_retries),
        ]
        .into_iter()
        .collect();
        for f in ResolutionFailure::ALL {
            m.add(&format!("dns.fail.{}", f.label()), self.dns_fail[f.index()]);
        }
        m
    }

    fn start(&mut self, ctx: &mut Ctx) {
        if self.profile.ipv6_enabled {
            self.send_rs(ctx);
            ctx.timer_in(SimTime::from_secs(1), token(TK_RS, 0, 0));
        }
        if self.profile.ipv4_enabled {
            self.start_dhcp(ctx);
        }
    }

    fn on_timer(&mut self, t: u64, ctx: &mut Ctx) {
        let (kind, a, b) = untoken(t);
        match kind {
            TK_RS if self.routers6.is_empty() && self.profile.ipv6_enabled => {
                self.send_rs(ctx);
                ctx.timer_in(SimTime::from_secs(2), token(TK_RS, 0, 0));
            }
            TK_DHCP if self.v4.is_none() && !self.v6only_mode && self.profile.ipv4_enabled => {
                self.dhcp_retries += 1;
                self.start_dhcp(ctx);
            }
            TK_DNS => {
                let id = a;
                let attempt = b as u32;
                // Attempt `b` timed out. Stale timers (a later attempt or a
                // finished resolution already superseded it) are ignored.
                let next_action = match self.tasks.get(&id) {
                    Some(TaskState {
                        phase:
                            Phase::Resolving {
                                a,
                                aaaa,
                                attempt: cur,
                            },
                        task,
                    }) if *cur == attempt => {
                        // Partial answers count; only retry if nothing usable.
                        let have_any = a.as_ref().map(|v| !v.is_empty()).unwrap_or(false)
                            || aaaa.as_ref().map(|v| !v.is_empty()).unwrap_or(false);
                        if have_any {
                            Some(None)
                        } else {
                            Some(Some(task.clone()))
                        }
                    }
                    Some(TaskState {
                        phase: Phase::NslookupTrying { attempt: cur, .. },
                        ..
                    }) if *cur == attempt => Some(Some(self.tasks[&id].task.clone())),
                    _ => None,
                };
                match next_action {
                    Some(Some(task)) => {
                        self.dns_timeouts += 1;
                        // Retransmit with backoff, rotating resolvers; the
                        // begin_/try_ paths finish with DnsFailed once the
                        // whole budget (chain × tries) is spent.
                        let chain_len = self.resolver_chain().len();
                        let next = attempt + 1;
                        if chain_len > 0 && next < chain_len as u32 * DNS_TRIES_PER_RESOLVER {
                            self.dns_retransmits += 1;
                            if chain_len > 1 {
                                self.dns_failovers += 1;
                            }
                        }
                        match task {
                            AppTask::Browse { name, .. } | AppTask::Ping { name } => {
                                self.begin_resolving(id, &name, next, ctx);
                            }
                            AppTask::Nslookup { rtype, .. } => {
                                if let Some(TaskState {
                                    phase: Phase::NslookupTrying { attempt, .. },
                                    ..
                                }) = self.tasks.get_mut(&id)
                                {
                                    *attempt = next;
                                }
                                self.try_nslookup(id, rtype, ctx);
                            }
                            _ => {}
                        }
                    }
                    Some(None) => {
                        // We had partial answers; proceed with them.
                        self.force_resolution_complete(id, ctx);
                    }
                    None => {}
                }
            }
            TK_ATTEMPT => {
                let id = a;
                // If the flow for attempt `b` is still unestablished, give up
                // on that candidate (siblings launched by Happy Eyeballs keep
                // running).
                let flow_key = self
                    .flows
                    .iter()
                    .find(|(_, f)| {
                        f.task == id && f.attempt == b as usize && !f.ep.is_established()
                    })
                    .map(|(k, _)| *k);
                if let Some(k) = flow_key {
                    self.flows.remove(&k);
                    match self.tasks.get(&id).map(|s| s.task.clone()) {
                        Some(AppTask::Browse { .. }) => self.after_flow_gone(id, ctx),
                        _ => self.finish(id, TaskOutcome::Unreachable),
                    }
                }
            }
            TK_HE => {
                let id = a;
                // Time to stagger-launch candidate `b` if nothing has
                // established yet.
                let established = self
                    .flows
                    .values()
                    .any(|f| f.task == id && f.ep.is_established());
                let due = matches!(
                    self.tasks.get(&id),
                    Some(TaskState {
                        phase: Phase::Connecting { launched, .. },
                        ..
                    }) if *launched == b as usize
                );
                if !established && due {
                    self.launch_next(id, ctx);
                }
            }
            TK_PING => {
                let id = a;
                if matches!(
                    self.tasks.get(&id),
                    Some(TaskState {
                        phase: Phase::AwaitingPing { .. },
                        ..
                    })
                ) {
                    self.finish(id, TaskOutcome::Unreachable);
                }
            }
            TK_DEADLINE => {
                let id = a;
                if let Some(state) = self.tasks.get(&id) {
                    if !matches!(state.phase, Phase::Done) {
                        let outcome = match state.phase {
                            Phase::Resolving { .. } | Phase::NslookupTrying { .. } => {
                                TaskOutcome::DnsFailed
                            }
                            _ => TaskOutcome::Unreachable,
                        };
                        self.finish(id, outcome);
                    }
                }
            }
            _ => {}
        }
    }

    fn on_frame(&mut self, _port: u32, raw: &[u8], ctx: &mut Ctx) {
        let Ok(parsed) = FrameView::parse(raw) else {
            return;
        };
        if parsed.eth.dst != self.mac && !parsed.eth.dst.is_multicast() {
            return;
        }
        match &parsed.l3 {
            L3View::Arp(arp) => {
                if !self.profile.ipv4_enabled {
                    return;
                }
                self.arp4.insert(arp.sender_ip, arp.sender_mac);
                if let Some(pending) = self.pend4.remove(&arp.sender_ip) {
                    for pkt in pending {
                        self.send_v4(pkt, ctx);
                    }
                }
                if arp.op == ArpOp::Request {
                    if let Some(my) = self.v4.as_ref().map(|c| c.addr) {
                        if arp.target_ip == my {
                            let reply = ArpPacket::reply_to(arp, self.mac);
                            ctx.send(0, build_arp(self.mac, arp.sender_mac, &reply));
                        }
                    }
                }
            }
            L3View::V6(ip) => {
                let ip = *ip;
                self.handle_v6(&parsed, &ip, ctx);
            }
            L3View::V4(ip) => {
                let ip = *ip;
                self.handle_v4(&parsed, &ip, ctx);
            }
            L3View::Other(..) => {}
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl Host {
    /// Complete a `Resolving` phase with whatever answers arrived (used on
    /// partial timeout).
    fn force_resolution_complete(&mut self, id: u64, ctx: &mut Ctx) {
        if let Some(TaskState {
            phase: Phase::Resolving { a, aaaa, .. },
            ..
        }) = self.tasks.get_mut(&id)
        {
            if a.is_none() {
                *a = Some(Vec::new());
            }
            if aaaa.is_none() {
                *aaaa = Some(Vec::new());
            }
        }
        self.proceed_after_resolution(id, ctx);
    }
}

/// Salt mixed into per-host RFC 7217 secrets so seeds and secrets differ.
const SECRET_SALT: u64 = 0x5c24_0000_0006_0001;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::OsProfile;
    use v6dhcp::server::{DhcpServer, ServerConfig};
    use v6dns::dns64::Dns64;
    use v6dns::poison::PoisonedResolver;
    use v6dns::server::{GlobalDns, Resolver};
    use v6dns::zone::Zone;
    use v6sim::engine::Network;
    use v6sim::gateway::{FiveGGateway, LAN, WAN};
    use v6sim::l2::Switch;
    use v6wire::packet::{ParsedFrame, L3, L4};

    /// A Raspberry-Pi-like test node: answers NDP, serves DNS (over v6 and
    /// v4, UDP and TCP with 512-byte UDP truncation) from an embedded
    /// resolver, and runs a DHCPv4 server with option 108. This is a local
    /// double; the production node lives in v6testbed.
    struct PiNode {
        name: String,
        mac: MacAddr,
        v6: Ipv6Addr,
        v4: Ipv4Addr,
        resolver: Box<dyn Resolver>,
        dhcp: Option<DhcpServer>,
        tcp_flows: FastMap<(IpAddr, IpAddr, u16), TestTcpFlow>,
    }

    struct TestTcpFlow {
        ep: TcpEndpoint,
        responded: bool,
    }

    impl PiNode {
        fn answer(&mut self, q: &Question, now: u64, udp: bool) -> DnsMessage {
            let ans = self.resolver.resolve(q, now);
            let query = DnsMessage::query(0, q.clone());
            let mut resp = DnsMessage::response_to(&query, ans.rcode);
            resp.answers = ans.records;
            resp.authorities.extend(ans.soa.clone());
            // Classic 512-byte UDP limit (the host stub sends no OPT).
            if udp && resp.encode().len() > 512 {
                resp.truncated = true;
                resp.answers.clear();
                resp.authorities.clear();
            }
            resp
        }

        fn on_tcp_dns(
            &mut self,
            local: IpAddr,
            remote: IpAddr,
            seg: &TcpSegment,
            reply_mac: MacAddr,
            ctx: &mut Ctx,
        ) {
            let key = (local, remote, seg.src_port);
            let (mut out, query) = {
                let flow = self.tcp_flows.entry(key).or_insert_with(|| TestTcpFlow {
                    ep: TcpEndpoint::listen(port::DNS),
                    responded: false,
                });
                let out = flow.ep.on_segment(seg);
                let mut query = None;
                if flow.ep.is_established() && !flow.responded && flow.ep.received.len() >= 2 {
                    let need =
                        u16::from_be_bytes([flow.ep.received[0], flow.ep.received[1]]) as usize;
                    if flow.ep.received.len() >= 2 + need {
                        query = DnsMessage::decode(&flow.ep.received[2..2 + need]).ok();
                        flow.responded = true;
                    }
                }
                (out, query)
            };
            if let Some(msg) = query {
                let q = msg.questions[0].clone();
                let mut resp = self.answer(&q, ctx.now.as_secs(), false);
                resp.id = msg.id;
                let wire = resp.encode();
                let mut framed = Vec::with_capacity(wire.len() + 2);
                framed.extend_from_slice(&(wire.len() as u16).to_be_bytes());
                framed.extend_from_slice(&wire);
                let flow = self.tcp_flows.get_mut(&key).expect("present");
                out.extend(flow.ep.send(&framed));
                out.extend(flow.ep.close());
            }
            for s in out {
                let frame = match (local, remote) {
                    (IpAddr::V6(l), IpAddr::V6(r)) => {
                        v6wire::packet::build_tcp_v6(self.mac, reply_mac, l, r, &s)
                    }
                    (IpAddr::V4(l), IpAddr::V4(r)) => {
                        v6wire::packet::build_tcp_v4(self.mac, reply_mac, l, r, &s)
                    }
                    _ => continue,
                };
                ctx.send(0, frame);
            }
            if self
                .tcp_flows
                .get(&key)
                .map(|f| f.ep.is_closed())
                .unwrap_or(false)
            {
                self.tcp_flows.remove(&key);
            }
        }
    }

    impl Node for PiNode {
        fn name(&self) -> &str {
            &self.name
        }

        fn on_frame(&mut self, _port: u32, raw: &[u8], ctx: &mut Ctx) {
            let Ok(parsed) = ParsedFrame::parse(raw) else {
                return;
            };
            match (&parsed.l3, &parsed.l4) {
                (L3::V6(ip), L4::Icmp6(Icmpv6Message::NeighborSolicitation(ns)))
                    if ns.target == self.v6 =>
                {
                    let na = Icmpv6Message::NeighborAdvertisement(NeighborAdvertisement {
                        router: false,
                        solicited: true,
                        override_flag: true,
                        target: ns.target,
                        options: vec![NdpOption::TargetLinkLayer(self.mac)],
                    });
                    ctx.send(
                        0,
                        build_icmpv6(self.mac, parsed.eth.src, ns.target, ip.src, &na),
                    );
                }
                (L3::V6(ip), L4::Udp(udp)) if ip.dst == self.v6 && udp.dst_port == port::DNS => {
                    if let Ok(mut msg) = DnsMessage::decode(&udp.payload) {
                        let q = msg.questions[0].clone();
                        let mut resp = self.answer(&q, ctx.now.as_secs(), true);
                        resp.id = msg.id;
                        msg.is_response = true;
                        let d = UdpDatagram::new(port::DNS, udp.src_port, resp.encode());
                        let frame = v6wire::packet::build_udp_v6(
                            self.mac,
                            parsed.eth.src,
                            self.v6,
                            ip.src,
                            &d,
                        );
                        ctx.send(0, frame);
                    }
                }
                (L3::V4(ip), L4::Udp(udp)) if ip.dst == self.v4 && udp.dst_port == port::DNS => {
                    if let Ok(msg) = DnsMessage::decode(&udp.payload) {
                        let q = msg.questions[0].clone();
                        let mut resp = self.answer(&q, ctx.now.as_secs(), true);
                        resp.id = msg.id;
                        let d = UdpDatagram::new(port::DNS, udp.src_port, resp.encode());
                        let frame = v6wire::packet::build_udp_v4(
                            self.mac,
                            parsed.eth.src,
                            self.v4,
                            ip.src,
                            &d,
                        );
                        ctx.send(0, frame);
                    }
                }
                (L3::V4(_), L4::Udp(udp)) if udp.dst_port == port::DHCP_SERVER => {
                    if let Some(dhcp) = &mut self.dhcp {
                        if let Ok(msg) = v6dhcp::codec::DhcpMessage::decode(&udp.payload) {
                            if let Some(reply) = dhcp.handle(&msg, ctx.now.as_secs()) {
                                let d = UdpDatagram::new(
                                    port::DHCP_SERVER,
                                    port::DHCP_CLIENT,
                                    reply.encode(),
                                );
                                let frame = v6wire::packet::build_udp_v4(
                                    self.mac,
                                    msg.chaddr,
                                    dhcp.config.server_id,
                                    Ipv4Addr::BROADCAST,
                                    &d,
                                );
                                ctx.send(0, frame);
                            }
                        }
                    }
                }
                (L3::V6(ip), L4::Tcp(seg)) if ip.dst == self.v6 && seg.dst_port == port::DNS => {
                    let (src, dst, seg) = (ip.src, ip.dst, seg.clone());
                    self.on_tcp_dns(IpAddr::V6(dst), IpAddr::V6(src), &seg, parsed.eth.src, ctx);
                }
                (L3::V4(ip), L4::Tcp(seg)) if ip.dst == self.v4 && seg.dst_port == port::DNS => {
                    let (src, dst, seg) = (ip.src, ip.dst, seg.clone());
                    self.on_tcp_dns(IpAddr::V4(dst), IpAddr::V4(src), &seg, parsed.eth.src, ctx);
                }
                (L3::Arp(arp), _) if arp.op == ArpOp::Request && arp.target_ip == self.v4 => {
                    let reply = ArpPacket::reply_to(arp, self.mac);
                    ctx.send(0, build_arp(self.mac, arp.sender_mac, &reply));
                }
                _ => {}
            }
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn internet_dns() -> GlobalDns {
        let mut g = GlobalDns::new();
        let mut me = Zone::new("ip6.me".parse().unwrap(), 60);
        me.add_str("@", 60, RData::A("23.153.8.71".parse().unwrap()));
        me.add_str("@", 60, RData::Aaaa("2001:4810:0:3::71".parse().unwrap()));
        g.add_zone(me);
        let mut anl = Zone::new("anl.gov".parse().unwrap(), 300);
        anl.add_str("vpn", 120, RData::A("130.202.228.253".parse().unwrap()));
        g.add_zone(anl);
        // An answer too big for classic 512-byte UDP: exercises the TC bit
        // and the stub's RFC 1035 §4.2.2 TCP retry.
        let mut big = Zone::new("big.test".parse().unwrap(), 60);
        big.add_str("@", 60, RData::Txt(vec!["x".repeat(200); 4]));
        g.add_zone(big);
        g
    }

    fn pi(poisoned: bool, with_dhcp: bool) -> Box<PiNode> {
        let dns64 = Dns64::well_known(internet_dns());
        let resolver: Box<dyn Resolver> = if poisoned {
            Box::new(PoisonedResolver::dnsmasq_ip6me(dns64))
        } else {
            Box::new(dns64)
        };
        Box::new(PiNode {
            name: "pi".into(),
            mac: MacAddr::new([2, 0x91, 0, 0, 0, 9]),
            v6: "fd00:976a::9".parse().unwrap(),
            v4: "192.168.12.250".parse().unwrap(),
            resolver,
            dhcp: with_dhcp
                .then(|| DhcpServer::new(ServerConfig::testbed("192.168.12.250".parse().unwrap()))),
            tcp_flows: FastMap::default(),
        })
    }

    /// Full testbed: gateway + managed switch (snooping, trusting the Pi
    /// port 0) + Pi (DNS64, optionally poisoned, DHCP w/ 108) + one host.
    fn testbed(profile: OsProfile, poisoned: bool) -> (Network, usize) {
        let mut net = Network::new();
        let gw = net.add_node(Box::new(FiveGGateway::new("5g-gw")));
        let sw = net.add_node(Box::new(Switch::managed("msw", 4, 0)));
        let pi_node = net.add_node(pi(poisoned, true));
        let host = net.add_node(Box::new(Host::new("client", profile, 0x31)));
        let internet = net.add_node(Box::new(Switch::new("wan-stub", 1)));
        net.link(sw, 0, pi_node, 0, SimTime::from_micros(50));
        net.link(sw, 1, gw, LAN, SimTime::from_micros(50));
        net.link(sw, 2, host, 0, SimTime::from_micros(50));
        net.link(gw, WAN, internet, 0, SimTime::from_millis(20));
        (net, host)
    }

    #[test]
    fn dual_stack_autoconfig_on_full_testbed() {
        let (mut net, host) = testbed(OsProfile::windows_10(), true);
        net.run_until(SimTime::from_secs(12));
        let h = net.node_mut::<Host>(host);
        // Two SLAAC prefixes: the gateway GUA and the switch ULA.
        assert_eq!(h.v6_addrs.len(), 2, "addrs: {:?}", h.v6_addrs);
        assert!(h
            .v6_addrs
            .iter()
            .any(|(_, p)| p.to_string() == "fd00:976a::/64"));
        // DHCP came from the Pi (gateway snooped): DNS = poisoned Pi.
        assert!(h.v4_active());
        let chain = h.resolver_chain();
        assert_eq!(
            chain.first(),
            Some(&IpAddr::V6("fd00:976a::9".parse().unwrap())),
            "Win10 prefers RDNSS; chain {chain:?}"
        );
        // Search domain from the switch DNSSL / DHCP option 15.
        assert!(h
            .search_domains
            .iter()
            .any(|d| d.to_string() == "rfc8925.com"));
    }

    #[test]
    fn rfc8925_host_disables_v4_and_starts_clat() {
        let (mut net, host) = testbed(OsProfile::macos(), true);
        net.run_until(SimTime::from_secs(12));
        let h = net.node_mut::<Host>(host);
        assert!(h.v6only_mode, "option 108 honoured");
        assert!(!h.v4_active());
        assert!(h.clat.is_some(), "CLAT activated");
        assert_eq!(h.v6_addrs.len(), 2);
    }

    #[test]
    fn win11_prefers_dhcp_resolver() {
        let (mut net, host) = testbed(OsProfile::windows_11(), true);
        net.run_until(SimTime::from_secs(12));
        let h = net.node_mut::<Host>(host);
        let chain = h.resolver_chain();
        assert_eq!(
            chain.first(),
            Some(&IpAddr::V4("192.168.12.250".parse().unwrap())),
            "Win11 uses the DHCPv4 resolver first: {chain:?}"
        );
    }

    #[test]
    fn v4_only_host_gets_only_poisoned_resolver() {
        let (mut net, host) = testbed(OsProfile::nintendo_switch(), true);
        net.run_until(SimTime::from_secs(12));
        let h = net.node_mut::<Host>(host);
        assert!(h.v6_addrs.is_empty());
        assert!(h.v4_active());
        assert_eq!(
            h.resolver_chain(),
            vec![IpAddr::V4("192.168.12.250".parse().unwrap())]
        );
    }

    #[test]
    fn winxp_uses_v4_resolver_but_keeps_v6_addresses() {
        let (mut net, host) = testbed(OsProfile::windows_xp(), true);
        net.run_until(SimTime::from_secs(12));
        let h = net.node_mut::<Host>(host);
        assert_eq!(h.v6_addrs.len(), 2, "XP's v6 stack works");
        // EUI-64 IID visible in the address (Fig. 7 style).
        assert!(h
            .v6_addrs
            .iter()
            .any(|(a, _)| a.octets()[11] == 0xff && a.octets()[12] == 0xfe));
        let chain = h.resolver_chain();
        assert!(
            chain.iter().all(|r| matches!(r, IpAddr::V4(_))),
            "{chain:?}"
        );
    }

    #[test]
    fn nslookup_poisoned_suffix_first_fig9() {
        // Windows nslookup (suffix-first) against the poisoned resolver
        // answers the *suffixed* non-existent name — the Fig. 9 artefact.
        let (mut net, host) = testbed(OsProfile::windows_11(), true);
        net.run_until(SimTime::from_secs(12));
        let id = net.with_node::<Host, _>(host, |h, ctx| {
            h.run_task(
                AppTask::Nslookup {
                    name: "vpn.anl.gov".parse().unwrap(),
                    rtype: RType::A,
                },
                ctx,
            )
        });
        net.run_for(SimTime::from_secs(5));
        let h = net.node_mut::<Host>(host);
        match h.outcome(id) {
            Some(TaskOutcome::DnsAnswer {
                records,
                answered_name,
            }) => {
                assert_eq!(
                    answered_name.to_string(),
                    "vpn.anl.gov.rfc8925.com",
                    "suffix applied and wildcard-poisoned"
                );
                assert_eq!(records[0].data, RData::A("23.153.8.71".parse().unwrap()));
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn ping_via_dns64_uses_aaaa_fig9() {
        // The same host's ping resolves AAAA through the healthy DNS64 path
        // and reaches the NAT64-translated address.
        let (mut net, host) = testbed(OsProfile::windows_10(), true);
        net.run_until(SimTime::from_secs(12));
        let id = net.with_node::<Host, _>(host, |h, ctx| {
            h.run_task(
                AppTask::Ping {
                    name: "vpn.anl.gov".parse().unwrap(),
                },
                ctx,
            )
        });
        net.run_for(SimTime::from_secs(9));
        let h = net.node_mut::<Host>(host);
        match h.outcome(id) {
            // vpn.anl.gov is v4-only: DNS64 synthesizes 64:ff9b::82ca:e4fd.
            // There's no live server behind it in this minimal net, so the
            // ping times out — but the *resolution and destination choice*
            // must have preferred the v6 path: dns_via_v6 > 0.
            Some(TaskOutcome::Unreachable) | Some(TaskOutcome::PingReply { .. }) => {
                assert!(h.dns_via_v6 > 0, "queried over the RDNSS resolver");
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn literal_v4_task_noroute_when_v6only_without_clat() {
        // An RFC8925-honouring host *without* CLAT cannot run v4-literal apps.
        let mut profile = OsProfile::macos();
        profile.has_clat = false;
        profile.name = "macOS (no CLAT)".into();
        let (mut net, host) = testbed(profile, true);
        net.run_until(SimTime::from_secs(12));
        let id = net.with_node::<Host, _>(host, |h, ctx| {
            h.run_task(
                AppTask::LiteralV4 {
                    addr: "44.12.7.9".parse().unwrap(),
                    port: 5198,
                },
                ctx,
            )
        });
        net.run_for(SimTime::from_millis(100));
        let h = net.node_mut::<Host>(host);
        assert_eq!(h.outcome(id), Some(&TaskOutcome::NoRoute));
    }

    #[test]
    fn raw_gateway_fig3_dead_rdnss() {
        // Without the managed switch: RDNSS points at dead ULAs; a Win10
        // host falls back to the gateway's DHCP DNS (v4). An RFC8925-ignorant
        // host still has working DNS via v4; the *v6-only resolver path* is
        // dead.
        let mut net = Network::new();
        let gw = net.add_node(Box::new(FiveGGateway::new("5g-gw")));
        let host = net.add_node(Box::new(Host::new("client", OsProfile::windows_10(), 0x99)));
        let sw = net.add_node(Box::new(Switch::new("dumb-sw", 2)));
        net.link(sw, 0, gw, LAN, SimTime::from_micros(50));
        net.link(sw, 1, host, 0, SimTime::from_micros(50));
        net.run_until(SimTime::from_secs(12));
        let h = net.node_mut::<Host>(host);
        assert_eq!(h.v6_addrs.len(), 1, "only the gateway GUA prefix");
        assert_eq!(
            h.rdnss,
            vec![
                "fd00:976a::9".parse::<Ipv6Addr>().unwrap(),
                "fd00:976a::10".parse::<Ipv6Addr>().unwrap()
            ],
            "dead resolvers advertised (Fig. 3)"
        );
        // The chain tries the dead ULAs first, then the gateway's v4 DNS.
        let chain = h.resolver_chain();
        assert_eq!(chain.len(), 3);
        assert!(matches!(chain[2], IpAddr::V4(_)));
    }

    #[test]
    fn truncated_answer_retried_over_tcp() {
        // The big.test TXT answer exceeds 512 bytes: UDP comes back with
        // the TC bit, and a modern stub re-asks over TCP and gets the full
        // record set (RFC 1035 §4.2.2).
        let (mut net, host) = testbed(OsProfile::linux(), false);
        net.run_until(SimTime::from_secs(12));
        let id = net.with_node::<Host, _>(host, |h, ctx| {
            h.run_task(
                AppTask::Nslookup {
                    name: "big.test".parse().unwrap(),
                    rtype: RType::Txt,
                },
                ctx,
            )
        });
        net.run_for(SimTime::from_secs(5));
        let h = net.node_mut::<Host>(host);
        match h.outcome(id) {
            Some(TaskOutcome::DnsAnswer { records, .. }) => {
                assert_eq!(records.len(), 1);
                assert!(matches!(&records[0].data, RData::Txt(v) if v.len() == 4));
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        assert!(h.dns_tcp.is_empty(), "TCP retry flow cleaned up");
        assert_eq!(h.dns_fail, [0; 4], "the TCP fallback is not a failure");
    }

    #[test]
    fn truncation_without_tcp_fallback_is_classified() {
        // A legacy stub (no TCP retry) gives up on the truncated answer,
        // and the failure is classified, not a timeout.
        let (mut net, host) = testbed(OsProfile::nintendo_switch(), false);
        net.run_until(SimTime::from_secs(12));
        let id = net.with_node::<Host, _>(host, |h, ctx| {
            h.run_task(
                AppTask::Nslookup {
                    name: "big.test".parse().unwrap(),
                    rtype: RType::Txt,
                },
                ctx,
            )
        });
        net.run_for(SimTime::from_secs(9));
        let h = net.node_mut::<Host>(host);
        assert_eq!(h.outcome(id), Some(&TaskOutcome::DnsFailed));
        assert!(
            h.dns_fail[ResolutionFailure::TruncatedNoTcp.index()] >= 1,
            "dns_fail: {:?}",
            h.dns_fail
        );
        assert_eq!(
            h.dns_failure(),
            Some(ResolutionFailure::TruncatedNoTcp),
            "projection picks the classified reason"
        );
    }

    #[test]
    fn negative_answers_are_cached_rfc2308() {
        // The second lookup of a known-missing name is answered from the
        // stub's negative cache: no new packets, classified as such.
        let (mut net, host) = testbed(OsProfile::windows_10(), false);
        net.run_until(SimTime::from_secs(12));
        let first = net.with_node::<Host, _>(host, |h, ctx| {
            h.run_task(
                AppTask::Ping {
                    name: "nope.anl.gov".parse().unwrap(),
                },
                ctx,
            )
        });
        net.run_for(SimTime::from_secs(5));
        let queries_after_first = {
            let h = net.node_mut::<Host>(host);
            assert_eq!(h.outcome(first), Some(&TaskOutcome::DnsFailed));
            assert!(!h.neg_cache.is_empty(), "negative answers cached");
            h.dns_via_v6 + h.dns_via_v4
        };
        let second = net.with_node::<Host, _>(host, |h, ctx| {
            h.run_task(
                AppTask::Ping {
                    name: "nope.anl.gov".parse().unwrap(),
                },
                ctx,
            )
        });
        net.run_for(SimTime::from_secs(1));
        let h = net.node_mut::<Host>(host);
        assert_eq!(h.outcome(second), Some(&TaskOutcome::DnsFailed));
        assert_eq!(
            h.dns_via_v6 + h.dns_via_v4,
            queries_after_first,
            "no wire queries for the cached miss"
        );
        assert!(h.dns_fail[ResolutionFailure::NegativeCached.index()] >= 2);
    }

    #[test]
    fn dns_override_escape_hatch() {
        let (mut net, host) = testbed(OsProfile::nintendo_switch(), true);
        net.run_until(SimTime::from_secs(12));
        let h = net.node_mut::<Host>(host);
        h.dns_override = Some(IpAddr::V4("9.9.9.9".parse().unwrap()));
        assert_eq!(
            h.resolver_chain(),
            vec![IpAddr::V4("9.9.9.9".parse().unwrap())],
            "user-set resolver wins (Fig. 6 escape hatch)"
        );
    }
}
