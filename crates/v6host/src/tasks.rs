//! Application-level tasks a host can run, and their observable outcomes.
//! The paper's figures are reproduced by running these tasks on hosts with
//! different OS profiles and asserting on the outcomes.

use std::net::{IpAddr, Ipv4Addr};
use v6dns::codec::{RType, Record};
use v6dns::name::DnsName;

/// Something the "user" does on a client device.
#[derive(Debug, Clone)]
pub enum AppTask {
    /// Open `http://name/path` in a browser: DNS (A+AAAA) → RFC 6724
    /// ordering → sequential connection attempts → HTTP GET.
    Browse {
        /// Host name to resolve.
        name: DnsName,
        /// Request path.
        path: String,
    },
    /// `ping name`: resolve (AAAA preferred when usable, like the OS ping
    /// in Fig. 7/9) and send one ICMP echo.
    Ping {
        /// Host name to resolve.
        name: DnsName,
    },
    /// `nslookup name`: a raw lookup applying the OS search-list behaviour
    /// (Fig. 9) for one record type.
    Nslookup {
        /// Name as typed.
        name: DnsName,
        /// Query type.
        rtype: RType,
    },
    /// An application hard-coded to an IPv4 literal (Echolink, Fig. 2):
    /// a TCP connect to `addr:port`.
    LiteralV4 {
        /// The literal address.
        addr: Ipv4Addr,
        /// Destination port.
        port: u16,
    },
    /// Reach a host through the VPN policy table (Figs. 8/11); see
    /// [`crate::vpn::VpnConfig`].
    VpnReach {
        /// The (IPv4-literal) service being contacted, e.g. the VTC
        /// provider.
        addr: Ipv4Addr,
        /// Destination port.
        port: u16,
    },
}

/// What happened when a task ran.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskOutcome {
    /// An HTTP exchange completed.
    HttpOk {
        /// Status code.
        status: u16,
        /// Response body.
        body: String,
        /// The address actually connected to (shows whether the poisoned A
        /// or the genuine AAAA won).
        peer: IpAddr,
    },
    /// DNS produced answers (nslookup-style; includes the owner name that
    /// finally answered, exposing search-list artefacts).
    DnsAnswer {
        /// Answer records.
        records: Vec<Record>,
        /// The queried name that was answered.
        answered_name: DnsName,
    },
    /// DNS produced no usable answer (NXDOMAIN across all candidates, or
    /// no reachable resolver).
    DnsFailed,
    /// A ping got its echo reply.
    PingReply {
        /// Peer that answered.
        peer: IpAddr,
    },
    /// All connection attempts failed or timed out.
    Unreachable,
    /// The task could not even start (e.g. IPv4 literal app on a host whose
    /// IPv4 stack is off and that has no CLAT).
    NoRoute,
}

impl TaskOutcome {
    /// Did the user get working access to the thing they asked for?
    pub fn is_success(&self) -> bool {
        matches!(
            self,
            TaskOutcome::HttpOk { .. }
                | TaskOutcome::PingReply { .. }
                | TaskOutcome::DnsAnswer { .. }
        )
    }

    /// The peer address, if the task reached one.
    pub fn peer(&self) -> Option<IpAddr> {
        match self {
            TaskOutcome::HttpOk { peer, .. } | TaskOutcome::PingReply { peer } => Some(*peer),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_classification() {
        assert!(TaskOutcome::HttpOk {
            status: 200,
            body: String::new(),
            peer: "23.153.8.71".parse().unwrap()
        }
        .is_success());
        assert!(!TaskOutcome::Unreachable.is_success());
        assert!(!TaskOutcome::NoRoute.is_success());
        assert_eq!(TaskOutcome::DnsFailed.peer(), None);
    }
}
