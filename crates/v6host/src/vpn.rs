//! The split-tunnel VPN client model (paper Figs. 8 and 11).
//!
//! The paper's VPN clients are configured with **IPv4 literals** in their
//! split-tunnel tables: traffic to the approved VTC provider goes *direct*
//! over IPv4, everything else is hauled through the (IPv4-only) tunnel to
//! the concentrator. Two failure modes follow:
//!
//! * **Fig. 8** — if the testbed further restricts IPv4 internet access, the
//!   direct (split-tunnelled) VTC traffic breaks even though the tunnel
//!   itself might still work.
//! * **Fig. 11** — on SC23v6, a full(er)-tunnel client scored 0/10 on the
//!   test-ipv6.com mirror because all test traffic rode the IPv4-only
//!   tunnel.

use std::net::Ipv4Addr;
use v6addr::prefix::Ipv4Prefix;

/// A VPN client's routing policy.
#[derive(Debug, Clone)]
pub struct VpnConfig {
    /// The concentrator's IPv4 literal.
    pub concentrator: Ipv4Addr,
    /// Destinations that bypass the tunnel (IPv4 literals/prefixes —
    /// "approved VTC platforms").
    pub split_direct: Vec<Ipv4Prefix>,
    /// Does the tunnel carry IPv6? (Argonne's does not, per §VII —
    /// "a large amount of work remains to better support IPv6 on the
    /// Argonne VPN".)
    pub tunnel_carries_v6: bool,
}

impl VpnConfig {
    /// The paper's Argonne-style client: v4-only tunnel, VTC provider
    /// split-tunnelled by literal.
    pub fn argonne(concentrator: Ipv4Addr, vtc: Ipv4Prefix) -> VpnConfig {
        VpnConfig {
            concentrator,
            split_direct: vec![vtc],
            tunnel_carries_v6: false,
        }
    }

    /// Does `dst` bypass the tunnel?
    pub fn goes_direct(&self, dst: Ipv4Addr) -> bool {
        dst == self.concentrator || self.split_direct.iter().any(|p| p.contains(dst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_table_matches_literals() {
        let cfg = VpnConfig::argonne(
            "130.202.228.253".parse().unwrap(),
            "198.51.100.0/24".parse().unwrap(),
        );
        assert!(cfg.goes_direct("198.51.100.14".parse().unwrap()), "VTC");
        assert!(cfg.goes_direct("130.202.228.253".parse().unwrap()), "conc");
        assert!(!cfg.goes_direct("23.153.8.71".parse().unwrap()), "tunneled");
        assert!(!cfg.tunnel_carries_v6);
    }
}
