//! The daemon's virtual clock.
//!
//! The lab daemon never schedules off wall-clock time: recurring sweeps
//! fire on *ticks*, and a tick advances when the daemon completes a
//! job. That makes every schedule decision a pure function of the job
//! history — the property the scheduler tests and the committed soak
//! golden stand on. Each tick maps to a fixed span of simulation time
//! so manifests can talk about "when" in [`SimTime`] terms.

use v6sim::time::SimTime;

/// Simulated span of one scheduler tick (an operator-facing sweep
/// period, not an engine quantum).
pub const TICK_LEN: SimTime = SimTime::from_secs(60);

/// A deterministic tick counter with a fixed [`SimTime`] per tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LabClock {
    tick: u64,
}

impl LabClock {
    /// A clock at tick zero (daemon boot).
    pub fn new() -> LabClock {
        LabClock::default()
    }

    /// The current tick.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// The current virtual instant: `tick × TICK_LEN`.
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.tick * TICK_LEN.as_nanos())
    }

    /// Advance one tick and return the new tick number.
    pub fn advance(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_map_linearly_to_sim_time() {
        let mut clock = LabClock::new();
        assert_eq!(clock.tick(), 0);
        assert_eq!(clock.now(), SimTime::ZERO);
        assert_eq!(clock.advance(), 1);
        assert_eq!(clock.now(), TICK_LEN);
        assert_eq!(clock.advance(), 2);
        assert_eq!(clock.now().as_secs(), 2 * TICK_LEN.as_secs());
    }
}
