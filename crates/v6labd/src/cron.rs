//! Tick-cron: the daemon's recurring-sweep schedule language.
//!
//! Wall-clock cron would make every schedule decision racy; the lab
//! daemon schedules on the virtual tick counter instead (see
//! [`crate::clock::LabClock`]). The dialect is three forms:
//!
//! | spec      | meaning                                   |
//! |-----------|-------------------------------------------|
//! | `@K`      | fire once, at tick `K`                    |
//! | `*/N`     | fire every `N` ticks (at `N`, `2N`, …)    |
//! | `K+*/N`   | fire at `K`, `K+N`, `K+2N`, …             |
//!
//! Parsing and firing are total, pure functions — locked down by
//! property tests in `tests/scheduler.rs`.

use std::fmt;

/// A parsed tick-cron spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CronSpec {
    /// First tick the spec fires at.
    pub offset: u64,
    /// Repeat period; `None` for a one-shot.
    pub period: Option<u64>,
}

impl CronSpec {
    /// Parse the `@K` / `*/N` / `K+*/N` dialect.
    pub fn parse(text: &str) -> Result<CronSpec, String> {
        let text = text.trim();
        let parse_num = |s: &str, what: &str| -> Result<u64, String> {
            s.parse()
                .map_err(|_| format!("cron spec {text:?}: bad {what} {s:?}"))
        };
        if let Some(k) = text.strip_prefix('@') {
            return Ok(CronSpec {
                offset: parse_num(k, "tick")?,
                period: None,
            });
        }
        if let Some(n) = text.strip_prefix("*/") {
            let period = parse_num(n, "period")?;
            if period == 0 {
                return Err(format!("cron spec {text:?}: period must be ≥ 1"));
            }
            return Ok(CronSpec {
                offset: period,
                period: Some(period),
            });
        }
        if let Some((k, rest)) = text.split_once('+') {
            let n = rest
                .strip_prefix("*/")
                .ok_or_else(|| format!("cron spec {text:?}: expected K+*/N"))?;
            let period = parse_num(n, "period")?;
            if period == 0 {
                return Err(format!("cron spec {text:?}: period must be ≥ 1"));
            }
            return Ok(CronSpec {
                offset: parse_num(k, "offset")?,
                period: Some(period),
            });
        }
        Err(format!(
            "cron spec {text:?}: expected \"@K\", \"*/N\", or \"K+*/N\""
        ))
    }

    /// Does the spec fire at `tick`?
    pub fn fires_at(&self, tick: u64) -> bool {
        match self.period {
            None => tick == self.offset,
            Some(p) => tick >= self.offset && (tick - self.offset).is_multiple_of(p),
        }
    }

    /// The first firing tick strictly after `tick`, if any.
    pub fn next_after(&self, tick: u64) -> Option<u64> {
        match self.period {
            None => (self.offset > tick).then_some(self.offset),
            Some(p) => {
                if tick < self.offset {
                    Some(self.offset)
                } else {
                    // Round (tick - offset) down to a multiple of p,
                    // then step one period forward.
                    let elapsed = tick - self.offset;
                    self.offset.checked_add((elapsed / p + 1).checked_mul(p)?)
                }
            }
        }
    }
}

impl fmt::Display for CronSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.period {
            None => write!(f, "@{}", self.offset),
            Some(p) if p == self.offset => write!(f, "*/{p}"),
            Some(p) => write!(f, "{}+*/{p}", self.offset),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_three_forms_parse() {
        assert_eq!(
            CronSpec::parse("@7").unwrap(),
            CronSpec {
                offset: 7,
                period: None
            }
        );
        assert_eq!(
            CronSpec::parse("*/4").unwrap(),
            CronSpec {
                offset: 4,
                period: Some(4)
            }
        );
        assert_eq!(
            CronSpec::parse("2+*/5").unwrap(),
            CronSpec {
                offset: 2,
                period: Some(5)
            }
        );
    }

    #[test]
    fn junk_is_rejected() {
        for bad in ["", "7", "*/0", "2+*/0", "@x", "*/y", "2+3", "1 2"] {
            assert!(CronSpec::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn firing_semantics() {
        let once = CronSpec::parse("@3").unwrap();
        assert!(once.fires_at(3));
        assert!(!once.fires_at(6));
        let every = CronSpec::parse("*/4").unwrap();
        assert!(!every.fires_at(0), "*/N skips boot tick 0");
        assert!(every.fires_at(4) && every.fires_at(8));
        assert!(!every.fires_at(5));
        let offset = CronSpec::parse("2+*/5").unwrap();
        assert!(offset.fires_at(2) && offset.fires_at(7) && offset.fires_at(12));
        assert!(!offset.fires_at(5));
    }

    #[test]
    fn next_after_steps_to_the_following_fire() {
        let spec = CronSpec::parse("2+*/5").unwrap();
        assert_eq!(spec.next_after(0), Some(2));
        assert_eq!(spec.next_after(2), Some(7));
        assert_eq!(spec.next_after(6), Some(7));
        assert_eq!(spec.next_after(7), Some(12));
        let once = CronSpec::parse("@3").unwrap();
        assert_eq!(once.next_after(2), Some(3));
        assert_eq!(once.next_after(3), None);
    }
}
