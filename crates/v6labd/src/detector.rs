//! The incident detector: counter-delta watching between runs.
//!
//! The measurement literature (Hsu et al.; Boswell et al.) shows
//! NAT64/DNS64 deployments degrading *incrementally* in the wild — a
//! lab that only gates on one-shot sweeps misses the slide. The
//! detector holds a baseline manifest per job key (seeded from the
//! committed goldens when available, else the first sighting) and
//! compares every completed run against it field-by-field: `fault.*`
//! drop surges, `dns.timeouts` surges, and portal-census regressions
//! (fewer accurately-counted or intervened clients than the golden
//! promised). Each breach becomes a structured [`Incident`]; repeats of
//! the same (key, field) pair are deduplicated into a count on the
//! first-seen record.

use std::collections::BTreeMap;

use v6report::{Json, RunManifest, SoakIncidentRow};

/// How bad a breach is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Counter moved past the warn threshold.
    Warning,
    /// Counter moved past the critical threshold.
    Critical,
}

impl Severity {
    /// Wire label.
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }
}

/// One detected (and deduplicated) breach.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Incident {
    /// Worst severity seen for this (key, field) pair.
    pub severity: Severity,
    /// Job key the breach was observed under (e.g. `matrix/lossy-uplink`).
    pub key: String,
    /// Manifest field path whose delta tripped the watch.
    pub field: String,
    /// Human-readable explanation with the observed delta.
    pub detail: String,
    /// Virtual tick of the first occurrence.
    pub first_seen_tick: u64,
    /// Occurrences folded into this record.
    pub count: u64,
}

impl Incident {
    /// The soak-manifest row for this incident.
    pub fn to_soak_row(&self) -> SoakIncidentRow {
        SoakIncidentRow {
            severity: self.severity.label().to_string(),
            field: format!("{}:{}", self.key, self.field),
            detail: self.detail.clone(),
            first_seen_tick: self.first_seen_tick,
            count: self.count,
        }
    }

    /// The `GET /incidents` row.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.set("severity", Json::Str(self.severity.label().into()));
        obj.set("key", Json::Str(self.key.clone()));
        obj.set("field", Json::Str(self.field.clone()));
        obj.set("detail", Json::Str(self.detail.clone()));
        obj.set("first_seen_tick", Json::U64(self.first_seen_tick));
        obj.set("count", Json::U64(self.count));
        obj
    }
}

/// Which way a watched counter is allowed to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    /// Breach when the value rises above baseline (drop/timeout counters).
    Surge,
    /// Breach when the value falls below baseline (portal census scores).
    Regression,
}

/// One watched manifest field with its thresholds.
struct Watch {
    path: &'static [&'static str],
    direction: Direction,
    warn: u64,
    crit: u64,
}

/// The watch table for `fleet-matrix` manifests. Thresholds are in
/// absolute counter deltas per run: any movement warns, two orders of
/// magnitude is critical.
const WATCHES: &[Watch] = &[
    Watch {
        path: &["metrics", "fault", "dropped"],
        direction: Direction::Surge,
        warn: 1,
        crit: 100,
    },
    Watch {
        path: &["metrics", "fault", "outage_dropped"],
        direction: Direction::Surge,
        warn: 1,
        crit: 100,
    },
    Watch {
        path: &["census", "fleet", "accurate_v6only"],
        direction: Direction::Regression,
        warn: 1,
        crit: 10,
    },
    Watch {
        path: &["census", "fleet", "intervened"],
        direction: Direction::Regression,
        warn: 1,
        crit: 10,
    },
];

/// Path label for the fleet-wide `dns.timeouts` sum (a computed field:
/// the manifest stores it per node).
const DNS_TIMEOUTS_FIELD: &str = "metrics.nodes.*.device.dns.timeouts";

fn u64_at(v: &Json, path: &[&str]) -> u64 {
    v.get_path(path)
        .and_then(Json::as_number)
        .map(|n| n as u64)
        .unwrap_or(0)
}

/// Sum `dns.timeouts` device counters across every node row.
fn dns_timeouts(manifest: &Json) -> u64 {
    let Some(Json::Obj(nodes)) = manifest.get_path(&["metrics", "nodes"]) else {
        return 0;
    };
    nodes
        .values()
        .map(|row| u64_at(row, &["device", "dns.timeouts"]))
        .sum()
}

/// The detector: per-key baselines plus the deduplicated incident log.
#[derive(Default)]
pub struct Detector {
    baselines: BTreeMap<String, Json>,
    incidents: Vec<Incident>,
}

impl Detector {
    /// An empty detector (no baselines, no incidents).
    pub fn new() -> Detector {
        Detector::default()
    }

    /// Install `manifest` as the baseline for `key` — typically a
    /// committed golden, so regressions are measured against what the
    /// repo promises rather than whatever ran first.
    pub fn set_baseline(&mut self, key: &str, manifest: &RunManifest) {
        self.baselines
            .insert(key.to_string(), manifest.json().clone());
    }

    /// Is a baseline installed for `key`?
    pub fn has_baseline(&self, key: &str) -> bool {
        self.baselines.contains_key(key)
    }

    /// Compare a completed run against `key`'s baseline, recording any
    /// breaches. The first sighting of a key becomes its baseline and
    /// raises nothing. Returns how many incidents this observation
    /// raised or re-raised.
    pub fn observe(&mut self, key: &str, manifest: &RunManifest, tick: u64) -> usize {
        let current = manifest.json();
        let Some(baseline) = self.baselines.get(key).cloned() else {
            self.set_baseline(key, manifest);
            return 0;
        };
        let baseline = &baseline;

        let mut raised = 0;
        for w in WATCHES {
            let base = u64_at(baseline, w.path);
            let now = u64_at(current, w.path);
            let (delta, moved) = match w.direction {
                Direction::Surge => (now.saturating_sub(base), "rose"),
                Direction::Regression => (base.saturating_sub(now), "fell"),
            };
            if delta < w.warn {
                continue;
            }
            let severity = if delta >= w.crit {
                Severity::Critical
            } else {
                Severity::Warning
            };
            let field = w.path.join(".");
            let detail = format!("{field} {moved} by {delta} vs baseline ({base} → {now})");
            self.record(key, &field, severity, detail, tick);
            raised += 1;
        }

        let base = dns_timeouts(baseline);
        let now = dns_timeouts(current);
        let delta = now.saturating_sub(base);
        if delta >= 1 {
            let severity = if delta >= 100 {
                Severity::Critical
            } else {
                Severity::Warning
            };
            let detail = format!("fleet dns.timeouts rose by {delta} vs baseline ({base} → {now})");
            self.record(key, DNS_TIMEOUTS_FIELD, severity, detail, tick);
            raised += 1;
        }
        raised
    }

    /// Dedup by (key, field): repeats bump the count and keep the
    /// first-seen tick; severity only ever escalates.
    fn record(&mut self, key: &str, field: &str, severity: Severity, detail: String, tick: u64) {
        if let Some(existing) = self
            .incidents
            .iter_mut()
            .find(|i| i.key == key && i.field == field)
        {
            existing.count += 1;
            existing.severity = existing.severity.max(severity);
            existing.detail = detail;
            return;
        }
        self.incidents.push(Incident {
            severity,
            key: key.to_string(),
            field: field.to_string(),
            detail,
            first_seen_tick: tick,
            count: 1,
        });
    }

    /// Every incident, in first-seen order.
    pub fn incidents(&self) -> &[Incident] {
        &self.incidents
    }

    /// The `GET /incidents` body.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.set(
            "incidents",
            Json::Arr(self.incidents.iter().map(Incident::to_json).collect()),
        );
        obj
    }
}
