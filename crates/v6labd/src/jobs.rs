//! The job subsystem: what the daemon runs and how it records it.
//!
//! A [`JobSpec`] is the wire form of one unit of work — a 66-cell
//! scenario matrix under one fault regime, or a sampled population
//! census. Executing a job always produces a canonical
//! [`RunManifest`], built by exactly the same code path the batch
//! tools use ([`RunManifest::from_fleet`] /
//! [`RunManifest::from_population`]) — which is why a manifest fetched
//! from `GET /jobs/:id/manifest` is byte-identical to one emitted by
//! `v6report emit` for the same spec.

use v6fleet::{FleetObserver, FleetRunner, PopulationSpec};
use v6report::{Json, MatrixSpec, RunManifest, CANONICAL_BASE_SEED};
use v6testbed::scenario::FaultVariant;

/// Default shard count for population jobs (matches the canonical
/// manifest tooling; the report is shard-invariant either way).
pub const DEFAULT_POPULATION_SHARDS: usize = 8;

/// One unit of daemon work, as submitted over `POST /jobs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobSpec {
    /// The full 66-cell scenario matrix under one fault regime.
    Matrix {
        /// Seed the matrix derives per-cell seeds from.
        base_seed: u64,
        /// Fault regime every cell runs under.
        fault: FaultVariant,
    },
    /// A sampled population census (paper-default mix).
    Population {
        /// Master sampling seed.
        seed: u64,
        /// Cells to sample.
        size: u64,
        /// Work-queue shards (report-invariant).
        shards: usize,
        /// Milliseconds to dwell after each shard — an operator
        /// throttle so a background census doesn't monopolise the
        /// pool. Virtual time is untouched, so the manifest is
        /// identical at any pace.
        pace_ms: u64,
    },
}

fn fault_by_label(label: &str) -> Option<FaultVariant> {
    FaultVariant::ALL.into_iter().find(|f| f.label() == label)
}

fn get_u64(v: &Json, key: &str, default: u64) -> Result<u64, String> {
    match v.get(key) {
        None => Ok(default),
        Some(Json::U64(n)) => Ok(*n),
        Some(other) => Err(format!(
            "field {key:?}: expected a non-negative integer, got {other:?}"
        )),
    }
}

impl JobSpec {
    /// Parse a `POST /jobs` body. `kind` selects the job; everything
    /// else has canonical defaults:
    ///
    /// * `{"kind":"matrix","fault":"lossy-uplink","base_seed":…}`
    /// * `{"kind":"population","size":…,"seed":…,"shards":…,"pace_ms":…}`
    pub fn parse(body: &str) -> Result<JobSpec, String> {
        let v = Json::parse(body).map_err(|e| format!("job body: {e}"))?;
        let kind = match v.get("kind") {
            Some(Json::Str(s)) => s.clone(),
            _ => return Err("job body: missing string field \"kind\"".into()),
        };
        match kind.as_str() {
            "matrix" => {
                let fault = match v.get("fault") {
                    None => FaultVariant::Clean,
                    Some(Json::Str(label)) => fault_by_label(label)
                        .ok_or_else(|| format!("unknown fault variant {label:?}"))?,
                    Some(other) => {
                        return Err(format!("field \"fault\": expected a string, got {other:?}"))
                    }
                };
                Ok(JobSpec::Matrix {
                    base_seed: get_u64(&v, "base_seed", CANONICAL_BASE_SEED)?,
                    fault,
                })
            }
            "population" => {
                let size = get_u64(&v, "size", 0)?;
                if size == 0 {
                    return Err("population job: missing or zero \"size\"".into());
                }
                let shards = get_u64(&v, "shards", DEFAULT_POPULATION_SHARDS as u64)?;
                if shards == 0 {
                    return Err("population job: \"shards\" must be ≥ 1".into());
                }
                Ok(JobSpec::Population {
                    seed: get_u64(&v, "seed", CANONICAL_BASE_SEED)?,
                    size,
                    shards: shards as usize,
                    pace_ms: get_u64(&v, "pace_ms", 0)?,
                })
            }
            other => Err(format!("unknown job kind {other:?}")),
        }
    }

    /// The job's kind label (`matrix` / `population`).
    pub fn kind(&self) -> &'static str {
        match self {
            JobSpec::Matrix { .. } => "matrix",
            JobSpec::Population { .. } => "population",
        }
    }

    /// Human label: the fault variant, or `population/<size>`.
    pub fn label(&self) -> String {
        match self {
            JobSpec::Matrix { fault, .. } => fault.label().to_string(),
            JobSpec::Population { size, .. } => format!("population/{size}"),
        }
    }

    /// Cells the job will execute.
    pub fn cells(&self) -> u64 {
        match self {
            JobSpec::Matrix { base_seed, fault } => MatrixSpec {
                base_seed: *base_seed,
                fault: *fault,
            }
            .scenarios()
            .len() as u64,
            JobSpec::Population { size, .. } => *size,
        }
    }

    /// The spec echoed back as JSON (for `GET /jobs/:id`).
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.set("kind", Json::Str(self.kind().into()));
        match self {
            JobSpec::Matrix { base_seed, fault } => {
                obj.set("base_seed", Json::U64(*base_seed));
                obj.set("fault", Json::Str(fault.label().into()));
            }
            JobSpec::Population {
                seed,
                size,
                shards,
                pace_ms,
            } => {
                obj.set("seed", Json::U64(*seed));
                obj.set("size", Json::U64(*size));
                obj.set("shards", Json::U64(*shards as u64));
                obj.set("pace_ms", Json::U64(*pace_ms));
            }
        }
        obj
    }

    /// Execute the job on `runner`, streaming progress into `observer`,
    /// and build its canonical manifest.
    pub fn execute(&self, runner: &FleetRunner, observer: &dyn FleetObserver) -> RunManifest {
        match self {
            JobSpec::Matrix { base_seed, fault } => {
                let spec = MatrixSpec {
                    base_seed: *base_seed,
                    fault: *fault,
                };
                let scenarios = spec.scenarios();
                let run = runner.run_observed(&scenarios, observer);
                RunManifest::from_fleet(&spec, &scenarios, &run.report)
            }
            JobSpec::Population {
                seed, size, shards, ..
            } => {
                let spec = PopulationSpec::paper_default(*seed, *size);
                let run = runner.run_population_observed(&spec, *shards, observer);
                RunManifest::from_population(&spec, &run.report)
            }
        }
    }
}

/// Lifecycle of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, waiting for the worker.
    Queued,
    /// Executing on the pool.
    Running,
    /// Finished; manifest stored.
    Done,
}

impl JobStatus {
    /// Wire label.
    pub fn label(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
        }
    }
}

/// One job's full daemon-side record.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Daemon-assigned id (submission order, starting at 1).
    pub id: u64,
    /// What was asked for.
    pub spec: JobSpec,
    /// Where it is in its lifecycle.
    pub status: JobStatus,
    /// Virtual tick at submission.
    pub submitted_tick: u64,
    /// Virtual tick at completion.
    pub completed_tick: Option<u64>,
    /// The canonical result (once done).
    pub manifest: Option<RunManifest>,
}

impl JobRecord {
    /// The `GET /jobs/:id` body.
    pub fn status_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.set("id", Json::U64(self.id));
        obj.set("status", Json::Str(self.status.label().into()));
        obj.set("spec", self.spec.to_json());
        obj.set("submitted_tick", Json::U64(self.submitted_tick));
        obj.set(
            "completed_tick",
            match self.completed_tick {
                Some(t) => Json::U64(t),
                None => Json::Null,
            },
        );
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_bodies_parse_with_defaults() {
        let job = JobSpec::parse(r#"{"kind":"matrix"}"#).unwrap();
        assert_eq!(
            job,
            JobSpec::Matrix {
                base_seed: CANONICAL_BASE_SEED,
                fault: FaultVariant::Clean
            }
        );
        assert_eq!(job.cells(), 66);
        let job =
            JobSpec::parse(r#"{"kind":"matrix","fault":"lossy-uplink","base_seed":9}"#).unwrap();
        assert_eq!(job.label(), "lossy-uplink");
        assert_eq!(job.kind(), "matrix");
    }

    #[test]
    fn population_bodies_parse_and_validate() {
        let job = JobSpec::parse(r#"{"kind":"population","size":500}"#).unwrap();
        assert_eq!(
            job,
            JobSpec::Population {
                seed: CANONICAL_BASE_SEED,
                size: 500,
                shards: DEFAULT_POPULATION_SHARDS,
                pace_ms: 0
            }
        );
        assert!(JobSpec::parse(r#"{"kind":"population"}"#).is_err());
        assert!(JobSpec::parse(r#"{"kind":"population","size":5,"shards":0}"#).is_err());
        assert!(JobSpec::parse(r#"{"kind":"matrix","fault":"no-such"}"#).is_err());
        assert!(JobSpec::parse(r#"{"kind":"mystery"}"#).is_err());
        assert!(JobSpec::parse("not json").is_err());
    }

    #[test]
    fn spec_roundtrips_through_status_json() {
        let spec = JobSpec::parse(r#"{"kind":"population","size":64,"pace_ms":3}"#).unwrap();
        let record = JobRecord {
            id: 2,
            spec,
            status: JobStatus::Queued,
            submitted_tick: 0,
            completed_tick: None,
            manifest: None,
        };
        let body = record.status_json().canonical();
        let reparsed =
            JobSpec::parse(&Json::parse(&body).unwrap().get("spec").unwrap().canonical()).unwrap();
        assert_eq!(reparsed, spec);
    }
}
