//! # v6labd — the long-lived IPv6-only lab daemon
//!
//! The paper's testbed is operated as a *service*: an always-on
//! IPv6-only lab that clients join and operators watch. This crate is
//! that production pivot for the reproduction — a daemon that owns a
//! [`v6fleet::FleetRunner`] worker pool and exposes a small hand-rolled
//! HTTP/1.1 JSON API over `std::net::TcpListener` (the workspace builds
//! offline; the wire subset comes from [`v6portal::http`]).
//!
//! * [`jobs`] — submit scenario-matrix or population jobs
//!   (`POST /jobs`); results are canonical [`v6report::RunManifest`]s,
//!   byte-identical to the batch tooling's output for the same spec.
//! * [`state`] — the streaming side: the worker publishes per-scenario
//!   results and per-shard census sketches into a live accumulator
//!   *while a job runs*, and `GET /metrics` snapshots it without
//!   stopping the stream (the non-consuming
//!   [`v6fleet::CensusSketch::snapshot`] API).
//! * [`cron`] / [`scheduler`] / [`clock`] — recurring sweeps on a
//!   virtual tick clock (a tick per completed job), so schedules are
//!   deterministic and testable to the byte.
//! * [`detector`] — counter-delta watching between runs: `fault.*`
//!   drop surges, `dns.timeouts`, portal-census regressions vs the
//!   committed goldens, deduplicated into structured [`detector::Incident`]
//!   records at `GET /incidents`.
//! * [`soak`] — a scripted daemon lifetime under the virtual clock,
//!   summarised as the committed `soak` manifest
//!   (`reports/soak_smoke.json`).
//! * [`portal`] — the portal-scoring HTTP path (`GET /portal`) the
//!   `load_gen` example hammers.

#![warn(missing_docs)]

pub mod clock;
pub mod cron;
pub mod detector;
pub mod jobs;
pub mod portal;
pub mod scheduler;
pub mod server;
pub mod soak;
pub mod state;

pub use clock::LabClock;
pub use cron::CronSpec;
pub use detector::{Detector, Incident, Severity};
pub use jobs::{JobRecord, JobSpec, JobStatus};
pub use scheduler::{CronEntry, Scheduler};
pub use server::{serve, LabServer, ServerConfig};
pub use soak::{run_soak, smoke_manifest, SoakConfig};
pub use state::{LabState, LiveMetrics, LiveObserver};
