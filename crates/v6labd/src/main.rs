//! The `v6labd` binary.
//!
//! ```text
//! v6labd serve [--port N] [--threads N] [--workers N] [--cron NAME:SPEC:JOB]...
//!                                           run the daemon (SIGTERM stops it)
//! v6labd soak [--write PATH]                run the smoke soak, print its manifest
//! v6labd get <addr> <path>                  one-shot HTTP GET (smoke-script client)
//! v6labd post <addr> <path> <body>          one-shot HTTP POST
//! v6labd submit <addr> <job-json>           submit a job, poll to done, print manifest
//! ```
//!
//! `--cron` is repeatable and registers a recurring schedule before the
//! first job runs: `NAME` is the operator-facing entry name, `SPEC` the
//! tick-cron dialect (`@K`, `*/N`, `K+*/N`), and `JOB` the same JSON a
//! `POST /jobs` body uses (which may itself contain colons — the value
//! splits on the first two only).
//!
//! The `get`/`post`/`submit` client subcommands exist so the CI smoke
//! script needs no curl/jq — the repo stays dependency-free offline.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Duration;

use v6labd::{serve, CronEntry, CronSpec, JobSpec, ServerConfig};
use v6portal::http::{HttpRequest, HttpResponse};
use v6report::Json;

fn usage() -> ExitCode {
    eprintln!(
        "usage: v6labd serve [--port N] [--threads N] [--workers N] [--cron NAME:SPEC:JOB]...\n\
        \x20      v6labd soak [--write PATH]\n\
        \x20      v6labd get <addr> <path>\n\
        \x20      v6labd post <addr> <path> <body>\n\
        \x20      v6labd submit <addr> <job-json>"
    );
    ExitCode::FAILURE
}

/// Parse one `--cron` value: `NAME:SPEC:JOB`, where `JOB` is the same
/// JSON a `POST /jobs` body uses. Splits on the first two colons only
/// (neither `NAME` nor the tick-cron `SPEC` dialect contains one, and
/// the job JSON legitimately might).
fn parse_cron_entry(raw: &str) -> Result<CronEntry, String> {
    let mut parts = raw.splitn(3, ':');
    let (Some(name), Some(spec), Some(job)) = (parts.next(), parts.next(), parts.next()) else {
        return Err(format!("--cron {raw:?}: expected NAME:SPEC:JOB"));
    };
    if name.is_empty() {
        return Err(format!("--cron {raw:?}: empty entry name"));
    }
    Ok(CronEntry {
        name: name.to_string(),
        spec: CronSpec::parse(spec)?,
        job: JobSpec::parse(job)?,
    })
}

/// Every occurrence of a repeatable flag's value, in order.
fn parse_repeated_flag(args: &[String], flag: &str) -> Vec<String> {
    args.windows(2)
        .filter(|w| w[0] == flag)
        .map(|w| w[1].clone())
        .collect()
}

fn request(addr: &str, wire: &str) -> Result<HttpResponse, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(wire.as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("recv: {e}"))?;
    HttpResponse::parse(&raw).ok_or_else(|| "malformed response".to_string())
}

fn get(addr: &str, path: &str) -> Result<HttpResponse, String> {
    request(addr, &HttpRequest::format_get("v6labd", path))
}

fn post(addr: &str, path: &str, body: &str) -> Result<HttpResponse, String> {
    request(addr, &HttpRequest::format_post("v6labd", path, body))
}

/// Submit a job, poll its status to `done`, print the manifest.
fn submit(addr: &str, body: &str) -> Result<(), String> {
    let resp = post(addr, "/jobs", body)?;
    if resp.status != 202 {
        return Err(format!("submit failed ({}): {}", resp.status, resp.body));
    }
    let parsed = Json::parse(&resp.body).map_err(|e| format!("submit response: {e}"))?;
    let Some(Json::U64(id)) = parsed.get("id") else {
        return Err(format!("submit response missing id: {}", resp.body));
    };
    let status_path = format!("/jobs/{id}");
    loop {
        let resp = get(addr, &status_path)?;
        let parsed = Json::parse(&resp.body).map_err(|e| format!("status response: {e}"))?;
        match parsed.get("status") {
            Some(Json::Str(s)) if s == "done" => break,
            Some(Json::Str(_)) => std::thread::sleep(Duration::from_millis(100)),
            _ => return Err(format!("bad status response: {}", resp.body)),
        }
    }
    let resp = get(addr, &format!("/jobs/{id}/manifest"))?;
    if resp.status != 200 {
        return Err(format!("manifest fetch failed ({})", resp.status));
    }
    print!("{}", resp.body);
    Ok(())
}

fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        return usage();
    };
    match command {
        "serve" => {
            let port = parse_flag(&args, "--port")
                .map(|p| p.parse().expect("--port takes a number"))
                .unwrap_or(0);
            let threads = parse_flag(&args, "--threads")
                .map(|t| t.parse().expect("--threads takes a number"))
                .unwrap_or(2);
            let workers = parse_flag(&args, "--workers")
                .map(|w| w.parse().expect("--workers takes a number"))
                .unwrap_or(1);
            let mut cron = Vec::new();
            for raw in parse_repeated_flag(&args, "--cron") {
                match parse_cron_entry(&raw) {
                    Ok(entry) => {
                        println!(
                            "v6labd: cron {:?} ({}) registered: {}",
                            entry.name,
                            entry.spec,
                            entry.job.label()
                        );
                        cron.push(entry);
                    }
                    Err(e) => {
                        eprintln!("v6labd: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            match serve(ServerConfig {
                port,
                threads,
                workers,
                cron,
            }) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("v6labd: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "soak" => {
            let manifest = v6labd::smoke_manifest();
            let text = manifest.canonical();
            if let Some(path) = parse_flag(&args, "--write") {
                if let Err(e) = std::fs::write(&path, &text) {
                    eprintln!("v6labd: write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("v6labd: wrote {path}");
            } else {
                print!("{text}");
            }
            ExitCode::SUCCESS
        }
        "get" | "post" | "submit" => {
            let Some(addr) = args.get(1) else {
                return usage();
            };
            let result = match command {
                "get" => {
                    let Some(path) = args.get(2) else {
                        return usage();
                    };
                    get(addr, path)
                        .map(|r| {
                            println!("{}", r.body);
                            if r.status < 400 {
                                Ok(())
                            } else {
                                Err(format!("HTTP {}", r.status))
                            }
                        })
                        .and_then(|r| r)
                }
                "post" => {
                    let (Some(path), Some(body)) = (args.get(2), args.get(3)) else {
                        return usage();
                    };
                    post(addr, path, body)
                        .map(|r| {
                            println!("{}", r.body);
                            if r.status < 400 {
                                Ok(())
                            } else {
                                Err(format!("HTTP {}", r.status))
                            }
                        })
                        .and_then(|r| r)
                }
                _ => {
                    let Some(body) = args.get(2) else {
                        return usage();
                    };
                    submit(addr, body)
                }
            };
            match result {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("v6labd: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
