//! `GET /portal?client=N` — the daemon's portal-scoring path.
//!
//! Serves the same scoring logic the testbed's explanation portal runs
//! (`v6portal::scoring`), over a deterministic synthetic client: `N`
//! seeds a tiny PRNG that places the client in one of the paper's five
//! observable classes (RFC 8925 v6-only, dual-stack, poisoned
//! IPv4-only, VPN-blackholed, MTU-broken), and the response carries
//! both the legacy and the RFC 8925-aware score so a load generator can
//! watch the Fig. 5 disagreement rate while hammering the endpoint.

use std::net::IpAddr;

use v6portal::scoring::{score_legacy, score_rfc8925_aware, ConnInfo, Score, SubtestResults};
use v6report::Json;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn v6(status: u16) -> Option<ConnInfo> {
    let peer: IpAddr = "64:ff9b::17:9947".parse().expect("literal");
    Some(ConnInfo { peer, status })
}

fn v4(status: u16) -> Option<ConnInfo> {
    let peer: IpAddr = "23.153.8.71".parse().expect("literal");
    Some(ConnInfo { peer, status })
}

/// The five client classes a `client` index can land in.
fn synth_client(client: u64) -> (&'static str, SubtestResults) {
    match splitmix64(client) % 5 {
        0 => (
            "rfc8925-v6only",
            SubtestResults {
                dual_stack: v6(200),
                v4_only: v6(200), // via NAT64 — served over v6
                v6_only: v6(200),
                v6_mtu: v6(200),
                client_v4_stack_off: true,
            },
        ),
        1 => (
            "dual-stack",
            SubtestResults {
                dual_stack: v6(200),
                v4_only: v4(200),
                v6_only: v6(200),
                v6_mtu: v6(200),
                client_v4_stack_off: false,
            },
        ),
        2 => (
            // Fig. 5: wildcard-A poisoning hijacks every hostname to v4.
            "poisoned-v4only",
            SubtestResults {
                dual_stack: v4(200),
                v4_only: v4(200),
                v6_only: v4(200),
                v6_mtu: v4(200),
                client_v4_stack_off: false,
            },
        ),
        3 => ("vpn-blackhole", SubtestResults::default()),
        _ => (
            "mtu-broken",
            SubtestResults {
                dual_stack: v6(200),
                v4_only: v6(200),
                v6_only: v6(200),
                v6_mtu: None,
                client_v4_stack_off: true,
            },
        ),
    }
}

fn score_json(s: &Score) -> Json {
    let mut obj = Json::obj();
    obj.set("points", Json::U64(u64::from(s.points)));
    obj.set("verdict", Json::Str(s.verdict.clone()));
    obj
}

/// Handle `/portal[?client=N]`.
pub fn handle(path: &str) -> (u16, String) {
    let client = path
        .split_once('?')
        .and_then(|(_, query)| query.split('&').find_map(|kv| kv.strip_prefix("client=")))
        .map(str::parse::<u64>)
        .unwrap_or(Ok(0));
    let Ok(client) = client else {
        let mut obj = Json::obj();
        obj.set("error", Json::Str("bad client index".into()));
        return (400, obj.canonical());
    };
    let (class, results) = synth_client(client);
    let legacy = score_legacy(&results);
    let aware = score_rfc8925_aware(&results);
    let mut obj = Json::obj();
    obj.set("client", Json::U64(client));
    obj.set("class", Json::Str(class.into()));
    obj.set("legacy", score_json(&legacy));
    obj.set("rfc8925_aware", score_json(&aware));
    obj.set(
        "fig5_disagreement",
        Json::Bool(legacy.points == 10 && aware.points == 0),
    );
    (200, obj.canonical())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn responses_are_deterministic_and_cover_the_fig5_defect() {
        // Same client index → same body.
        assert_eq!(handle("/portal?client=7"), handle("/portal?client=7"));
        // Some client in a small range lands in the poisoned class and
        // exhibits the legacy-10 / aware-0 disagreement.
        let poisoned = (0..16).find(|i| {
            let (_status, body) = handle(&format!("/portal?client={i}"));
            let v = Json::parse(&body).expect("portal body is canonical JSON");
            matches!(v.get("fig5_disagreement"), Some(Json::Bool(true)))
        });
        assert!(poisoned.is_some(), "no poisoned client in 0..16");
        // Bad input is rejected, missing param defaults to client 0.
        assert_eq!(handle("/portal?client=x").0, 400);
        assert_eq!(handle("/portal").0, 200);
    }
}
