//! The recurring-sweep scheduler: cron entries over the virtual clock.
//!
//! Each entry pairs a [`CronSpec`] with the [`JobSpec`] to enqueue when
//! it fires. The scheduler owns a [`LabClock`]; advancing it one tick
//! returns every entry due at the new tick, in registration order — so
//! a soak's entire job sequence is a pure function of its entry table,
//! which is what lets `reports/soak_smoke.json` be committed byte-exact.

use crate::clock::LabClock;
use crate::cron::CronSpec;
use crate::jobs::JobSpec;

/// One recurring (or one-shot) schedule entry.
#[derive(Debug, Clone)]
pub struct CronEntry {
    /// Operator-facing name, echoed in logs and job labels.
    pub name: String,
    /// When it fires.
    pub spec: CronSpec,
    /// What it enqueues.
    pub job: JobSpec,
}

/// The deterministic scheduler.
#[derive(Debug, Clone, Default)]
pub struct Scheduler {
    entries: Vec<CronEntry>,
    clock: LabClock,
}

impl Scheduler {
    /// An empty scheduler at tick zero.
    pub fn new() -> Scheduler {
        Scheduler::default()
    }

    /// Register an entry. Entries firing on the same tick run in
    /// registration order.
    pub fn add(&mut self, name: &str, spec: CronSpec, job: JobSpec) {
        self.entries.push(CronEntry {
            name: name.to_string(),
            spec,
            job,
        });
    }

    /// The current tick.
    pub fn tick(&self) -> u64 {
        self.clock.tick()
    }

    /// The registered entries.
    pub fn entries(&self) -> &[CronEntry] {
        &self.entries
    }

    /// Advance the clock one tick and return every entry due at the new
    /// tick, in registration order.
    pub fn advance(&mut self) -> Vec<CronEntry> {
        let tick = self.clock.advance();
        self.entries
            .iter()
            .filter(|e| e.spec.fires_at(tick))
            .cloned()
            .collect()
    }

    /// The next tick strictly after the current one at which *any*
    /// entry fires — `None` once every entry is exhausted (all
    /// one-shots in the past).
    pub fn next_fire(&self) -> Option<u64> {
        self.entries
            .iter()
            .filter_map(|e| e.spec.next_after(self.clock.tick()))
            .min()
    }
}
