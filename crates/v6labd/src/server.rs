//! The daemon's HTTP/1.1 server and worker loop.
//!
//! Hand-rolled over `std::net::TcpListener` — the workspace builds
//! offline, so no async runtime or HTTP crate. One request per
//! connection (the `v6portal` wire subset), a pool of worker threads
//! executing jobs off a shared condvar queue (each worker budgeted a
//! slice of the simulation threads), and a non-blocking accept loop
//! that polls the shutdown flag so SIGTERM lands between connections.
//!
//! | route                    | method | body                                   |
//! |--------------------------|--------|----------------------------------------|
//! | `/health`                | GET    | `{"ok":true,"tick":…}`                 |
//! | `/jobs`                  | POST   | job spec in, `{"id":…}` out (202)      |
//! | `/jobs/:id`              | GET    | job status                             |
//! | `/jobs/:id/manifest`     | GET    | canonical manifest (404 until done)    |
//! | `/metrics`               | GET    | live fleet + population snapshot       |
//! | `/incidents`             | GET    | detector log                           |
//! | `/portal`                | GET    | portal scoring path (`?client=N`)      |
//! | `/shutdown`              | POST   | graceful stop                          |

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use v6fleet::FleetRunner;
use v6portal::http::{format_response, HttpRequest};
use v6report::Json;

use crate::jobs::{JobSpec, JobStatus};
use crate::portal;
use crate::state::{LabState, LiveObserver};

/// Process-wide SIGTERM latch (signal handlers can only touch statics).
static SIGTERM: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_sigterm_handler() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_term(_sig: i32) {
        SIGTERM.store(true, Ordering::SeqCst);
    }
    const SIGTERM_NUM: i32 = 15;
    unsafe {
        signal(SIGTERM_NUM, on_term as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_sigterm_handler() {}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Port to bind on 127.0.0.1 (0 picks an ephemeral port).
    pub port: u16,
    /// Total simulation-thread budget shared by concurrent jobs.
    pub threads: usize,
    /// Job-execution worker threads draining the queue: up to this many
    /// jobs run concurrently, each with a `threads / workers` (min 1)
    /// slice of the simulation budget.
    pub workers: usize,
    /// Cron entries registered before the first job runs — the serve
    /// flag `--cron NAME:SPEC:JOB` lands here.
    pub cron: Vec<crate::scheduler::CronEntry>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            port: 0,
            threads: 2,
            workers: 1,
            cron: Vec::new(),
        }
    }
}

/// A running daemon: bound address, shared state, and the join handles
/// needed for a graceful stop.
pub struct LabServer {
    /// The address actually bound (resolves port 0).
    pub addr: std::net::SocketAddr,
    /// Shared daemon state.
    pub state: Arc<LabState>,
    accept_handle: std::thread::JoinHandle<()>,
    worker_handles: Vec<std::thread::JoinHandle<()>>,
}

impl LabServer {
    /// Bind, spawn the worker pool and accept thread, and return. The
    /// daemon is ready for requests when this returns.
    pub fn start(config: ServerConfig) -> std::io::Result<LabServer> {
        let listener = TcpListener::bind(("127.0.0.1", config.port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let state = LabState::new(config.threads.max(1), config.workers.max(1));
        {
            let mut scheduler = state.scheduler.lock().expect("scheduler lock");
            for entry in &config.cron {
                scheduler.add(&entry.name, entry.spec, entry.job);
            }
        }

        let worker_handles = (0..config.workers.max(1))
            .map(|_| {
                let worker_state = Arc::clone(&state);
                std::thread::spawn(move || worker_loop(&worker_state))
            })
            .collect();

        let accept_state = Arc::clone(&state);
        let accept_handle = std::thread::spawn(move || accept_loop(listener, &accept_state));

        Ok(LabServer {
            addr,
            state,
            accept_handle,
            worker_handles,
        })
    }

    /// Block until shutdown (SIGTERM or `POST /shutdown`) completes.
    pub fn join(self) {
        let _ = self.accept_handle.join();
        for handle in self.worker_handles {
            let _ = handle.join();
        }
    }

    /// Ask the daemon to stop and wait for both threads.
    pub fn stop(self) {
        self.state.begin_shutdown();
        self.join();
    }
}

/// Run a daemon in the foreground until SIGTERM / `POST /shutdown`.
pub fn serve(config: ServerConfig) -> std::io::Result<()> {
    install_sigterm_handler();
    let server = LabServer::start(config)?;
    // The smoke script greps this exact line for the bound port.
    println!("v6labd: listening on {}", server.addr);
    server.join();
    println!("v6labd: graceful shutdown complete");
    Ok(())
}

fn accept_loop(listener: TcpListener, state: &Arc<LabState>) {
    loop {
        if SIGTERM.load(Ordering::SeqCst) {
            state.begin_shutdown();
        }
        if state.shutting_down() {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = handle_connection(stream, state);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

/// Jobs run here, off the shared condvar queue. Every worker in the
/// pool runs this loop; each holds a `threads / workers` (min 1) slice
/// of the simulation-thread budget, so concurrent jobs never
/// oversubscribe the configured total. Each job completion advances the
/// virtual clock one tick, fires any due cron entries, and feeds the
/// detector.
fn worker_loop(state: &Arc<LabState>) {
    let budget = (state.threads / state.workers).max(1);
    let runner = FleetRunner::new(budget);
    loop {
        let id = {
            let mut queue = state.queue.lock().expect("queue lock");
            loop {
                if let Some(id) = queue.pop_front() {
                    break id;
                }
                if state.shutting_down() {
                    return;
                }
                queue = state
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(50))
                    .expect("queue lock")
                    .0;
            }
        };
        run_one_job(state, &runner, id);
        if state.shutting_down() {
            return;
        }
    }
}

fn run_one_job(state: &Arc<LabState>, runner: &FleetRunner, id: u64) {
    let spec = {
        let mut jobs = state.jobs.lock().expect("jobs lock");
        let job = &mut jobs[(id - 1) as usize];
        job.status = JobStatus::Running;
        job.spec
    };
    let pace_ms = match spec {
        JobSpec::Population { pace_ms, .. } => pace_ms,
        JobSpec::Matrix { .. } => 0,
    };
    let observer = LiveObserver::new(state, pace_ms);
    let manifest = spec.execute(runner, &observer);

    // Completion advances the virtual clock; cron entries due at the
    // new tick enqueue before the next job is picked up.
    let (tick, due) = {
        let mut scheduler = state.scheduler.lock().expect("scheduler lock");
        let due = scheduler.advance();
        (scheduler.tick(), due)
    };

    let key = format!("{}/{}", spec.kind(), spec.label());
    let raised = state
        .detector
        .lock()
        .expect("detector lock")
        .observe(&key, &manifest, tick);
    if raised > 0 {
        println!("v6labd: job {id} ({key}) raised {raised} incident(s) at tick {tick}");
    }

    {
        let mut jobs = state.jobs.lock().expect("jobs lock");
        let job = &mut jobs[(id - 1) as usize];
        job.status = JobStatus::Done;
        job.completed_tick = Some(tick);
        job.manifest = Some(manifest);
    }

    for entry in due {
        let id = state.submit(entry.job);
        println!(
            "v6labd: cron {:?} ({}) fired at tick {tick}: job {id}",
            entry.name, entry.spec
        );
    }
}

fn handle_connection(mut stream: TcpStream, state: &Arc<LabState>) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut raw = Vec::new();
    let mut buf = [0u8; 4096];
    let request = loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            // Peer closed before a full request arrived.
            match HttpRequest::parse(&raw) {
                Some(req) => break req,
                None => return Ok(()),
            }
        }
        raw.extend_from_slice(&buf[..n]);
        if let Some(req) = HttpRequest::parse(&raw) {
            break req;
        }
        if raw.len() > 1 << 20 {
            let _ = stream.write_all(format_response(400, "request too large").as_bytes());
            return Ok(());
        }
    };
    let (status, body) = route(&request, state);
    stream.write_all(format_response(status, &body).as_bytes())?;
    stream.flush()
}

fn json_error(message: &str) -> String {
    let mut obj = Json::obj();
    obj.set("error", Json::Str(message.into()));
    obj.canonical()
}

fn route(req: &HttpRequest, state: &Arc<LabState>) -> (u16, String) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/health") => {
            let mut obj = Json::obj();
            obj.set("ok", Json::Bool(true));
            obj.set(
                "tick",
                Json::U64(state.scheduler.lock().expect("scheduler lock").tick()),
            );
            (200, obj.canonical())
        }
        ("POST", "/jobs") => match JobSpec::parse(&req.body) {
            Ok(spec) => {
                let id = state.submit(spec);
                let mut obj = Json::obj();
                obj.set("id", Json::U64(id));
                obj.set("status", Json::Str("queued".into()));
                (202, obj.canonical())
            }
            Err(e) => (400, json_error(&e)),
        },
        ("GET", "/metrics") => (200, state.metrics_json().canonical()),
        ("GET", "/incidents") => (
            200,
            state
                .detector
                .lock()
                .expect("detector lock")
                .to_json()
                .canonical(),
        ),
        ("POST", "/shutdown") => {
            state.begin_shutdown();
            (200, json_error("shutting down"))
        }
        ("GET", path) if path.starts_with("/portal") => portal::handle(path),
        ("GET", path) if path.starts_with("/jobs/") => {
            let rest = &path["/jobs/".len()..];
            let (id_text, want_manifest) = match rest.strip_suffix("/manifest") {
                Some(id) => (id, true),
                None => (rest, false),
            };
            let Ok(id) = id_text.parse::<u64>() else {
                return (400, json_error("bad job id"));
            };
            let jobs = state.jobs.lock().expect("jobs lock");
            let Some(job) = jobs
                .get((id.wrapping_sub(1)) as usize)
                .filter(|j| j.id == id)
            else {
                return (404, json_error("no such job"));
            };
            if want_manifest {
                match &job.manifest {
                    Some(m) => (200, m.canonical()),
                    None => (404, json_error("job not done yet")),
                }
            } else {
                (200, job.status_json().canonical())
            }
        }
        ("GET", _) => (404, json_error("no such route")),
        _ => (405, json_error("method not allowed")),
    }
}
