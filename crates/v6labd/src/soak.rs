//! The deterministic soak harness: a scripted daemon lifetime.
//!
//! A soak drives the exact machinery the live daemon runs — scheduler,
//! jobs, detector, streaming observer — but synchronously under the
//! virtual clock, so its entire output is a pure function of
//! `(base_seed, ticks)`. The detector is seeded with the clean-matrix
//! manifest as the baseline for *every* matrix key, mirroring the
//! committed-golden comparison the live daemon makes: each impaired
//! sweep then deterministically trips its fault/census watches, and the
//! repeat of the lossy sweep exercises incident dedup. The result is a
//! [`SoakSummary`] whose `soak` manifest is committed as
//! `reports/soak_smoke.json`.

use v6fleet::{FleetObserver, FleetRunner, LatencySketch};
use v6report::{fnv1a, RunManifest, SoakJobRow, SoakSummary};
use v6testbed::scenario::FaultVariant;

use crate::cron::CronSpec;
use crate::detector::Detector;
use crate::jobs::JobSpec;
use crate::scheduler::Scheduler;
use crate::state::{LabState, LiveObserver};

/// Soak parameters.
#[derive(Debug, Clone, Copy)]
pub struct SoakConfig {
    /// Seed for every job in the soak.
    pub base_seed: u64,
    /// Virtual ticks to run the scheduler through.
    pub ticks: u64,
    /// Worker-pool width (wall-clock only; the summary is identical
    /// for any value).
    pub threads: usize,
}

impl SoakConfig {
    /// The canonical smoke soak: the committed
    /// `reports/soak_smoke.json` describes exactly this run.
    pub fn smoke() -> SoakConfig {
        SoakConfig {
            base_seed: v6report::CANONICAL_BASE_SEED,
            ticks: 8,
            threads: 1,
        }
    }
}

/// Cells in the soak's population job — small enough for CI, big
/// enough that the census mix is non-trivial.
const SOAK_POPULATION: u64 = 1_500;

/// The smoke soak's schedule: the clean matrix first, the three
/// impaired sweeps next (lossy recurring, to exercise dedup), then a
/// population census.
fn smoke_schedule(base_seed: u64) -> Scheduler {
    let matrix = |fault| JobSpec::Matrix { base_seed, fault };
    let mut scheduler = Scheduler::new();
    scheduler.add("clean-sweep", CronSpec::parse("@1").expect("literal"), {
        matrix(FaultVariant::Clean)
    });
    scheduler.add(
        "lossy-sweep",
        CronSpec::parse("2+*/4").expect("literal"),
        matrix(FaultVariant::LossyUplink),
    );
    scheduler.add(
        "dns64-sweep",
        CronSpec::parse("@3").expect("literal"),
        matrix(FaultVariant::Dns64Outage),
    );
    scheduler.add(
        "nat64-sweep",
        CronSpec::parse("@4").expect("literal"),
        matrix(FaultVariant::Nat64Exhaustion),
    );
    scheduler.add(
        "population-census",
        CronSpec::parse("@5").expect("literal"),
        JobSpec::Population {
            seed: base_seed,
            size: SOAK_POPULATION,
            shards: 4,
            pace_ms: 0,
        },
    );
    scheduler
}

/// Run the soak and summarise it. Also returns the detector so callers
/// (tests, the CLI log) can inspect full incident records.
pub fn run_soak(config: SoakConfig) -> (SoakSummary, Detector) {
    let state = LabState::new(config.threads, 1);
    let runner = FleetRunner::new(config.threads);
    let observer = LiveObserver::new(&state, 0);

    // Baseline: what the repo's committed goldens promise. Built
    // in-process from the same seed so the soak needs no file access —
    // and unobserved, so the live sketches cover only scheduled jobs.
    struct Quiet;
    impl FleetObserver for Quiet {}
    let clean = JobSpec::Matrix {
        base_seed: config.base_seed,
        fault: FaultVariant::Clean,
    };
    let baseline = clean.execute(&runner, &Quiet);
    let mut detector = Detector::new();
    for fault in FaultVariant::ALL {
        let key = format!("matrix/{}", fault.label());
        detector.set_baseline(&key, &baseline);
    }

    let mut scheduler = smoke_schedule(config.base_seed);
    let mut jobs = Vec::new();
    let mut next_id = 1u64;
    while scheduler.tick() < config.ticks {
        for entry in scheduler.advance() {
            let tick = scheduler.tick();
            let manifest = entry.job.execute(&runner, &observer);
            detector.observe(
                &format!("{}/{}", entry.job.kind(), entry.job.label()),
                &manifest,
                tick,
            );
            jobs.push(SoakJobRow {
                id: next_id,
                kind: entry.job.kind().to_string(),
                label: entry.job.label(),
                cells: entry.job.cells(),
                manifest_digest: fnv1a(&manifest.canonical()),
            });
            next_id += 1;
        }
    }

    // Merge the matrix latency sketch with the population cells'
    // completion-time sketch: one fleet-wide virtual-latency view.
    let live = state.live.lock().expect("live lock");
    let mut latency: LatencySketch = live.latency_us.snapshot();
    latency.merge_from(&live.census.completed_us);
    drop(live);

    let summary = SoakSummary {
        base_seed: config.base_seed,
        ticks: config.ticks,
        jobs,
        incidents: detector
            .incidents()
            .iter()
            .map(|i| i.to_soak_row())
            .collect(),
        latency,
    };
    (summary, detector)
}

/// The canonical smoke-soak manifest (what `reports/soak_smoke.json`
/// holds).
pub fn smoke_manifest() -> RunManifest {
    let (summary, _) = run_soak(SoakConfig::smoke());
    RunManifest::from_soak(&summary)
}
