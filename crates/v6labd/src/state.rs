//! Shared daemon state: the job table, the live metrics accumulator,
//! the detector, and the scheduler — everything the HTTP handlers and
//! the worker thread both touch.
//!
//! The live metrics are the daemon's answer to "what is the fleet doing
//! *right now*": the worker streams per-scenario results and per-shard
//! census sketches into [`LiveMetrics`] via the [`FleetObserver`] hooks
//! while a job is still running, and `GET /metrics` serialises a
//! point-in-time [`CensusSketch::snapshot`] of it without stopping the
//! stream — the non-consuming snapshot API is what makes that read
//! side cheap.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use v6fleet::{CensusSketch, FleetObserver, LatencySketch};
use v6report::Json;
use v6testbed::scenario::ScenarioResult;

use crate::detector::Detector;
use crate::jobs::{JobRecord, JobSpec, JobStatus};
use crate::scheduler::Scheduler;

/// Fleet-wide counters accumulated across *all* jobs the daemon has
/// run, updated mid-job by the streaming observer.
#[derive(Debug, Clone, Default)]
pub struct LiveMetrics {
    /// Matrix scenarios completed.
    pub scenarios_done: u64,
    /// Engine events processed, summed across scenarios.
    pub events_processed: u64,
    /// Frames delivered, summed across scenarios.
    pub frames_delivered: u64,
    /// Frames forwarded, summed across scenarios.
    pub frames_forwarded: u64,
    /// Injected-fault drops (`fault.dropped + fault.outage_dropped`).
    pub fault_dropped: u64,
    /// Fleet-wide `dns.timeouts` device-counter sum.
    pub dns_timeouts: u64,
    /// Virtual completion time per matrix scenario (micros).
    pub latency_us: LatencySketch,
    /// Population shards folded.
    pub shards_done: u64,
    /// Merged population census (includes its own latency sketches).
    pub census: CensusSketch,
}

impl LiveMetrics {
    fn new() -> LiveMetrics {
        LiveMetrics {
            latency_us: LatencySketch::new(),
            census: CensusSketch::new(),
            ..Default::default()
        }
    }

    /// Fold one completed matrix scenario.
    pub fn fold_scenario(&mut self, r: &ScenarioResult) {
        self.scenarios_done += 1;
        self.events_processed += r.metrics.engine.events_processed;
        self.frames_delivered += r.metrics.engine.frames_delivered;
        self.frames_forwarded += r.metrics.engine.frames_forwarded;
        self.fault_dropped += r.metrics.faults.dropped + r.metrics.faults.outage_dropped;
        self.dns_timeouts += r
            .metrics
            .nodes
            .iter()
            .map(|n| n.device.get("dns.timeouts"))
            .sum::<u64>();
        self.latency_us.record(r.completed_at.as_micros());
    }

    /// Fold one completed population shard.
    pub fn fold_shard(&mut self, sketch: &CensusSketch) {
        self.shards_done += 1;
        self.census.merge_from(sketch);
    }

    /// The `GET /metrics` fleet/population sections.
    pub fn to_json(&self) -> Json {
        let sketch_row = |s: &LatencySketch| {
            let pct = s.percentiles();
            let mut row = Json::obj();
            row.set("count", Json::U64(s.count));
            row.set("p50", Json::U64(pct.p50));
            row.set("p90", Json::U64(pct.p90));
            row.set("p99", Json::U64(pct.p99));
            row.set("max", Json::U64(s.max));
            row
        };

        let mut fleet = Json::obj();
        fleet.set("scenarios_done", Json::U64(self.scenarios_done));
        fleet.set("events_processed", Json::U64(self.events_processed));
        fleet.set("frames_delivered", Json::U64(self.frames_delivered));
        fleet.set("frames_forwarded", Json::U64(self.frames_forwarded));
        fleet.set("fault_dropped", Json::U64(self.fault_dropped));
        fleet.set("dns_timeouts", Json::U64(self.dns_timeouts));
        fleet.set("completed_us", sketch_row(&self.latency_us));

        let census = self.census.snapshot();
        let mut crow = Json::obj();
        crow.set("associated", Json::U64(census.census.associated as u64));
        crow.set("naive_v6only", Json::U64(census.census.naive_v6only as u64));
        crow.set(
            "accurate_v6only",
            Json::U64(census.census.accurate_v6only as u64),
        );
        crow.set("with_v4_path", Json::U64(census.census.with_v4_path as u64));
        crow.set(
            "rfc8925_engaged",
            Json::U64(census.census.rfc8925_engaged as u64),
        );
        crow.set("intervened", Json::U64(census.census.intervened as u64));
        crow.set("degraded", Json::U64(census.census.degraded as u64));
        let mut population = Json::obj();
        population.set("shards_done", Json::U64(self.shards_done));
        population.set("samples", Json::U64(census.samples));
        population.set("census", crow);
        population.set("completed_us", sketch_row(&census.completed_us));

        let mut obj = Json::obj();
        obj.set("fleet", fleet);
        obj.set("population", population);
        obj
    }
}

/// Everything shared between the HTTP handlers and the worker.
pub struct LabState {
    /// Total simulation-thread budget shared by concurrent jobs.
    pub threads: usize,
    /// Job-execution worker threads draining the queue.
    pub workers: usize,
    /// Every job ever submitted, indexed by `id - 1`.
    pub jobs: Mutex<Vec<JobRecord>>,
    /// Ids waiting for the worker.
    pub queue: Mutex<VecDeque<u64>>,
    /// Wakes the worker when the queue gains work (or shutdown starts).
    pub queue_cv: Condvar,
    /// The streaming accumulator.
    pub live: Mutex<LiveMetrics>,
    /// Incident log + baselines.
    pub detector: Mutex<Detector>,
    /// Cron entries + the virtual clock.
    pub scheduler: Mutex<Scheduler>,
    /// Set on SIGTERM / `POST /shutdown`.
    pub shutdown: AtomicBool,
}

impl LabState {
    /// Fresh state with an empty scheduler.
    pub fn new(threads: usize, workers: usize) -> Arc<LabState> {
        Arc::new(LabState {
            threads,
            workers,
            jobs: Mutex::new(Vec::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            live: Mutex::new(LiveMetrics::new()),
            detector: Mutex::new(Detector::new()),
            scheduler: Mutex::new(Scheduler::new()),
            shutdown: AtomicBool::new(false),
        })
    }

    /// Record and enqueue a job; returns its id.
    pub fn submit(&self, spec: JobSpec) -> u64 {
        let tick = self.scheduler.lock().expect("scheduler lock").tick();
        let mut jobs = self.jobs.lock().expect("jobs lock");
        let id = jobs.len() as u64 + 1;
        jobs.push(JobRecord {
            id,
            spec,
            status: JobStatus::Queued,
            submitted_tick: tick,
            completed_tick: None,
            manifest: None,
        });
        drop(jobs);
        self.queue.lock().expect("queue lock").push_back(id);
        self.queue_cv.notify_one();
        id
    }

    /// Begin a graceful shutdown: flag + wake the worker.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue_cv.notify_all();
    }

    /// Is shutdown in progress?
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// The `GET /metrics` body: job-table summary, live fleet counters,
    /// and the population snapshot — readable mid-job.
    pub fn metrics_json(&self) -> Json {
        let (total, queued, running, done) = {
            let jobs = self.jobs.lock().expect("jobs lock");
            let count = |s: JobStatus| jobs.iter().filter(|j| j.status == s).count() as u64;
            (
                jobs.len() as u64,
                count(JobStatus::Queued),
                count(JobStatus::Running),
                count(JobStatus::Done),
            )
        };
        let mut jobs_row = Json::obj();
        jobs_row.set("total", Json::U64(total));
        jobs_row.set("queued", Json::U64(queued));
        jobs_row.set("running", Json::U64(running));
        jobs_row.set("done", Json::U64(done));

        let mut obj = self.live.lock().expect("live lock").to_json();
        obj.set("jobs", jobs_row);
        obj.set("workers", Json::U64(self.workers as u64));
        obj.set(
            "tick",
            Json::U64(self.scheduler.lock().expect("scheduler lock").tick()),
        );
        obj.set(
            "incidents",
            Json::U64(
                self.detector
                    .lock()
                    .expect("detector lock")
                    .incidents()
                    .len() as u64,
            ),
        );
        obj
    }
}

/// The worker's streaming observer: folds scenario results and shard
/// sketches into [`LiveMetrics`] as they land, optionally dwelling
/// after each shard (`pace_ms`) so an operator-paced background census
/// yields the listener some air. Virtual time never sees the dwell.
pub struct LiveObserver<'a> {
    state: &'a LabState,
    pace_ms: u64,
}

impl<'a> LiveObserver<'a> {
    /// An observer for one job; `pace_ms` comes from the job spec.
    pub fn new(state: &'a LabState, pace_ms: u64) -> LiveObserver<'a> {
        LiveObserver { state, pace_ms }
    }
}

impl FleetObserver for LiveObserver<'_> {
    fn scenario_done(&self, _index: usize, result: &ScenarioResult) {
        self.state
            .live
            .lock()
            .expect("live lock")
            .fold_scenario(result);
    }

    fn shard_done(&self, _shard: usize, sketch: &CensusSketch) {
        self.state
            .live
            .lock()
            .expect("live lock")
            .fold_shard(sketch);
        if self.pace_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(self.pace_ms));
        }
    }
}
