//! Incident-detector lockdown: threshold edges, both watch directions,
//! the computed dns.timeouts sum, and dedup of repeat incidents.

use v6labd::{Detector, Severity};
use v6report::{Json, RunManifest};

/// A minimal fleet-matrix-shaped manifest with the watched fields.
fn manifest(
    dropped: u64,
    outage_dropped: u64,
    accurate: u64,
    intervened: u64,
    dns_timeouts_per_node: &[u64],
) -> RunManifest {
    let mut fault = Json::obj();
    fault.set("dropped", Json::U64(dropped));
    fault.set("outage_dropped", Json::U64(outage_dropped));

    let mut nodes = Json::obj();
    for (i, &t) in dns_timeouts_per_node.iter().enumerate() {
        let mut device = Json::obj();
        device.set("dns.timeouts", Json::U64(t));
        let mut row = Json::obj();
        row.set("device", device);
        nodes.set(&format!("host-{i}"), row);
    }

    let mut metrics = Json::obj();
    metrics.set("fault", fault);
    metrics.set("nodes", nodes);

    let mut fleet = Json::obj();
    fleet.set("accurate_v6only", Json::U64(accurate));
    fleet.set("intervened", Json::U64(intervened));
    let mut census = Json::obj();
    census.set("fleet", fleet);

    let mut root = Json::obj();
    root.set("kind", Json::Str("fleet-matrix".into()));
    root.set("census", census);
    root.set("metrics", metrics);
    RunManifest::from_json(root)
}

fn baseline() -> RunManifest {
    manifest(0, 0, 20, 10, &[0, 0])
}

#[test]
fn first_sighting_becomes_the_baseline_and_raises_nothing() {
    let mut d = Detector::new();
    assert!(!d.has_baseline("matrix/clean"));
    assert_eq!(d.observe("matrix/clean", &baseline(), 1), 0);
    assert!(d.has_baseline("matrix/clean"));
    // A second identical run against that baseline is also quiet.
    assert_eq!(d.observe("matrix/clean", &baseline(), 2), 0);
    assert!(d.incidents().is_empty());
}

#[test]
fn surge_thresholds_warn_at_one_and_go_critical_at_one_hundred() {
    let key = "matrix/lossy-uplink";
    // Exactly at the warn edge: delta 1.
    let mut d = Detector::new();
    d.set_baseline(key, &baseline());
    assert_eq!(d.observe(key, &manifest(1, 0, 20, 10, &[0, 0]), 3), 1);
    assert_eq!(d.incidents().len(), 1);
    let i = &d.incidents()[0];
    assert_eq!(i.severity, Severity::Warning);
    assert_eq!(i.field, "metrics.fault.dropped");
    assert_eq!(i.first_seen_tick, 3);

    // Just below critical stays a warning; at the edge it escalates.
    let mut d = Detector::new();
    d.set_baseline(key, &baseline());
    d.observe(key, &manifest(99, 0, 20, 10, &[0, 0]), 1);
    assert_eq!(d.incidents()[0].severity, Severity::Warning);
    let mut d = Detector::new();
    d.set_baseline(key, &baseline());
    d.observe(key, &manifest(100, 0, 20, 10, &[0, 0]), 1);
    assert_eq!(d.incidents()[0].severity, Severity::Critical);
}

#[test]
fn census_regressions_watch_the_downward_direction_only() {
    let key = "matrix/dns64-outage";
    let mut d = Detector::new();
    d.set_baseline(key, &baseline());
    // Census counters *rising* is not a regression.
    assert_eq!(d.observe(key, &manifest(0, 0, 25, 12, &[0, 0]), 1), 0);
    // Falling by one warns; falling by the critical threshold escalates.
    assert_eq!(d.observe(key, &manifest(0, 0, 19, 10, &[0, 0]), 2), 1);
    assert_eq!(d.incidents()[0].field, "census.fleet.accurate_v6only");
    assert_eq!(d.incidents()[0].severity, Severity::Warning);
    assert_eq!(d.observe(key, &manifest(0, 0, 10, 0, &[0, 0]), 3), 2);
    let by_field = |f: &str| {
        d.incidents()
            .iter()
            .find(|i| i.field == f)
            .unwrap_or_else(|| panic!("no incident for {f}"))
            .clone()
    };
    assert_eq!(
        by_field("census.fleet.accurate_v6only").severity,
        Severity::Critical
    );
    assert_eq!(
        by_field("census.fleet.intervened").severity,
        Severity::Critical
    );
}

#[test]
fn dns_timeouts_are_summed_across_nodes() {
    let key = "matrix/clean";
    let mut d = Detector::new();
    d.set_baseline(key, &manifest(0, 0, 20, 10, &[2, 3]));
    // Total 5 → 5: quiet. Total 5 → 7: surge of 2.
    assert_eq!(d.observe(key, &manifest(0, 0, 20, 10, &[4, 1]), 1), 0);
    assert_eq!(d.observe(key, &manifest(0, 0, 20, 10, &[3, 4]), 2), 1);
    let i = &d.incidents()[0];
    assert_eq!(i.field, "metrics.nodes.*.device.dns.timeouts");
    assert!(i.detail.contains("rose by 2"), "detail: {}", i.detail);
}

#[test]
fn repeat_incidents_dedup_into_a_count_and_escalate_in_place() {
    let key = "matrix/lossy-uplink";
    let mut d = Detector::new();
    d.set_baseline(key, &baseline());
    d.observe(key, &manifest(5, 0, 20, 10, &[0, 0]), 2);
    d.observe(key, &manifest(7, 0, 20, 10, &[0, 0]), 6);
    d.observe(key, &manifest(500, 0, 20, 10, &[0, 0]), 10);
    assert_eq!(d.incidents().len(), 1, "same (key, field) must dedup");
    let i = &d.incidents()[0];
    assert_eq!(i.count, 3);
    assert_eq!(i.first_seen_tick, 2, "first-seen survives dedup");
    assert_eq!(i.severity, Severity::Critical, "severity escalates");
    assert!(i.detail.contains("500"), "detail tracks the latest delta");

    // The same field under a *different* key is a separate incident.
    d.set_baseline("matrix/clean", &baseline());
    d.observe("matrix/clean", &manifest(5, 0, 20, 10, &[0, 0]), 11);
    assert_eq!(d.incidents().len(), 2);
}

#[test]
fn incident_rows_serialize_for_the_api_and_the_soak_manifest() {
    let mut d = Detector::new();
    d.set_baseline("matrix/clean", &baseline());
    d.observe("matrix/clean", &manifest(1, 0, 20, 10, &[0, 0]), 4);
    let json = d.to_json().canonical();
    let parsed = Json::parse(&json).unwrap();
    let Some(Json::Arr(rows)) = parsed.get("incidents") else {
        panic!("incidents array missing");
    };
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].get("severity"), Some(&Json::Str("warning".into())));
    let soak_row = d.incidents()[0].to_soak_row();
    assert_eq!(soak_row.field, "matrix/clean:metrics.fault.dropped");
    assert_eq!(soak_row.first_seen_tick, 4);
    assert_eq!(soak_row.count, 1);
}
