//! End-to-end daemon lockdown, per the acceptance criterion: submit a
//! population job over HTTP, observe at least one incremental
//! `/metrics` snapshot while it is still streaming shards, and verify
//! the fetched manifest is byte-identical to the batch `FleetRunner`
//! path. Plus wire-level error handling and graceful shutdown.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use v6fleet::FleetRunner;
use v6labd::{LabServer, ServerConfig};
use v6portal::http::{HttpRequest, HttpResponse};
use v6report::{Json, RunManifest, CANONICAL_BASE_SEED};

/// One request/response exchange against the daemon.
fn exchange(addr: std::net::SocketAddr, raw: &str) -> HttpResponse {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    stream.write_all(raw.as_bytes()).expect("send request");
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes).expect("read response");
    HttpResponse::parse(&bytes).expect("daemon sent a complete response")
}

fn get(addr: std::net::SocketAddr, path: &str) -> HttpResponse {
    exchange(addr, &HttpRequest::format_get("localhost", path))
}

fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> HttpResponse {
    exchange(addr, &HttpRequest::format_post("localhost", path, body))
}

fn u64_at(v: &Json, path: &[&str]) -> u64 {
    let mut cur = v;
    for seg in path {
        cur = cur
            .get(seg)
            .unwrap_or_else(|| panic!("missing field {seg:?} in {}", v.canonical()));
    }
    match cur {
        Json::U64(n) => *n,
        other => panic!("expected u64 at {path:?}, got {other:?}"),
    }
}

/// Poll `GET /jobs/:id` until the daemon reports it done.
fn wait_done(addr: std::net::SocketAddr, id: u64) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = get(addr, &format!("/jobs/{id}"));
        assert_eq!(status.status, 200);
        let v = Json::parse(&status.body).expect("status body parses");
        if v.get("status") == Some(&Json::Str("done".into())) {
            return;
        }
        assert!(Instant::now() < deadline, "job {id} never finished");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn population_job_streams_metrics_and_matches_the_batch_path() {
    let server = LabServer::start(ServerConfig {
        port: 0,
        threads: 2,
        ..ServerConfig::default()
    })
    .expect("daemon starts");
    let addr = server.addr;

    let health = get(addr, "/health");
    assert_eq!(health.status, 200);
    let v = Json::parse(&health.body).unwrap();
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(u64_at(&v, &["tick"]), 0);

    // A paced census: 12 shards with a 25 ms dwell per shard keeps the
    // job streaming for ~150 ms of wall time while virtual time — and
    // therefore the manifest — is untouched by the pacing.
    const SIZE: u64 = 400;
    const SHARDS: u64 = 12;
    let body = format!(
        r#"{{"kind":"population","seed":{CANONICAL_BASE_SEED},"size":{SIZE},"shards":{SHARDS},"pace_ms":25}}"#
    );
    let accepted = post(addr, "/jobs", &body);
    assert_eq!(accepted.status, 202);
    let v = Json::parse(&accepted.body).unwrap();
    let id = u64_at(&v, &["id"]);
    assert_eq!(v.get("status"), Some(&Json::Str("queued".into())));

    // The acceptance criterion: at least one /metrics snapshot taken
    // while the job is mid-stream (some, but not all, shards folded).
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut mid_run = None;
    while mid_run.is_none() {
        assert!(
            Instant::now() < deadline,
            "never observed a mid-run /metrics snapshot"
        );
        let metrics = get(addr, "/metrics");
        assert_eq!(metrics.status, 200);
        let v = Json::parse(&metrics.body).expect("metrics body parses");
        let shards_done = u64_at(&v, &["population", "shards_done"]);
        if shards_done > 0 && shards_done < SHARDS {
            mid_run = Some(v);
        } else {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    let mid_run = mid_run.unwrap();
    // The partial census is internally consistent: samples grow with
    // the folded shards and the job table shows the job running.
    let samples = u64_at(&mid_run, &["population", "samples"]);
    assert!(samples > 0 && samples < SIZE, "partial samples: {samples}");
    assert_eq!(u64_at(&mid_run, &["jobs", "running"]), 1);

    wait_done(addr, id);

    // Byte-identity with the batch path: the same spec run through
    // FleetRunner directly (single-threaded, unpaced — the report is
    // invariant to both) renders the identical canonical manifest.
    let fetched = get(addr, &format!("/jobs/{id}/manifest"));
    assert_eq!(fetched.status, 200);
    let spec = v6fleet::PopulationSpec::paper_default(CANONICAL_BASE_SEED, SIZE);
    let batch = FleetRunner::new(1).run_population(&spec, SHARDS as usize);
    let expected = RunManifest::from_population(&spec, &batch.report).canonical();
    assert_eq!(
        fetched.body, expected,
        "HTTP-fetched manifest must be byte-identical to the batch path"
    );

    // Completion advanced the virtual clock and the final snapshot has
    // every shard folded.
    let metrics = Json::parse(&get(addr, "/metrics").body).unwrap();
    assert_eq!(u64_at(&metrics, &["population", "shards_done"]), SHARDS);
    assert_eq!(u64_at(&metrics, &["population", "samples"]), SIZE);
    assert_eq!(u64_at(&metrics, &["tick"]), 1);
    assert_eq!(u64_at(&metrics, &["jobs", "done"]), 1);

    server.stop();
}

#[test]
fn matrix_jobs_reproduce_the_committed_golden_over_http() {
    let server = LabServer::start(ServerConfig {
        port: 0,
        threads: 2,
        ..ServerConfig::default()
    })
    .expect("daemon starts");
    let addr = server.addr;

    // Default body → canonical seed, clean fault: the committed golden.
    let accepted = post(addr, "/jobs", r#"{"kind":"matrix"}"#);
    assert_eq!(accepted.status, 202);
    let id = u64_at(&Json::parse(&accepted.body).unwrap(), &["id"]);
    wait_done(addr, id);

    let fetched = get(addr, &format!("/jobs/{id}/manifest"));
    assert_eq!(fetched.status, 200);
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../reports/matrix_clean.json"
    ))
    .expect("committed matrix golden");
    assert_eq!(
        fetched.body, golden,
        "daemon matrix manifest must match reports/matrix_clean.json"
    );

    // A clean first sighting seeds the detector baseline quietly.
    let incidents = Json::parse(&get(addr, "/incidents").body).unwrap();
    let Some(Json::Arr(rows)) = incidents.get("incidents") else {
        panic!("incidents array missing");
    };
    assert!(rows.is_empty(), "clean baseline must raise nothing");

    server.stop();
}

#[test]
fn config_cron_entries_fire_after_job_completion() {
    // A recurring schedule wired in at startup (the serve `--cron`
    // flag's landing spot): the @1 entry must enqueue its job the
    // moment the first completion advances the virtual clock.
    const JOB: &str = r#"{"kind":"population","size":40,"shards":2,"pace_ms":0}"#;
    let server = LabServer::start(ServerConfig {
        cron: vec![v6labd::CronEntry {
            name: "startup-census".into(),
            spec: v6labd::CronSpec::parse("@1").expect("literal spec"),
            job: v6labd::JobSpec::parse(JOB).expect("literal job"),
        }],
        ..ServerConfig::default()
    })
    .expect("daemon starts");
    let addr = server.addr;

    let accepted = post(addr, "/jobs", JOB);
    assert_eq!(accepted.status, 202);
    let id = u64_at(&Json::parse(&accepted.body).unwrap(), &["id"]);
    wait_done(addr, id);

    // Completion ticked the clock to 1; the cron entry fired and its
    // job shows up in the table without any further HTTP submission.
    let deadline = Instant::now() + Duration::from_secs(30);
    let cron_id = id + 1;
    while get(addr, &format!("/jobs/{cron_id}")).status != 200 {
        assert!(Instant::now() < deadline, "cron job never enqueued");
        std::thread::sleep(Duration::from_millis(10));
    }
    wait_done(addr, cron_id);

    let metrics = Json::parse(&get(addr, "/metrics").body).unwrap();
    assert_eq!(u64_at(&metrics, &["jobs", "done"]), 2);
    assert_eq!(u64_at(&metrics, &["tick"]), 2, "both completions ticked");

    // Both jobs ran the same spec: identical canonical manifests.
    let submitted = get(addr, &format!("/jobs/{id}/manifest"));
    let fired = get(addr, &format!("/jobs/{cron_id}/manifest"));
    assert_eq!(submitted.body, fired.body);

    server.stop();
}

#[test]
fn multi_worker_pool_runs_jobs_concurrently_with_identical_manifests() {
    let server = LabServer::start(ServerConfig {
        threads: 2,
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("daemon starts");
    let addr = server.addr;
    let metrics = Json::parse(&get(addr, "/metrics").body).unwrap();
    assert_eq!(u64_at(&metrics, &["workers"]), 2);

    // Two paced censuses: with two workers both must be mid-flight at
    // once (a single-worker daemon would serialize them).
    const BODY: &str = r#"{"kind":"population","size":200,"shards":8,"pace_ms":25}"#;
    let a = u64_at(
        &Json::parse(&post(addr, "/jobs", BODY).body).unwrap(),
        &["id"],
    );
    let b = u64_at(
        &Json::parse(&post(addr, "/jobs", BODY).body).unwrap(),
        &["id"],
    );

    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let v = Json::parse(&get(addr, "/metrics").body).unwrap();
        if u64_at(&v, &["jobs", "running"]) == 2 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "never saw two jobs running concurrently"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    wait_done(addr, a);
    wait_done(addr, b);

    // Same spec on different worker threads (each with its own warm
    // cell arena): byte-identical manifests.
    let ma = get(addr, &format!("/jobs/{a}/manifest"));
    let mb = get(addr, &format!("/jobs/{b}/manifest"));
    assert_eq!(ma.status, 200);
    assert_eq!(ma.body, mb.body);

    server.stop();
}

#[test]
fn the_wire_rejects_what_it_should() {
    let server = LabServer::start(ServerConfig::default()).expect("daemon starts");
    let addr = server.addr;

    assert_eq!(get(addr, "/jobs/999").status, 404);
    assert_eq!(get(addr, "/jobs/zero").status, 400);
    assert_eq!(get(addr, "/no-such-route").status, 404);
    assert_eq!(post(addr, "/jobs", "not json").status, 400);
    assert_eq!(post(addr, "/jobs", r#"{"kind":"mystery"}"#).status, 400);
    assert_eq!(
        exchange(addr, "DELETE /jobs/1 HTTP/1.1\r\nHost: localhost\r\n\r\n").status,
        405
    );
    // Manifest of a queued-or-running job 404s rather than blocking.
    let accepted = post(
        addr,
        "/jobs",
        r#"{"kind":"population","size":200,"shards":4,"pace_ms":50}"#,
    );
    let id = u64_at(&Json::parse(&accepted.body).unwrap(), &["id"]);
    let early = get(addr, &format!("/jobs/{id}/manifest"));
    assert_eq!(early.status, 404);

    server.stop();
}

#[test]
fn shutdown_over_http_stops_both_threads() {
    let server = LabServer::start(ServerConfig::default()).expect("daemon starts");
    let addr = server.addr;
    assert_eq!(post(addr, "/shutdown", "").status, 200);
    // join() returns only once the accept and worker threads exit; a
    // hang here is the failure mode this test exists to catch.
    server.join();
    // The listener is gone: a fresh connection must fail (allow a beat
    // for the OS to tear the socket down).
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match TcpStream::connect(addr) {
            Err(_) => break,
            Ok(_) if Instant::now() >= deadline => {
                panic!("listener still accepting after shutdown")
            }
            Ok(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}
