//! Scheduler lockdown: the cron dialect proven by property tests, and
//! deterministic firing order under the virtual clock.

use proptest::prelude::*;
use v6labd::{CronSpec, JobSpec, Scheduler};
use v6testbed::scenario::FaultVariant;

/// Build an arbitrary valid spec from two random words.
fn synth_spec(offset_bits: u64, period_bits: u64) -> CronSpec {
    let offset = offset_bits % 1_000;
    match period_bits % 4 {
        0 => CronSpec {
            offset,
            period: None,
        },
        _ => CronSpec {
            offset,
            period: Some(period_bits % 97 + 1),
        },
    }
}

proptest! {
    /// Display → parse is the identity over every representable spec —
    /// including the `*/N` shorthand (offset == period) and one-shots.
    #[test]
    fn display_parse_roundtrip(offset_bits in any::<u64>(), period_bits in any::<u64>()) {
        let spec = synth_spec(offset_bits, period_bits);
        let rendered = spec.to_string();
        prop_assert_eq!(CronSpec::parse(&rendered).unwrap(), spec);
    }

    /// `fires_at` and `next_after` describe the same firing set: walking
    /// next_after from tick 0 enumerates exactly the ticks fires_at
    /// accepts, in order, over a bounded horizon.
    #[test]
    fn next_after_enumerates_the_firing_set(offset_bits in any::<u64>(), period_bits in any::<u64>()) {
        let spec = synth_spec(offset_bits, period_bits);
        const HORIZON: u64 = 2_500;
        let by_scan: Vec<u64> = (0..=HORIZON).filter(|&t| spec.fires_at(t)).collect();
        let mut by_walk = Vec::new();
        if spec.fires_at(0) {
            by_walk.push(0);
        }
        let mut t = 0;
        while let Some(next) = spec.next_after(t) {
            if next > HORIZON {
                break;
            }
            by_walk.push(next);
            t = next;
        }
        prop_assert_eq!(by_walk, by_scan);
    }

    /// Parsing never panics on arbitrary single-line input.
    #[test]
    fn parse_is_total(bits in prop::collection::vec(any::<u64>(), 0..12)) {
        let text: String = bits
            .iter()
            .map(|&b| char::from(b"@*/+0123456789 x"[(b % 16) as usize]))
            .collect();
        let _ = CronSpec::parse(&text);
    }
}

#[test]
fn entries_fire_in_registration_order_under_the_virtual_clock() {
    let job = |fault| JobSpec::Matrix {
        base_seed: 1,
        fault,
    };
    let mut scheduler = Scheduler::new();
    scheduler.add(
        "alpha",
        CronSpec::parse("@2").unwrap(),
        job(FaultVariant::Clean),
    );
    scheduler.add(
        "beta",
        CronSpec::parse("*/2").unwrap(),
        job(FaultVariant::LossyUplink),
    );
    scheduler.add(
        "gamma",
        CronSpec::parse("1+*/3").unwrap(),
        job(FaultVariant::Dns64Outage),
    );

    // Replay six ticks twice: identical firing sequences, and ties at
    // one tick resolve in registration order (alpha before beta at 2).
    let replay = || {
        let mut s = scheduler.clone();
        let mut log = Vec::new();
        for _ in 0..6 {
            let fired: Vec<String> = s.advance().into_iter().map(|e| e.name).collect();
            log.push((s.tick(), fired));
        }
        log
    };
    let first = replay();
    assert_eq!(first, replay(), "firing schedule must be deterministic");
    let expect: Vec<(u64, Vec<String>)> = vec![
        (1, vec!["gamma".into()]),
        (2, vec!["alpha".into(), "beta".into()]),
        (3, vec![]),
        (4, vec!["beta".into(), "gamma".into()]),
        (5, vec![]),
        (6, vec!["beta".into()]),
    ];
    assert_eq!(first, expect);
}

#[test]
fn next_fire_reports_the_earliest_pending_entry() {
    let job = JobSpec::Matrix {
        base_seed: 1,
        fault: FaultVariant::Clean,
    };
    let mut scheduler = Scheduler::new();
    scheduler.add("once", CronSpec::parse("@3").unwrap(), job);
    scheduler.add("slow", CronSpec::parse("@9").unwrap(), job);
    assert_eq!(scheduler.next_fire(), Some(3));
    for _ in 0..3 {
        scheduler.advance();
    }
    assert_eq!(scheduler.next_fire(), Some(9));
    for _ in 0..6 {
        scheduler.advance();
    }
    assert_eq!(scheduler.next_fire(), None, "all one-shots exhausted");
}
