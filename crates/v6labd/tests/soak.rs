//! Soak lockdown: the committed `reports/soak_smoke.json` golden stays
//! in sync with the harness, any mutated field gates, and the summary
//! is a pure function of the soak config (threads never leak in).

use v6labd::{run_soak, smoke_manifest, Severity, SoakConfig};
use v6report::{diff_manifests, DiffConfig, Json, RunManifest};

fn committed_golden() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../reports/soak_smoke.json");
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading committed golden {path}: {e}"))
}

#[test]
fn committed_soak_golden_matches_the_harness() {
    assert_eq!(
        smoke_manifest().canonical(),
        committed_golden(),
        "reports/soak_smoke.json has drifted — regenerate with `just bless-soak` \
         only if the behaviour change is intended"
    );
}

#[test]
fn soak_summary_is_deterministic_and_thread_invariant() {
    let one = run_soak(SoakConfig {
        threads: 1,
        ..SoakConfig::smoke()
    });
    let two = run_soak(SoakConfig {
        threads: 3,
        ..SoakConfig::smoke()
    });
    assert_eq!(one.0, two.0, "worker-pool width leaked into the summary");
    assert_eq!(
        RunManifest::from_soak(&one.0).canonical(),
        RunManifest::from_soak(&two.0).canonical()
    );
}

#[test]
fn the_smoke_soak_raises_the_expected_incidents() {
    let (summary, detector) = run_soak(SoakConfig::smoke());
    // Schedule: clean @1, lossy @2 and @6, dns64 @3, nat64 @4,
    // population @5 — six jobs over eight ticks.
    assert_eq!(summary.jobs.len(), 6);
    assert_eq!(summary.ticks, 8);
    assert_eq!(
        summary.jobs.iter().filter(|j| j.kind == "matrix").count(),
        5
    );
    // Every impaired sweep must trip the detector against the clean
    // baseline; the repeated lossy sweep must dedup, not duplicate.
    let lossy_drop = detector
        .incidents()
        .iter()
        .find(|i| i.key == "matrix/lossy-uplink" && i.field == "metrics.fault.dropped")
        .expect("lossy-uplink must surge fault.dropped vs the clean baseline");
    assert_eq!(
        lossy_drop.count, 2,
        "two lossy sweeps → one deduplicated incident with count 2"
    );
    assert_eq!(lossy_drop.severity, Severity::Warning);
    assert!(
        detector
            .incidents()
            .iter()
            .any(|i| i.key == "matrix/dns64-outage"),
        "dns64 outage must trip at least one watch"
    );
    // The latency sketch covers every scheduled cell: 5 × 66 matrix
    // cells + the population cells.
    assert_eq!(summary.latency.count, 5 * 66 + 1_500);
}

#[test]
fn any_mutated_golden_field_gates() {
    let golden = Json::parse(&committed_golden()).expect("golden parses");
    let kind = "soak";
    // Mutate one leaf in each top-level section and check the differ
    // calls it behavioural (fatal at default tolerances).
    let mutate = |path: &[&str], bump: fn(&Json) -> Json| {
        let mut doc = golden.clone();
        // Walk to the parent object and replace the leaf.
        fn set_at(v: &mut Json, path: &[&str], bump: fn(&Json) -> Json) {
            if path.len() == 1 {
                let old = v.get(path[0]).expect("leaf exists").clone();
                v.set(path[0], bump(&old));
                return;
            }
            let Json::Obj(map) = v else {
                panic!("path walks objects")
            };
            set_at(
                map.get_mut(path[0]).expect("segment exists"),
                &path[1..],
                bump,
            );
        }
        set_at(&mut doc, path, bump);
        doc
    };
    let bump_u64 = |v: &Json| match v {
        Json::U64(n) => Json::U64(n + 1),
        other => panic!("expected u64, got {other:?}"),
    };
    let flip_str = |v: &Json| match v {
        Json::Str(s) => Json::Str(format!("{s}-mutated")),
        other => panic!("expected string, got {other:?}"),
    };
    let cases: Vec<Json> = vec![
        mutate(&["config", "ticks"], bump_u64),
        mutate(&["latency", "p99"], bump_u64),
        mutate(&["latency", "digest"], flip_str),
    ];
    let cfg = DiffConfig::default();
    for mutated in cases {
        let report = diff_manifests(kind, &golden, &mutated);
        assert!(!report.is_clean());
        assert!(
            report.gated(&cfg),
            "soak drift must gate: {}",
            report.render(&cfg)
        );
    }
    // Array rows (jobs / incidents) gate too: drop the last job row.
    let mut doc = golden.clone();
    let Json::Obj(map) = &mut doc else { panic!() };
    let Some(Json::Arr(jobs)) = map.get_mut("jobs") else {
        panic!("jobs array missing")
    };
    jobs.pop();
    let report = diff_manifests(kind, &golden, &doc);
    assert!(report.gated(&cfg), "losing a job row must gate");
}
