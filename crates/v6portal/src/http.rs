//! A minimal HTTP/1.1 subset: one request, one response, server closes.

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Method (GET, or POST for the lab daemon's job API).
    pub method: String,
    /// Request path including any query string.
    pub path: String,
    /// `Host:` header (virtual-host routing key).
    pub host: String,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: String,
}

/// Byte offset of the end of the header block, if complete.
fn head_end(raw: &[u8]) -> Option<usize> {
    raw.windows(4).position(|w| w == b"\r\n\r\n")
}

/// `Content-Length` value from a header block (0 when absent).
fn content_length(head: &str) -> usize {
    for line in head.lines() {
        if let Some((k, v)) = line.split_once(':') {
            if k.eq_ignore_ascii_case("content-length") {
                return v.trim().parse().unwrap_or(0);
            }
        }
    }
    0
}

impl HttpRequest {
    /// Parse a request out of raw bytes. Returns `None` until the header
    /// block — and any `Content-Length` body — is complete.
    pub fn parse(raw: &[u8]) -> Option<HttpRequest> {
        let head_len = head_end(raw)?;
        let head = core::str::from_utf8(&raw[..head_len]).ok()?;
        let mut lines = head.lines();
        let request_line = lines.next()?;
        let mut parts = request_line.split_whitespace();
        let method = parts.next()?.to_string();
        let path = parts.next()?.to_string();
        let mut host = String::new();
        for line in lines {
            if let Some((k, v)) = line.split_once(':') {
                if k.eq_ignore_ascii_case("host") {
                    host = v.trim().to_string();
                }
            }
        }
        let want = content_length(head);
        let rest = &raw[head_len + 4..];
        if rest.len() < want {
            return None;
        }
        let body = core::str::from_utf8(&rest[..want]).ok()?.to_string();
        Some(HttpRequest {
            method,
            path,
            host,
            body,
        })
    }

    /// Format the wire form of a GET.
    pub fn format_get(host: &str, path: &str) -> String {
        format!("GET {path} HTTP/1.1\r\nHost: {host}\r\n\r\n")
    }

    /// Format the wire form of a POST with a body.
    pub fn format_post(host: &str, path: &str, body: &str) -> String {
        format!(
            "POST {path} HTTP/1.1\r\nHost: {host}\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
    }
}

/// A parsed HTTP response — the client side of the same subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Numeric status code from the status line.
    pub status: u16,
    /// Response body (complete per `Content-Length`).
    pub body: String,
}

impl HttpResponse {
    /// Parse a response out of raw bytes. Returns `None` until the header
    /// block and the full `Content-Length` body have arrived.
    pub fn parse(raw: &[u8]) -> Option<HttpResponse> {
        let head_len = head_end(raw)?;
        let head = core::str::from_utf8(&raw[..head_len]).ok()?;
        let status_line = head.lines().next()?;
        let status = status_line.split_whitespace().nth(1)?.parse().ok()?;
        let want = content_length(head);
        let rest = &raw[head_len + 4..];
        if rest.len() < want {
            return None;
        }
        let body = core::str::from_utf8(&rest[..want]).ok()?.to_string();
        Some(HttpResponse { status, body })
    }
}

/// Format a response (server closes the connection afterwards).
pub fn format_response(status: u16, body: &str) -> String {
    let reason = match status {
        200 => "OK",
        202 => "Accepted",
        302 => "Found",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Status",
    };
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let wire = HttpRequest::format_get("ip6.me", "/");
        let req = HttpRequest::parse(wire.as_bytes()).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/");
        assert_eq!(req.host, "ip6.me");
        assert_eq!(req.body, "");
    }

    #[test]
    fn incomplete_request_waits() {
        assert!(HttpRequest::parse(b"GET / HTTP/1.1\r\nHost: x").is_none());
    }

    #[test]
    fn post_body_roundtrip_and_partial_body_waits() {
        let wire = HttpRequest::format_post("lab", "/jobs", "{\"kind\":\"matrix\"}");
        let req = HttpRequest::parse(wire.as_bytes()).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.body, "{\"kind\":\"matrix\"}");
        // Truncate mid-body: the parser must keep waiting.
        assert!(HttpRequest::parse(&wire.as_bytes()[..wire.len() - 3]).is_none());
    }

    #[test]
    fn response_format() {
        let r = format_response(200, "hello");
        assert!(r.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(r.ends_with("\r\n\r\nhello"));
        assert!(r.contains("Content-Length: 5"));
    }

    #[test]
    fn response_roundtrip_and_partial_waits() {
        let wire = format_response(404, "no such job");
        let resp = HttpResponse::parse(wire.as_bytes()).unwrap();
        assert_eq!(resp.status, 404);
        assert_eq!(resp.body, "no such job");
        assert!(HttpResponse::parse(&wire.as_bytes()[..wire.len() - 2]).is_none());
    }

    #[test]
    fn host_header_case_insensitive() {
        let req = HttpRequest::parse(b"GET /x HTTP/1.1\r\nhOsT:  mirror.sc24\r\n\r\n").unwrap();
        assert_eq!(req.host, "mirror.sc24");
    }
}
