//! A minimal HTTP/1.1 subset: one request, one response, server closes.

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Method (only GET is used).
    pub method: String,
    /// Request path including any query string.
    pub path: String,
    /// `Host:` header (virtual-host routing key).
    pub host: String,
}

impl HttpRequest {
    /// Parse a request out of raw bytes. Returns `None` until the header
    /// block is complete.
    pub fn parse(raw: &[u8]) -> Option<HttpRequest> {
        let text = core::str::from_utf8(raw).ok()?;
        let head = text.split_once("\r\n\r\n")?.0;
        let mut lines = head.lines();
        let request_line = lines.next()?;
        let mut parts = request_line.split_whitespace();
        let method = parts.next()?.to_string();
        let path = parts.next()?.to_string();
        let mut host = String::new();
        for line in lines {
            if let Some((k, v)) = line.split_once(':') {
                if k.eq_ignore_ascii_case("host") {
                    host = v.trim().to_string();
                }
            }
        }
        Some(HttpRequest { method, path, host })
    }

    /// Format the wire form of a GET.
    pub fn format_get(host: &str, path: &str) -> String {
        format!("GET {path} HTTP/1.1\r\nHost: {host}\r\n\r\n")
    }
}

/// Format a response (server closes the connection afterwards).
pub fn format_response(status: u16, body: &str) -> String {
    let reason = match status {
        200 => "OK",
        302 => "Found",
        404 => "Not Found",
        _ => "Status",
    };
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let wire = HttpRequest::format_get("ip6.me", "/");
        let req = HttpRequest::parse(wire.as_bytes()).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/");
        assert_eq!(req.host, "ip6.me");
    }

    #[test]
    fn incomplete_request_waits() {
        assert!(HttpRequest::parse(b"GET / HTTP/1.1\r\nHost: x").is_none());
    }

    #[test]
    fn response_format() {
        let r = format_response(200, "hello");
        assert!(r.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(r.ends_with("\r\n\r\nhello"));
        assert!(r.contains("Content-Length: 5"));
    }

    #[test]
    fn host_header_case_insensitive() {
        let req = HttpRequest::parse(b"GET /x HTTP/1.1\r\nhOsT:  mirror.sc24\r\n\r\n").unwrap();
        assert_eq!(req.host, "mirror.sc24");
    }
}
