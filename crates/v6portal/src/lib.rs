//! # v6portal — intervention services for the sc24v6 testbed
//!
//! The web destinations the paper's DNS interventions point at, plus the
//! test-ipv6.com-style readiness scoring:
//!
//! * [`http`] — the minimal HTTP/1.1 used across the simulator
//! * [`server`] — a virtual-hosting portal server node: the ip6.me-style
//!   "what is my IP" page with the IPv6-only explanation for legacy
//!   clients, and the test mirror's subtest vhosts
//! * [`scoring`] — the 10-point readiness score: the legacy logic that
//!   produced the erroneous Fig. 5 result, and the paper's proposed
//!   RFC 8925-aware revision

#![warn(missing_docs)]

pub mod http;
pub mod scoring;
pub mod server;

pub use scoring::{score_legacy, score_rfc8925_aware, Score, SubtestResults};
pub use server::PortalServer;
