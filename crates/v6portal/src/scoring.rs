//! The test-ipv6.com-style 10-point IPv6 readiness score.
//!
//! Two scoring policies:
//!
//! * [`score_legacy`] — the stock mirror logic from SC23. It counts a
//!   subtest as passed when its HTTP fetch completed, **without checking
//!   which address family actually served it**. Combined with wildcard-A
//!   DNS poisoning this produces the paper's Figure 5 defect: an IPv4-only
//!   client whose every hostname resolves to the mirror's IPv4 address
//!   fetches all subtests successfully and is told 10/10.
//!
//! * [`score_rfc8925_aware`] — the paper's §VI proposal: verify the family
//!   that served each subtest, and only award a perfect score to clients
//!   whose IPv4 stack is actually off (RFC 8925 engaged). "Properly
//!   configured dual-stack clients will also receive a 10/10 score under
//!   default test-ipv6.com testing logic" — the revision caps them at 9
//!   and labels the remaining step.

use std::net::IpAddr;

/// The observable result of one subtest fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnInfo {
    /// Address actually connected to.
    pub peer: IpAddr,
    /// HTTP status (0 when the fetch never completed).
    pub status: u16,
}

impl ConnInfo {
    /// Did the fetch complete with success?
    pub fn ok(&self) -> bool {
        self.status == 200
    }

    /// Was it served over IPv6?
    pub fn via_v6(&self) -> bool {
        matches!(self.peer, IpAddr::V6(_))
    }
}

/// Results the client-side test harness gathered.
#[derive(Debug, Clone, Default)]
pub struct SubtestResults {
    /// Fetch of the dual-stack test hostname.
    pub dual_stack: Option<ConnInfo>,
    /// Fetch of the IPv4-only (A-record) test hostname.
    pub v4_only: Option<ConnInfo>,
    /// Fetch of the IPv6-only (AAAA-record) test hostname.
    pub v6_only: Option<ConnInfo>,
    /// Fetch of the large-packet IPv6 hostname (MTU subtest).
    pub v6_mtu: Option<ConnInfo>,
    /// Client's own report: is its IPv4 stack administratively off
    /// (RFC 8925 honoured)? The revised mirror's client script reads this
    /// from the OS; the legacy mirror ignores it.
    pub client_v4_stack_off: bool,
}

/// A readiness score out of 10, with the mirror's verdict text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Score {
    /// Points out of 10.
    pub points: u8,
    /// The headline the user sees.
    pub verdict: String,
}

fn fetched(c: &Option<ConnInfo>) -> bool {
    c.map(|c| c.ok()).unwrap_or(false)
}

fn fetched_v6(c: &Option<ConnInfo>) -> bool {
    c.map(|c| c.ok() && c.via_v6()).unwrap_or(false)
}

fn fetched_v4(c: &Option<ConnInfo>) -> bool {
    c.map(|c| c.ok() && !c.via_v6()).unwrap_or(false)
}

/// SC23-era scoring: family-blind.
///
/// * dual-stack fetch: 2 points
/// * v4-only fetch: 2 points
/// * v6-only fetch: 4 points
/// * v6 MTU fetch: 2 points
pub fn score_legacy(r: &SubtestResults) -> Score {
    let mut points = 0u8;
    if fetched(&r.dual_stack) {
        points += 2;
    }
    if fetched(&r.v4_only) {
        points += 2;
    }
    if fetched(&r.v6_only) {
        points += 4;
    }
    if fetched(&r.v6_mtu) {
        points += 2;
    }
    let verdict = match points {
        10 => "10/10: your IPv6 connectivity appears perfect".to_string(),
        0 => "0/10: no connectivity detected".to_string(),
        p => format!("{p}/10: partial IPv6 readiness"),
    };
    Score { points, verdict }
}

/// The paper's proposed revision: verify families, explain failures, and
/// reserve 10/10 for RFC 8925 (IPv6-only-preferred) clients.
pub fn score_rfc8925_aware(r: &SubtestResults) -> Score {
    // The v6 subtests only count when genuinely served over IPv6.
    let v6_ok = fetched_v6(&r.v6_only);
    let mtu_ok = fetched_v6(&r.v6_mtu);
    let ds_ok = fetched(&r.dual_stack);
    let ds_via_v6 = fetched_v6(&r.dual_stack);
    let v4_reachable = fetched_v4(&r.v4_only) || fetched_v4(&r.dual_stack);

    if !v6_ok {
        // The Fig. 5/Fig. 6 population: no real IPv6 service.
        let verdict = if v4_reachable || fetched(&r.v6_only) {
            "0/10: your device only used legacy IPv4 on this IPv6-only \
             network — please visit the SCinet helpdesk"
                .to_string()
        } else {
            "0/10: no connectivity detected".to_string()
        };
        return Score { points: 0, verdict };
    }
    let mut points = 0u8;
    if ds_ok {
        points += 2;
    }
    if fetched(&r.v4_only) {
        points += 2;
    }
    points += 4; // v6_ok checked above
    if mtu_ok {
        points += 2;
    }
    if ds_ok && !ds_via_v6 {
        // Dual-stack name fetched over v4: source selection is off.
        points = points.saturating_sub(3);
        return Score {
            points,
            verdict: format!(
                "{points}/10: IPv6 works but your device preferred IPv4 for \
                 dual-stack destinations"
            ),
        };
    }
    if !r.client_v4_stack_off {
        // Everything works, but the IPv4 stack is still on: cap at 9.
        let points = points.min(9);
        return Score {
            points,
            verdict: format!(
                "{points}/10: dual-stack works — enable IPv6-only (RFC 8925 \
                 option 108) for a perfect score"
            ),
        };
    }
    Score {
        points,
        verdict: format!("{points}/10: IPv6-only operation confirmed"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v6(status: u16) -> Option<ConnInfo> {
        Some(ConnInfo {
            peer: "64:ff9b::be5c:9e04".parse().unwrap(),
            status,
        })
    }

    fn v4(status: u16) -> Option<ConnInfo> {
        Some(ConnInfo {
            peer: "23.153.8.71".parse().unwrap(),
            status,
        })
    }

    /// Fig. 5: IPv4-only client, poisoned DNS redirects every hostname to
    /// the mirror's v4 address — everything "fetches", legacy says 10/10.
    #[test]
    fn fig5_legacy_scores_erroneous_10() {
        let r = SubtestResults {
            dual_stack: v4(200),
            v4_only: v4(200),
            v6_only: v4(200), // the AAAA-only hostname, hijacked to v4!
            v6_mtu: v4(200),
            client_v4_stack_off: false,
        };
        assert_eq!(score_legacy(&r).points, 10, "the documented defect");
        // The revised logic catches it.
        let fixed = score_rfc8925_aware(&r);
        assert_eq!(fixed.points, 0);
        assert!(fixed.verdict.contains("helpdesk"));
    }

    /// A healthy RFC 8925 client (v6-only + NAT64): both logics give 10.
    #[test]
    fn rfc8925_client_scores_10_under_both() {
        let r = SubtestResults {
            dual_stack: v6(200),
            v4_only: v6(200), // reached via NAT64 — still served, via v6
            v6_only: v6(200),
            v6_mtu: v6(200),
            client_v4_stack_off: true,
        };
        assert_eq!(score_legacy(&r).points, 10);
        let fixed = score_rfc8925_aware(&r);
        assert_eq!(fixed.points, 10);
        assert!(fixed.verdict.contains("IPv6-only operation confirmed"));
    }

    /// §VI: "properly configured dual-stack clients will also receive a
    /// 10/10 score under default test-ipv6.com testing logic" — the
    /// revision caps them at 9.
    #[test]
    fn dual_stack_capped_at_9_by_revision() {
        let r = SubtestResults {
            dual_stack: v6(200),
            v4_only: v4(200),
            v6_only: v6(200),
            v6_mtu: v6(200),
            client_v4_stack_off: false,
        };
        assert_eq!(score_legacy(&r).points, 10);
        let fixed = score_rfc8925_aware(&r);
        assert_eq!(fixed.points, 9);
        assert!(fixed.verdict.contains("option 108"));
    }

    /// Fig. 11: VPN client — nothing reachable: 0/10 under both.
    #[test]
    fn fig11_vpn_zero() {
        let r = SubtestResults::default();
        assert_eq!(score_legacy(&r).points, 0);
        assert_eq!(score_rfc8925_aware(&r).points, 0);
    }

    #[test]
    fn partial_v6_failure_modes() {
        // v6 works but MTU subtest fails (tunnel MTU issue).
        let r = SubtestResults {
            dual_stack: v6(200),
            v4_only: v6(200),
            v6_only: v6(200),
            v6_mtu: None,
            client_v4_stack_off: true,
        };
        assert_eq!(score_legacy(&r).points, 8);
        assert_eq!(score_rfc8925_aware(&r).points, 8);
    }

    #[test]
    fn wrong_family_preference_detected() {
        // Dual-stack name fetched over v4 while v6 works: rule fires.
        let r = SubtestResults {
            dual_stack: v4(200),
            v4_only: v4(200),
            v6_only: v6(200),
            v6_mtu: v6(200),
            client_v4_stack_off: false,
        };
        let fixed = score_rfc8925_aware(&r);
        assert!(fixed.points < 9);
        assert!(fixed.verdict.contains("preferred IPv4"));
    }

    #[test]
    fn failed_fetches_do_not_count() {
        let r = SubtestResults {
            dual_stack: v6(500),
            v4_only: None,
            v6_only: v6(200),
            v6_mtu: None,
            client_v4_stack_off: true,
        };
        assert_eq!(score_legacy(&r).points, 4);
    }
}
