//! The portal server node: a virtual-hosting HTTP responder standing in for
//! ip6.me and the SC test-ipv6.com mirror.
//!
//! The crucial property for the paper's intervention: like the real ip6.me,
//! it answers **any** `Host:` header (poisoned clients arrive with the
//! hostname they originally wanted), and the page body tells the client
//! which address family actually reached the server.

use crate::http::{format_response, HttpRequest};
use std::any::Any;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use v6sim::engine::{Ctx, Node};
use v6sim::tcp::TcpEndpoint;
use v6wire::arp::{ArpOp, ArpPacket};
use v6wire::ethernet::{EtherType, EthernetFrame};
use v6wire::fasthash::FastMap;
use v6wire::icmpv4::Icmpv4Message;
use v6wire::icmpv6::Icmpv6Message;
use v6wire::ipv4::{proto, Ipv4Packet};
use v6wire::ipv6::Ipv6Packet;
use v6wire::mac::MacAddr;
use v6wire::ndp::{NdpOption, NeighborAdvertisement};
use v6wire::packet::{build_arp, build_icmpv6};
use v6wire::tcp::TcpSegment;
use v6wire::view::{FrameView, Icmp4View, Icmp6View, L3View, L4View};

/// What a vhost serves.
#[derive(Debug, Clone)]
pub enum VhostContent {
    /// ip6.me-style echo: your address + IPv6-only explanation for v4
    /// visitors.
    Ip6MeEcho,
    /// A mirror subtest endpoint; body identifies the subtest.
    MirrorSubtest(&'static str),
    /// Fixed body.
    Fixed(String),
}

/// One served request, for assertions and the census.
#[derive(Debug, Clone)]
pub struct FetchRecord {
    /// `Host:` header as sent by the client.
    pub host: String,
    /// Request path.
    pub path: String,
    /// Client address as seen by the server (post-NAT).
    pub peer: IpAddr,
    /// Which of the server's own addresses served it.
    pub served_on: IpAddr,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct FlowId {
    local: IpAddr,
    remote: IpAddr,
    rport: u16,
    lport: u16,
}

struct ServerFlow {
    ep: TcpEndpoint,
    responded: bool,
}

/// The portal node. Attach to the internet router (or a LAN segment — it
/// answers ARP/NDP for its addresses).
pub struct PortalServer {
    name: String,
    /// Server MAC.
    pub mac: MacAddr,
    /// IPv4 addresses served.
    pub v4_addrs: Vec<Ipv4Addr>,
    /// IPv6 addresses served.
    pub v6_addrs: Vec<Ipv6Addr>,
    /// Virtual hosts (lowercased host → content).
    pub vhosts: FastMap<String, VhostContent>,
    /// Content served for unknown Host headers (the intervention page).
    pub fallback: Option<VhostContent>,
    /// TCP ports accepted (80 by default; add 443 for the VPN concentrator
    /// and VTC stand-ins).
    pub tcp_ports: Vec<u16>,
    flows: FastMap<FlowId, ServerFlow>,
    /// Every completed request.
    pub fetch_log: Vec<FetchRecord>,
}

impl PortalServer {
    /// An empty portal on the given addresses.
    pub fn new(
        name: impl Into<String>,
        v4_addrs: Vec<Ipv4Addr>,
        v6_addrs: Vec<Ipv6Addr>,
    ) -> PortalServer {
        let name = name.into();
        let mac = MacAddr::new([0x02, 0x80, 0, 0, 0, name.len() as u8]);
        PortalServer {
            name,
            mac,
            v4_addrs,
            v6_addrs,
            vhosts: FastMap::default(),
            fallback: None,
            tcp_ports: vec![80],
            flows: FastMap::default(),
            fetch_log: Vec::new(),
        }
    }

    /// The paper's ip6.me stand-in: 23.153.8.71 / 2001:4810:0:3::71,
    /// answering any hostname with the echo page.
    pub fn ip6me() -> PortalServer {
        let mut s = PortalServer::new(
            "ip6.me",
            vec!["23.153.8.71".parse().expect("static ip")],
            vec!["2001:4810:0:3::71".parse().expect("static ip")],
        );
        s.vhosts.insert("ip6.me".into(), VhostContent::Ip6MeEcho);
        s.fallback = Some(VhostContent::Ip6MeEcho);
        s
    }

    /// The SC test-ipv6.com mirror: per-subtest vhosts on dedicated
    /// addresses. Poisoned clients land here too (fallback page).
    pub fn mirror() -> PortalServer {
        let mut s = PortalServer::new(
            "test-mirror",
            vec!["198.51.100.80".parse().expect("static ip")],
            vec!["2602:5c24::80".parse().expect("static ip")],
        );
        s.vhosts
            .insert("ds.mirror.sc24".into(), VhostContent::MirrorSubtest("ds"));
        s.vhosts
            .insert("ipv4.mirror.sc24".into(), VhostContent::MirrorSubtest("v4"));
        s.vhosts
            .insert("ipv6.mirror.sc24".into(), VhostContent::MirrorSubtest("v6"));
        s.vhosts
            .insert("mtu.mirror.sc24".into(), VhostContent::MirrorSubtest("mtu"));
        s.fallback = Some(VhostContent::MirrorSubtest("fallback"));
        s
    }

    /// Add a vhost.
    pub fn with_vhost(mut self, host: &str, content: VhostContent) -> PortalServer {
        self.vhosts.insert(host.to_ascii_lowercase(), content);
        self
    }

    /// Restore the post-construction state: live TCP flows dropped and
    /// the fetch log cleared. Addresses, vhosts, and port configuration
    /// survive (warm-cell arena reuse).
    pub fn reset(&mut self) {
        self.flows.clear();
        self.fetch_log.clear();
    }

    /// Requests recorded for `host`.
    pub fn fetches_for(&self, host: &str) -> Vec<&FetchRecord> {
        self.fetch_log.iter().filter(|f| f.host == host).collect()
    }

    fn render(&self, content: &VhostContent, req: &HttpRequest, peer: IpAddr) -> String {
        match content {
            VhostContent::Ip6MeEcho => {
                let mut body = format!("You are connecting with an address of {peer}\n");
                match peer {
                    IpAddr::V4(_) => body.push_str(
                        "NOTICE: this network is IPv6-only. Your device used legacy \
                         IPv4, which has no internet access here.\nYour device's lack \
                         of IPv6 support is the reason internet is unavailable.\n\
                         Please visit the SCinet helpdesk for assistance.\n",
                    ),
                    IpAddr::V6(_) => body.push_str("IPv6 connectivity confirmed.\n"),
                }
                body
            }
            VhostContent::MirrorSubtest(label) => {
                format!(
                    "subtest={label} peer={peer} host={} path={}\n",
                    req.host, req.path
                )
            }
            VhostContent::Fixed(s) => s.clone(),
        }
    }

    fn serve(&mut self, id: FlowId, ctx: &mut Ctx, reply_mac: MacAddr) {
        let Some(flow) = self.flows.get_mut(&id) else {
            return;
        };
        if flow.responded || !flow.ep.is_established() {
            return;
        }
        let Some(req) = HttpRequest::parse(&flow.ep.received) else {
            return;
        };
        flow.responded = true;
        let content = self
            .vhosts
            .get(&req.host.to_ascii_lowercase())
            .cloned()
            .or_else(|| self.fallback.clone());
        let (status, body) = match content {
            Some(c) => (200, self.render(&c, &req, id.remote)),
            None => (404, "no such site\n".to_string()),
        };
        self.fetch_log.push(FetchRecord {
            host: req.host.clone(),
            path: req.path.clone(),
            peer: id.remote,
            served_on: id.local,
        });
        let response = format_response(status, &body);
        let flow = self.flows.get_mut(&id).expect("present");
        let mut segs = flow.ep.send(response.as_bytes());
        segs.extend(flow.ep.close());
        for seg in segs {
            self.send_segment(id, seg, reply_mac, ctx);
        }
    }

    fn send_segment(&self, id: FlowId, seg: TcpSegment, dst_mac: MacAddr, ctx: &mut Ctx) {
        match (id.local, id.remote) {
            (IpAddr::V6(l), IpAddr::V6(r)) => {
                let pkt = Ipv6Packet::new(l, r, proto::TCP, seg.encode_v6(l, r));
                let frame = EthernetFrame::new(dst_mac, self.mac, EtherType::Ipv6, pkt.encode());
                ctx.send(0, frame.encode());
            }
            (IpAddr::V4(l), IpAddr::V4(r)) => {
                let pkt = Ipv4Packet::new(l, r, proto::TCP, seg.encode_v4(l, r));
                let frame = EthernetFrame::new(dst_mac, self.mac, EtherType::Ipv4, pkt.encode());
                ctx.send(0, frame.encode());
            }
            _ => {}
        }
    }
}

impl Node for PortalServer {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_frame(&mut self, _port: u32, raw: &[u8], ctx: &mut Ctx) {
        // Zero-copy view (same accept/reject behaviour as the owned
        // parser): only the one TCP segment actually handed to a flow is
        // materialized, instead of owning every layer's payload per frame.
        let Ok(parsed) = FrameView::parse(raw) else {
            return;
        };
        match (&parsed.l3, &parsed.l4) {
            (L3View::Arp(arp), _)
                if arp.op == ArpOp::Request && self.v4_addrs.contains(&arp.target_ip) =>
            {
                let reply = ArpPacket::reply_to(arp, self.mac);
                ctx.send(0, build_arp(self.mac, arp.sender_mac, &reply));
            }
            (L3View::V6(ip), L4View::Icmp6(Icmp6View::NeighborSolicitation { target, .. }))
                if self.v6_addrs.contains(target) =>
            {
                let na = Icmpv6Message::NeighborAdvertisement(NeighborAdvertisement {
                    router: false,
                    solicited: true,
                    override_flag: true,
                    target: *target,
                    options: vec![NdpOption::TargetLinkLayer(self.mac)],
                });
                ctx.send(
                    0,
                    build_icmpv6(self.mac, parsed.eth.src, *target, ip.src, &na),
                );
            }
            (
                L3View::V6(ip),
                L4View::Icmp6(Icmp6View::EchoRequest {
                    ident,
                    seq,
                    payload,
                }),
            ) if self.v6_addrs.contains(&ip.dst) => {
                let reply = Icmpv6Message::EchoReply {
                    ident: *ident,
                    seq: *seq,
                    payload: payload.to_vec(),
                };
                ctx.send(
                    0,
                    build_icmpv6(self.mac, parsed.eth.src, ip.dst, ip.src, &reply),
                );
            }
            (
                L3View::V4(ip),
                L4View::Icmp4(Icmp4View::EchoRequest {
                    ident,
                    seq,
                    payload,
                }),
            ) if self.v4_addrs.contains(&ip.dst) => {
                let reply = Icmpv4Message::EchoReply {
                    ident: *ident,
                    seq: *seq,
                    payload: payload.to_vec(),
                };
                ctx.send(
                    0,
                    v6wire::packet::build_icmpv4(self.mac, parsed.eth.src, ip.dst, ip.src, &reply),
                );
            }
            (L3View::V6(ip), L4View::Tcp(seg))
                if self.v6_addrs.contains(&ip.dst) && self.tcp_ports.contains(&seg.dst_port) =>
            {
                let id = FlowId {
                    local: IpAddr::V6(ip.dst),
                    remote: IpAddr::V6(ip.src),
                    rport: seg.src_port,
                    lport: seg.dst_port,
                };
                self.on_tcp(id, seg.to_segment(), parsed.eth.src, ctx);
            }
            (L3View::V4(ip), L4View::Tcp(seg))
                if self.v4_addrs.contains(&ip.dst) && self.tcp_ports.contains(&seg.dst_port) =>
            {
                let id = FlowId {
                    local: IpAddr::V4(ip.dst),
                    remote: IpAddr::V4(ip.src),
                    rport: seg.src_port,
                    lport: seg.dst_port,
                };
                self.on_tcp(id, seg.to_segment(), parsed.eth.src, ctx);
            }
            _ => {}
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl PortalServer {
    fn on_tcp(&mut self, id: FlowId, seg: TcpSegment, reply_mac: MacAddr, ctx: &mut Ctx) {
        let flow = self.flows.entry(id).or_insert_with(|| ServerFlow {
            ep: TcpEndpoint::listen(id.lport),
            responded: false,
        });
        let replies = flow.ep.on_segment(&seg);
        let closed = flow.ep.is_closed();
        for r in replies {
            self.send_segment(id, r, reply_mac, ctx);
        }
        self.serve(id, ctx, reply_mac);
        if closed {
            self.flows.remove(&id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6sim::engine::Network;
    use v6sim::time::SimTime;
    use v6wire::packet::{ParsedFrame, L4};

    /// Drive a raw HTTP exchange against the portal from a scripted client.
    struct ScriptClient {
        name: String,
        local: IpAddr,
        remote: IpAddr,
        host_header: String,
        ep: Option<TcpEndpoint>,
        sent: bool,
        pub response: Option<String>,
        mac: MacAddr,
    }

    impl ScriptClient {
        fn new(local: &str, remote: &str, host_header: &str) -> Box<ScriptClient> {
            Box::new(ScriptClient {
                name: "client".into(),
                local: local.parse().unwrap(),
                remote: remote.parse().unwrap(),
                host_header: host_header.into(),
                ep: None,
                sent: false,
                response: None,
                mac: MacAddr::new([2, 0, 0, 0, 7, 7]),
            })
        }

        fn send_seg(&self, seg: TcpSegment, ctx: &mut Ctx) {
            match (self.local, self.remote) {
                (IpAddr::V6(l), IpAddr::V6(r)) => {
                    let pkt = Ipv6Packet::new(l, r, proto::TCP, seg.encode_v6(l, r));
                    let f = EthernetFrame::new(
                        MacAddr::BROADCAST,
                        self.mac,
                        EtherType::Ipv6,
                        pkt.encode(),
                    );
                    ctx.send(0, f.encode());
                }
                (IpAddr::V4(l), IpAddr::V4(r)) => {
                    let pkt = Ipv4Packet::new(l, r, proto::TCP, seg.encode_v4(l, r));
                    let f = EthernetFrame::new(
                        MacAddr::BROADCAST,
                        self.mac,
                        EtherType::Ipv4,
                        pkt.encode(),
                    );
                    ctx.send(0, f.encode());
                }
                _ => {}
            }
        }
    }

    impl Node for ScriptClient {
        fn name(&self) -> &str {
            &self.name
        }

        fn start(&mut self, ctx: &mut Ctx) {
            let (ep, syn) = TcpEndpoint::connect(55000, 80, 42);
            self.ep = Some(ep);
            self.send_seg(syn, ctx);
        }

        fn on_frame(&mut self, _port: u32, raw: &[u8], ctx: &mut Ctx) {
            let Ok(parsed) = ParsedFrame::parse(raw) else {
                return;
            };
            let seg = match &parsed.l4 {
                L4::Tcp(s) => s.clone(),
                _ => return,
            };
            let Some(mut ep) = self.ep.take() else { return };
            let mut out = ep.on_segment(&seg);
            if ep.is_established() && !self.sent {
                self.sent = true;
                let req = HttpRequest::format_get(&self.host_header, "/");
                out.extend(ep.send(req.as_bytes()));
            }
            if ep.peer_closed && self.response.is_none() {
                self.response = Some(String::from_utf8_lossy(&ep.received).into_owned());
                out.extend(ep.close());
            }
            self.ep = Some(ep);
            for s in out {
                self.send_seg(s, ctx);
            }
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn exchange(client: Box<ScriptClient>, server: PortalServer) -> (String, PortalServer) {
        let mut net = Network::new();
        let c = net.add_node(client);
        let s = net.add_node(Box::new(server));
        net.link(c, 0, s, 0, SimTime::from_millis(1));
        net.run_until(SimTime::from_secs(2));
        let resp = net
            .node_mut::<ScriptClient>(c)
            .response
            .clone()
            .expect("response received");
        // Move the server back out for inspection.
        let log = std::mem::take(&mut net.node_mut::<PortalServer>(s).fetch_log);
        let mut dummy = PortalServer::new("x", vec![], vec![]);
        dummy.fetch_log = log;
        (resp, dummy)
    }

    #[test]
    fn ip6me_v4_visitor_gets_intervention_text() {
        let (resp, server) = exchange(
            ScriptClient::new("192.0.2.7", "23.153.8.71", "some.random.site"),
            PortalServer::ip6me(),
        );
        assert!(resp.starts_with("HTTP/1.1 200"));
        assert!(resp.contains("192.0.2.7"));
        assert!(resp.contains("visit the SCinet helpdesk"), "{resp}");
        assert_eq!(server.fetch_log.len(), 1);
        assert_eq!(server.fetch_log[0].host, "some.random.site");
    }

    #[test]
    fn ip6me_v6_visitor_gets_confirmation() {
        let (resp, _) = exchange(
            ScriptClient::new("2607:fb90:9bda:a425::50", "2001:4810:0:3::71", "ip6.me"),
            PortalServer::ip6me(),
        );
        assert!(resp.contains("IPv6 connectivity confirmed"));
        assert!(!resp.contains("helpdesk"));
    }

    #[test]
    fn mirror_subtests_identify_themselves() {
        let (resp, _) = exchange(
            ScriptClient::new("2607:fb90::50", "2602:5c24::80", "ipv6.mirror.sc24"),
            PortalServer::mirror(),
        );
        assert!(resp.contains("subtest=v6"));
    }

    #[test]
    fn unknown_vhost_404_when_no_fallback() {
        let mut server = PortalServer::new("strict", vec!["198.51.100.9".parse().unwrap()], vec![]);
        server
            .vhosts
            .insert("only.site".into(), VhostContent::Fixed("hello".into()));
        let (resp, _) = exchange(
            ScriptClient::new("192.0.2.7", "198.51.100.9", "other.site"),
            server,
        );
        assert!(resp.starts_with("HTTP/1.1 404"));
    }
}
