//! Property-based tests for the mirror scoring engines.

use proptest::prelude::*;
use std::net::IpAddr;
use v6portal::scoring::{score_legacy, score_rfc8925_aware, ConnInfo, SubtestResults};

fn arb_conn() -> impl Strategy<Value = Option<ConnInfo>> {
    proptest::option::of(
        (
            any::<bool>(),
            any::<u32>(),
            prop::sample::select(vec![0u16, 200, 404, 500]),
        )
            .prop_map(|(v6, addr, status)| ConnInfo {
                peer: if v6 {
                    IpAddr::V6(std::net::Ipv6Addr::from(
                        u128::from(addr) | (0x2600u128 << 112),
                    ))
                } else {
                    IpAddr::V4(std::net::Ipv4Addr::from(addr | 0x0100_0000))
                },
                status,
            }),
    )
}

fn arb_results() -> impl Strategy<Value = SubtestResults> {
    (
        arb_conn(),
        arb_conn(),
        arb_conn(),
        arb_conn(),
        any::<bool>(),
    )
        .prop_map(
            |(dual_stack, v4_only, v6_only, v6_mtu, client_v4_stack_off)| SubtestResults {
                dual_stack,
                v4_only,
                v6_only,
                v6_mtu,
                client_v4_stack_off,
            },
        )
}

proptest! {
    /// Both scores stay in range and are deterministic.
    #[test]
    fn scores_bounded_and_deterministic(r in arb_results()) {
        let l1 = score_legacy(&r);
        let l2 = score_legacy(&r);
        let f1 = score_rfc8925_aware(&r);
        let f2 = score_rfc8925_aware(&r);
        prop_assert!(l1.points <= 10);
        prop_assert!(f1.points <= 10);
        prop_assert_eq!(l1, l2);
        prop_assert_eq!(f1, f2);
    }

    /// The revised logic never awards *more* points than the legacy logic:
    /// it only verifies harder.
    #[test]
    fn revised_never_exceeds_legacy(r in arb_results()) {
        prop_assert!(score_rfc8925_aware(&r).points <= score_legacy(&r).points);
    }

    /// A perfect revised score requires a genuinely v6-served v6 subtest AND
    /// the IPv4 stack reported off — the §VI requirement, as an invariant.
    #[test]
    fn revised_10_requires_rfc8925(r in arb_results()) {
        let f = score_rfc8925_aware(&r);
        if f.points == 10 {
            prop_assert!(r.client_v4_stack_off, "10/10 without option 108: {r:?}");
            let v6ok = r.v6_only.map(|c| c.ok() && c.via_v6()).unwrap_or(false);
            prop_assert!(v6ok, "10/10 without genuine v6: {r:?}");
        }
    }

    /// A client with zero completed fetches scores zero under both.
    #[test]
    fn no_fetches_scores_zero(off in any::<bool>()) {
        let r = SubtestResults {
            client_v4_stack_off: off,
            ..Default::default()
        };
        prop_assert_eq!(score_legacy(&r).points, 0);
        prop_assert_eq!(score_rfc8925_aware(&r).points, 0);
    }

    /// The revised verdict always carries actionable text for imperfect
    /// scores (the paper's §VI usability goal).
    #[test]
    fn verdicts_are_actionable(r in arb_results()) {
        let f = score_rfc8925_aware(&r);
        prop_assert!(!f.verdict.is_empty());
        if f.points == 0 {
            prop_assert!(
                f.verdict.contains("helpdesk") || f.verdict.contains("no connectivity"),
                "{}", f.verdict
            );
        }
    }
}
