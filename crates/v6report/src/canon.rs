//! A hand-rolled canonical JSON value: writer and parser.
//!
//! The committed `reports/*.json` goldens are diffed byte-for-byte in
//! CI, so the serialized form must be a pure function of the data:
//!
//! * object keys are sorted (the value is stored in a `BTreeMap`, so
//!   insertion order cannot leak into the output);
//! * integers print as plain decimal; non-integral numbers always print
//!   with exactly three fractional digits (`{:.3}`), so re-parsing and
//!   re-writing a manifest is byte-stable;
//! * indentation is fixed at two spaces and every file ends in a single
//!   newline;
//! * there is nowhere to put a timestamp, hostname, or wall-clock
//!   figure — the schema in `manifest.rs` simply never records one.
//!
//! The parser accepts standard JSON (it must read `BENCH_engine.json`,
//! which is written by `examples/bench_report.rs`, not by us) and
//! rejects duplicate keys, since a manifest with two spellings of one
//! field cannot be canonical.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value with canonical (sorted-key, fixed-format) rendering.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A non-integral number; canonically rendered as `{:.3}`.
    F64(f64),
    /// A string.
    Str(String),
    /// An array (order is data, preserved as given).
    Arr(Vec<Json>),
    /// An object (keys always iterate sorted).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(BTreeMap::new())
    }

    /// Insert `key` into an object value; panics on non-objects (the
    /// builder in `manifest.rs` only ever calls it on objects).
    pub fn set(&mut self, key: &str, value: Json) {
        match self {
            Json::Obj(map) => {
                map.insert(key.to_string(), value);
            }
            other => panic!("set {key:?} on non-object {other:?}"),
        }
    }

    /// The member named `key`, if this is an object that has one.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// Walk a dotted path of object keys (array elements are not
    /// addressable this way; the differ walks them structurally).
    pub fn get_path(&self, path: &[&str]) -> Option<&Json> {
        path.iter().try_fold(self, |v, k| v.get(k))
    }

    /// The value as `f64` if it is any kind of number.
    pub fn as_number(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Canonical text form (no trailing newline; callers writing files
    /// append one).
    pub fn canonical(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                assert!(v.is_finite(), "canonical JSON holds finite numbers only");
                let _ = write!(out, "{v:.3}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    pad(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (standard syntax, duplicate keys rejected).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {}, found {:?}",
            want as char,
            *pos,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        if map.insert(key.clone(), value).is_some() {
            return Err(format!("duplicate key {key:?}"));
        }
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            other => return Err(format!("expected ',' or '}}', found {other:?}")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            other => return Err(format!("expected ',' or ']', found {other:?}")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("surrogate \\u escape")?);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar, however many bytes long.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty by match arm");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut fractional = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                fractional = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if fractional {
        let v: f64 = text.parse().map_err(|_| format!("bad number {text:?}"))?;
        if !v.is_finite() {
            return Err(format!("non-finite number {text:?}"));
        }
        Ok(Json::F64(v))
    } else if let Some(stripped) = text.strip_prefix('-') {
        let v: i64 = format!("-{stripped}")
            .parse()
            .map_err(|_| format!("bad number {text:?}"))?;
        Ok(Json::I64(v))
    } else {
        let v: u64 = text.parse().map_err(|_| format!("bad number {text:?}"))?;
        Ok(Json::U64(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_sort_regardless_of_insertion_order() {
        let mut a = Json::obj();
        a.set("zebra", Json::U64(1));
        a.set("alpha", Json::U64(2));
        let mut b = Json::obj();
        b.set("alpha", Json::U64(2));
        b.set("zebra", Json::U64(1));
        assert_eq!(a.canonical(), b.canonical());
        assert!(a.canonical().find("alpha") < a.canonical().find("zebra"));
    }

    #[test]
    fn roundtrip_is_byte_stable() {
        let mut v = Json::obj();
        v.set("count", Json::U64(66));
        v.set("ms", Json::F64(25.569));
        v.set("neg", Json::I64(-3));
        v.set("name", Json::Str("paper/off/macos \"q\"\n".into()));
        v.set("rows", Json::Arr(vec![Json::Bool(true), Json::Null]));
        v.set("empty", Json::obj());
        let text = v.canonical();
        let reparsed = Json::parse(&text).expect("own output parses");
        assert_eq!(reparsed.canonical(), text, "parse∘write is the identity");
    }

    #[test]
    fn floats_always_carry_three_decimals() {
        assert_eq!(Json::F64(2.78).canonical(), "2.780");
        assert_eq!(Json::F64(2581.0).canonical(), "2581.000");
        assert_eq!(Json::U64(2581).canonical(), "2581");
    }

    #[test]
    fn parser_accepts_bench_style_json_and_rejects_duplicates() {
        let bench = r#"{ "a": { "ms_per_iter": 1.234, "frames_per_sec": 123456 }, "s": 2.78 }"#;
        let v = Json::parse(bench).expect("parses");
        assert_eq!(
            v.get_path(&["a", "frames_per_sec"]),
            Some(&Json::U64(123456))
        );
        assert!(Json::parse(r#"{"a":1,"a":2}"#).is_err());
        assert!(Json::parse("{}x").is_err());
    }
}
