//! Structural manifest diffing with a drift taxonomy.
//!
//! Drift between a fresh run and a committed manifest falls in two
//! classes:
//!
//! * **Behavioural** — the run *did something different*: census
//!   counts, per-cell verdicts, conservation totals, config digests,
//!   engine/device counters. Always fatal: the paper's Fig. 4/5–11
//!   behaviour is exactly these fields.
//! * **Informational** — bookkeeping that can legitimately move without
//!   the behaviour changing: frame-pool and trace-cap counters
//!   (`metrics.pool.*`, `metrics.trace.*`) and every wall-clock bench
//!   figure (`timings.*` in a bench manifest). Reported, but gated only
//!   by a configurable relative tolerance — zero by default for the
//!   deterministic pool/trace counters, generous by default for bench
//!   timings which vary machine to machine.
//!
//! Classification is by field path, so the taxonomy lives in one place
//! ([`classify`]) and the gate (`v6report check`) never needs schema
//! knowledge beyond it.

use crate::canon::Json;
use std::fmt;

/// Drift taxonomy — see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftClass {
    /// The run behaved differently. Always fatal.
    Behavioural,
    /// Deterministic bookkeeping moved (pool/trace counters). Fatal
    /// beyond [`DiffConfig::counter_tolerance`] (zero by default).
    Informational,
    /// A wall-clock bench figure moved. Fatal beyond
    /// [`DiffConfig::timing_tolerance`].
    Timing,
}

impl fmt::Display for DriftClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DriftClass::Behavioural => "behavioural",
            DriftClass::Informational => "informational",
            DriftClass::Timing => "timing",
        })
    }
}

/// One drifted field.
#[derive(Debug, Clone, PartialEq)]
pub struct Drift {
    /// Dotted path of the field (array elements as `[i]`).
    pub path: String,
    /// Committed value (`None` when the field is new).
    pub before: Option<Json>,
    /// Fresh value (`None` when the field vanished).
    pub after: Option<Json>,
    /// Taxonomy class of the path.
    pub class: DriftClass,
    /// Relative numeric delta `|after-before| / max(|before|, 1)`, when
    /// both sides are numbers.
    pub rel_delta: Option<f64>,
}

/// Tolerances the gate applies to non-behavioural drift.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffConfig {
    /// Allowed relative delta on informational counters. The pool and
    /// trace counters are deterministic, so the default is exact.
    pub counter_tolerance: f64,
    /// Allowed relative delta on bench timings. Wall-clock figures move
    /// with the machine, so the default only catches order-of-magnitude
    /// regressions (10× slower or faster).
    pub timing_tolerance: f64,
}

impl Default for DiffConfig {
    fn default() -> DiffConfig {
        DiffConfig {
            counter_tolerance: 0.0,
            timing_tolerance: 10.0,
        }
    }
}

/// Classify a field path within a manifest of `kind`.
pub fn classify(kind: &str, path: &str) -> DriftClass {
    if kind == "bench" && (path.starts_with("timings.") || path == "timings") {
        return DriftClass::Timing;
    }
    if path.starts_with("metrics.pool.") || path.starts_with("metrics.trace.") {
        return DriftClass::Informational;
    }
    DriftClass::Behavioural
}

/// Everything [`diff_manifests`] found, plus the gate verdict logic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DriftReport {
    /// Every drifted field, in path order of discovery (committed-side
    /// key order, i.e. sorted).
    pub drifts: Vec<Drift>,
}

impl DriftReport {
    /// True when nothing drifted at all.
    pub fn is_clean(&self) -> bool {
        self.drifts.is_empty()
    }

    /// The drifts that fail the gate under `cfg`: every behavioural
    /// drift, plus informational/timing drift beyond its tolerance.
    pub fn fatal<'a>(&'a self, cfg: &'a DiffConfig) -> impl Iterator<Item = &'a Drift> {
        self.drifts.iter().filter(move |d| match d.class {
            DriftClass::Behavioural => true,
            DriftClass::Informational => d
                .rel_delta
                .map(|r| r > cfg.counter_tolerance)
                .unwrap_or(true),
            DriftClass::Timing => d
                .rel_delta
                .map(|r| r > cfg.timing_tolerance)
                .unwrap_or(true),
        })
    }

    /// Does this report fail the gate under `cfg`?
    pub fn gated(&self, cfg: &DiffConfig) -> bool {
        self.fatal(cfg).next().is_some()
    }

    /// Human-readable drift listing, one line per field, fatal drifts
    /// marked. Stable ordering (derived from sorted object keys), so CI
    /// logs diff cleanly too.
    pub fn render(&self, cfg: &DiffConfig) -> String {
        let mut out = String::new();
        for d in &self.drifts {
            let fatal = match d.class {
                DriftClass::Behavioural => true,
                DriftClass::Informational => d
                    .rel_delta
                    .map(|r| r > cfg.counter_tolerance)
                    .unwrap_or(true),
                DriftClass::Timing => d
                    .rel_delta
                    .map(|r| r > cfg.timing_tolerance)
                    .unwrap_or(true),
            };
            let marker = if fatal { "DRIFT" } else { "note " };
            let show = |v: &Option<Json>| match v {
                None => "<absent>".to_string(),
                Some(v) => v.canonical().lines().next().unwrap_or("").to_string(),
            };
            out.push_str(&format!(
                "{marker} [{}] {}: {} -> {}",
                d.class,
                d.path,
                show(&d.before),
                show(&d.after),
            ));
            if let Some(r) = d.rel_delta {
                out.push_str(&format!(" (rel {r:.3})"));
            }
            out.push('\n');
        }
        out
    }
}

/// Structurally diff `before` (committed) against `after` (fresh),
/// classifying each drifted field for a manifest of `kind`.
pub fn diff_manifests(kind: &str, before: &Json, after: &Json) -> DriftReport {
    let mut report = DriftReport::default();
    walk(kind, "", before, after, &mut report);
    report
}

fn record(
    kind: &str,
    path: &str,
    before: Option<&Json>,
    after: Option<&Json>,
    out: &mut DriftReport,
) {
    let rel_delta = match (
        before.and_then(Json::as_number),
        after.and_then(Json::as_number),
    ) {
        (Some(a), Some(b)) => Some((b - a).abs() / a.abs().max(1.0)),
        _ => None,
    };
    out.drifts.push(Drift {
        path: path.to_string(),
        before: before.cloned(),
        after: after.cloned(),
        class: classify(kind, path),
        rel_delta,
    });
}

fn walk(kind: &str, path: &str, before: &Json, after: &Json, out: &mut DriftReport) {
    match (before, after) {
        (Json::Obj(a), Json::Obj(b)) => {
            let keys: std::collections::BTreeSet<&String> = a.keys().chain(b.keys()).collect();
            for key in keys {
                let sub = if path.is_empty() {
                    key.to_string()
                } else {
                    format!("{path}.{key}")
                };
                match (a.get(key), b.get(key)) {
                    (Some(x), Some(y)) => walk(kind, &sub, x, y, out),
                    (x, y) => record(kind, &sub, x, y, out),
                }
            }
        }
        (Json::Arr(a), Json::Arr(b)) => {
            for i in 0..a.len().max(b.len()) {
                let sub = format!("{path}[{i}]");
                match (a.get(i), b.get(i)) {
                    (Some(x), Some(y)) => walk(kind, &sub, x, y, out),
                    (x, y) => record(kind, &sub, x, y, out),
                }
            }
        }
        (x, y) if x == y => {}
        (x, y) => record(kind, path, Some(x), Some(y), out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(census: u64, pool: u64, v4: bool) -> Json {
        Json::parse(&format!(
            r#"{{
                "kind": "fleet-matrix",
                "census": {{ "fleet": {{ "accurate_v6only": {census} }} }},
                "metrics": {{ "pool": {{ "allocated": {pool} }} }},
                "verdicts": [ {{ "cell": "paper/off/macos/seed1", "has_v4": {v4} }} ]
            }}"#
        ))
        .expect("literal parses")
    }

    #[test]
    fn identical_documents_are_clean() {
        let a = doc(40, 500, false);
        let r = diff_manifests("fleet-matrix", &a, &a);
        assert!(r.is_clean());
        assert!(!r.gated(&DiffConfig::default()));
    }

    #[test]
    fn census_mutation_is_behavioural_and_fatal() {
        let r = diff_manifests("fleet-matrix", &doc(40, 500, false), &doc(41, 500, false));
        assert_eq!(r.drifts.len(), 1);
        let d = &r.drifts[0];
        assert_eq!(d.path, "census.fleet.accurate_v6only");
        assert_eq!(d.class, DriftClass::Behavioural);
        assert!(
            r.gated(&DiffConfig::default()),
            "behavioural drift always gates"
        );
        // No tolerance forgives behaviour.
        let loose = DiffConfig {
            counter_tolerance: 1e9,
            timing_tolerance: 1e9,
        };
        assert!(r.gated(&loose));
        assert!(r
            .render(&loose)
            .contains("DRIFT [behavioural] census.fleet.accurate_v6only"));
    }

    #[test]
    fn verdict_mutation_is_behavioural() {
        let r = diff_manifests("fleet-matrix", &doc(40, 500, false), &doc(40, 500, true));
        assert_eq!(r.drifts[0].path, "verdicts[0].has_v4");
        assert_eq!(r.drifts[0].class, DriftClass::Behavioural);
        assert!(r.gated(&DiffConfig::default()));
    }

    #[test]
    fn pool_counters_are_informational_with_exact_default_gate() {
        let r = diff_manifests("fleet-matrix", &doc(40, 500, false), &doc(40, 505, false));
        assert_eq!(r.drifts[0].class, DriftClass::Informational);
        assert!(
            r.gated(&DiffConfig::default()),
            "default counter tolerance is exact, so any delta still gates"
        );
        let loose = DiffConfig {
            counter_tolerance: 0.05,
            ..DiffConfig::default()
        };
        assert!(!r.gated(&loose), "1% delta passes a 5% tolerance");
        assert!(r.render(&loose).starts_with("note "));
    }

    #[test]
    fn bench_timings_gate_only_by_threshold() {
        let a = Json::parse(r#"{ "kind": "bench", "structure": { "fleet_cells": 66 }, "timings": { "fleet": { "hops": { "ms_per_sweep": 9.2 } } } }"#).expect("parses");
        let b = Json::parse(r#"{ "kind": "bench", "structure": { "fleet_cells": 66 }, "timings": { "fleet": { "hops": { "ms_per_sweep": 18.4 } } } }"#).expect("parses");
        let r = diff_manifests("bench", &a, &b);
        assert_eq!(r.drifts[0].class, DriftClass::Timing);
        assert!(
            !r.gated(&DiffConfig::default()),
            "2x timing drift is machine noise"
        );
        let strict = DiffConfig {
            timing_tolerance: 0.5,
            ..DiffConfig::default()
        };
        assert!(
            r.gated(&strict),
            "…until the operator tightens the threshold"
        );
        // Structure drift in a bench manifest stays behavioural.
        let c = Json::parse(r#"{ "kind": "bench", "structure": { "fleet_cells": 67 }, "timings": { "fleet": { "hops": { "ms_per_sweep": 9.2 } } } }"#).expect("parses");
        assert!(diff_manifests("bench", &a, &c).gated(&DiffConfig::default()));
    }

    #[test]
    fn added_and_missing_fields_drift() {
        let a = Json::parse(r#"{ "kind": "fleet-matrix", "census": { "fleet": { "a": 1 } } }"#)
            .expect("parses");
        let b = Json::parse(r#"{ "kind": "fleet-matrix", "census": { "fleet": { "b": 1 } } }"#)
            .expect("parses");
        let r = diff_manifests("fleet-matrix", &a, &b);
        assert_eq!(r.drifts.len(), 2);
        assert!(r.drifts.iter().any(|d| d.before.is_none()));
        assert!(r.drifts.iter().any(|d| d.after.is_none()));
        assert!(r.gated(&DiffConfig::default()));
    }
}
