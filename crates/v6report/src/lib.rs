//! # v6report — canonical run manifests and the CI drift gate
//!
//! The paper's core claim is behavioural: each client class (RFC 8925,
//! dual-stack, IPv4-only, poisoned-DNS-intervened) lands in a specific,
//! reproducible cell of the Fig. 4 outcome matrix. This crate turns
//! every canonical fleet run into a committed artifact CI can gate on:
//!
//! * [`manifest`] — build a [`RunManifest`]: config digests (matrix,
//!   per-cell fault plans), the fleet + per-OS census, one verdict row
//!   per cell keyed by a fault-invariant cell label, fleet-wide metrics
//!   sums with the frame-conservation identity, a full-`MetricsSnapshot`
//!   digest per cell, and (for bench manifests) the normalized
//!   `BENCH_engine.json` figures.
//! * [`canon`] — the hand-rolled canonical JSON layer the manifests are
//!   written in: sorted keys, fixed number formatting, no timestamps —
//!   so serial and parallel runs of the same seed are byte-identical.
//! * [`diff`] — the structural differ and the drift taxonomy:
//!   *behavioural* drift (census, verdicts, conservation, counters) is
//!   always fatal; *informational* drift (pool/trace counters, bench
//!   timings) is reported and gated only by a configurable tolerance.
//!
//! The `v6report` binary wires these into the repo workflow:
//! `v6report emit` regenerates the committed `reports/*.json` goldens,
//! `v6report check` re-runs the canonical sweeps and fails on drift,
//! and `v6report diff a.json b.json` classifies the drift between any
//! two manifests.

#![warn(missing_docs)]

pub mod canon;
pub mod diff;
pub mod manifest;

pub use canon::Json;
pub use diff::{classify, diff_manifests, DiffConfig, Drift, DriftClass, DriftReport};
pub use manifest::{
    canonical_population, fnv1a, MatrixSpec, RunManifest, SoakIncidentRow, SoakJobRow, SoakSummary,
    CANONICAL_BASE_SEED, CANONICAL_POPULATION_SHARDS, CANONICAL_POPULATION_SIZE, SCHEMA_VERSION,
};
