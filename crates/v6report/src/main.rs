//! `v6report` — emit, check, and diff canonical run manifests.
//!
//! ```text
//! v6report emit  [--out DIR] [--bench FILE]
//! v6report check [STEM...] [--reports DIR] [--fresh-out DIR] [--bench FILE]
//!                [--tolerance F] [--bench-tolerance F] [--threads N]
//! v6report diff <before.json> <after.json> [--tolerance F] [--bench-tolerance F]
//! ```
//!
//! `emit` regenerates the committed goldens under `reports/`: one
//! manifest per canonical sweep (the 66-cell clean matrix plus every
//! impaired fault variant), the 100k sampled-population census, and
//! `bench.json` normalized from `BENCH_engine.json`. `check` re-runs the same sweeps fresh, writes
//! the fresh manifests under `--fresh-out` (default `target/reports`,
//! uploaded as a CI artifact on failure) and exits nonzero on gated
//! drift, naming every drifted field. With positional STEM arguments
//! (`v6report check matrix_broken-delegation`) only the named goldens
//! are re-run — the per-sweep CI lanes use this to gate just their own
//! manifest without paying for the full canonical set. `diff`
//! classifies the drift between two manifest files without running
//! anything.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use v6report::{diff_manifests, DiffConfig, DriftClass, MatrixSpec, RunManifest};
use v6testbed::scenario::FaultVariant;

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(1, 16)
}

struct Args {
    command: String,
    positional: Vec<String>,
    reports: PathBuf,
    fresh_out: PathBuf,
    bench: PathBuf,
    cfg: DiffConfig,
    threads: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(usage)?;
    let mut args = Args {
        command,
        positional: Vec::new(),
        reports: PathBuf::from("reports"),
        fresh_out: PathBuf::from("target/reports"),
        bench: PathBuf::from("BENCH_engine.json"),
        cfg: DiffConfig::default(),
        threads: default_threads(),
    };
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match flag.as_str() {
            "--out" | "--reports" => args.reports = PathBuf::from(value(&flag)?),
            "--fresh-out" => args.fresh_out = PathBuf::from(value(&flag)?),
            "--bench" => args.bench = PathBuf::from(value(&flag)?),
            "--tolerance" => {
                args.cfg.counter_tolerance = value(&flag)?
                    .parse()
                    .map_err(|e| format!("--tolerance: {e}"))?
            }
            "--bench-tolerance" => {
                args.cfg.timing_tolerance = value(&flag)?
                    .parse()
                    .map_err(|e| format!("--bench-tolerance: {e}"))?
            }
            "--threads" => {
                args.threads = value(&flag)?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            other if !other.starts_with("--") => args.positional.push(other.to_string()),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    Ok(args)
}

fn usage() -> String {
    "usage: v6report <emit|check|diff> [flags]\n\
     \x20 emit  [--out DIR] [--bench FILE]\n\
     \x20 check [STEM...] [--reports DIR] [--fresh-out DIR] [--bench FILE] [--tolerance F] [--bench-tolerance F] [--threads N]\n\
     \x20 diff  <before.json> <after.json> [--tolerance F] [--bench-tolerance F]"
        .to_string()
}

/// Every committed matrix manifest, in emit/check order.
fn canonical_specs() -> Vec<MatrixSpec> {
    FaultVariant::ALL
        .iter()
        .map(|&fault| MatrixSpec::canonical(fault))
        .collect()
}

fn write_manifest(dir: &Path, stem: &str, manifest: &RunManifest) -> Result<PathBuf, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let path = dir.join(format!("{stem}.json"));
    std::fs::write(&path, manifest.canonical())
        .map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok(path)
}

fn bench_manifest(bench_path: &Path) -> Result<Option<RunManifest>, String> {
    if !bench_path.exists() {
        return Ok(None);
    }
    let raw = std::fs::read_to_string(bench_path)
        .map_err(|e| format!("read {}: {e}", bench_path.display()))?;
    RunManifest::bench_from_raw(&raw).map(Some)
}

/// File stem of the committed sampled-population golden.
fn population_stem() -> String {
    format!("population_{}k", v6report::CANONICAL_POPULATION_SIZE / 1000)
}

fn emit(args: &Args) -> Result<(), String> {
    for spec in canonical_specs() {
        let manifest = RunManifest::run_matrix(&spec, args.threads);
        let path = write_manifest(&args.reports, &spec.file_stem(), &manifest)?;
        println!("emitted {}", path.display());
    }
    let population = RunManifest::run_population(&v6report::canonical_population(), args.threads);
    let path = write_manifest(&args.reports, &population_stem(), &population)?;
    println!("emitted {}", path.display());
    match bench_manifest(&args.bench)? {
        Some(manifest) => {
            let path = write_manifest(&args.reports, "bench", &manifest)?;
            println!("emitted {}", path.display());
        }
        None => eprintln!(
            "note: {} not found; skipping bench manifest (run `just bench-report` first)",
            args.bench.display()
        ),
    }
    Ok(())
}

/// Compare `fresh` against the committed manifest at `path`. Returns
/// whether the gate passed.
fn check_one(path: &Path, fresh: &RunManifest, cfg: &DiffConfig) -> Result<bool, String> {
    let committed_text = std::fs::read_to_string(path).map_err(|e| {
        format!(
            "read {}: {e} (run `just bless-reports` to create the goldens)",
            path.display()
        )
    })?;
    if committed_text == fresh.canonical() {
        println!("ok    {}", path.display());
        return Ok(true);
    }
    let committed = v6report::Json::parse(&committed_text)
        .map_err(|e| format!("parse {}: {e}", path.display()))?;
    let report = diff_manifests(fresh.kind(), &committed, fresh.json());
    if report.is_clean() {
        // Same data, different bytes: a manifest written by some other
        // serializer. Canonical form is part of the contract.
        println!("DRIFT {}: non-canonical serialization", path.display());
        return Ok(false);
    }
    let gated = report.gated(cfg);
    let behavioural = report
        .drifts
        .iter()
        .filter(|d| d.class == DriftClass::Behavioural)
        .count();
    println!(
        "{} {}: {} drifted field(s), {} behavioural",
        if gated { "DRIFT" } else { "note " },
        path.display(),
        report.drifts.len(),
        behavioural,
    );
    print!("{}", report.render(cfg));
    Ok(!gated)
}

fn check(args: &Args) -> Result<bool, String> {
    // No positionals → the full canonical set; otherwise only the named
    // stems run (a per-sweep CI lane gates just its own manifest).
    let want = |stem: &str| args.positional.is_empty() || args.positional.iter().any(|s| s == stem);
    let mut matched = 0usize;
    let mut all_ok = true;
    for spec in canonical_specs() {
        if !want(&spec.file_stem()) {
            continue;
        }
        matched += 1;
        let fresh = RunManifest::run_matrix(&spec, args.threads);
        // Always persist the fresh manifest: on drift, CI uploads these
        // for post-mortem diffing against the committed goldens.
        write_manifest(&args.fresh_out, &spec.file_stem(), &fresh)?;
        let committed = args.reports.join(format!("{}.json", spec.file_stem()));
        all_ok &= check_one(&committed, &fresh, &args.cfg)?;
    }
    if want(&population_stem()) {
        matched += 1;
        let fresh = RunManifest::run_population(&v6report::canonical_population(), args.threads);
        write_manifest(&args.fresh_out, &population_stem(), &fresh)?;
        let committed = args.reports.join(format!("{}.json", population_stem()));
        all_ok &= check_one(&committed, &fresh, &args.cfg)?;
    }
    if want("bench") {
        matched += 1;
        match bench_manifest(&args.bench)? {
            Some(fresh) => {
                write_manifest(&args.fresh_out, "bench", &fresh)?;
                let committed = args.reports.join("bench.json");
                all_ok &= check_one(&committed, &fresh, &args.cfg)?;
            }
            None => println!("skip  bench manifest ({} not found)", args.bench.display()),
        }
    }
    // A misspelled stem silently gating nothing would read as a pass;
    // make it an explicit error instead.
    if !args.positional.is_empty() && matched < args.positional.len() {
        let known: Vec<String> = canonical_specs()
            .iter()
            .map(MatrixSpec::file_stem)
            .chain([population_stem(), "bench".to_string()])
            .collect();
        let unknown: Vec<&String> = args
            .positional
            .iter()
            .filter(|s| !known.contains(s))
            .collect();
        if !unknown.is_empty() {
            return Err(format!(
                "unknown manifest stem(s) {unknown:?}; known: {}",
                known.join(", ")
            ));
        }
    }
    Ok(all_ok)
}

fn diff(args: &Args) -> Result<bool, String> {
    let [before_path, after_path] = args.positional.as_slice() else {
        return Err(format!("diff takes exactly two files\n{}", usage()));
    };
    let read = |p: &String| -> Result<v6report::Json, String> {
        let text = std::fs::read_to_string(p).map_err(|e| format!("read {p}: {e}"))?;
        v6report::Json::parse(&text).map_err(|e| format!("parse {p}: {e}"))
    };
    let before = read(before_path)?;
    let after = read(after_path)?;
    let kind = match before.get("kind") {
        Some(v6report::Json::Str(s)) => s.clone(),
        _ => "fleet-matrix".to_string(),
    };
    let report = diff_manifests(&kind, &before, &after);
    if report.is_clean() {
        println!("identical: {before_path} == {after_path}");
        return Ok(true);
    }
    print!("{}", report.render(&args.cfg));
    Ok(!report.gated(&args.cfg))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let outcome = match args.command.as_str() {
        "emit" => emit(&args).map(|()| true),
        "check" => check(&args),
        "diff" => diff(&args),
        other => Err(format!("unknown command {other}\n{}", usage())),
    };
    match outcome {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => {
            eprintln!("v6report: drift gate failed");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("v6report: {e}");
            ExitCode::from(2)
        }
    }
}
