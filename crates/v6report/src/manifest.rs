//! Building [`RunManifest`]s — the canonical, committed description of
//! one fleet (or bench) run.
//!
//! A manifest is the machine-checkable statement "the paper's behaviour
//! held on this run": which configuration was exercised (config digests
//! down to the per-cell fault plan), what every client did (per-cell
//! verdict rows keyed by a fault-invariant cell label), how the
//! population counted (fleet census plus the per-OS breakdown), and
//! what the engine counted while doing it (fleet-wide metrics sums, a
//! per-cell digest of the full `MetricsSnapshot`, and the frame
//! conservation identity). Nothing in it depends on wall-clock time,
//! thread count, or trace verbosity, so the canonical rendering of two
//! runs of the same seed is byte-identical — the property the CI drift
//! gate stands on.

use crate::canon::Json;
use v6fleet::{
    FleetCensus, FleetReport, FleetRunner, LatencySketch, PopulationReport, PopulationSpec,
    SketchPercentiles,
};
use v6testbed::scenario::{FaultVariant, PoisonVariant, ResolutionFailure, TopologyVariant};
use v6testbed::Scenario;

/// The base seed every committed matrix manifest is generated from —
/// the same seed `examples/fleet_census.rs` sweeps, so the goldens
/// describe the run an operator actually sees.
pub const CANONICAL_BASE_SEED: u64 = 0x5c24;

/// Manifest schema version, bumped on any field addition/rename so a
/// differ never silently compares across schemas. Version 2 added the
/// classified DNS resolution-failure breakdown (`dns_failures`) to
/// every census row.
pub const SCHEMA_VERSION: u64 = 2;

/// Cells in the committed sampled-population golden
/// (`reports/population_100k.json`). Big enough that the census mix is
/// statistically meaningful, small enough for the CI report-gate; the
/// full 1M census lives behind `just population`.
pub const CANONICAL_POPULATION_SIZE: u64 = 100_000;

/// Shard count the canonical population manifest is generated with.
/// The report is provably shard-invariant (see `v6fleet`'s population
/// tests) — this only shapes work-queue granularity.
pub const CANONICAL_POPULATION_SHARDS: usize = 8;

/// The canonical sampled population the committed golden describes:
/// the paper-default mix at [`CANONICAL_BASE_SEED`].
pub fn canonical_population() -> PopulationSpec {
    PopulationSpec::paper_default(CANONICAL_BASE_SEED, CANONICAL_POPULATION_SIZE)
}

/// FNV-1a over arbitrary text — the per-cell metrics digest, also used
/// by the lab daemon to fingerprint stored manifests in soak summaries.
pub fn fnv1a(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn hex(d: u64) -> Json {
    Json::Str(format!("{d:016x}"))
}

/// Which canonical sweep a matrix manifest describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixSpec {
    /// Base seed the matrix was derived from.
    pub base_seed: u64,
    /// The fault regime every cell ran under.
    pub fault: FaultVariant,
}

impl MatrixSpec {
    /// The canonical spec for `fault` (seed [`CANONICAL_BASE_SEED`]).
    pub fn canonical(fault: FaultVariant) -> MatrixSpec {
        MatrixSpec {
            base_seed: CANONICAL_BASE_SEED,
            fault,
        }
    }

    /// File stem the manifest is committed under (`matrix_clean`,
    /// `matrix_dns64-outage`, …).
    pub fn file_stem(&self) -> String {
        format!("matrix_{}", self.fault.label())
    }

    /// The scenario list this spec enumerates.
    pub fn scenarios(&self) -> Vec<Scenario> {
        Scenario::matrix_with_fault(self.base_seed, self.fault)
    }
}

/// One completed job in a soak summary — what the lab daemon ran and
/// the digest of the manifest it stored for it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoakJobRow {
    /// Daemon-assigned job id (submission order).
    pub id: u64,
    /// Job kind (`matrix` or `population`).
    pub kind: String,
    /// Human label (fault variant, or `population/<size>`).
    pub label: String,
    /// Cells the job executed.
    pub cells: u64,
    /// FNV-1a digest of the job's canonical manifest bytes.
    pub manifest_digest: u64,
}

/// One (deduplicated) incident in a soak summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoakIncidentRow {
    /// `warning` or `critical`.
    pub severity: String,
    /// Manifest field path whose delta tripped the detector.
    pub field: String,
    /// Human-readable explanation with the observed delta.
    pub detail: String,
    /// Virtual tick of the first occurrence.
    pub first_seen_tick: u64,
    /// How many times the same incident recurred (dedup counter).
    pub count: u64,
}

/// Everything a `soak` manifest describes: the jobs a lab-daemon soak
/// executed under the virtual clock, the incidents its detector raised,
/// and the merged virtual-time latency sketch across all job cells.
/// All of it is deterministic — wall-clock soak figures belong in
/// `BENCH_engine.json`, not here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoakSummary {
    /// Base seed the soak's jobs were derived from.
    pub base_seed: u64,
    /// Virtual ticks the scheduler advanced through.
    pub ticks: u64,
    /// Completed jobs, in execution order.
    pub jobs: Vec<SoakJobRow>,
    /// Deduplicated incidents, in first-seen order.
    pub incidents: Vec<SoakIncidentRow>,
    /// Merged per-cell completion-time sketch (virtual micros).
    pub latency: LatencySketch,
}

/// A canonical run manifest: a [`Json`] tree that only ever contains
/// deterministic data, with a byte-stable rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest(Json);

impl RunManifest {
    /// Run `spec`'s matrix on `threads` workers and build its manifest.
    /// Thread count affects wall-clock only; the manifest is identical
    /// for any value (asserted by the stability tests).
    pub fn run_matrix(spec: &MatrixSpec, threads: usize) -> RunManifest {
        let scenarios = spec.scenarios();
        let run = FleetRunner::new(threads).run(&scenarios);
        RunManifest::from_fleet(spec, &scenarios, &run.report)
    }

    /// Build the manifest for an already-executed fleet over `spec`'s
    /// scenario list.
    pub fn from_fleet(
        spec: &MatrixSpec,
        scenarios: &[Scenario],
        report: &FleetReport,
    ) -> RunManifest {
        assert_eq!(
            scenarios.len(),
            report.results.len(),
            "one result per scenario"
        );
        let mut root = Json::obj();
        root.set("schema", Json::U64(SCHEMA_VERSION));
        root.set("kind", Json::Str("fleet-matrix".into()));
        root.set("config", config_section(spec, scenarios));
        root.set("census", census_section(report));
        root.set("verdicts", verdict_rows(scenarios, report));
        root.set("metrics", metrics_section(report));
        root.set("timing", timing_section(report));
        RunManifest(root)
    }

    /// Run a population census on `threads` workers and build its
    /// manifest. Thread and shard counts affect wall-clock only; the
    /// manifest is byte-identical for any values (asserted by the
    /// stability tests).
    pub fn run_population(spec: &PopulationSpec, threads: usize) -> RunManifest {
        let run = FleetRunner::new(threads).run_population(spec, CANONICAL_POPULATION_SHARDS);
        RunManifest::from_population(spec, &run.report)
    }

    /// Build the manifest for an already-executed population census.
    pub fn from_population(spec: &PopulationSpec, report: &PopulationReport) -> RunManifest {
        assert_eq!(
            spec.digest(),
            report.spec_digest,
            "report must come from this spec"
        );
        let mut root = Json::obj();
        root.set("schema", Json::U64(SCHEMA_VERSION));
        root.set("kind", Json::Str("population".into()));
        root.set("config", population_config_section(spec));
        root.set("census", population_census_section(report));
        root.set("fault_mix", fault_mix_section(report));
        root.set("sketch", sketch_section(report));
        root.set("report_digest", hex(report.digest()));
        RunManifest(root)
    }

    /// Build a `soak` manifest from a lab-daemon soak summary. Every
    /// field is a pure function of the virtual clock and the job seeds,
    /// so the committed `reports/soak_smoke.json` golden is exact.
    pub fn from_soak(summary: &SoakSummary) -> RunManifest {
        let mut config = Json::obj();
        config.set("base_seed", Json::U64(summary.base_seed));
        config.set("ticks", Json::U64(summary.ticks));
        config.set("jobs", Json::U64(summary.jobs.len() as u64));

        let jobs = summary
            .jobs
            .iter()
            .map(|j| {
                let mut row = Json::obj();
                row.set("id", Json::U64(j.id));
                row.set("kind", Json::Str(j.kind.clone()));
                row.set("label", Json::Str(j.label.clone()));
                row.set("cells", Json::U64(j.cells));
                row.set("manifest_digest", hex(j.manifest_digest));
                row
            })
            .collect();

        let incidents = summary
            .incidents
            .iter()
            .map(|i| {
                let mut row = Json::obj();
                row.set("severity", Json::Str(i.severity.clone()));
                row.set("field", Json::Str(i.field.clone()));
                row.set("detail", Json::Str(i.detail.clone()));
                row.set("first_seen_tick", Json::U64(i.first_seen_tick));
                row.set("count", Json::U64(i.count));
                row
            })
            .collect();

        let pct = summary.latency.percentiles();
        let mut latency = Json::obj();
        latency.set("count", Json::U64(summary.latency.count));
        latency.set("min", Json::U64(summary.latency.min));
        latency.set("max", Json::U64(summary.latency.max));
        latency.set("p50", Json::U64(pct.p50));
        latency.set("p90", Json::U64(pct.p90));
        latency.set("p99", Json::U64(pct.p99));
        latency.set("digest", hex(summary.latency.digest()));

        let mut root = Json::obj();
        root.set("schema", Json::U64(SCHEMA_VERSION));
        root.set("kind", Json::Str("soak".into()));
        root.set("config", config);
        root.set("jobs", Json::Arr(jobs));
        root.set("incidents", Json::Arr(incidents));
        root.set("latency", latency);
        RunManifest(root)
    }

    /// Normalize a raw `BENCH_engine.json` (as written by
    /// `examples/bench_report.rs`) into the canonical bench manifest:
    /// deterministic workload structure under `structure`, wall-clock
    /// figures under `timings` where the differ treats them as
    /// informational.
    pub fn bench_from_raw(raw: &str) -> Result<RunManifest, String> {
        let v = Json::parse(raw).map_err(|e| format!("BENCH_engine.json: {e}"))?;
        let num = |path: &[&str]| -> Result<Json, String> {
            v.get_path(path)
                .cloned()
                .ok_or_else(|| format!("BENCH_engine.json missing {}", path.join(".")))
        };
        let mut structure = Json::obj();
        structure.set("engine_workload", num(&["engine_hot_path", "workload"])?);
        structure.set(
            "frames_per_iter",
            num(&["engine_hot_path", "frames_per_iter"])?,
        );
        structure.set(
            "events_per_iter",
            num(&["engine_hot_path", "events_per_iter"])?,
        );
        structure.set("fleet_cells", num(&["fleet_sweep", "cells"])?);
        structure.set(
            "baseline_fleet_ms_per_sweep",
            num(&["baseline_pre_optimization", "fleet_ms_per_sweep"])?,
        );
        structure.set(
            "baseline_fleet_scenarios_per_sec",
            num(&["baseline_pre_optimization", "fleet_scenarios_per_sec"])?,
        );

        // The population row appears once `just population` has run; a
        // bench file from before that is still a valid manifest.
        if v.get("population_census").is_some() {
            structure.set(
                "population_samples",
                num(&["population_census", "samples"])?,
            );
        }

        // Likewise the service-soak row, written by `just soak`
        // (examples/load_gen.rs) once the daemon has been hammered.
        if v.get("service_soak").is_some() {
            structure.set("service_soak_requests", num(&["service_soak", "requests"])?);
            // Worker count appears once the soak ran against a daemon
            // new enough to report it; older bench files stay valid.
            if let Some(w) = v.get_path(&["service_soak", "workers"]) {
                structure.set("service_soak_workers", w.clone());
            }
        }

        // The warm-cell row, written by `just warm-bench`
        // (examples/population_census.rs --warm-bench) once the arena
        // path has been benched against the cold baseline.
        if v.get("warm_cell").is_some() {
            structure.set("warm_cell_samples", num(&["warm_cell", "samples"])?);
            structure.set("warm_cell_shards", num(&["warm_cell", "shards"])?);
            structure.set("warm_cell_threads", num(&["warm_cell", "threads"])?);
        }

        let mut timings = Json::obj();
        let mut engine = Json::obj();
        let mut fleet = Json::obj();
        for mode in ["off", "hops", "full"] {
            engine.set(mode, num(&["engine_hot_path", mode])?);
            fleet.set(mode, num(&["fleet_sweep", mode])?);
        }
        timings.set("engine", engine);
        timings.set("fleet", fleet);
        timings.set("speedup_vs_baseline", num(&["speedup_vs_baseline"])?);
        if v.get("population_census").is_some() {
            timings.set(
                "population_scenarios_per_sec",
                num(&["population_census", "scenarios_per_sec"])?,
            );
        }
        if v.get("service_soak").is_some() {
            let mut soak = Json::obj();
            for field in ["p50_us", "p90_us", "p99_us", "requests_per_sec"] {
                soak.set(field, num(&["service_soak", field])?);
            }
            timings.set("service_soak", soak);
        }
        if v.get("warm_cell").is_some() {
            let mut warm = Json::obj();
            for field in [
                "cold_scenarios_per_sec",
                "warm_scenarios_per_sec",
                "speedup",
                "warm_mt_scenarios_per_sec",
                "thread_scaling",
            ] {
                warm.set(field, num(&["warm_cell", field])?);
            }
            timings.set("warm_cell", warm);
        }

        // The DNS-resolution row, written once a bench of the iterative
        // resolver (delegation walk + EDNS0/TCP fallback) joins
        // bench_report; bench files from before it stay valid, and a
        // rewrite of an older file preserves the section when present.
        if v.get("dns_resolution").is_some() {
            structure.set(
                "dns_resolution_queries",
                num(&["dns_resolution", "queries"])?,
            );
            let mut dns = Json::obj();
            for field in [
                "iterative_us_per_query",
                "flat_us_per_query",
                "queries_per_sec",
            ] {
                if let Some(val) = v.get_path(&["dns_resolution", field]) {
                    dns.set(field, val.clone());
                }
            }
            timings.set("dns_resolution", dns);
        }

        // And the zero-copy codec rows (owned-vs-view parse, checksum
        // kernels, Full-trace ring vs its recorded baseline), written once
        // the conformance-corpus benchmarks are part of bench_report.
        if v.get("codec_zero_copy").is_some() {
            structure.set(
                "codec_corpus_inputs",
                num(&["codec_zero_copy", "corpus_inputs"])?,
            );
            let mut codec = Json::obj();
            for field in [
                "wire_parse_speedup",
                "dns_parse_speedup",
                "checksum_swar_gb_per_s",
                "full_trace_speedup",
            ] {
                codec.set(field, num(&["codec_zero_copy", field])?);
            }
            timings.set("codec_zero_copy", codec);
        }

        let mut root = Json::obj();
        root.set("schema", Json::U64(SCHEMA_VERSION));
        root.set("kind", Json::Str("bench".into()));
        root.set("source", Json::Str("BENCH_engine.json".into()));
        root.set("structure", structure);
        root.set("timings", timings);
        Ok(RunManifest(root))
    }

    /// Wrap an already-parsed manifest document.
    pub fn from_json(v: Json) -> RunManifest {
        RunManifest(v)
    }

    /// The manifest's `kind` field (`fleet-matrix`, `population`,
    /// `soak`, or `bench`).
    pub fn kind(&self) -> &str {
        match self.0.get("kind") {
            Some(Json::Str(s)) => s,
            _ => "unknown",
        }
    }

    /// The underlying JSON tree.
    pub fn json(&self) -> &Json {
        &self.0
    }

    /// Canonical file form: byte-stable, newline-terminated.
    pub fn canonical(&self) -> String {
        let mut text = self.0.canonical();
        text.push('\n');
        text
    }
}

fn config_section(spec: &MatrixSpec, scenarios: &[Scenario]) -> Json {
    // Fold the per-cell digests (which each cover topology, poison, OS,
    // seed, and the cell's resolved fault plan) into one matrix digest,
    // and the per-cell plan digests into one plan digest. XOR with a
    // position-dependent rotation keeps both order-sensitive.
    let mut matrix_digest: u64 = 0;
    let mut plan_digest: u64 = 0;
    for (i, s) in scenarios.iter().enumerate() {
        matrix_digest ^= s.digest().rotate_left((i % 63) as u32);
        plan_digest ^= s.fault.plan(s.seed).digest().rotate_left((i % 63) as u32);
    }

    let mut fault = Json::obj();
    fault.set("variant", Json::Str(spec.fault.label().into()));
    fault.set("plan_digest", hex(plan_digest));
    fault.set(
        "nat64_binding_cap",
        match spec.fault.nat64_binding_cap() {
            Some(cap) => Json::U64(cap as u64),
            None => Json::Null,
        },
    );

    let mut config = Json::obj();
    config.set("base_seed", Json::U64(spec.base_seed));
    config.set("cells", Json::U64(scenarios.len() as u64));
    config.set("matrix_digest", hex(matrix_digest));
    config.set("fault", fault);
    config.set(
        "topology_variants",
        Json::Arr(
            TopologyVariant::ALL
                .iter()
                .map(|t| Json::Str(t.label().into()))
                .collect(),
        ),
    );
    config.set(
        "poison_variants",
        Json::Arr(
            PoisonVariant::ALL
                .iter()
                .map(|p| Json::Str(p.label().into()))
                .collect(),
        ),
    );
    config
}

fn census_row(c: &FleetCensus) -> Json {
    let mut row = Json::obj();
    row.set("associated", Json::U64(c.associated as u64));
    row.set("naive_v6only", Json::U64(c.naive_v6only as u64));
    row.set("accurate_v6only", Json::U64(c.accurate_v6only as u64));
    row.set("with_v4_path", Json::U64(c.with_v4_path as u64));
    row.set("rfc8925_engaged", Json::U64(c.rfc8925_engaged as u64));
    row.set("intervened", Json::U64(c.intervened as u64));
    row.set("degraded", Json::U64(c.degraded as u64));
    let mut failures = Json::obj();
    for f in ResolutionFailure::ALL {
        failures.set(f.label(), Json::U64(c.dns_failures[f.index()] as u64));
    }
    row.set("dns_failures", failures);
    row
}

fn census_section(report: &FleetReport) -> Json {
    let mut by_os = Json::obj();
    for (os, row) in report.census_by_os() {
        by_os.set(&os, census_row(&row));
    }
    let mut census = Json::obj();
    census.set("fleet", census_row(&report.census));
    census.set("by_os", by_os);
    census
}

fn verdict_rows(scenarios: &[Scenario], report: &FleetReport) -> Json {
    let rows = scenarios
        .iter()
        .zip(&report.results)
        .map(|(s, r)| {
            let mut row = Json::obj();
            row.set("cell", Json::Str(s.cell_label()));
            row.set("seed", Json::U64(r.seed));
            row.set("rfc8925_engaged", Json::Bool(r.verdict.rfc8925_engaged));
            row.set("has_v4", Json::Bool(r.verdict.has_v4));
            row.set("sc24", Json::Str(r.verdict.sc24.label().into()));
            row.set("ip6me", Json::Str(r.verdict.ip6me.label().into()));
            row.set("intervened", Json::Bool(r.verdict.intervened));
            row.set("naive_counted", Json::Bool(r.census.naive_counted));
            row.set("accurate_counted", Json::Bool(r.census.accurate_counted));
            let nat64_refusals = r
                .metrics
                .node("5g-gw")
                .map(|n| n.device.get("nat64.dropped_table_full"))
                .unwrap_or(0);
            row.set(
                "degraded",
                Json::Bool(r.metrics.faults.total_dropped() > 0 || nat64_refusals > 0),
            );
            row.set("completed_us", Json::U64(r.completed_at.as_micros()));
            row.set("events", Json::U64(r.metrics.engine.events_processed));
            // One digest over the *entire* rendered MetricsSnapshot —
            // every engine, fault, pool, trace, and per-node counter of
            // this cell. Any counter drift anywhere moves this field.
            row.set("metrics_digest", hex(fnv1a(&r.metrics.to_string())));
            row
        })
        .collect();
    Json::Arr(rows)
}

fn metrics_section(report: &FleetReport) -> Json {
    let totals = report.metrics_totals();

    let mut engine = Json::obj();
    engine.set(
        "events_processed",
        Json::U64(totals.engine.events_processed),
    );
    engine.set(
        "frames_delivered",
        Json::U64(totals.engine.frames_delivered),
    );
    engine.set(
        "frames_forwarded",
        Json::U64(totals.engine.frames_forwarded),
    );
    engine.set(
        "frames_dropped_unlinked",
        Json::U64(totals.engine.frames_dropped_unlinked),
    );
    engine.set("timers_fired", Json::U64(totals.engine.timers_fired));
    engine.set(
        "queue_high_water",
        Json::U64(totals.engine.queue_high_water),
    );

    let mut fault = Json::obj();
    fault.set("dropped", Json::U64(totals.faults.dropped));
    fault.set("outage_dropped", Json::U64(totals.faults.outage_dropped));
    fault.set("delayed", Json::U64(totals.faults.delayed));
    fault.set("duplicated", Json::U64(totals.faults.duplicated));
    fault.set("corrupted", Json::U64(totals.faults.corrupted));
    fault.set("truncated", Json::U64(totals.faults.truncated));
    fault.set("outage_micros", Json::U64(totals.faults.outage_micros));

    let mut pool = Json::obj();
    pool.set("allocated", Json::U64(totals.pool.allocated));
    pool.set("reused", Json::U64(totals.pool.reused));

    let mut trace = Json::obj();
    trace.set("suppressed", Json::U64(totals.trace.suppressed));
    trace.set(
        "capture_suppressed",
        Json::U64(totals.trace.capture_suppressed),
    );

    let (tx, rx) = totals.conservation();
    let mut conservation = Json::obj();
    conservation.set("frames_tx", Json::U64(tx));
    conservation.set("frames_rx", Json::U64(rx));
    conservation.set(
        "forwarded_plus_unlinked",
        Json::U64(totals.engine.frames_forwarded + totals.engine.frames_dropped_unlinked),
    );
    conservation.set("delivered", Json::U64(totals.engine.frames_delivered));

    let mut nodes = Json::obj();
    for n in &totals.nodes {
        let mut link = Json::obj();
        link.set("frames_tx", Json::U64(n.link.frames_tx));
        link.set("frames_rx", Json::U64(n.link.frames_rx));
        link.set("bytes_tx", Json::U64(n.link.bytes_tx));
        link.set("bytes_rx", Json::U64(n.link.bytes_rx));
        link.set("drops_unlinked", Json::U64(n.link.drops_unlinked));
        link.set("timer_fires", Json::U64(n.link.timer_fires));
        let mut device = Json::obj();
        for (name, value) in n.device.iter() {
            device.set(name, Json::U64(value));
        }
        let mut row = Json::obj();
        row.set("link", link);
        row.set("device", device);
        nodes.set(&n.name, row);
    }

    let mut metrics = Json::obj();
    metrics.set("engine", engine);
    metrics.set("fault", fault);
    metrics.set("pool", pool);
    metrics.set("trace", trace);
    metrics.set("conservation", conservation);
    metrics.set("nodes", nodes);
    metrics
}

fn population_config_section(spec: &PopulationSpec) -> Json {
    let weights = |rows: Vec<(String, u32)>| {
        let mut obj = Json::obj();
        for (label, w) in rows {
            obj.set(&label, Json::U64(u64::from(w)));
        }
        obj
    };
    let mut config = Json::obj();
    config.set("seed", Json::U64(spec.seed));
    config.set("size", Json::U64(spec.size));
    config.set("spec_digest", hex(spec.digest()));
    config.set(
        "os_weights",
        weights(
            spec.os_weights
                .iter()
                .map(|&(id, w)| (id.name().to_string(), w))
                .collect(),
        ),
    );
    config.set(
        "topology_weights",
        weights(
            spec.topology_weights
                .iter()
                .map(|&(t, w)| (t.label().to_string(), w))
                .collect(),
        ),
    );
    config.set(
        "poison_weights",
        weights(
            spec.poison_weights
                .iter()
                .map(|&(p, w)| (p.label().to_string(), w))
                .collect(),
        ),
    );
    config.set(
        "fault_weights",
        weights(
            spec.fault_weights
                .iter()
                .map(|&(f, w)| (f.label().to_string(), w))
                .collect(),
        ),
    );
    config
}

fn population_census_section(report: &PopulationReport) -> Json {
    let mut by_os = Json::obj();
    for (os, row) in report.census_by_os() {
        by_os.set(&os, census_row(&row));
    }
    let mut census = Json::obj();
    census.set("fleet", census_row(&report.sketch.census));
    census.set("by_os", by_os);
    census
}

fn fault_mix_section(report: &PopulationReport) -> Json {
    let mut mix = Json::obj();
    for (f, &n) in FaultVariant::ALL.iter().zip(&report.sketch.fault_mix) {
        mix.set(f.label(), Json::U64(n));
    }
    mix
}

fn sketch_section(report: &PopulationReport) -> Json {
    let row = |sketch: &LatencySketch, pct: SketchPercentiles| {
        let mut r = Json::obj();
        r.set("count", Json::U64(sketch.count));
        r.set("min", Json::U64(sketch.min));
        r.set("max", Json::U64(sketch.max));
        r.set("p50", Json::U64(pct.p50));
        r.set("p90", Json::U64(pct.p90));
        r.set("p99", Json::U64(pct.p99));
        // The digest covers the full bucket table, so distribution
        // drift between the committed quantiles is still caught.
        r.set("digest", hex(sketch.digest()));
        r
    };
    let mut sketch = Json::obj();
    sketch.set(
        "completed_us",
        row(&report.sketch.completed_us, report.completed_us()),
    );
    sketch.set("events", row(&report.sketch.events, report.events()));
    sketch
}

fn timing_section(report: &FleetReport) -> Json {
    let pct = |p: &v6fleet::Percentiles| {
        let mut row = Json::obj();
        row.set("p50", Json::U64(p.p50));
        row.set("p90", Json::U64(p.p90));
        row.set("max", Json::U64(p.max));
        row
    };
    let mut timing = Json::obj();
    timing.set("completed_us", pct(&report.timing.completed_us));
    timing.set("events", pct(&report.timing.events));
    timing
}
