//! Manifest stability and drift-gate integration tests.
//!
//! The canonical manifest's whole value is invariance: same seed ⇒ same
//! bytes, no matter how many worker threads ran the fleet or how
//! verbose the engine trace was. These tests pin that down, plus the
//! drift taxonomy on a genuinely impaired sweep and on the committed
//! goldens themselves.

use v6fleet::{run_serial, FleetRunner};
use v6report::{diff_manifests, DiffConfig, DriftClass, Json, MatrixSpec, RunManifest};
use v6testbed::scenario::FaultVariant;
use v6testbed::{Scenario, TraceMode};

/// A deliberately small but representative slice of the matrix: the
/// first `n` cells cover the paper topology across poison policies and
/// OS profiles (matrix order is topology-major).
fn subset(base_seed: u64, fault: FaultVariant, n: usize) -> Vec<Scenario> {
    Scenario::matrix_with_fault(base_seed, fault)
        .into_iter()
        .take(n)
        .collect()
}

#[test]
fn manifest_bytes_identical_across_thread_counts() {
    let spec = MatrixSpec {
        base_seed: 0xA11CE,
        fault: FaultVariant::Clean,
    };
    let cells = subset(spec.base_seed, spec.fault, 12);
    let serial = RunManifest::from_fleet(&spec, &cells, &run_serial(&cells));
    let parallel = RunManifest::from_fleet(&spec, &cells, &FleetRunner::new(4).run(&cells).report);
    assert_eq!(
        serial.canonical(),
        parallel.canonical(),
        "1-thread and 4-thread fleets must serialize byte-identically"
    );
}

#[test]
fn manifest_bytes_identical_across_trace_modes() {
    let spec = MatrixSpec {
        base_seed: 0xB0B,
        fault: FaultVariant::Clean,
    };
    let cells = subset(spec.base_seed, spec.fault, 12);
    let runner = FleetRunner::new(2);
    let off = runner.with_trace_mode(TraceMode::Off).run(&cells).report;
    let full = runner.with_trace_mode(TraceMode::Full).run(&cells).report;
    assert_eq!(
        RunManifest::from_fleet(&spec, &cells, &off).canonical(),
        RunManifest::from_fleet(&spec, &cells, &full).canonical(),
        "trace verbosity must never leak into the manifest"
    );
}

#[test]
fn seeded_fault_variant_moves_only_fault_census_and_metrics_fields() {
    let base_seed = 0xFA07;
    let clean_spec = MatrixSpec {
        base_seed,
        fault: FaultVariant::Clean,
    };
    let outage_spec = MatrixSpec {
        base_seed,
        fault: FaultVariant::Dns64Outage,
    };
    // Paper-topology cells (matrix order is topology-major), which host
    // the Raspberry Pi the outage takes down.
    let clean_cells = subset(base_seed, clean_spec.fault, 22);
    let outage_cells = subset(base_seed, outage_spec.fault, 22);
    for (c, o) in clean_cells.iter().zip(&outage_cells) {
        assert_eq!(
            c.cell_label(),
            o.cell_label(),
            "rows line up across variants"
        );
    }
    let clean = RunManifest::from_fleet(&clean_spec, &clean_cells, &run_serial(&clean_cells));
    let outage = RunManifest::from_fleet(&outage_spec, &outage_cells, &run_serial(&outage_cells));

    let report = diff_manifests(clean.kind(), clean.json(), outage.json());
    assert!(!report.is_clean(), "the outage must leave a trace");
    assert!(report.gated(&DiffConfig::default()));

    // Everything the outage may move: the fault configuration, the
    // degraded census fields, per-cell virtual timing / event counts /
    // metrics digests, the metrics sums, and the timing percentiles.
    let allowed = |p: &str| {
        p.starts_with("config.fault.")
            || p == "config.matrix_digest"
            || p.starts_with("metrics.")
            || p.starts_with("timing.")
            || p.ends_with(".degraded")
            || p.ends_with(".completed_us")
            || p.ends_with(".events")
            || p.ends_with(".metrics_digest")
    };
    for d in &report.drifts {
        assert!(
            allowed(&d.path),
            "unexpected drift outside the fault surface: {} ({:?} -> {:?})",
            d.path,
            d.before,
            d.after
        );
    }
    // …and it must actually move the fault surface: outage drops were
    // counted and the degraded census is no longer zero.
    let get_num = |m: &RunManifest, path: &[&str]| {
        m.json()
            .get_path(path)
            .and_then(Json::as_number)
            .expect("field exists")
    };
    assert_eq!(
        get_num(&clean, &["metrics", "fault", "outage_dropped"]),
        0.0
    );
    assert!(get_num(&outage, &["metrics", "fault", "outage_dropped"]) > 0.0);
    assert_eq!(get_num(&clean, &["census", "fleet", "degraded"]), 0.0);
    assert!(get_num(&outage, &["census", "fleet", "degraded"]) > 0.0);
    // The verdict behaviour itself recovered: retransmission rides out
    // the 2.4 s outage, so not one sc24/ip6me/intervened field drifted.
    assert!(report.drifts.iter().all(|d| {
        !d.path.contains("sc24")
            && !d.path.contains("ip6me")
            && !d.path.contains("intervened")
            && !d.path.contains("has_v4")
            && !d.path.contains("rfc8925")
    }));
}

fn committed(stem: &str) -> String {
    let path = format!("{}/../../reports/{stem}.json", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

#[test]
fn committed_clean_matrix_golden_is_in_sync() {
    // The same regression the CI report-gate enforces, in test form:
    // regenerate the canonical clean-matrix manifest and require byte
    // equality with the committed golden. If this fails after a
    // deliberate behaviour change, run `just bless-reports` and review
    // the fixture diff.
    let fresh = RunManifest::run_matrix(&MatrixSpec::canonical(FaultVariant::Clean), 2);
    assert_eq!(
        committed("matrix_clean"),
        fresh.canonical(),
        "reports/matrix_clean.json drifted from the live testbed behaviour"
    );
}

#[test]
fn mutating_a_committed_census_cell_is_behavioural_and_gated() {
    let golden = Json::parse(&committed("matrix_clean")).expect("golden parses");
    let mut mutated = golden.clone();
    let fleet = mutated
        .get_path(&["census", "fleet", "accurate_v6only"])
        .and_then(Json::as_number)
        .expect("census field present") as u64;
    match &mut mutated {
        Json::Obj(root) => match root.get_mut("census").and_then(|c| match c {
            Json::Obj(c) => c.get_mut("fleet"),
            _ => None,
        }) {
            Some(Json::Obj(row)) => {
                row.insert("accurate_v6only".into(), Json::U64(fleet + 1));
            }
            _ => panic!("census.fleet is an object"),
        },
        _ => panic!("manifest root is an object"),
    }
    let report = diff_manifests("fleet-matrix", &golden, &mutated);
    assert_eq!(report.drifts.len(), 1);
    assert_eq!(report.drifts[0].path, "census.fleet.accurate_v6only");
    assert_eq!(report.drifts[0].class, DriftClass::Behavioural);
    assert!(
        report.gated(&DiffConfig::default()),
        "a flipped census count must fail the gate"
    );
}

#[test]
fn population_manifest_bytes_identical_across_threads_and_shards() {
    // A small population keeps this in tier-1 test budget; the
    // invariance it asserts is size-independent (sampling is keyed per
    // index and the sketch merge is an exact monoid).
    let spec = v6fleet::PopulationSpec::paper_default(0xA11CE, 48);
    let canonical: Vec<String> = [(1usize, 1usize), (1, 8), (3, 1), (4, 5)]
        .into_iter()
        .map(|(threads, shards)| {
            let report = FleetRunner::new(threads)
                .run_population(&spec, shards)
                .report;
            RunManifest::from_population(&spec, &report).canonical()
        })
        .collect();
    for other in &canonical[1..] {
        assert_eq!(
            &canonical[0], other,
            "thread/shard layout leaked into the population manifest"
        );
    }
    assert!(canonical[0].contains("\"kind\": \"population\""));
}

#[test]
fn committed_population_golden_is_in_sync_with_the_sampler_config() {
    // Full regeneration of the 100k golden lives in the report-gate CI
    // job (`v6report check`); here we pin the config section — seed,
    // size, spec digest, and every weight table — so a silently edited
    // weight cannot masquerade as the committed population.
    let golden = Json::parse(&committed("population_100k")).expect("golden parses");
    // A zero-size run of the canonical spec: same config, no sampling.
    let empty_spec = v6fleet::PopulationSpec {
        size: 0,
        ..v6report::canonical_population()
    };
    let fresh = Json::parse(
        &RunManifest::from_population(
            &empty_spec,
            &FleetRunner::new(1).run_population(&empty_spec, 1).report,
        )
        .canonical(),
    )
    .expect("fresh parses");
    let digest = |v: &Json| {
        v.get_path(&["config", "spec_digest"])
            .cloned()
            .expect("spec digest present")
    };
    // The zero-size run shares every config field except `size`.
    assert_eq!(
        golden.get_path(&["config", "seed"]),
        fresh.get_path(&["config", "seed"])
    );
    assert_eq!(
        golden.get_path(&["config", "os_weights"]),
        fresh.get_path(&["config", "os_weights"])
    );
    assert_ne!(
        digest(&golden),
        digest(&fresh),
        "size participates in the digest"
    );
    assert_eq!(
        golden
            .get_path(&["config", "size"])
            .and_then(Json::as_number),
        Some(v6report::CANONICAL_POPULATION_SIZE as f64)
    );
    assert_eq!(
        golden
            .get_path(&["census", "fleet", "associated"])
            .and_then(Json::as_number),
        Some(v6report::CANONICAL_POPULATION_SIZE as f64),
        "every sampled cell is counted exactly once"
    );
}

#[test]
fn mutating_a_population_census_row_is_behavioural_and_gated() {
    // The committed 100k golden with one census count nudged by one
    // must fail the gate as Behavioural drift — the property that makes
    // a million-row census trustworthy without eyeballing it.
    let golden = Json::parse(&committed("population_100k")).expect("golden parses");
    let mut mutated = golden.clone();
    let current = mutated
        .get_path(&["census", "fleet", "accurate_v6only"])
        .and_then(Json::as_number)
        .expect("census field present") as u64;
    match &mut mutated {
        Json::Obj(root) => match root.get_mut("census").and_then(|c| match c {
            Json::Obj(c) => c.get_mut("fleet"),
            _ => None,
        }) {
            Some(Json::Obj(row)) => {
                row.insert("accurate_v6only".into(), Json::U64(current + 1));
            }
            _ => panic!("census.fleet is an object"),
        },
        _ => panic!("manifest root is an object"),
    }
    let report = diff_manifests("population", &golden, &mutated);
    assert_eq!(report.drifts.len(), 1);
    assert_eq!(report.drifts[0].path, "census.fleet.accurate_v6only");
    assert_eq!(report.drifts[0].class, DriftClass::Behavioural);
    assert!(
        report.gated(&DiffConfig::default()),
        "a flipped population census count must fail the gate"
    );
}

#[test]
fn committed_bench_manifest_matches_raw_bench_json() {
    let raw_path = format!("{}/../../BENCH_engine.json", env!("CARGO_MANIFEST_DIR"));
    let raw = std::fs::read_to_string(&raw_path).unwrap_or_else(|e| panic!("read {raw_path}: {e}"));
    let fresh = RunManifest::bench_from_raw(&raw).expect("normalizes");
    assert_eq!(
        committed("bench"),
        fresh.canonical(),
        "reports/bench.json drifted from BENCH_engine.json; re-run `just bless-reports`"
    );
    assert_eq!(fresh.kind(), "bench");
}

#[test]
fn bench_normalization_preserves_a_dns_resolution_section() {
    // A future `dns_resolution` row in BENCH_engine.json (iterative
    // resolver bench) must survive normalization, not be silently
    // dropped by a rewrite that only knows the older sections.
    let raw = r#"{
        "engine_hot_path": {"workload": 1, "frames_per_iter": 2, "events_per_iter": 3,
                            "off": 1.0, "hops": 2.0, "full": 3.0},
        "fleet_sweep": {"cells": 66, "off": 1.0, "hops": 2.0, "full": 3.0},
        "baseline_pre_optimization": {"fleet_ms_per_sweep": 100.0, "fleet_scenarios_per_sec": 10.0},
        "speedup_vs_baseline": 2.5,
        "dns_resolution": {"queries": 4096, "iterative_us_per_query": 1.7,
                           "flat_us_per_query": 0.4, "queries_per_sec": 588000.0}
    }"#;
    let manifest = RunManifest::bench_from_raw(raw).expect("normalizes");
    let canonical = manifest.canonical();
    let parsed = Json::parse(&canonical).expect("canonical output parses");
    assert_eq!(
        parsed
            .get_path(&["structure", "dns_resolution_queries"])
            .and_then(Json::as_number),
        Some(4096.0),
        "query count is deterministic structure, gated like any other"
    );
    for field in [
        "iterative_us_per_query",
        "flat_us_per_query",
        "queries_per_sec",
    ] {
        assert!(
            parsed
                .get_path(&["timings", "dns_resolution", field])
                .is_some(),
            "timings.dns_resolution.{field} must survive normalization"
        );
    }
    // And a bench file from before the row exists stays valid, without
    // growing an empty section.
    let older = raw.replace("\"dns_resolution\"", "\"dns_resolution_unused\"");
    let manifest = RunManifest::bench_from_raw(&older).expect("older files stay valid");
    let parsed = Json::parse(&manifest.canonical()).expect("parses");
    assert!(parsed.get_path(&["timings", "dns_resolution"]).is_none());
}
