//! The event engine: nodes, links, timers, and a frame trace.
//!
//! Nodes are `Box<dyn Node>` objects with numbered ports; links join two
//! `(node, port)` endpoints with a fixed latency. Everything is driven by a
//! binary-heap event queue keyed on `(time, sequence)` so runs are exactly
//! reproducible.

use crate::metrics::{EngineMetrics, FaultCounters, LinkCounters, MetricsSnapshot, NodeMetrics};
use crate::time::SimTime;
use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use v6fault::{CompiledLink, Delivery, FaultPlan};
use v6wire::metrics::Metrics;

/// Index of a node within a [`Network`].
pub type NodeId = usize;

/// What a node asks the engine to do.
#[derive(Debug)]
enum Action {
    /// Transmit a frame out of a local port.
    Send { port: u32, frame: Vec<u8> },
    /// Fire `on_timer(token)` after `delay`.
    Timer { delay: SimTime, token: u64 },
}

/// The per-callback context handed to nodes.
pub struct Ctx {
    /// Current simulation time.
    pub now: SimTime,
    actions: Vec<Action>,
}

impl Ctx {
    /// Transmit `frame` out of `port`.
    pub fn send(&mut self, port: u32, frame: Vec<u8>) {
        self.actions.push(Action::Send { port, frame });
    }

    /// Request `on_timer(token)` after `delay`.
    pub fn timer_in(&mut self, delay: SimTime, token: u64) {
        self.actions.push(Action::Timer { delay, token });
    }
}

/// A simulated device.
pub trait Node {
    /// Human-readable name for traces.
    fn name(&self) -> &str;

    /// Called once when the simulation starts.
    fn start(&mut self, _ctx: &mut Ctx) {}

    /// A frame arrived on `port`.
    fn on_frame(&mut self, port: u32, frame: &[u8], ctx: &mut Ctx);

    /// A timer requested via [`Ctx::timer_in`] fired.
    fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx) {}

    /// Downcast support so scenarios can inspect and drive concrete devices.
    fn as_any_mut(&mut self) -> &mut dyn Any;

    /// Device-specific counters for [`Network::metrics`] snapshots.
    ///
    /// The engine already tracks frames/bytes/timers per node; override
    /// this to add protocol-level counters (NAT translations, DNS cache
    /// hits, snoop drops, ...). The default is an empty set.
    fn device_metrics(&self) -> Metrics {
        Metrics::new()
    }
}

#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    Start,
    Frame { port: u32, frame: Vec<u8> },
    Timer { token: u64 },
}

#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    at: SimTime,
    seq: u64,
    node: NodeId,
    kind: EventKind,
}

/// One hop recorded in the frame trace.
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// Delivery time.
    pub at: SimTime,
    /// Transmitting node name.
    pub from: String,
    /// Receiving node name.
    pub to: String,
    /// One-line summary (layer classification from `v6wire`).
    pub summary: String,
    /// Frame length in bytes.
    pub len: usize,
}

/// The simulated network.
pub struct Network {
    nodes: Vec<Box<dyn Node>>,
    node_counters: Vec<LinkCounters>,
    engine_counters: EngineMetrics,
    links: HashMap<(NodeId, u32), (NodeId, u32, SimTime)>,
    queue: BinaryHeap<Reverse<Event>>,
    now: SimTime,
    seq: u64,
    started: bool,
    /// Captured frame hops (cleared with [`Network::clear_trace`]).
    pub trace: Vec<TraceEntry>,
    /// Cap on trace length to bound memory in long runs.
    pub trace_limit: usize,
    /// Total frames delivered.
    pub frames_delivered: u64,
    /// When true, raw frame bytes are captured into [`Network::captured`]
    /// for pcap export (off by default — it copies every frame).
    pub capture_frames: bool,
    /// Raw frames captured while [`Network::capture_frames`] was on.
    pub captured: Vec<crate::pcap::CapturedFrame>,
    /// The installed fault schedule (default: no-op, fault path skipped).
    fault_plan: FaultPlan,
    /// Whether `fault_plan` can ever alter a frame, cached once.
    fault_active: bool,
    /// Per-directed-link compilation of the plan, filled lazily (links
    /// are never removed and node names never change).
    fault_links: HashMap<(NodeId, NodeId), CompiledLink>,
    /// Monotone per-judged-frame counter feeding the decision hash.
    fault_decisions: u64,
    fault_counters: FaultCounters,
}

impl Default for Network {
    fn default() -> Self {
        Network::new()
    }
}

impl Network {
    /// An empty network.
    pub fn new() -> Network {
        Network {
            nodes: Vec::new(),
            node_counters: Vec::new(),
            engine_counters: EngineMetrics::default(),
            links: HashMap::new(),
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            started: false,
            trace: Vec::new(),
            trace_limit: 100_000,
            frames_delivered: 0,
            capture_frames: false,
            captured: Vec::new(),
            fault_plan: FaultPlan::default(),
            fault_active: false,
            fault_links: HashMap::new(),
            fault_decisions: 0,
            fault_counters: FaultCounters::default(),
        }
    }

    /// Install a fault schedule. A no-op plan (the default) disables the
    /// fault path entirely, keeping runs bit-identical to a network that
    /// never heard of faults.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_active = !plan.is_noop();
        self.fault_plan = plan;
        self.fault_links.clear();
    }

    /// The installed fault schedule.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Add a node, returning its id.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        self.nodes.push(node);
        self.node_counters.push(LinkCounters::default());
        self.nodes.len() - 1
    }

    /// Join `(a, a_port)` and `(b, b_port)` with `latency` in each direction.
    pub fn link(&mut self, a: NodeId, a_port: u32, b: NodeId, b_port: u32, latency: SimTime) {
        assert!(
            !self.links.contains_key(&(a, a_port)) && !self.links.contains_key(&(b, b_port)),
            "port already linked"
        );
        self.links.insert((a, a_port), (b, b_port, latency));
        self.links.insert((b, b_port), (a, a_port, latency));
    }

    /// Mutable access to a concrete node type.
    ///
    /// # Panics
    /// If the id is out of range or the node is not a `T`.
    pub fn node_mut<T: Node + 'static>(&mut self, id: NodeId) -> &mut T {
        self.nodes[id]
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("node type mismatch")
    }

    fn push(&mut self, at: SimTime, node: NodeId, kind: EventKind) {
        self.seq += 1;
        self.queue.push(Reverse(Event {
            at,
            seq: self.seq,
            node,
            kind,
        }));
        let depth = self.queue.len() as u64;
        if depth > self.engine_counters.queue_high_water {
            self.engine_counters.queue_high_water = depth;
        }
    }

    /// Queue `start` callbacks for every node (idempotent).
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for id in 0..self.nodes.len() {
            self.push(self.now, id, EventKind::Start);
        }
    }

    /// Let a scenario invoke a node directly (e.g. "user clicks browse") via
    /// a closure receiving the node and a context; the resulting actions are
    /// applied as if the node acted spontaneously now.
    pub fn with_node<T: Node + 'static, R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut T, &mut Ctx) -> R,
    ) -> R {
        let mut ctx = Ctx {
            now: self.now,
            actions: Vec::new(),
        };
        let r = {
            let node = self.nodes[id]
                .as_any_mut()
                .downcast_mut::<T>()
                .expect("node type mismatch");
            f(node, &mut ctx)
        };
        self.apply_actions(id, ctx.actions);
        r
    }

    fn apply_actions(&mut self, node: NodeId, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Send { port, frame } => {
                    self.node_counters[node].frames_tx += 1;
                    self.node_counters[node].bytes_tx += frame.len() as u64;
                    if let Some(&(dst, dst_port, latency)) = self.links.get(&(node, port)) {
                        let verdict = if self.fault_active {
                            self.judge_fault(node, dst)
                        } else {
                            Delivery::CLEAN
                        };
                        if verdict.copies == 0 {
                            if verdict.outage {
                                self.fault_counters.outage_dropped += 1;
                            } else {
                                self.fault_counters.dropped += 1;
                            }
                            if self.trace.len() < self.trace_limit {
                                self.trace.push(TraceEntry {
                                    at: self.now + latency,
                                    from: self.nodes[node].name().to_string(),
                                    to: self.nodes[dst].name().to_string(),
                                    summary: format!(
                                        "FAULT-DROP {}",
                                        v6wire::packet::summarize(&frame)
                                    ),
                                    len: frame.len(),
                                });
                            }
                            continue;
                        }
                        let mut frame = frame;
                        if verdict.corrupt && !frame.is_empty() {
                            let idx = self.fault_decisions as usize % frame.len();
                            frame[idx] ^= 0xff;
                            self.fault_counters.corrupted += 1;
                        }
                        if verdict.truncate && frame.len() > 1 {
                            frame.truncate(frame.len() / 2);
                            self.fault_counters.truncated += 1;
                        }
                        if verdict.extra_delay_us > 0 {
                            self.fault_counters.delayed += 1;
                        }
                        let deliver_at =
                            self.now + latency + SimTime::from_micros(verdict.extra_delay_us);
                        // Duplicate copies trail the original slightly, like a
                        // retransmitting radio link.
                        let dups: Vec<Vec<u8>> =
                            (1..verdict.copies).map(|_| frame.clone()).collect();
                        self.forward(node, dst, dst_port, deliver_at, frame);
                        for (i, dup) in dups.into_iter().enumerate() {
                            self.fault_counters.duplicated += 1;
                            let at = deliver_at + SimTime::from_micros((i as u64 + 1) * 150);
                            self.forward(node, dst, dst_port, at, dup);
                        }
                    } else {
                        // Unlinked port: dropped (cable unplugged), but the
                        // attempt still shows up in the counters.
                        self.node_counters[node].drops_unlinked += 1;
                        self.engine_counters.frames_dropped_unlinked += 1;
                    }
                }
                Action::Timer { delay, token } => {
                    self.push(self.now + delay, node, EventKind::Timer { token });
                }
            }
        }
    }

    /// Schedule one frame delivery: counters, optional pcap capture, a
    /// trace entry, and the queue push.
    fn forward(&mut self, src: NodeId, dst: NodeId, dst_port: u32, at: SimTime, frame: Vec<u8>) {
        self.engine_counters.frames_forwarded += 1;
        if self.capture_frames && self.captured.len() < self.trace_limit {
            self.captured.push(crate::pcap::CapturedFrame {
                at,
                bytes: frame.clone(),
            });
        }
        if self.trace.len() < self.trace_limit {
            self.trace.push(TraceEntry {
                at,
                from: self.nodes[src].name().to_string(),
                to: self.nodes[dst].name().to_string(),
                summary: v6wire::packet::summarize(&frame),
                len: frame.len(),
            });
        }
        self.push(
            at,
            dst,
            EventKind::Frame {
                port: dst_port,
                frame,
            },
        );
    }

    /// Ask the installed plan what happens to one frame on `src -> dst`.
    /// Only called when a non-default plan is installed.
    fn judge_fault(&mut self, src: NodeId, dst: NodeId) -> Delivery {
        if !self.fault_links.contains_key(&(src, dst)) {
            let compiled = self
                .fault_plan
                .compile(self.nodes[src].name(), self.nodes[dst].name());
            self.fault_links.insert((src, dst), compiled);
        }
        // The decision counter advances for every judged frame — clean
        // link or not — so adding an unrelated link fault never shifts
        // another link's sampling stream order-dependently.
        self.fault_decisions += 1;
        let decision = self.fault_decisions;
        let link = self.fault_links.get(&(src, dst)).expect("compiled above");
        if link.is_clean() {
            return Delivery::CLEAN;
        }
        self.fault_plan.judge(link, self.now.as_micros(), decision)
    }

    /// Process events until the queue is empty or `deadline` passes.
    /// Returns the number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        self.start();
        let mut processed = 0;
        while let Some(Reverse(ev)) = self.queue.peek() {
            if ev.at > deadline {
                break;
            }
            let Reverse(ev) = self.queue.pop().expect("peeked");
            self.now = ev.at;
            let mut ctx = Ctx {
                now: self.now,
                actions: Vec::new(),
            };
            match ev.kind {
                EventKind::Start => self.nodes[ev.node].start(&mut ctx),
                EventKind::Frame { port, frame } => {
                    self.frames_delivered += 1;
                    self.node_counters[ev.node].frames_rx += 1;
                    self.node_counters[ev.node].bytes_rx += frame.len() as u64;
                    self.nodes[ev.node].on_frame(port, &frame, &mut ctx)
                }
                EventKind::Timer { token } => {
                    self.node_counters[ev.node].timer_fires += 1;
                    self.engine_counters.timers_fired += 1;
                    self.nodes[ev.node].on_timer(token, &mut ctx)
                }
            }
            self.apply_actions(ev.node, ctx.actions);
            self.engine_counters.events_processed += 1;
            processed += 1;
        }
        if self.now < deadline {
            self.now = deadline;
        }
        processed
    }

    /// Run for `span` beyond the current time.
    pub fn run_for(&mut self, span: SimTime) -> u64 {
        let deadline = self.now + span;
        self.run_until(deadline)
    }

    /// Discard the captured trace.
    pub fn clear_trace(&mut self) {
        self.trace.clear();
        self.captured.clear();
    }

    /// Write everything captured so far to a pcap file (requires
    /// [`Network::capture_frames`] to have been on during the run).
    pub fn write_pcap(&self, path: &std::path::Path) -> std::io::Result<()> {
        crate::pcap::write_pcap(path, &self.captured)
    }

    /// Snapshot every counter the engine and its nodes are tracking.
    ///
    /// Node rows come back in node-id order and each device's counters
    /// in name order, so two runs with identical event streams produce
    /// [`MetricsSnapshot`]s that compare equal and render identically.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut engine = self.engine_counters;
        engine.frames_delivered = self.frames_delivered;
        let mut faults = self.fault_counters;
        faults.outage_micros = self.fault_plan.outage_micros_until(self.now.as_micros());
        MetricsSnapshot {
            engine,
            faults,
            nodes: self
                .nodes
                .iter()
                .zip(&self.node_counters)
                .map(|(node, &link)| NodeMetrics {
                    name: node.name().to_string(),
                    link,
                    device: node.device_metrics(),
                })
                .collect(),
        }
    }

    /// Render the trace as text (for examples and debugging).
    pub fn format_trace(&self) -> String {
        let mut out = String::new();
        for e in &self.trace {
            out.push_str(&format!(
                "{} {} -> {} [{} bytes] {}\n",
                e.at, e.from, e.to, e.len, e.summary
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A node that echoes every frame back out the same port after 1 ms,
    /// counting what it saw.
    struct Echo {
        name: String,
        seen: Vec<Vec<u8>>,
        echo: bool,
    }

    impl Node for Echo {
        fn name(&self) -> &str {
            &self.name
        }

        fn on_frame(&mut self, port: u32, frame: &[u8], ctx: &mut Ctx) {
            self.seen.push(frame.to_vec());
            if self.echo {
                ctx.send(port, frame.to_vec());
            }
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// A node that emits one frame at start and one on each timer tick.
    struct Beacon {
        name: String,
        ticks: u32,
    }

    impl Node for Beacon {
        fn name(&self) -> &str {
            &self.name
        }

        fn start(&mut self, ctx: &mut Ctx) {
            ctx.send(0, vec![0xbe]);
            ctx.timer_in(SimTime::from_secs(1), 1);
        }

        fn on_frame(&mut self, _port: u32, _frame: &[u8], _ctx: &mut Ctx) {}

        fn on_timer(&mut self, token: u64, ctx: &mut Ctx) {
            self.ticks += 1;
            ctx.send(0, vec![0xbe, self.ticks as u8]);
            if self.ticks < 3 {
                ctx.timer_in(SimTime::from_secs(1), token);
            }
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn frames_flow_with_latency() {
        let mut net = Network::new();
        let a = net.add_node(Box::new(Beacon {
            name: "beacon".into(),
            ticks: 0,
        }));
        let b = net.add_node(Box::new(Echo {
            name: "sink".into(),
            seen: Vec::new(),
            echo: false,
        }));
        net.link(a, 0, b, 0, SimTime::from_millis(2));
        net.run_until(SimTime::from_millis(100));
        let sink = net.node_mut::<Echo>(b);
        assert_eq!(sink.seen.len(), 1, "only the start beacon by t=100ms");
        net.run_until(SimTime::from_secs(10));
        let sink = net.node_mut::<Echo>(b);
        assert_eq!(sink.seen.len(), 4, "start + 3 timer beacons");
    }

    #[test]
    fn timers_fire_in_order() {
        let mut net = Network::new();
        let a = net.add_node(Box::new(Beacon {
            name: "beacon".into(),
            ticks: 0,
        }));
        let b = net.add_node(Box::new(Echo {
            name: "sink".into(),
            seen: Vec::new(),
            echo: false,
        }));
        net.link(a, 0, b, 0, SimTime::ZERO);
        net.run_until(SimTime::from_secs(2));
        assert_eq!(net.node_mut::<Beacon>(a).ticks, 2);
        assert_eq!(net.now(), SimTime::from_secs(2));
    }

    #[test]
    fn unlinked_port_drops_silently() {
        let mut net = Network::new();
        let a = net.add_node(Box::new(Beacon {
            name: "lonely".into(),
            ticks: 0,
        }));
        let _ = a;
        let n = net.run_until(SimTime::from_secs(10));
        assert!(n >= 4, "events still processed");
    }

    #[test]
    fn with_node_applies_actions() {
        let mut net = Network::new();
        let a = net.add_node(Box::new(Echo {
            name: "a".into(),
            seen: Vec::new(),
            echo: false,
        }));
        let b = net.add_node(Box::new(Echo {
            name: "b".into(),
            seen: Vec::new(),
            echo: false,
        }));
        net.link(a, 0, b, 0, SimTime::from_millis(1));
        net.start();
        net.run_until(SimTime::ZERO);
        net.with_node::<Echo, _>(a, |_, ctx| ctx.send(0, vec![1, 2, 3]));
        net.run_for(SimTime::from_millis(5));
        assert_eq!(net.node_mut::<Echo>(b).seen, vec![vec![1, 2, 3]]);
        assert_eq!(net.frames_delivered, 1);
    }

    #[test]
    fn trace_records_hops() {
        let mut net = Network::new();
        let a = net.add_node(Box::new(Beacon {
            name: "beacon".into(),
            ticks: 0,
        }));
        let b = net.add_node(Box::new(Echo {
            name: "sink".into(),
            seen: Vec::new(),
            echo: false,
        }));
        net.link(a, 0, b, 0, SimTime::ZERO);
        net.run_until(SimTime::from_secs(5));
        assert_eq!(net.trace.len(), 4);
        assert_eq!(net.trace[0].from, "beacon");
        assert_eq!(net.trace[0].to, "sink");
        let text = net.format_trace();
        assert!(text.contains("beacon -> sink"));
        net.clear_trace();
        assert!(net.trace.is_empty());
    }

    #[test]
    #[should_panic(expected = "port already linked")]
    fn double_link_panics() {
        let mut net = Network::new();
        let a = net.add_node(Box::new(Echo {
            name: "a".into(),
            seen: Vec::new(),
            echo: false,
        }));
        let b = net.add_node(Box::new(Echo {
            name: "b".into(),
            seen: Vec::new(),
            echo: false,
        }));
        net.link(a, 0, b, 0, SimTime::ZERO);
        net.link(a, 0, b, 1, SimTime::ZERO);
    }
}

#[cfg(test)]
mod determinism_tests {
    use super::*;

    /// Two events scheduled for the same instant fire in scheduling order —
    /// the tie-break that makes whole-testbed runs exactly reproducible.
    struct Recorder {
        name: String,
        fired: Vec<u64>,
    }

    impl Node for Recorder {
        fn name(&self) -> &str {
            &self.name
        }

        fn start(&mut self, ctx: &mut Ctx) {
            for token in [3, 1, 2] {
                ctx.timer_in(SimTime::from_secs(1), token);
            }
        }

        fn on_frame(&mut self, _p: u32, _f: &[u8], _ctx: &mut Ctx) {}

        fn on_timer(&mut self, token: u64, _ctx: &mut Ctx) {
            self.fired.push(token);
        }

        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn same_instant_events_fire_in_schedule_order() {
        let mut net = Network::new();
        let r = net.add_node(Box::new(Recorder {
            name: "rec".into(),
            fired: Vec::new(),
        }));
        net.run_until(SimTime::from_secs(2));
        assert_eq!(net.node_mut::<Recorder>(r).fired, vec![3, 1, 2]);
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut net = Network::new();
        net.run_until(SimTime::from_secs(5));
        assert_eq!(net.now(), SimTime::from_secs(5));
        net.run_for(SimTime::from_secs(3));
        assert_eq!(net.now(), SimTime::from_secs(8));
    }
}
