//! The event engine: nodes, links, timers, and a frame trace.
//!
//! Nodes are `Box<dyn Node>` objects with numbered ports; links join two
//! `(node, port)` endpoints with a fixed latency. Everything is driven by a
//! binary-heap event queue keyed on `(time, sequence)` so runs are exactly
//! reproducible.
//!
//! # Hot-path architecture
//!
//! Frame delivery is the innermost loop of every fleet sweep, so the engine
//! avoids per-frame allocation and hashing entirely:
//!
//! * **Indexed link table** — links live in a per-node `Vec<Option<..>>`
//!   indexed by port, so dispatch is two bounds-checked loads instead of a
//!   `HashMap` probe. Compiled fault links use the same layout, indexed by
//!   `(src, dst)` node id.
//! * **Frame buffer pool** — delivered frame buffers are recycled into a
//!   [`FramePool`]; nodes obtain outgoing buffers via [`Ctx::buffer`] /
//!   [`Ctx::buffer_from`], so steady-state forwarding allocates nothing.
//! * **Trace modes** — [`TraceMode::Hops`] records only
//!   `(at, src, dst, len)`; node names are interned at `add_node` time and
//!   resolved lazily by [`Network::format_trace`]. [`TraceMode::Full`]
//!   additionally captures the eager `v6wire` summary, byte-identical to
//!   the historical trace (the golden fixtures prove it).

use crate::metrics::{
    EngineMetrics, FaultCounters, LinkCounters, MetricsSnapshot, NodeMetrics, PoolCounters,
    TraceCounters,
};
use crate::time::SimTime;
use std::any::Any;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use v6fault::{CompiledLink, Delivery, FaultPlan};
use v6wire::metrics::Metrics;

/// Index of a node within a [`Network`].
pub type NodeId = usize;

/// How much the engine records per delivered frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TraceMode {
    /// Record nothing (fastest; fleet sweeps that only read metrics).
    Off,
    /// Record `(at, src, dst, len)` per hop; names resolved lazily.
    Hops,
    /// Record hops plus the eager `v6wire` one-line summary — today's
    /// historical behaviour, required by the golden-trace fixtures.
    #[default]
    Full,
}

/// Bounded free-list of frame buffers. `get` prefers a recycled buffer;
/// `put` returns one after delivery. Counters feed
/// [`MetricsSnapshot::pool`].
#[derive(Debug, Default)]
struct FramePool {
    free: Vec<Vec<u8>>,
    /// Warm buffers parked by [`FramePool::recycle`]: their capacity
    /// survives into the next cell, but each one re-entering service is
    /// counted as `allocated` — so the per-cell counter stream is
    /// byte-identical to a cold pool (which starts with `free` empty).
    reserve: Vec<Vec<u8>>,
    allocated: u64,
    reused: u64,
    /// True `Vec` constructions over the pool's whole lifetime — never
    /// reset, so arena steady-state gates can prove warm cells malloc
    /// no new frame buffers at all.
    fresh: u64,
}

/// Cap on pooled buffers so pathological floods cannot pin memory.
const FRAME_POOL_CAP: usize = 4096;

impl FramePool {
    fn get(&mut self) -> Vec<u8> {
        if let Some(buf) = self.free.pop() {
            self.reused += 1;
            return buf;
        }
        // `free` is empty: a cold pool would malloc here, so the warm
        // pool must report `allocated` too — whether the bytes come from
        // the reserve or a real allocation is invisible to the counters.
        self.allocated += 1;
        match self.reserve.pop() {
            Some(buf) => buf,
            None => {
                self.fresh += 1;
                Vec::with_capacity(128)
            }
        }
    }

    fn put(&mut self, mut buf: Vec<u8>) {
        if buf.capacity() > 0 && self.free.len() < FRAME_POOL_CAP {
            buf.clear();
            self.free.push(buf);
        }
    }

    /// Park every free buffer and zero the per-cell counters. The next
    /// cell sees exactly what a cold pool reports (`free` empty, both
    /// counters zero) while reusing the parked capacity.
    fn recycle(&mut self) {
        while let Some(buf) = self.free.pop() {
            if self.reserve.len() < FRAME_POOL_CAP {
                self.reserve.push(buf);
            }
        }
        self.allocated = 0;
        self.reused = 0;
    }
}

/// What a node asks the engine to do.
#[derive(Debug)]
enum Action {
    /// Transmit a frame out of a local port.
    Send { port: u32, frame: Vec<u8> },
    /// A transmission attempt on a port with no cable: counted exactly
    /// like an unlinked [`Action::Send`], but the frame bytes were never
    /// copied (see [`Ctx::send_copy`]).
    SendUnlinked { len: usize },
    /// Fire `on_timer(token)` after `delay`.
    Timer { delay: SimTime, token: u64 },
}

/// The per-callback context handed to nodes.
pub struct Ctx<'p> {
    /// Current simulation time.
    pub now: SimTime,
    actions: Vec<Action>,
    pool: &'p mut FramePool,
    /// The acting node's port table row, so `send_copy` can skip the
    /// copy for ports with no cable attached.
    links: &'p [Option<(NodeId, u32, SimTime)>],
}

impl Ctx<'_> {
    /// Transmit `frame` out of `port`.
    pub fn send(&mut self, port: u32, frame: Vec<u8>) {
        self.actions.push(Action::Send { port, frame });
    }

    /// Transmit a copy of `bytes` out of `port` — the flood idiom.
    ///
    /// When the port has no cable attached, the attempt still lands in
    /// the counters (`frames_tx`, `bytes_tx`, `drops_unlinked`) exactly
    /// as a plain [`Ctx::send`] would, but the frame is never copied —
    /// so flooding a 50-port switch with 4 cables costs 4 copies, not 50.
    pub fn send_copy(&mut self, port: u32, bytes: &[u8]) {
        if self.links.get(port as usize).is_some_and(Option::is_some) {
            let mut buf = self.pool.get();
            buf.extend_from_slice(bytes);
            self.actions.push(Action::Send { port, frame: buf });
        } else {
            self.actions.push(Action::SendUnlinked { len: bytes.len() });
        }
    }

    /// An empty frame buffer from the engine's pool. Buffers handed to
    /// [`Ctx::send`] are recycled after delivery, so a node that builds
    /// its frames in pooled buffers allocates nothing in steady state.
    pub fn buffer(&mut self) -> Vec<u8> {
        self.pool.get()
    }

    /// A pooled buffer pre-filled with a copy of `bytes` — the common
    /// "forward this frame" idiom for switches and routers.
    pub fn buffer_from(&mut self, bytes: &[u8]) -> Vec<u8> {
        let mut buf = self.pool.get();
        buf.extend_from_slice(bytes);
        buf
    }

    /// Request `on_timer(token)` after `delay`.
    pub fn timer_in(&mut self, delay: SimTime, token: u64) {
        self.actions.push(Action::Timer { delay, token });
    }
}

/// A simulated device.
pub trait Node {
    /// Human-readable name for traces. Interned by the engine at
    /// [`Network::add_node`] time, so it must not change afterwards.
    fn name(&self) -> &str;

    /// Called once when the simulation starts.
    fn start(&mut self, _ctx: &mut Ctx) {}

    /// A frame arrived on `port`.
    fn on_frame(&mut self, port: u32, frame: &[u8], ctx: &mut Ctx);

    /// A timer requested via [`Ctx::timer_in`] fired.
    fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx) {}

    /// Downcast support so scenarios can inspect and drive concrete devices.
    fn as_any_mut(&mut self) -> &mut dyn Any;

    /// Device-specific counters for [`Network::metrics`] snapshots.
    ///
    /// The engine already tracks frames/bytes/timers per node; override
    /// this to add protocol-level counters (NAT translations, DNS cache
    /// hits, snoop drops, ...). The default is an empty set.
    fn device_metrics(&self) -> Metrics {
        Metrics::new()
    }
}

#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    Start,
    Frame { port: u32, frame: Vec<u8> },
    Timer { token: u64 },
}

#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    at: SimTime,
    seq: u64,
    node: NodeId,
    kind: EventKind,
}

/// One hop recorded in the frame trace. Node names are *not* stored here
/// — they are node ids into the engine's interned name table, resolved
/// lazily by [`Network::format_trace`] / [`Network::trace_hops`].
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// Delivery time.
    pub at: SimTime,
    /// Transmitting node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Frame length in bytes.
    pub len: usize,
    /// The fault layer removed this frame before delivery.
    pub fault_drop: bool,
    /// Frame bytes, captured in [`TraceMode::Full`] only (`None` under
    /// [`TraceMode::Hops`]). The hot path pays one memcpy per hop; the
    /// summary text is formatted lazily on first read. Memory is bounded by
    /// [`Network::trace_limit`] × frame size.
    frame: Option<Box<[u8]>>,
    /// Lazily formatted one-line `v6wire` summary of `frame`.
    summary: std::cell::OnceCell<Box<str>>,
}

impl TraceEntry {
    /// The one-line summary, if this hop was recorded in full mode.
    /// Formatted from the captured frame on first call, then cached, so
    /// traces that are never read (the common case in sweeps) cost only
    /// the byte copy.
    pub fn summary(&self) -> Option<&str> {
        let frame = self.frame.as_deref()?;
        Some(self.summary.get_or_init(|| {
            let s = v6wire::packet::summarize(frame);
            let s = if self.fault_drop {
                format!("FAULT-DROP {s}")
            } else {
                s
            };
            s.into_boxed_str()
        }))
    }
}

/// A [`TraceEntry`] with its node names resolved from the interned table.
#[derive(Debug, Clone, Copy)]
pub struct ResolvedHop<'a> {
    /// Delivery time.
    pub at: SimTime,
    /// Transmitting node name.
    pub from: &'a str,
    /// Receiving node name.
    pub to: &'a str,
    /// Frame length in bytes.
    pub len: usize,
    /// The fault layer removed this frame before delivery.
    pub fault_drop: bool,
    /// One-line summary (full mode only).
    pub summary: Option<&'a str>,
}

/// The simulated network.
pub struct Network {
    nodes: Vec<Box<dyn Node>>,
    /// Node names captured at `add_node` time (names never change), so
    /// traces and metrics resolve them without touching the node.
    names: Vec<Box<str>>,
    node_counters: Vec<LinkCounters>,
    engine_counters: EngineMetrics,
    /// Per-node port table: `links[node][port] = (peer, peer_port, latency)`.
    links: Vec<Vec<Option<(NodeId, u32, SimTime)>>>,
    queue: BinaryHeap<Reverse<Event>>,
    now: SimTime,
    seq: u64,
    started: bool,
    /// Recycled frame buffers plus allocation counters.
    frame_pool: FramePool,
    /// Scratch action buffer reused across callbacks.
    action_scratch: Vec<Action>,
    /// How much to record per delivered frame.
    pub trace_mode: TraceMode,
    /// Captured frame hops (cleared with [`Network::clear_trace`]).
    pub trace: Vec<TraceEntry>,
    /// Cap on trace length to bound memory in long runs.
    pub trace_limit: usize,
    /// Hops not recorded because [`Network::trace_limit`] was reached.
    trace_suppressed: u64,
    /// Total frames delivered.
    pub frames_delivered: u64,
    /// When true, raw frame bytes are captured into [`Network::captured`]
    /// for pcap export (off by default — it copies every frame).
    pub capture_frames: bool,
    /// Cap on [`Network::captured`] length (independent of the trace cap).
    pub capture_limit: usize,
    /// Frames not captured because [`Network::capture_limit`] was reached.
    capture_suppressed: u64,
    /// Raw frames captured while [`Network::capture_frames`] was on.
    pub captured: Vec<crate::pcap::CapturedFrame>,
    /// The installed fault schedule (default: no-op, fault path skipped).
    fault_plan: FaultPlan,
    /// Whether `fault_plan` can ever alter a frame, cached once.
    fault_active: bool,
    /// Per-directed-link compilation of the plan, filled lazily and
    /// indexed `[src][dst]` (links are never removed and node names
    /// never change).
    fault_links: Vec<Vec<Option<CompiledLink>>>,
    /// Monotone per-judged-frame counter feeding the decision hash.
    fault_decisions: u64,
    fault_counters: FaultCounters,
}

impl Default for Network {
    fn default() -> Self {
        Network::new()
    }
}

impl Network {
    /// An empty network.
    pub fn new() -> Network {
        Network {
            nodes: Vec::new(),
            names: Vec::new(),
            node_counters: Vec::new(),
            engine_counters: EngineMetrics::default(),
            links: Vec::new(),
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            started: false,
            frame_pool: FramePool::default(),
            action_scratch: Vec::new(),
            trace_mode: TraceMode::Full,
            trace: Vec::new(),
            trace_limit: 100_000,
            trace_suppressed: 0,
            frames_delivered: 0,
            capture_frames: false,
            capture_limit: 100_000,
            capture_suppressed: 0,
            captured: Vec::new(),
            fault_plan: FaultPlan::default(),
            fault_active: false,
            fault_links: Vec::new(),
            fault_decisions: 0,
            fault_counters: FaultCounters::default(),
        }
    }

    /// Install a fault schedule. A no-op plan (the default) disables the
    /// fault path entirely, keeping runs bit-identical to a network that
    /// never heard of faults.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_active = !plan.is_noop();
        self.fault_plan = plan;
        self.fault_links.clear();
    }

    /// The installed fault schedule.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events dispatched so far — the same figure
    /// [`Network::metrics`] reports, without building a snapshot. The
    /// population census reads this once per cell, so the cheap path
    /// matters at a million cells.
    pub fn events_processed(&self) -> u64 {
        self.engine_counters.events_processed
    }

    /// Frames the fault layer removed from the network so far (random
    /// loss plus outage-window drops) — the "did the faults visibly
    /// bite" signal, without a full [`Network::metrics`] snapshot.
    pub fn fault_frames_dropped(&self) -> u64 {
        self.fault_counters.dropped + self.fault_counters.outage_dropped
    }

    /// Add a node, returning its id.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        self.names.push(node.name().into());
        self.nodes.push(node);
        self.node_counters.push(LinkCounters::default());
        self.links.push(Vec::new());
        self.nodes.len() - 1
    }

    /// The interned name of node `id`.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.names[id]
    }

    fn port_is_free(&self, node: NodeId, port: u32) -> bool {
        self.links[node]
            .get(port as usize)
            .is_none_or(Option::is_none)
    }

    fn attach(&mut self, from: NodeId, from_port: u32, to: NodeId, to_port: u32, latency: SimTime) {
        let row = &mut self.links[from];
        let idx = from_port as usize;
        if row.len() <= idx {
            row.resize(idx + 1, None);
        }
        row[idx] = Some((to, to_port, latency));
    }

    /// Join `(a, a_port)` and `(b, b_port)` with `latency` in each direction.
    pub fn link(&mut self, a: NodeId, a_port: u32, b: NodeId, b_port: u32, latency: SimTime) {
        assert!(
            self.port_is_free(a, a_port) && self.port_is_free(b, b_port),
            "port already linked"
        );
        self.attach(a, a_port, b, b_port, latency);
        self.attach(b, b_port, a, a_port, latency);
    }

    /// Replace node `id` wholesale, re-interning its name. Links,
    /// ports, and counters are untouched — the new node inherits the
    /// old one's cables, which is what the warm-cell arena wants when
    /// only the host behind a switch port changes between cells.
    pub fn replace_node(&mut self, id: NodeId, node: Box<dyn Node>) {
        self.names[id] = node.name().into();
        self.nodes[id] = node;
        // Compiled fault links are keyed by node name; drop the cache.
        self.fault_links.clear();
    }

    /// Reset the engine to its post-construction state while keeping
    /// the node graph: nodes, interned names, and the link table
    /// survive, and everything else — event queue, clock, sequence
    /// counter, every metrics counter, traces, captures, and the fault
    /// machinery — returns to exactly what `Network::new` plus the same
    /// `add_node`/`link` calls would produce. Frame buffers are parked
    /// rather than freed (see [`FramePool::recycle`]), so warm cells
    /// inherit capacity without perturbing the pool counters.
    ///
    /// Node-*internal* state is deliberately not touched: callers reset
    /// each device in place (or swap it via [`Network::replace_node`])
    /// before reuse.
    pub fn recycle(&mut self) {
        self.queue.clear();
        self.now = SimTime::ZERO;
        self.seq = 0;
        self.started = false;
        self.frame_pool.recycle();
        for counters in &mut self.node_counters {
            *counters = LinkCounters::default();
        }
        self.engine_counters = EngineMetrics::default();
        self.trace.clear();
        self.trace_suppressed = 0;
        self.captured.clear();
        self.capture_suppressed = 0;
        self.frames_delivered = 0;
        self.fault_plan = FaultPlan::default();
        self.fault_active = false;
        self.fault_links.clear();
        self.fault_decisions = 0;
        self.fault_counters = FaultCounters::default();
    }

    /// True frame-buffer constructions over this network's whole
    /// lifetime. Unlike [`MetricsSnapshot::pool`], this is *never*
    /// reset by [`Network::recycle`] — a steady-state arena gate reads
    /// it across cells to prove warm runs malloc no new frame buffers.
    pub fn pool_fresh_allocations(&self) -> u64 {
        self.frame_pool.fresh
    }

    /// Mutable access to a concrete node type.
    ///
    /// # Panics
    /// If the id is out of range or the node is not a `T`.
    pub fn node_mut<T: Node + 'static>(&mut self, id: NodeId) -> &mut T {
        self.nodes[id]
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("node type mismatch")
    }

    fn push(&mut self, at: SimTime, node: NodeId, kind: EventKind) {
        self.seq += 1;
        self.queue.push(Reverse(Event {
            at,
            seq: self.seq,
            node,
            kind,
        }));
        let depth = self.queue.len() as u64;
        if depth > self.engine_counters.queue_high_water {
            self.engine_counters.queue_high_water = depth;
        }
    }

    /// Queue `start` callbacks for every node (idempotent).
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for id in 0..self.nodes.len() {
            self.push(self.now, id, EventKind::Start);
        }
    }

    /// Let a scenario invoke a node directly (e.g. "user clicks browse") via
    /// a closure receiving the node and a context; the resulting actions are
    /// applied as if the node acted spontaneously now.
    pub fn with_node<T: Node + 'static, R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut T, &mut Ctx) -> R,
    ) -> R {
        let mut ctx = Ctx {
            now: self.now,
            actions: std::mem::take(&mut self.action_scratch),
            pool: &mut self.frame_pool,
            links: &self.links[id],
        };
        let r = {
            let node = self.nodes[id]
                .as_any_mut()
                .downcast_mut::<T>()
                .expect("node type mismatch");
            f(node, &mut ctx)
        };
        let mut actions = ctx.actions;
        self.apply_actions(id, &mut actions);
        self.action_scratch = actions;
        r
    }

    fn apply_actions(&mut self, node: NodeId, actions: &mut Vec<Action>) {
        for action in actions.drain(..) {
            match action {
                Action::Send { port, frame } => {
                    self.node_counters[node].frames_tx += 1;
                    self.node_counters[node].bytes_tx += frame.len() as u64;
                    let link = self.links[node].get(port as usize).copied().flatten();
                    if let Some((dst, dst_port, latency)) = link {
                        let verdict = if self.fault_active {
                            self.judge_fault(node, dst)
                        } else {
                            Delivery::CLEAN
                        };
                        if verdict.copies == 0 {
                            if verdict.outage {
                                self.fault_counters.outage_dropped += 1;
                            } else {
                                self.fault_counters.dropped += 1;
                            }
                            self.record_hop(self.now + latency, node, dst, &frame, true);
                            self.frame_pool.put(frame);
                            continue;
                        }
                        let mut frame = frame;
                        if verdict.corrupt && !frame.is_empty() {
                            let idx = self.fault_decisions as usize % frame.len();
                            frame[idx] ^= 0xff;
                            self.fault_counters.corrupted += 1;
                        }
                        if verdict.truncate && frame.len() > 1 {
                            frame.truncate(frame.len() / 2);
                            self.fault_counters.truncated += 1;
                        }
                        if verdict.extra_delay_us > 0 {
                            self.fault_counters.delayed += 1;
                        }
                        let deliver_at =
                            self.now + latency + SimTime::from_micros(verdict.extra_delay_us);
                        // Duplicate copies trail the original slightly, like a
                        // retransmitting radio link.
                        let dups: Vec<Vec<u8>> = (1..verdict.copies)
                            .map(|_| {
                                let mut dup = self.frame_pool.get();
                                dup.extend_from_slice(&frame);
                                dup
                            })
                            .collect();
                        self.forward(node, dst, dst_port, deliver_at, frame);
                        for (i, dup) in dups.into_iter().enumerate() {
                            self.fault_counters.duplicated += 1;
                            let at = deliver_at + SimTime::from_micros((i as u64 + 1) * 150);
                            self.forward(node, dst, dst_port, at, dup);
                        }
                    } else {
                        // Unlinked port: dropped (cable unplugged), but the
                        // attempt still shows up in the counters.
                        self.node_counters[node].drops_unlinked += 1;
                        self.engine_counters.frames_dropped_unlinked += 1;
                        self.frame_pool.put(frame);
                    }
                }
                Action::SendUnlinked { len } => {
                    self.node_counters[node].frames_tx += 1;
                    self.node_counters[node].bytes_tx += len as u64;
                    self.node_counters[node].drops_unlinked += 1;
                    self.engine_counters.frames_dropped_unlinked += 1;
                }
                Action::Timer { delay, token } => {
                    self.push(self.now + delay, node, EventKind::Timer { token });
                }
            }
        }
    }

    /// Record one hop according to the trace mode. Summaries (and the
    /// `FAULT-DROP` annotation string) are only built in full mode, and
    /// only while the trace is under its cap.
    fn record_hop(
        &mut self,
        at: SimTime,
        src: NodeId,
        dst: NodeId,
        frame: &[u8],
        fault_drop: bool,
    ) {
        match self.trace_mode {
            TraceMode::Off => {}
            TraceMode::Hops | TraceMode::Full => {
                if self.trace.len() >= self.trace_limit {
                    self.trace_suppressed += 1;
                    return;
                }
                let len = frame.len();
                let frame = match self.trace_mode {
                    TraceMode::Full => Some(Box::<[u8]>::from(frame)),
                    _ => None,
                };
                self.trace.push(TraceEntry {
                    at,
                    src,
                    dst,
                    len,
                    fault_drop,
                    frame,
                    summary: std::cell::OnceCell::new(),
                });
            }
        }
    }

    /// Schedule one frame delivery: counters, optional pcap capture, a
    /// trace entry, and the queue push.
    fn forward(&mut self, src: NodeId, dst: NodeId, dst_port: u32, at: SimTime, frame: Vec<u8>) {
        self.engine_counters.frames_forwarded += 1;
        if self.capture_frames {
            if self.captured.len() < self.capture_limit {
                self.captured.push(crate::pcap::CapturedFrame {
                    at,
                    bytes: frame.clone(),
                });
            } else {
                self.capture_suppressed += 1;
            }
        }
        self.record_hop(at, src, dst, &frame, false);
        self.push(
            at,
            dst,
            EventKind::Frame {
                port: dst_port,
                frame,
            },
        );
    }

    /// Ask the installed plan what happens to one frame on `src -> dst`.
    /// Only called when a non-default plan is installed.
    fn judge_fault(&mut self, src: NodeId, dst: NodeId) -> Delivery {
        // Grow the indexed table on demand (nodes can be added after the
        // plan is installed); a single `[src][dst]` slot then serves the
        // check, the fill, and the read.
        let n = self.nodes.len();
        if self.fault_links.len() < n {
            self.fault_links.resize_with(n, Vec::new);
        }
        if self.fault_links[src].len() < n {
            self.fault_links[src].resize_with(n, || None);
        }
        if self.fault_links[src][dst].is_none() {
            let compiled = self.fault_plan.compile(&self.names[src], &self.names[dst]);
            self.fault_links[src][dst] = Some(compiled);
        }
        // The decision counter advances for every judged frame — clean
        // link or not — so adding an unrelated link fault never shifts
        // another link's sampling stream order-dependently.
        self.fault_decisions += 1;
        let decision = self.fault_decisions;
        let link = self.fault_links[src][dst].as_ref().expect("compiled above");
        if link.is_clean() {
            return Delivery::CLEAN;
        }
        self.fault_plan.judge(link, self.now.as_micros(), decision)
    }

    /// Process events until the queue is empty or `deadline` passes.
    /// Returns the number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        self.start();
        let mut processed = 0;
        while let Some(Reverse(ev)) = self.queue.peek() {
            if ev.at > deadline {
                break;
            }
            let Reverse(ev) = self.queue.pop().expect("peeked");
            self.now = ev.at;
            let mut ctx = Ctx {
                now: self.now,
                actions: std::mem::take(&mut self.action_scratch),
                pool: &mut self.frame_pool,
                links: &self.links[ev.node],
            };
            match ev.kind {
                EventKind::Start => self.nodes[ev.node].start(&mut ctx),
                EventKind::Frame { port, frame } => {
                    self.frames_delivered += 1;
                    self.node_counters[ev.node].frames_rx += 1;
                    self.node_counters[ev.node].bytes_rx += frame.len() as u64;
                    self.nodes[ev.node].on_frame(port, &frame, &mut ctx);
                    // The buffer's journey ends here; recycle it.
                    ctx.pool.put(frame);
                }
                EventKind::Timer { token } => {
                    self.node_counters[ev.node].timer_fires += 1;
                    self.engine_counters.timers_fired += 1;
                    self.nodes[ev.node].on_timer(token, &mut ctx)
                }
            }
            let mut actions = ctx.actions;
            self.apply_actions(ev.node, &mut actions);
            self.action_scratch = actions;
            self.engine_counters.events_processed += 1;
            processed += 1;
        }
        if self.now < deadline {
            self.now = deadline;
        }
        processed
    }

    /// Run for `span` beyond the current time.
    pub fn run_for(&mut self, span: SimTime) -> u64 {
        let deadline = self.now + span;
        self.run_until(deadline)
    }

    /// Discard the captured trace.
    pub fn clear_trace(&mut self) {
        self.trace.clear();
        self.captured.clear();
    }

    /// Iterate the trace with node names resolved from the interned table.
    pub fn trace_hops(&self) -> impl Iterator<Item = ResolvedHop<'_>> {
        self.trace.iter().map(|e| ResolvedHop {
            at: e.at,
            from: &self.names[e.src],
            to: &self.names[e.dst],
            len: e.len,
            fault_drop: e.fault_drop,
            summary: e.summary(),
        })
    }

    /// Write everything captured so far to a pcap file (requires
    /// [`Network::capture_frames`] to have been on during the run).
    pub fn write_pcap(&self, path: &std::path::Path) -> std::io::Result<()> {
        crate::pcap::write_pcap(path, &self.captured)
    }

    /// Snapshot every counter the engine and its nodes are tracking.
    ///
    /// Node rows come back in node-id order and each device's counters
    /// in name order, so two runs with identical event streams produce
    /// [`MetricsSnapshot`]s that compare equal and render identically.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut engine = self.engine_counters;
        engine.frames_delivered = self.frames_delivered;
        let mut faults = self.fault_counters;
        faults.outage_micros = self.fault_plan.outage_micros_until(self.now.as_micros());
        MetricsSnapshot {
            engine,
            faults,
            pool: PoolCounters {
                allocated: self.frame_pool.allocated,
                reused: self.frame_pool.reused,
            },
            trace: TraceCounters {
                suppressed: self.trace_suppressed,
                capture_suppressed: self.capture_suppressed,
            },
            nodes: self
                .names
                .iter()
                .zip(&self.nodes)
                .zip(&self.node_counters)
                .map(|((name, node), &link)| NodeMetrics {
                    name: name.to_string(),
                    link,
                    device: node.device_metrics(),
                })
                .collect(),
        }
    }

    /// Render the trace as text (for examples and debugging).
    ///
    /// Full-mode entries render exactly as they always did
    /// (`time from -> to [len bytes] summary`); hops-mode entries omit
    /// the summary (fault drops keep their `FAULT-DROP` marker).
    pub fn format_trace(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for h in self.trace_hops() {
            match h.summary {
                Some(summary) => {
                    let _ = writeln!(
                        out,
                        "{} {} -> {} [{} bytes] {}",
                        h.at, h.from, h.to, h.len, summary
                    );
                }
                None if h.fault_drop => {
                    let _ = writeln!(
                        out,
                        "{} {} -> {} [{} bytes] FAULT-DROP",
                        h.at, h.from, h.to, h.len
                    );
                }
                None => {
                    let _ = writeln!(out, "{} {} -> {} [{} bytes]", h.at, h.from, h.to, h.len);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A node that echoes every frame back out the same port after 1 ms,
    /// counting what it saw.
    struct Echo {
        name: String,
        seen: Vec<Vec<u8>>,
        echo: bool,
    }

    impl Node for Echo {
        fn name(&self) -> &str {
            &self.name
        }

        fn on_frame(&mut self, port: u32, frame: &[u8], ctx: &mut Ctx) {
            self.seen.push(frame.to_vec());
            if self.echo {
                let buf = ctx.buffer_from(frame);
                ctx.send(port, buf);
            }
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// A node that emits one frame at start and one on each timer tick.
    struct Beacon {
        name: String,
        ticks: u32,
    }

    impl Node for Beacon {
        fn name(&self) -> &str {
            &self.name
        }

        fn start(&mut self, ctx: &mut Ctx) {
            ctx.send(0, vec![0xbe]);
            ctx.timer_in(SimTime::from_secs(1), 1);
        }

        fn on_frame(&mut self, _port: u32, _frame: &[u8], _ctx: &mut Ctx) {}

        fn on_timer(&mut self, token: u64, ctx: &mut Ctx) {
            self.ticks += 1;
            ctx.send(0, vec![0xbe, self.ticks as u8]);
            if self.ticks < 3 {
                ctx.timer_in(SimTime::from_secs(1), token);
            }
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn frames_flow_with_latency() {
        let mut net = Network::new();
        let a = net.add_node(Box::new(Beacon {
            name: "beacon".into(),
            ticks: 0,
        }));
        let b = net.add_node(Box::new(Echo {
            name: "sink".into(),
            seen: Vec::new(),
            echo: false,
        }));
        net.link(a, 0, b, 0, SimTime::from_millis(2));
        net.run_until(SimTime::from_millis(100));
        let sink = net.node_mut::<Echo>(b);
        assert_eq!(sink.seen.len(), 1, "only the start beacon by t=100ms");
        net.run_until(SimTime::from_secs(10));
        let sink = net.node_mut::<Echo>(b);
        assert_eq!(sink.seen.len(), 4, "start + 3 timer beacons");
    }

    #[test]
    fn timers_fire_in_order() {
        let mut net = Network::new();
        let a = net.add_node(Box::new(Beacon {
            name: "beacon".into(),
            ticks: 0,
        }));
        let b = net.add_node(Box::new(Echo {
            name: "sink".into(),
            seen: Vec::new(),
            echo: false,
        }));
        net.link(a, 0, b, 0, SimTime::ZERO);
        net.run_until(SimTime::from_secs(2));
        assert_eq!(net.node_mut::<Beacon>(a).ticks, 2);
        assert_eq!(net.now(), SimTime::from_secs(2));
    }

    #[test]
    fn unlinked_port_drops_silently() {
        let mut net = Network::new();
        let a = net.add_node(Box::new(Beacon {
            name: "lonely".into(),
            ticks: 0,
        }));
        let _ = a;
        let n = net.run_until(SimTime::from_secs(10));
        assert!(n >= 4, "events still processed");
    }

    #[test]
    fn with_node_applies_actions() {
        let mut net = Network::new();
        let a = net.add_node(Box::new(Echo {
            name: "a".into(),
            seen: Vec::new(),
            echo: false,
        }));
        let b = net.add_node(Box::new(Echo {
            name: "b".into(),
            seen: Vec::new(),
            echo: false,
        }));
        net.link(a, 0, b, 0, SimTime::from_millis(1));
        net.start();
        net.run_until(SimTime::ZERO);
        net.with_node::<Echo, _>(a, |_, ctx| ctx.send(0, vec![1, 2, 3]));
        net.run_for(SimTime::from_millis(5));
        assert_eq!(net.node_mut::<Echo>(b).seen, vec![vec![1, 2, 3]]);
        assert_eq!(net.frames_delivered, 1);
    }

    #[test]
    fn trace_records_hops() {
        let mut net = Network::new();
        let a = net.add_node(Box::new(Beacon {
            name: "beacon".into(),
            ticks: 0,
        }));
        let b = net.add_node(Box::new(Echo {
            name: "sink".into(),
            seen: Vec::new(),
            echo: false,
        }));
        net.link(a, 0, b, 0, SimTime::ZERO);
        net.run_until(SimTime::from_secs(5));
        assert_eq!(net.trace.len(), 4);
        assert_eq!(net.trace[0].src, a);
        assert_eq!(net.trace[0].dst, b);
        let first = net.trace_hops().next().expect("non-empty trace");
        assert_eq!((first.from, first.to), ("beacon", "sink"));
        let text = net.format_trace();
        assert!(text.contains("beacon -> sink"));
        net.clear_trace();
        assert!(net.trace.is_empty());
    }

    #[test]
    fn hops_mode_skips_summaries_but_keeps_hops() {
        let mut net = Network::new();
        net.trace_mode = TraceMode::Hops;
        let a = net.add_node(Box::new(Beacon {
            name: "beacon".into(),
            ticks: 0,
        }));
        let b = net.add_node(Box::new(Echo {
            name: "sink".into(),
            seen: Vec::new(),
            echo: false,
        }));
        net.link(a, 0, b, 0, SimTime::ZERO);
        net.run_until(SimTime::from_secs(5));
        assert_eq!(net.trace.len(), 4);
        assert!(net.trace.iter().all(|e| e.summary().is_none()));
        assert!(net.format_trace().contains("beacon -> sink [1 bytes]"));
    }

    #[test]
    fn off_mode_records_nothing_and_counts_nothing_suppressed() {
        let mut net = Network::new();
        net.trace_mode = TraceMode::Off;
        let a = net.add_node(Box::new(Beacon {
            name: "beacon".into(),
            ticks: 0,
        }));
        let b = net.add_node(Box::new(Echo {
            name: "sink".into(),
            seen: Vec::new(),
            echo: false,
        }));
        net.link(a, 0, b, 0, SimTime::ZERO);
        net.run_until(SimTime::from_secs(5));
        assert!(net.trace.is_empty());
        assert_eq!(net.metrics().trace, TraceCounters::default());
        assert_eq!(net.frames_delivered, 4);
    }

    #[test]
    fn trace_limit_counts_suppressed_hops() {
        let mut net = Network::new();
        net.trace_limit = 2;
        let a = net.add_node(Box::new(Beacon {
            name: "beacon".into(),
            ticks: 0,
        }));
        let b = net.add_node(Box::new(Echo {
            name: "sink".into(),
            seen: Vec::new(),
            echo: false,
        }));
        net.link(a, 0, b, 0, SimTime::ZERO);
        net.run_until(SimTime::from_secs(5));
        assert_eq!(net.trace.len(), 2);
        assert_eq!(net.metrics().trace.suppressed, 2);
    }

    #[test]
    #[should_panic(expected = "port already linked")]
    fn double_link_panics() {
        let mut net = Network::new();
        let a = net.add_node(Box::new(Echo {
            name: "a".into(),
            seen: Vec::new(),
            echo: false,
        }));
        let b = net.add_node(Box::new(Echo {
            name: "b".into(),
            seen: Vec::new(),
            echo: false,
        }));
        net.link(a, 0, b, 0, SimTime::ZERO);
        net.link(a, 0, b, 1, SimTime::ZERO);
    }
}

#[cfg(test)]
mod determinism_tests {
    use super::*;

    /// Two events scheduled for the same instant fire in scheduling order —
    /// the tie-break that makes whole-testbed runs exactly reproducible.
    struct Recorder {
        name: String,
        fired: Vec<u64>,
    }

    impl Node for Recorder {
        fn name(&self) -> &str {
            &self.name
        }

        fn start(&mut self, ctx: &mut Ctx) {
            for token in [3, 1, 2] {
                ctx.timer_in(SimTime::from_secs(1), token);
            }
        }

        fn on_frame(&mut self, _p: u32, _f: &[u8], _ctx: &mut Ctx) {}

        fn on_timer(&mut self, token: u64, _ctx: &mut Ctx) {
            self.fired.push(token);
        }

        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn same_instant_events_fire_in_schedule_order() {
        let mut net = Network::new();
        let r = net.add_node(Box::new(Recorder {
            name: "rec".into(),
            fired: Vec::new(),
        }));
        net.run_until(SimTime::from_secs(2));
        assert_eq!(net.node_mut::<Recorder>(r).fired, vec![3, 1, 2]);
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut net = Network::new();
        net.run_until(SimTime::from_secs(5));
        assert_eq!(net.now(), SimTime::from_secs(5));
        net.run_for(SimTime::from_secs(3));
        assert_eq!(net.now(), SimTime::from_secs(8));
    }
}
