//! The 5G mobile internet gateway (paper §IV.A), defects and all:
//!
//! * RAs advertise a **rotating** GUA /64 (different prefix every reboot)
//!   and an RDNSS of **dead** ULAs `fd00:976a::9` / `fd00:976a::10`
//!   (Fig. 3) — with "no options available to manipulate the RA".
//! * The built-in DHCPv4 server **cannot** send option 108 and **cannot be
//!   disabled** — the reason the managed switch snoops it away.
//! * NAT64 on the well-known prefix `64:ff9b::/96` **works**.
//! * Plain NAT44 and a DNS proxy on its LAN address work, giving legacy
//!   clients IPv4 internet (the Nintendo Switch escape hatch, §V).
//!
//! Ports: `0` = LAN, `1` = WAN (point-to-point; WAN frames use the broadcast
//! MAC since the upstream link has exactly one peer).

use crate::engine::{Ctx, Node};
use crate::nat44::Napt44;
use crate::time::SimTime;
use std::any::Any;
use std::net::{Ipv4Addr, Ipv6Addr};
use v6addr::class::{v6_class, V6Class};
use v6addr::prefix::Ipv6Prefix;
use v6addr::rfc6052::Nat64Prefix;
use v6dhcp::server::{DhcpServer, ServerConfig};
use v6wire::arp::{ArpOp, ArpPacket};
use v6wire::ethernet::{EtherType, EthernetFrame};
use v6wire::fasthash::FastMap;
use v6wire::icmpv4::Icmpv4Message;
use v6wire::icmpv6::{all_nodes, Icmpv6Message};
use v6wire::ipv4::{proto, Ipv4Packet};
use v6wire::ipv6::Ipv6Packet;
use v6wire::mac::MacAddr;
use v6wire::ndp::{NdpOption, NeighborAdvertisement, RouterAdvertisement, RouterPreference};
use v6wire::packet::{build_arp, build_icmpv6};
use v6wire::udp::{port, UdpDatagram};
use v6wire::view::{FrameView, Icmp4View, Icmp6View, Ipv4View, Ipv6View, L3View, L4View};
use v6xlat::nat64::{Nat64, Nat64Config};

/// LAN port index.
pub const LAN: u32 = 0;
/// WAN port index.
pub const WAN: u32 = 1;

const RA_TIMER: u64 = 10;

/// The gateway.
pub struct FiveGGateway {
    name: String,
    /// LAN-side MAC.
    pub lan_mac: MacAddr,
    /// LAN link-local address.
    pub link_local: Ipv6Addr,
    /// Current GUA /64 delegated by the mobile network (rotates on reboot).
    pub gua_prefix: Ipv6Prefix,
    reboot_count: u64,
    /// LAN IPv4 address (DHCP/DNS-proxy/default-gateway).
    pub lan_v4: Ipv4Addr,
    /// WAN public IPv4 (CGN space, per the paper's IoT discussion).
    pub wan_v4: Ipv4Addr,
    /// Upstream resolver the DNS proxy forwards to.
    pub upstream_dns: Ipv4Addr,
    /// The built-in DHCP server (no option 108, unkillable).
    pub dhcp: DhcpServer,
    /// The working NAT64.
    pub nat64: Nat64,
    /// The working NAT44.
    pub nat44: Napt44,
    /// RA interval.
    pub ra_interval: SimTime,
    /// The dead resolvers advertised in the RA.
    pub advertised_rdnss: Vec<Ipv6Addr>,
    neigh6: FastMap<Ipv6Addr, MacAddr>,
    arp4: FastMap<Ipv4Addr, MacAddr>,
    /// External NAT44 ports whose flow is a proxied DNS exchange; replies
    /// get their source rewritten back to `lan_v4`.
    dns_proxy_ports: FastMap<u16, ()>,
    /// Dropped-for-no-route counter (where ULA DNS queries die, Fig. 3).
    pub no_route_drops: u64,
    /// Experiment knob (Fig. 8): when set, legacy IPv4 internet access is
    /// blocked (NAT44 refuses new and existing flows); NAT64 and the DNS
    /// proxy keep working.
    pub block_v4_internet: bool,
}

impl FiveGGateway {
    /// A gateway matching the paper's unit.
    pub fn new(name: impl Into<String>) -> FiveGGateway {
        let lan_v4: Ipv4Addr = "192.168.12.1".parse().expect("static ip");
        let wan_v4: Ipv4Addr = "100.66.7.8".parse().expect("static ip");
        // The gateway's own DHCP: DNS points at itself, option 108 impossible.
        let dhcp = DhcpServer::new(ServerConfig {
            server_id: lan_v4,
            subnet: "192.168.12.0/24".parse().expect("static prefix"),
            range: (100, 199),
            router: Some(lan_v4),
            dns: vec![lan_v4],
            domain: None,
            lease_time: 3600,
            v6only_wait: None,
            v6only_exempt: std::collections::HashSet::new(),
            captive_portal: None,
        });
        FiveGGateway {
            name: name.into(),
            lan_mac: MacAddr::new([0x02, 0x5f, 0x47, 0, 0, 0x01]),
            link_local: "fe80::5f47:1".parse().expect("static ip"),
            gua_prefix: "2607:fb90:9bda:a425::/64".parse().expect("static prefix"),
            reboot_count: 0,
            lan_v4,
            wan_v4,
            upstream_dns: "9.9.9.9".parse().expect("static ip"),
            dhcp,
            nat64: Nat64::new(
                Nat64Prefix::well_known(),
                vec![wan_v4],
                Nat64Config {
                    port_floor: 32768,
                    ..Default::default()
                },
            ),
            nat44: Napt44::new(wan_v4),
            ra_interval: SimTime::from_secs(10),
            advertised_rdnss: vec![
                "fd00:976a::9".parse().expect("static ip"),
                "fd00:976a::10".parse().expect("static ip"),
            ],
            neigh6: FastMap::default(),
            arp4: FastMap::default(),
            dns_proxy_ports: FastMap::default(),
            no_route_drops: 0,
            block_v4_internet: false,
        }
    }

    /// The gateway's own GUA (first host of the delegated prefix).
    pub fn gua(&self) -> Ipv6Addr {
        self.gua_prefix.with_iid(1)
    }

    /// Simulate a power cycle: the mobile network delegates a *different*
    /// /64 (paper: "Every reboot, the device would obtain a different /64
    /// prefix"), and all state is lost.
    pub fn reboot(&mut self) {
        self.reboot_count += 1;
        let base: Ipv6Prefix = "2607:fb90:9bda::/48".parse().expect("static prefix");
        self.gua_prefix = base.subnet64(0xa425 + self.reboot_count);
        self.neigh6.clear();
        self.arp4.clear();
        self.dns_proxy_ports.clear();
        let wan = self.wan_v4;
        self.nat44 = Napt44::new(wan);
        self.nat64 = Nat64::new(
            Nat64Prefix::well_known(),
            vec![wan],
            Nat64Config {
                port_floor: 32768,
                ..Default::default()
            },
        );
    }

    /// Restore the post-construction state — unlike [`reboot`], which
    /// deliberately rotates the GUA prefix, this rewinds the gateway to
    /// exactly what [`FiveGGateway::new`] built: initial prefix, empty
    /// neighbour/ARP tables, fresh DHCP/NAT44/NAT64 state, counters
    /// zeroed. `block_v4_internet` is an experiment knob and is *not*
    /// reset; callers set it per cell.
    ///
    /// [`reboot`]: FiveGGateway::reboot
    pub fn reset(&mut self) {
        self.gua_prefix = "2607:fb90:9bda:a425::/64".parse().expect("static prefix");
        self.reboot_count = 0;
        self.dhcp.reset();
        self.nat64.reset();
        self.nat44.reset();
        self.neigh6.clear();
        self.arp4.clear();
        self.dns_proxy_ports.clear();
        self.no_route_drops = 0;
    }

    fn build_ra(&self) -> RouterAdvertisement {
        let mut ra = RouterAdvertisement::new(1800);
        ra.preference = RouterPreference::Medium;
        ra.options.push(NdpOption::SourceLinkLayer(self.lan_mac));
        ra.options.push(NdpOption::Mtu(1500));
        ra.options.push(NdpOption::PrefixInformation {
            prefix_len: 64,
            on_link: true,
            autonomous: true,
            valid_lifetime: 7200,
            preferred_lifetime: 1800,
            prefix: self.gua_prefix.network(),
        });
        // The defect: dead ULA resolvers, unremovable (Fig. 3).
        ra.options.push(NdpOption::Rdnss {
            lifetime: 1800,
            servers: self.advertised_rdnss.clone(),
        });
        ra
    }

    fn send_ra(&self, ctx: &mut Ctx) {
        let frame = build_icmpv6(
            self.lan_mac,
            MacAddr::for_ipv6_multicast(all_nodes()),
            self.link_local,
            all_nodes(),
            &Icmpv6Message::RouterAdvertisement(self.build_ra()),
        );
        ctx.send(LAN, frame);
    }

    fn lan_send_v6(&mut self, pkt: Ipv6Packet, ctx: &mut Ctx) {
        let Some(&mac) = self.neigh6.get(&pkt.dst) else {
            self.no_route_drops += 1;
            return; // would queue + NS in a full stack
        };
        let frame = EthernetFrame::new(mac, self.lan_mac, EtherType::Ipv6, pkt.encode());
        ctx.send(LAN, frame.encode());
    }

    fn lan_send_v4(&mut self, pkt: Ipv4Packet, ctx: &mut Ctx) {
        let Some(&mac) = self.arp4.get(&pkt.dst) else {
            self.no_route_drops += 1;
            return;
        };
        let frame = EthernetFrame::new(mac, self.lan_mac, EtherType::Ipv4, pkt.encode());
        ctx.send(LAN, frame.encode());
    }

    fn wan_send_v4(&self, pkt: Ipv4Packet, ctx: &mut Ctx) {
        let frame = EthernetFrame::new(
            MacAddr::BROADCAST,
            self.lan_mac,
            EtherType::Ipv4,
            pkt.encode(),
        );
        ctx.send(WAN, frame.encode());
    }

    fn wan_send_v6(&self, pkt: Ipv6Packet, ctx: &mut Ctx) {
        let frame = EthernetFrame::new(
            MacAddr::BROADCAST,
            self.lan_mac,
            EtherType::Ipv6,
            pkt.encode(),
        );
        ctx.send(WAN, frame.encode());
    }

    fn handle_lan_v6(&mut self, parsed: &FrameView<'_>, ip: &Ipv6View<'_>, ctx: &mut Ctx) {
        self.neigh6.insert(ip.src, parsed.eth.src);
        // Addressed to us?
        if ip.dst == self.link_local || ip.dst == self.gua() || ip.dst == all_nodes() {
            match &parsed.l4 {
                L4View::Icmp6(Icmp6View::RouterSolicitation { .. }) => self.send_ra(ctx),
                L4View::Icmp6(Icmp6View::NeighborSolicitation { target, .. })
                    if (*target == self.link_local || *target == self.gua()) =>
                {
                    let na = Icmpv6Message::NeighborAdvertisement(NeighborAdvertisement {
                        router: true,
                        solicited: true,
                        override_flag: true,
                        target: *target,
                        options: vec![NdpOption::TargetLinkLayer(self.lan_mac)],
                    });
                    let frame = build_icmpv6(self.lan_mac, parsed.eth.src, *target, ip.src, &na);
                    ctx.send(LAN, frame);
                }
                L4View::Icmp6(Icmp6View::EchoRequest {
                    ident,
                    seq,
                    payload,
                }) => {
                    let reply = Icmpv6Message::EchoReply {
                        ident: *ident,
                        seq: *seq,
                        payload: payload.to_vec(),
                    };
                    let frame = build_icmpv6(self.lan_mac, parsed.eth.src, ip.dst, ip.src, &reply);
                    ctx.send(LAN, frame);
                }
                _ => {}
            }
            return;
        }
        // NS for addresses that are not ours (e.g. solicited-node multicast
        // for another host) — not our business; hosts answer each other.
        if let L4View::Icmp6(Icmp6View::NeighborSolicitation { .. }) = &parsed.l4 {
            return;
        }
        // Routing decision.
        if self.nat64.prefix().matches(ip.dst) {
            if let Ok(v4) = self.nat64.v6_to_v4(&ip.to_packet(), ctx.now.as_secs()) {
                self.wan_send_v4(v4, ctx)
            }
            return;
        }
        match v6_class(ip.dst) {
            V6Class::GlobalUnicast | V6Class::SixToFour | V6Class::Teredo => {
                // Same hop-limit rule as `Ipv6Packet::forwarded`, without
                // materializing the packet when the TTL is spent.
                if ip.hop_limit > 1 {
                    let mut fwd = ip.to_packet();
                    fwd.hop_limit -= 1;
                    self.wan_send_v6(fwd, ctx);
                }
            }
            // ULA (the dead RDNSS!), link-local, everything else: no route.
            _ => {
                self.no_route_drops += 1;
            }
        }
    }

    fn handle_lan_v4(&mut self, parsed: &FrameView<'_>, ip: &Ipv4View<'_>, ctx: &mut Ctx) {
        if !ip.src.is_unspecified() {
            self.arp4.insert(ip.src, parsed.eth.src);
        }
        let broadcast = ip.dst == Ipv4Addr::BROADCAST;
        // DHCP to us (or broadcast).
        if let L4View::Udp(udp) = &parsed.l4 {
            if udp.dst_port == port::DHCP_SERVER && (broadcast || ip.dst == self.lan_v4) {
                if let Ok(msg) = v6dhcp::codec::DhcpMessage::decode(udp.payload) {
                    self.arp4
                        .entry(Ipv4Addr::UNSPECIFIED)
                        .or_insert(parsed.eth.src);
                    if let Some(reply) = self.dhcp.handle(&msg, ctx.now.as_secs()) {
                        let yiaddr = reply.yiaddr;
                        let dgram =
                            UdpDatagram::new(port::DHCP_SERVER, port::DHCP_CLIENT, reply.encode());
                        // Reply unicast to the client MAC, broadcast IP.
                        let frame = v6wire::packet::build_udp_v4(
                            self.lan_mac,
                            msg.chaddr,
                            self.lan_v4,
                            Ipv4Addr::BROADCAST,
                            &dgram,
                        );
                        self.arp4.insert(yiaddr, msg.chaddr);
                        ctx.send(LAN, frame);
                    }
                }
                return;
            }
            // DNS proxy: queries addressed to the gateway's resolver address.
            if udp.dst_port == port::DNS && ip.dst == self.lan_v4 {
                let upstream = self.upstream_dns;
                let rewritten = Ipv4Packet::new(
                    ip.src,
                    upstream,
                    proto::UDP,
                    UdpDatagram::new(udp.src_port, port::DNS, udp.payload.to_vec())
                        .encode_v4(ip.src, upstream),
                );
                if let Ok(out) = self.nat44.outbound(&rewritten, ctx.now.as_secs()) {
                    // Remember the external port so the reply maps back.
                    if let Ok(od) = UdpDatagram::decode_v4(&out.payload, out.src, out.dst) {
                        self.dns_proxy_ports.insert(od.src_port, ());
                    }
                    self.wan_send_v4(out, ctx);
                }
                return;
            }
        }
        // ICMP echo to us.
        if ip.dst == self.lan_v4 {
            if let L4View::Icmp4(Icmp4View::EchoRequest {
                ident,
                seq,
                payload,
            }) = &parsed.l4
            {
                let reply = Icmpv4Message::EchoReply {
                    ident: *ident,
                    seq: *seq,
                    payload: payload.to_vec(),
                };
                let frame = v6wire::packet::build_icmpv4(
                    self.lan_mac,
                    parsed.eth.src,
                    self.lan_v4,
                    ip.src,
                    &reply,
                );
                ctx.send(LAN, frame);
            }
            return;
        }
        if broadcast || ip.dst.is_multicast() {
            return;
        }
        // Default route: NAT44 to the internet (unless the Fig. 8
        // restriction experiment blocked it).
        if self.block_v4_internet {
            self.no_route_drops += 1;
            return;
        }
        if let Ok(out) = self.nat44.outbound(&ip.to_packet(), ctx.now.as_secs()) {
            self.wan_send_v4(out, ctx);
        }
    }

    fn handle_wan(&mut self, parsed: &FrameView<'_>, ctx: &mut Ctx) {
        match &parsed.l3 {
            L3View::V4(ip) if ip.dst == self.wan_v4 => {
                let now = ctx.now.as_secs();
                let pkt = ip.to_packet();
                // NAT64 reverse first (its port floor keeps ranges disjoint).
                if let Ok(v6) = self.nat64.v4_to_v6(&pkt, now) {
                    self.lan_send_v6(v6, ctx);
                    return;
                }
                if let Ok(mut v4) = self.nat44.inbound(&pkt, now) {
                    // Proxied DNS replies masquerade as the gateway resolver.
                    if ip.src == self.upstream_dns {
                        if let Ok(d) = UdpDatagram::decode_v4(ip.payload, ip.src, ip.dst) {
                            if self.dns_proxy_ports.contains_key(&d.dst_port) {
                                let inner = UdpDatagram::decode_v4(&v4.payload, v4.src, v4.dst)
                                    .expect("nat44 output is valid");
                                let lan_v4 = self.lan_v4;
                                v4 = Ipv4Packet::new(
                                    lan_v4,
                                    v4.dst,
                                    proto::UDP,
                                    UdpDatagram::new(port::DNS, inner.dst_port, inner.payload)
                                        .encode_v4(lan_v4, v4.dst),
                                );
                            }
                        }
                    }
                    self.lan_send_v4(v4, ctx);
                }
            }
            L3View::V6(ip) if self.gua_prefix.contains(ip.dst) => {
                if ip.dst == self.gua() {
                    return; // traffic to the gateway itself: nothing to serve
                }
                if ip.hop_limit > 1 {
                    let mut fwd = ip.to_packet();
                    fwd.hop_limit -= 1;
                    self.lan_send_v6(fwd, ctx);
                }
            }
            _ => {}
        }
    }
}

impl Node for FiveGGateway {
    fn name(&self) -> &str {
        &self.name
    }

    fn device_metrics(&self) -> v6wire::metrics::Metrics {
        let mut m = v6wire::metrics::Metrics::new();
        m.add("no_route_drops", self.no_route_drops);
        m.add("dhcp.offers_with_108", self.dhcp.offers_with_108);
        m.add("dhcp.offers_plain", self.dhcp.offers_plain);
        m.merge_namespaced("nat44", &self.nat44.metrics());
        m.merge_namespaced("nat64", &self.nat64.metrics());
        m
    }

    fn start(&mut self, ctx: &mut Ctx) {
        ctx.timer_in(SimTime::from_millis(50), RA_TIMER);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx) {
        if token == RA_TIMER {
            self.send_ra(ctx);
            ctx.timer_in(self.ra_interval, RA_TIMER);
        }
    }

    fn on_frame(&mut self, port_idx: u32, raw: &[u8], ctx: &mut Ctx) {
        let Ok(parsed) = FrameView::parse(raw) else {
            return;
        };
        if port_idx == WAN {
            self.handle_wan(&parsed, ctx);
            return;
        }
        match &parsed.l3 {
            L3View::Arp(arp) => {
                self.arp4.insert(arp.sender_ip, arp.sender_mac);
                if arp.op == ArpOp::Request && arp.target_ip == self.lan_v4 {
                    let reply = ArpPacket::reply_to(arp, self.lan_mac);
                    ctx.send(LAN, build_arp(self.lan_mac, arp.sender_mac, &reply));
                }
            }
            L3View::V6(ip) => {
                let ip = *ip;
                self.handle_lan_v6(&parsed, &ip, ctx);
            }
            L3View::V4(ip) => {
                let ip = *ip;
                self.handle_lan_v4(&parsed, &ip, ctx);
            }
            L3View::Other(..) => {}
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Network;
    use v6wire::packet::{ParsedFrame, L3, L4};

    struct Sink {
        name: String,
        frames: Vec<Vec<u8>>,
    }

    impl Node for Sink {
        fn name(&self) -> &str {
            &self.name
        }

        fn on_frame(&mut self, _port: u32, frame: &[u8], _ctx: &mut Ctx) {
            self.frames.push(frame.to_vec());
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn sink(name: &str) -> Box<Sink> {
        Box::new(Sink {
            name: name.into(),
            frames: Vec::new(),
        })
    }

    fn setup() -> (Network, usize, usize, usize) {
        let mut net = Network::new();
        let gw = net.add_node(Box::new(FiveGGateway::new("5g-gw")));
        let lan = net.add_node(sink("lan-host"));
        let wan = net.add_node(sink("internet"));
        net.link(gw, LAN, lan, 0, SimTime::from_micros(10));
        net.link(gw, WAN, wan, 0, SimTime::from_millis(20));
        (net, gw, lan, wan)
    }

    fn ras_in(frames: &[Vec<u8>]) -> Vec<RouterAdvertisement> {
        frames
            .iter()
            .filter_map(|f| match ParsedFrame::parse(f).ok()?.l4 {
                L4::Icmp6(Icmpv6Message::RouterAdvertisement(ra)) => Some(ra),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn fig3_ra_advertises_dead_ula_rdnss() {
        let (mut net, _gw, lan, _wan) = setup();
        net.run_until(SimTime::from_secs(1));
        let ras = ras_in(&net.node_mut::<Sink>(lan).frames);
        assert!(!ras.is_empty());
        assert_eq!(
            ras[0].rdnss_servers(),
            vec![
                "fd00:976a::9".parse::<Ipv6Addr>().unwrap(),
                "fd00:976a::10".parse::<Ipv6Addr>().unwrap()
            ],
            "the defect from Fig. 3"
        );
        assert_eq!(ras[0].preference, RouterPreference::Medium);
        assert_eq!(ras[0].slaac_prefixes().len(), 1);
    }

    #[test]
    fn reboot_rotates_prefix() {
        let (mut net, gw, lan, _wan) = setup();
        net.run_until(SimTime::from_secs(1));
        let before = ras_in(&net.node_mut::<Sink>(lan).frames)[0].slaac_prefixes()[0].0;
        net.node_mut::<Sink>(lan).frames.clear();
        net.node_mut::<FiveGGateway>(gw).reboot();
        net.run_for(SimTime::from_secs(11));
        let after = ras_in(&net.node_mut::<Sink>(lan).frames)[0].slaac_prefixes()[0].0;
        assert_ne!(before, after, "every reboot yields a different /64");
    }

    #[test]
    fn dhcp_works_but_never_offers_108() {
        let (mut net, _gw, lan, _wan) = setup();
        net.start();
        net.run_until(SimTime::ZERO);
        let mut d = v6dhcp::codec::DhcpMessage::client(
            v6dhcp::codec::DhcpMessageType::Discover,
            1,
            MacAddr::new([2, 0, 0, 0, 3, 1]),
        );
        d.options
            .push(v6dhcp::codec::DhcpOption::ParameterRequestList(vec![
                1, 3, 6, 108,
            ]));
        let frame = v6wire::packet::build_udp_v4(
            MacAddr::new([2, 0, 0, 0, 3, 1]),
            MacAddr::BROADCAST,
            Ipv4Addr::UNSPECIFIED,
            Ipv4Addr::BROADCAST,
            &UdpDatagram::new(port::DHCP_CLIENT, port::DHCP_SERVER, d.encode()),
        );
        net.with_node::<Sink, _>(lan, |_, ctx| ctx.send(0, frame));
        net.run_for(SimTime::from_millis(5));
        let offers: Vec<v6dhcp::codec::DhcpMessage> = net
            .node_mut::<Sink>(lan)
            .frames
            .iter()
            .filter_map(|f| match ParsedFrame::parse(f).ok()?.l4 {
                L4::Udp(u) if u.src_port == port::DHCP_SERVER => {
                    v6dhcp::codec::DhcpMessage::decode(&u.payload).ok()
                }
                _ => None,
            })
            .collect();
        assert_eq!(offers.len(), 1, "the pool cannot be disabled");
        assert_eq!(
            offers[0].v6only_wait(),
            None,
            "and it cannot define option 108"
        );
        assert_eq!(
            offers[0].dns_servers(),
            vec!["192.168.12.1".parse::<Ipv4Addr>().unwrap()]
        );
    }

    #[test]
    fn nat64_path_works_end_to_end() {
        let (mut net, _gw, lan, wan) = setup();
        net.start();
        net.run_until(SimTime::ZERO);
        let client_mac = MacAddr::new([2, 0, 0, 0, 3, 9]);
        let client_v6: Ipv6Addr = "2607:fb90:9bda:a425::50".parse().unwrap();
        let dst = Nat64Prefix::well_known().embed_unchecked("190.92.158.4".parse().unwrap());
        let d = UdpDatagram::new(40000, 53, b"q".to_vec());
        let frame = v6wire::packet::build_udp_v6(
            client_mac,
            MacAddr::new([0x02, 0x5f, 0x47, 0, 0, 0x01]),
            client_v6,
            dst,
            &d,
        );
        net.with_node::<Sink, _>(lan, |_, ctx| ctx.send(0, frame));
        net.run_for(SimTime::from_millis(50));
        // The internet side sees a v4 packet from the gateway's WAN address.
        let wan_frames = &net.node_mut::<Sink>(wan).frames;
        assert_eq!(wan_frames.len(), 1);
        let p = ParsedFrame::parse(&wan_frames[0]).unwrap();
        let L3::V4(ip) = &p.l3 else {
            panic!("expected v4")
        };
        assert_eq!(ip.src, "100.66.7.8".parse::<Ipv4Addr>().unwrap());
        assert_eq!(ip.dst, "190.92.158.4".parse::<Ipv4Addr>().unwrap());
        let L4::Udp(u) = &p.l4 else {
            panic!("expected udp")
        };
        // Reply from the server retraces into v6 toward the client.
        let reply = UdpDatagram::new(53, u.src_port, b"r".to_vec());
        let rframe = v6wire::packet::build_udp_v4(
            MacAddr::new([2, 0, 0, 0, 4, 1]),
            MacAddr::BROADCAST,
            "190.92.158.4".parse().unwrap(),
            "100.66.7.8".parse().unwrap(),
            &reply,
        );
        net.with_node::<Sink, _>(wan, |_, ctx| ctx.send(0, rframe));
        net.run_for(SimTime::from_millis(50));
        let lan_frames = &net.node_mut::<Sink>(lan).frames;
        let got = lan_frames
            .iter()
            .filter_map(|f| ParsedFrame::parse(f).ok())
            .find_map(|p| match (p.l3, p.l4) {
                (L3::V6(ip), L4::Udp(u)) if ip.dst == client_v6 => Some(u),
                _ => None,
            })
            .expect("translated reply must reach the client");
        assert_eq!(got.dst_port, 40000);
        assert_eq!(got.payload, b"r");
    }

    #[test]
    fn ula_destinations_unroutable() {
        // The heart of Fig. 3: DNS queries to the advertised fd00:976a::9
        // go nowhere without the managed switch + Pi.
        let (mut net, gw, lan, wan) = setup();
        net.start();
        net.run_until(SimTime::ZERO);
        let frame = v6wire::packet::build_udp_v6(
            MacAddr::new([2, 0, 0, 0, 3, 9]),
            MacAddr::new([0x02, 0x5f, 0x47, 0, 0, 0x01]),
            "2607:fb90:9bda:a425::50".parse().unwrap(),
            "fd00:976a::9".parse().unwrap(),
            &UdpDatagram::new(40000, 53, b"dns?".to_vec()),
        );
        net.with_node::<Sink, _>(lan, |_, ctx| ctx.send(0, frame));
        net.run_for(SimTime::from_millis(100));
        assert!(net.node_mut::<Sink>(wan).frames.is_empty(), "never leaves");
        assert_eq!(net.node_mut::<FiveGGateway>(gw).no_route_drops, 1);
    }

    #[test]
    fn dns_proxy_and_nat44_legacy_path() {
        let (mut net, _gw, lan, wan) = setup();
        net.start();
        net.run_until(SimTime::ZERO);
        let client_mac = MacAddr::new([2, 0, 0, 0, 3, 5]);
        // Client got 192.168.12.100 from the gateway's DHCP; queries DNS at
        // the gateway.
        let frame = v6wire::packet::build_udp_v4(
            client_mac,
            MacAddr::new([0x02, 0x5f, 0x47, 0, 0, 0x01]),
            "192.168.12.100".parse().unwrap(),
            "192.168.12.1".parse().unwrap(),
            &UdpDatagram::new(5353, port::DNS, b"query-bytes".to_vec()),
        );
        net.with_node::<Sink, _>(lan, |_, ctx| ctx.send(0, frame));
        net.run_for(SimTime::from_millis(50));
        // Proxied to the upstream resolver.
        let p = ParsedFrame::parse(&net.node_mut::<Sink>(wan).frames[0]).unwrap();
        let L3::V4(ip) = &p.l3 else {
            panic!("v4 expected")
        };
        assert_eq!(ip.dst, "9.9.9.9".parse::<Ipv4Addr>().unwrap());
        assert_eq!(ip.src, "100.66.7.8".parse::<Ipv4Addr>().unwrap());
        let L4::Udp(u) = &p.l4 else {
            panic!("udp expected")
        };
        // Upstream answers; client must see the reply from 192.168.12.1.
        let reply = UdpDatagram::new(port::DNS, u.src_port, b"answer-bytes".to_vec());
        let rframe = v6wire::packet::build_udp_v4(
            MacAddr::new([2, 0, 0, 0, 4, 2]),
            MacAddr::BROADCAST,
            "9.9.9.9".parse().unwrap(),
            "100.66.7.8".parse().unwrap(),
            &reply,
        );
        net.with_node::<Sink, _>(wan, |_, ctx| ctx.send(0, rframe));
        net.run_for(SimTime::from_millis(50));
        let got = net
            .node_mut::<Sink>(lan)
            .frames
            .iter()
            .filter_map(|f| ParsedFrame::parse(f).ok())
            .find_map(|p| match (p.l3, p.l4) {
                (L3::V4(ip), L4::Udp(u)) if u.dst_port == 5353 => Some((ip, u)),
                _ => None,
            })
            .expect("proxied DNS reply");
        assert_eq!(got.0.src, "192.168.12.1".parse::<Ipv4Addr>().unwrap());
        assert_eq!(got.1.payload, b"answer-bytes");
    }

    #[test]
    fn arp_and_ping_gateway() {
        let (mut net, _gw, lan, _wan) = setup();
        net.start();
        net.run_until(SimTime::ZERO);
        let client_mac = MacAddr::new([2, 0, 0, 0, 3, 7]);
        let req = ArpPacket::request(
            client_mac,
            "192.168.12.100".parse().unwrap(),
            "192.168.12.1".parse().unwrap(),
        );
        net.with_node::<Sink, _>(lan, |_, ctx| {
            ctx.send(0, build_arp(client_mac, MacAddr::BROADCAST, &req))
        });
        net.run_for(SimTime::from_millis(5));
        let reply = net
            .node_mut::<Sink>(lan)
            .frames
            .iter()
            .filter_map(|f| ParsedFrame::parse(f).ok())
            .find_map(|p| match p.l3 {
                L3::Arp(a) if a.op == ArpOp::Reply => Some(a),
                _ => None,
            })
            .expect("arp reply");
        assert_eq!(reply.sender_ip, "192.168.12.1".parse::<Ipv4Addr>().unwrap());
    }
}
