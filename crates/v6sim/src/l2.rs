//! Layer-2 devices: a learning Ethernet switch, and the paper's *managed
//! switch* — the same switch augmented with (a) DHCPv4 snooping to silence
//! the 5G gateway's pool and (b) its own low-priority Router Advertisements
//! for `fd00:976a::/64` with a live RDNSS (paper §IV.A).

use crate::engine::{Ctx, Node};
use crate::time::SimTime;
use std::any::Any;
use std::net::Ipv6Addr;
use v6addr::prefix::Ipv6Prefix;
use v6dhcp::codec::DhcpMessage;
use v6dhcp::snoop::{DhcpSnoop, SnoopVerdict};
use v6wire::fasthash::FastMap;
use v6wire::icmpv6::{all_nodes, Icmpv6Message};
use v6wire::mac::MacAddr;
use v6wire::ndp::{NdpOption, RouterAdvertisement, RouterPreference};
use v6wire::packet::build_icmpv6;
use v6wire::udp::port;
use v6wire::view::{FrameView, Icmp6View, L3View, L4View};

/// Configuration for the managed switch's own RA.
#[derive(Debug, Clone)]
pub struct RaInjection {
    /// The switch's MAC for RA sourcing.
    pub mac: MacAddr,
    /// The switch's link-local address.
    pub link_local: Ipv6Addr,
    /// On-link + SLAAC prefix to advertise (the paper's `fd00:976a::/64`).
    pub prefix: Ipv6Prefix,
    /// RDNSS servers (the paper's live `fd00:976a::9`).
    pub rdnss: Vec<Ipv6Addr>,
    /// DNSSL search domains.
    pub dnssl: Vec<String>,
    /// Router preference — *Low*, so the gateway stays the default router.
    pub preference: RouterPreference,
    /// Router lifetime (0 = advertise prefix/RDNSS without being a default
    /// router).
    pub router_lifetime: u16,
    /// Beacon interval.
    pub interval: SimTime,
    /// Optional PREF64 (RFC 8781) to advertise alongside the prefix.
    pub pref64: Option<(Ipv6Addr, u8)>,
}

impl RaInjection {
    /// The paper's configuration.
    pub fn testbed(mac: MacAddr) -> RaInjection {
        RaInjection {
            mac,
            link_local: Ipv6Addr::new(0xfe80, 0, 0, 0, 0, 0, 0, 0x5c),
            prefix: "fd00:976a::/64".parse().expect("static prefix"),
            rdnss: vec!["fd00:976a::9".parse().expect("static ip")],
            dnssl: vec!["rfc8925.com".into()],
            preference: RouterPreference::Low,
            router_lifetime: 1800,
            interval: SimTime::from_secs(10),
            pref64: None,
        }
    }

    fn build(&self) -> RouterAdvertisement {
        let mut ra = RouterAdvertisement::new(self.router_lifetime);
        ra.preference = self.preference;
        ra.options.push(NdpOption::SourceLinkLayer(self.mac));
        ra.options.push(NdpOption::PrefixInformation {
            prefix_len: self.prefix.len(),
            on_link: true,
            autonomous: true,
            valid_lifetime: 2_592_000,
            preferred_lifetime: 604_800,
            prefix: self.prefix.network(),
        });
        ra.options.push(NdpOption::Rdnss {
            lifetime: 3600,
            servers: self.rdnss.clone(),
        });
        if !self.dnssl.is_empty() {
            ra.options.push(NdpOption::Dnssl {
                lifetime: 3600,
                domains: self.dnssl.clone(),
            });
        }
        if let Some((prefix, prefix_len)) = self.pref64 {
            ra.options.push(NdpOption::Pref64 {
                lifetime: 1800,
                prefix,
                prefix_len,
            });
        }
        ra
    }
}

const RA_TIMER: u64 = 1;

/// A learning Ethernet switch with optional DHCP snooping and RA injection.
pub struct Switch {
    name: String,
    ports: u32,
    mac_table: FastMap<MacAddr, u32>,
    /// DHCP snooping state, if enabled.
    pub snoop: Option<DhcpSnoop>,
    /// RA injection, if enabled (the "managed switch" role).
    pub ra: Option<RaInjection>,
    /// Encoded RA frame, built from `ra` at first emission. The RA is a
    /// pure function of configuration, so the (checksummed) bytes are
    /// computed once and replayed on every beacon and solicitation.
    ra_frame: Option<Vec<u8>>,
    /// Frames forwarded.
    pub forwarded: u64,
    /// Frames dropped by snooping.
    pub snoop_dropped: u64,
}

impl Switch {
    /// A plain learning switch with `ports` ports.
    pub fn new(name: impl Into<String>, ports: u32) -> Switch {
        Switch {
            name: name.into(),
            ports,
            mac_table: FastMap::default(),
            snoop: None,
            ra: None,
            ra_frame: None,
            forwarded: 0,
            snoop_dropped: 0,
        }
    }

    /// The paper's managed switch: snooping enabled with `trusted_port`
    /// (where the Raspberry Pi servers live) and testbed RA injection.
    pub fn managed(name: impl Into<String>, ports: u32, trusted_port: u32) -> Switch {
        let mut snoop = DhcpSnoop::new();
        snoop.trust(trusted_port);
        let mut sw = Switch::new(name, ports);
        sw.snoop = Some(snoop);
        sw.ra = Some(RaInjection::testbed(MacAddr::new([
            0x02, 0x5c, 0, 0, 0, 0x01,
        ])));
        sw
    }

    /// Restore the post-construction state: learned MACs forgotten,
    /// snoop and forwarding counters zeroed. Configuration (port count,
    /// trusted ports, RA injection) is left exactly as built.
    pub fn reset(&mut self) {
        self.mac_table.clear();
        if let Some(snoop) = &mut self.snoop {
            snoop.reset();
        }
        self.forwarded = 0;
        self.snoop_dropped = 0;
    }

    fn is_dhcp(frame: &FrameView) -> Option<DhcpMessage> {
        if let (L3View::V4(_), L4View::Udp(udp)) = (&frame.l3, &frame.l4) {
            if (udp.dst_port == port::DHCP_SERVER || udp.dst_port == port::DHCP_CLIENT)
                && (udp.src_port == port::DHCP_SERVER || udp.src_port == port::DHCP_CLIENT)
            {
                return DhcpMessage::decode(udp.payload).ok();
            }
        }
        None
    }

    fn flood(&mut self, ingress: u32, raw: &[u8], ctx: &mut Ctx) {
        for p in 0..self.ports {
            if p != ingress {
                ctx.send_copy(p, raw);
            }
        }
    }

    fn emit_ra(&mut self, ctx: &mut Ctx) {
        if let Some(ra) = &self.ra {
            let frame = self.ra_frame.get_or_insert_with(|| {
                let msg = Icmpv6Message::RouterAdvertisement(ra.build());
                build_icmpv6(
                    ra.mac,
                    MacAddr::for_ipv6_multicast(all_nodes()),
                    ra.link_local,
                    all_nodes(),
                    &msg,
                )
            });
            for p in 0..self.ports {
                ctx.send_copy(p, frame);
            }
        }
    }
}

impl Node for Switch {
    fn name(&self) -> &str {
        &self.name
    }

    fn device_metrics(&self) -> v6wire::metrics::Metrics {
        let mut m = v6wire::metrics::Metrics::new();
        m.add("forwarded", self.forwarded);
        m.add("snoop_dropped", self.snoop_dropped);
        m.add("macs_learned", self.mac_table.len() as u64);
        m
    }

    fn start(&mut self, ctx: &mut Ctx) {
        if let Some(ra) = &self.ra {
            // First beacon shortly after boot, then periodic.
            ctx.timer_in(SimTime::from_millis(100), RA_TIMER);
            let _ = ra;
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx) {
        if token == RA_TIMER {
            self.emit_ra(ctx);
            if let Some(ra) = &self.ra {
                ctx.timer_in(ra.interval, RA_TIMER);
            }
        }
    }

    fn on_frame(&mut self, ingress: u32, raw: &[u8], ctx: &mut Ctx) {
        // A switch only inspects headers; the zero-copy view keeps the
        // per-hop cost allocation-free (it has the exact accept/reject
        // behaviour of the owned parser, so drop accounting is unchanged).
        let Ok(parsed) = FrameView::parse(raw) else {
            return; // corrupt frame: drop
        };
        // Learn the source.
        if !parsed.eth.src.is_multicast() {
            self.mac_table.insert(parsed.eth.src, ingress);
        }
        // DHCP snooping.
        if let Some(snoop) = &mut self.snoop {
            if let Some(dhcp) = Self::is_dhcp(&parsed) {
                if snoop.inspect(ingress, &dhcp) == SnoopVerdict::DropUntrustedServer {
                    self.snoop_dropped += 1;
                    return;
                }
            }
        }
        // An RS arriving triggers an immediate RA (RFC 4861 §6.2.6) in
        // addition to normal forwarding.
        if matches!(
            parsed.l4,
            L4View::Icmp6(Icmp6View::RouterSolicitation { .. })
        ) {
            self.emit_ra(ctx);
        }
        // Forward.
        self.forwarded += 1;
        if parsed.eth.dst.is_multicast() {
            self.flood(ingress, raw, ctx);
        } else if let Some(&out) = self.mac_table.get(&parsed.eth.dst) {
            if out != ingress {
                ctx.send_copy(out, raw);
            }
        } else {
            self.flood(ingress, raw, ctx);
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Network;
    use v6dhcp::codec::DhcpMessageType;
    use v6wire::packet::{build_udp_v4, ParsedFrame, L4};

    /// Capture-everything endpoint.
    struct Sink {
        name: String,
        frames: Vec<Vec<u8>>,
    }

    impl Sink {
        fn new(name: &str) -> Box<Sink> {
            Box::new(Sink {
                name: name.into(),
                frames: Vec::new(),
            })
        }
    }

    impl Node for Sink {
        fn name(&self) -> &str {
            &self.name
        }

        fn on_frame(&mut self, _port: u32, frame: &[u8], _ctx: &mut Ctx) {
            self.frames.push(frame.to_vec());
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn mac(n: u8) -> MacAddr {
        MacAddr::new([2, 0, 0, 0, 9, n])
    }

    fn unicast_frame(src: MacAddr, dst: MacAddr) -> Vec<u8> {
        v6wire::ethernet::EthernetFrame::new(
            dst,
            src,
            v6wire::ethernet::EtherType::Other(0x9999),
            vec![1],
        )
        .encode()
    }

    #[test]
    fn learning_switch_floods_then_forwards() {
        let mut net = Network::new();
        let sw = net.add_node(Box::new(Switch::new("sw", 3)));
        let a = net.add_node(Sink::new("a"));
        let b = net.add_node(Sink::new("b"));
        let c = net.add_node(Sink::new("c"));
        for (i, host) in [a, b, c].into_iter().enumerate() {
            net.link(sw, i as u32, host, 0, SimTime::from_micros(1));
        }
        net.start();
        net.run_until(SimTime::ZERO);
        // a → b (unknown dst: flood to b and c).
        net.with_node::<Sink, _>(a, |_, ctx| ctx.send(0, unicast_frame(mac(1), mac(2))));
        // Deliver a's frame to the switch and onward.
        net.run_for(SimTime::from_millis(1));
        // b replies → a (a's MAC now learned: unicast to port 0 only).
        net.with_node::<Sink, _>(b, |_, ctx| ctx.send(0, unicast_frame(mac(2), mac(1))));
        net.run_for(SimTime::from_millis(1));
        assert_eq!(
            net.node_mut::<Sink>(c).frames.len(),
            1,
            "c saw only the flood"
        );
        assert_eq!(net.node_mut::<Sink>(b).frames.len(), 1);
        assert_eq!(
            net.node_mut::<Sink>(a).frames.len(),
            1,
            "reply unicast to a"
        );
    }

    #[test]
    fn managed_switch_beacons_low_priority_ra() {
        let mut net = Network::new();
        let sw = net.add_node(Box::new(Switch::managed("msw", 2, 0)));
        let a = net.add_node(Sink::new("a"));
        net.link(sw, 1, a, 0, SimTime::from_micros(1));
        net.run_until(SimTime::from_secs(25));
        let frames = std::mem::take(&mut net.node_mut::<Sink>(a).frames);
        let ras: Vec<RouterAdvertisement> = frames
            .iter()
            .filter_map(|f| match ParsedFrame::parse(f).ok()?.l4 {
                L4::Icmp6(Icmpv6Message::RouterAdvertisement(ra)) => Some(ra),
                _ => None,
            })
            .collect();
        assert!(ras.len() >= 3, "periodic beacons: {}", ras.len());
        let ra = &ras[0];
        assert_eq!(ra.preference, RouterPreference::Low);
        assert_eq!(
            ra.rdnss_servers(),
            vec!["fd00:976a::9".parse::<Ipv6Addr>().unwrap()]
        );
        assert_eq!(
            ra.slaac_prefixes(),
            vec![("fd00:976a::".parse().unwrap(), 64)]
        );
    }

    #[test]
    fn snooping_blocks_untrusted_offers() {
        let mut net = Network::new();
        // Port 0 trusted (Pi), port 1 = gateway (untrusted), port 2 = client.
        let sw = net.add_node(Box::new(Switch::managed("msw", 3, 0)));
        let pi = net.add_node(Sink::new("pi"));
        let gw = net.add_node(Sink::new("gw"));
        let client = net.add_node(Sink::new("client"));
        net.link(sw, 0, pi, 0, SimTime::from_micros(1));
        net.link(sw, 1, gw, 0, SimTime::from_micros(1));
        net.link(sw, 2, client, 0, SimTime::from_micros(1));
        net.start();
        net.run_until(SimTime::ZERO);

        let offer = {
            let req = DhcpMessage::client(DhcpMessageType::Discover, 1, mac(3));
            let mut o = DhcpMessage::reply(DhcpMessageType::Offer, &req);
            o.yiaddr = "192.168.12.60".parse().unwrap();
            o
        };
        let offer_frame = |src: MacAddr| {
            build_udp_v4(
                src,
                MacAddr::BROADCAST,
                "192.168.12.1".parse().unwrap(),
                "255.255.255.255".parse().unwrap(),
                &v6wire::udp::UdpDatagram::new(67, 68, offer.encode()),
            )
        };
        // Gateway's offer: dropped.
        net.with_node::<Sink, _>(gw, |_, ctx| ctx.send(0, offer_frame(mac(9))));
        net.run_for(SimTime::from_millis(1));
        let client_count_after_gw = {
            let c = net.node_mut::<Sink>(client);
            c.frames
                .iter()
                .filter(|f| {
                    matches!(
                        ParsedFrame::parse(f).map(|p| matches!(p.l4, L4::Udp(_))),
                        Ok(true)
                    )
                })
                .count()
        };
        assert_eq!(client_count_after_gw, 0, "gateway offer must be snooped");
        // Pi's offer: forwarded.
        net.with_node::<Sink, _>(pi, |_, ctx| ctx.send(0, offer_frame(mac(8))));
        net.run_for(SimTime::from_millis(1));
        let c = net.node_mut::<Sink>(client);
        let dhcp_frames = c
            .frames
            .iter()
            .filter(|f| {
                matches!(
                    ParsedFrame::parse(f).map(|p| matches!(p.l4, L4::Udp(_))),
                    Ok(true)
                )
            })
            .count();
        assert_eq!(dhcp_frames, 1, "pi offer must pass");
        assert_eq!(net.node_mut::<Switch>(sw).snoop_dropped, 1);
    }

    #[test]
    fn rs_triggers_immediate_ra() {
        let mut net = Network::new();
        let sw = net.add_node(Box::new(Switch::managed("msw", 2, 0)));
        let a = net.add_node(Sink::new("a"));
        net.link(sw, 1, a, 0, SimTime::from_micros(1));
        net.start();
        // Run just past boot beacon.
        net.run_until(SimTime::from_millis(200));
        net.node_mut::<Sink>(a).frames.clear();
        // Host sends RS at t=200ms; next periodic beacon would be ~10s.
        let rs = Icmpv6Message::RouterSolicitation(Default::default());
        let frame = build_icmpv6(
            mac(7),
            MacAddr::for_ipv6_multicast(v6wire::icmpv6::all_routers()),
            "fe80::7".parse().unwrap(),
            v6wire::icmpv6::all_routers(),
            &rs,
        );
        net.with_node::<Sink, _>(a, |_, ctx| ctx.send(0, frame));
        net.run_for(SimTime::from_millis(10));
        let got_ra = net.node_mut::<Sink>(a).frames.iter().any(|f| {
            matches!(
                ParsedFrame::parse(f).map(|p| p.l4),
                Ok(L4::Icmp6(Icmpv6Message::RouterAdvertisement(_)))
            )
        });
        assert!(got_ra, "solicited RA must arrive without waiting a beacon");
    }
}
