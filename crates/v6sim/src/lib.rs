//! # v6sim — deterministic discrete-event network simulator
//!
//! The substrate standing in for the paper's physical testbed (5G gateway,
//! managed switch, Raspberry Pis, Wi-Fi clients). Everything is an
//! Ethernet-frame-level [`engine::Node`] connected by latency-bearing links;
//! a virtual clock and a seeded RNG make every run reproducible.
//!
//! * [`time`] — the virtual clock ([`time::SimTime`])
//! * [`engine`] — event queue, nodes, links, frame tracing, and the
//!   link-layer fault-injection hook ([`engine::Network::set_fault_plan`])
//! * [`l2`] — learning Ethernet switch and the paper's *managed switch*
//!   (low-priority RA injection + DHCPv4 snooping)
//! * [`gateway`] — the 5G mobile internet gateway with its documented
//!   defects (dead ULA RDNSS, rotating /64, unkillable DHCPv4 pool) and its
//!   working NAT44/NAT64 data path
//! * [`metrics`] — per-node and engine-wide counter snapshots
//!   ([`engine::Network::metrics`])
//! * [`tcp`] — a miniature TCP endpoint used by hosts and portal servers
//! * [`nat44`] — the IPv4 NAPT the gateway applies to legacy traffic
//! * [`pcap`] — export captured frames to Wireshark-readable pcap files

#![warn(missing_docs)]

pub mod engine;
pub mod gateway;

/// Re-export of the fault-injection vocabulary (`v6fault`): downstream
/// crates build [`fault::FaultPlan`]s without a direct dependency.
pub use v6fault as fault;
pub mod l2;
pub mod metrics;
pub mod nat44;
pub mod pcap;
pub mod tcp;
pub mod time;

pub use engine::{Ctx, Network, Node, NodeId, ResolvedHop, TraceEntry, TraceMode};
pub use metrics::{
    EngineMetrics, LinkCounters, MetricsSnapshot, NodeMetrics, PoolCounters, TraceCounters,
};
pub use time::SimTime;
