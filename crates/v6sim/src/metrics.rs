//! Per-node and engine-wide counters snapshotted by [`Network::metrics`].
//!
//! The engine tracks the physical-layer view for every node — frames and
//! bytes in each direction, transmit attempts on unlinked ports, timer
//! fires — while each device contributes its own protocol-level counters
//! through [`crate::engine::Node::device_metrics`]. A snapshot is plain
//! data (`Clone + Eq`), so fleet runs with the same seed can assert
//! byte-identical metrics, and it orders nodes by id and counters by
//! name so the rendered form is stable too.
//!
//! [`Network::metrics`]: crate::engine::Network::metrics

use std::fmt;
use v6wire::metrics::Metrics;

/// Engine-level totals across the whole [`crate::engine::Network`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineMetrics {
    /// Callbacks dispatched (start + frame + timer events).
    pub events_processed: u64,
    /// Frames handed to a receiving node's `on_frame`.
    pub frames_delivered: u64,
    /// Frames enqueued onto a link (delivery scheduled).
    pub frames_forwarded: u64,
    /// Transmit attempts on ports with no link (cable unplugged).
    pub frames_dropped_unlinked: u64,
    /// Timer callbacks fired.
    pub timers_fired: u64,
    /// High-water mark of the event queue length.
    pub queue_high_water: u64,
}

/// Injected-fault totals across the whole network (all zero unless a
/// non-default [`v6fault::FaultPlan`] is installed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Frames dropped by random loss.
    pub dropped: u64,
    /// Frames dropped inside a scheduled outage window.
    pub outage_dropped: u64,
    /// Frames delivered with extra delay (latency, jitter, reordering).
    pub delayed: u64,
    /// Extra copies scheduled beyond the original frame.
    pub duplicated: u64,
    /// Frames delivered with a flipped payload byte.
    pub corrupted: u64,
    /// Frames delivered cut to half length.
    pub truncated: u64,
    /// Microseconds of scheduled outage elapsed at snapshot time.
    pub outage_micros: u64,
}

impl FaultCounters {
    /// Frames the fault layer removed from the network entirely.
    pub fn total_dropped(&self) -> u64 {
        self.dropped + self.outage_dropped
    }

    /// The counters in [`v6wire::metrics::Metrics`] form, under the
    /// canonical `fault.*` names. Empty when nothing was injected, so
    /// merging it into a clean snapshot changes nothing.
    pub fn as_metrics(&self) -> Metrics {
        use v6wire::metrics::fault_names as n;
        [
            (n::DROPPED, self.dropped),
            (n::OUTAGE_DROPPED, self.outage_dropped),
            (n::DELAYED, self.delayed),
            (n::DUPLICATED, self.duplicated),
            (n::CORRUPTED, self.corrupted),
            (n::TRUNCATED, self.truncated),
            (n::OUTAGE_SECS, self.outage_micros / 1_000_000),
        ]
        .into_iter()
        .collect()
    }
}

/// Frame-buffer pool totals for the whole network. `reused` growing while
/// `allocated` stays flat is the steady-state zero-allocation signature
/// the engine's hot path aims for.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// Fresh frame buffers allocated (pool was empty).
    pub allocated: u64,
    /// Frame buffers served from the recycle pool.
    pub reused: u64,
}

impl PoolCounters {
    /// Fraction of buffer requests served without allocating, in
    /// `[0, 1]` (zero when no buffers were ever requested).
    pub fn reuse_ratio(&self) -> f64 {
        let total = self.allocated + self.reused;
        if total == 0 {
            0.0
        } else {
            self.reused as f64 / total as f64
        }
    }

    /// The counters under their canonical `pool.*` names.
    pub fn as_metrics(&self) -> Metrics {
        use v6wire::metrics::engine_names as n;
        [
            (n::POOL_ALLOCATED, self.allocated),
            (n::POOL_REUSED, self.reused),
        ]
        .into_iter()
        .collect()
    }
}

/// Trace/capture bookkeeping: hops and frames *not* recorded because the
/// respective cap was reached. Mode `Off` records nothing and suppresses
/// nothing — these count only cap overflow, so they are identical across
/// trace modes at default limits (the determinism tests rely on that).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCounters {
    /// Hops dropped because `trace_limit` was reached.
    pub suppressed: u64,
    /// Frames not pcap-captured because `capture_limit` was reached.
    pub capture_suppressed: u64,
}

impl TraceCounters {
    /// The counters under their canonical `trace.*` / `capture.*` names.
    pub fn as_metrics(&self) -> Metrics {
        use v6wire::metrics::engine_names as n;
        [
            (n::TRACE_SUPPRESSED, self.suppressed),
            (n::CAPTURE_SUPPRESSED, self.capture_suppressed),
        ]
        .into_iter()
        .collect()
    }
}

/// The engine's physical-layer view of one node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkCounters {
    /// Frames the node transmitted (linked or not).
    pub frames_tx: u64,
    /// Frames delivered to the node.
    pub frames_rx: u64,
    /// Bytes the node transmitted.
    pub bytes_tx: u64,
    /// Bytes delivered to the node.
    pub bytes_rx: u64,
    /// Transmit attempts that hit an unlinked port.
    pub drops_unlinked: u64,
    /// Timer callbacks delivered to the node.
    pub timer_fires: u64,
}

/// One node's row in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeMetrics {
    /// The node's [`crate::engine::Node::name`].
    pub name: String,
    /// Engine-tracked frame/byte/timer counters.
    pub link: LinkCounters,
    /// Device-specific counters from
    /// [`crate::engine::Node::device_metrics`].
    pub device: Metrics,
}

/// Everything [`crate::engine::Network::metrics`] knows at one instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Engine-wide totals.
    pub engine: EngineMetrics,
    /// Injected-fault totals (all zero on a clean run).
    pub faults: FaultCounters,
    /// Frame-buffer pool totals.
    pub pool: PoolCounters,
    /// Trace/capture cap-overflow totals.
    pub trace: TraceCounters,
    /// Per-node rows, ordered by node id.
    pub nodes: Vec<NodeMetrics>,
}

impl MetricsSnapshot {
    /// The row for the node named `name`, if any.
    pub fn node(&self, name: &str) -> Option<&NodeMetrics> {
        self.nodes.iter().find(|n| n.name == name)
    }

    /// Sum of `frames_tx` over all nodes — by construction equal to
    /// `engine.frames_forwarded + engine.frames_dropped_unlinked`.
    pub fn total_frames_tx(&self) -> u64 {
        self.nodes.iter().map(|n| n.link.frames_tx).sum()
    }

    /// Sum of `frames_rx` over all nodes — equal to
    /// `engine.frames_delivered`.
    pub fn total_frames_rx(&self) -> u64 {
        self.nodes.iter().map(|n| n.link.frames_rx).sum()
    }

    /// The injected-fault totals as named `fault.*` counters.
    pub fn fault_metrics(&self) -> Metrics {
        self.faults.as_metrics()
    }
}

impl fmt::Display for MetricsSnapshot {
    /// Stable text form: engine totals, then one block per node in id
    /// order with device counters in name order.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let e = &self.engine;
        writeln!(
            f,
            "engine: events={} delivered={} forwarded={} dropped_unlinked={} timers={} queue_high_water={}",
            e.events_processed,
            e.frames_delivered,
            e.frames_forwarded,
            e.frames_dropped_unlinked,
            e.timers_fired,
            e.queue_high_water,
        )?;
        if self.pool != PoolCounters::default() {
            writeln!(
                f,
                "pool: allocated={} reused={}",
                self.pool.allocated, self.pool.reused,
            )?;
        }
        if self.trace != TraceCounters::default() {
            writeln!(
                f,
                "trace: suppressed={} capture_suppressed={}",
                self.trace.suppressed, self.trace.capture_suppressed,
            )?;
        }
        // Clean runs render exactly as they always did; the fault line
        // only appears once something was actually injected.
        if self.faults != FaultCounters::default() {
            let fc = &self.faults;
            writeln!(
                f,
                "faults: dropped={} outage_dropped={} delayed={} duplicated={} corrupted={} truncated={} outage_secs={}",
                fc.dropped,
                fc.outage_dropped,
                fc.delayed,
                fc.duplicated,
                fc.corrupted,
                fc.truncated,
                fc.outage_micros / 1_000_000,
            )?;
        }
        for n in &self.nodes {
            let l = &n.link;
            writeln!(
                f,
                "{}: tx={}/{}B rx={}/{}B drops={} timers={}",
                n.name,
                l.frames_tx,
                l.bytes_tx,
                l.frames_rx,
                l.bytes_rx,
                l.drops_unlinked,
                l.timer_fires,
            )?;
            for (name, value) in n.device.iter() {
                writeln!(f, "  {name}={value}")?;
            }
        }
        Ok(())
    }
}
