//! Per-node and engine-wide counters snapshotted by [`Network::metrics`].
//!
//! The engine tracks the physical-layer view for every node — frames and
//! bytes in each direction, transmit attempts on unlinked ports, timer
//! fires — while each device contributes its own protocol-level counters
//! through [`crate::engine::Node::device_metrics`]. A snapshot is plain
//! data (`Clone + Eq`), so fleet runs with the same seed can assert
//! byte-identical metrics, and it orders nodes by id and counters by
//! name so the rendered form is stable too.
//!
//! [`Network::metrics`]: crate::engine::Network::metrics

use std::fmt;
use v6wire::metrics::Metrics;

/// Engine-level totals across the whole [`crate::engine::Network`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineMetrics {
    /// Callbacks dispatched (start + frame + timer events).
    pub events_processed: u64,
    /// Frames handed to a receiving node's `on_frame`.
    pub frames_delivered: u64,
    /// Frames enqueued onto a link (delivery scheduled).
    pub frames_forwarded: u64,
    /// Transmit attempts on ports with no link (cable unplugged).
    pub frames_dropped_unlinked: u64,
    /// Timer callbacks fired.
    pub timers_fired: u64,
    /// High-water mark of the event queue length.
    pub queue_high_water: u64,
}

/// The engine's physical-layer view of one node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkCounters {
    /// Frames the node transmitted (linked or not).
    pub frames_tx: u64,
    /// Frames delivered to the node.
    pub frames_rx: u64,
    /// Bytes the node transmitted.
    pub bytes_tx: u64,
    /// Bytes delivered to the node.
    pub bytes_rx: u64,
    /// Transmit attempts that hit an unlinked port.
    pub drops_unlinked: u64,
    /// Timer callbacks delivered to the node.
    pub timer_fires: u64,
}

/// One node's row in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeMetrics {
    /// The node's [`crate::engine::Node::name`].
    pub name: String,
    /// Engine-tracked frame/byte/timer counters.
    pub link: LinkCounters,
    /// Device-specific counters from
    /// [`crate::engine::Node::device_metrics`].
    pub device: Metrics,
}

/// Everything [`crate::engine::Network::metrics`] knows at one instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Engine-wide totals.
    pub engine: EngineMetrics,
    /// Per-node rows, ordered by node id.
    pub nodes: Vec<NodeMetrics>,
}

impl MetricsSnapshot {
    /// The row for the node named `name`, if any.
    pub fn node(&self, name: &str) -> Option<&NodeMetrics> {
        self.nodes.iter().find(|n| n.name == name)
    }

    /// Sum of `frames_tx` over all nodes — by construction equal to
    /// `engine.frames_forwarded + engine.frames_dropped_unlinked`.
    pub fn total_frames_tx(&self) -> u64 {
        self.nodes.iter().map(|n| n.link.frames_tx).sum()
    }

    /// Sum of `frames_rx` over all nodes — equal to
    /// `engine.frames_delivered`.
    pub fn total_frames_rx(&self) -> u64 {
        self.nodes.iter().map(|n| n.link.frames_rx).sum()
    }
}

impl fmt::Display for MetricsSnapshot {
    /// Stable text form: engine totals, then one block per node in id
    /// order with device counters in name order.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let e = &self.engine;
        writeln!(
            f,
            "engine: events={} delivered={} forwarded={} dropped_unlinked={} timers={} queue_high_water={}",
            e.events_processed,
            e.frames_delivered,
            e.frames_forwarded,
            e.frames_dropped_unlinked,
            e.timers_fired,
            e.queue_high_water,
        )?;
        for n in &self.nodes {
            let l = &n.link;
            writeln!(
                f,
                "{}: tx={}/{}B rx={}/{}B drops={} timers={}",
                n.name, l.frames_tx, l.bytes_tx, l.frames_rx, l.bytes_rx, l.drops_unlinked, l.timer_fires,
            )?;
            for (name, value) in n.device.iter() {
                writeln!(f, "  {name}={value}")?;
            }
        }
        Ok(())
    }
}
