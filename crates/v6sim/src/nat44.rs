//! NAPT44 — the plain IPv4 NAT the 5G gateway applies to legacy traffic.
//!
//! The paper's motivation sections lean on NAT44's operational pain (shared
//! source IPs triggering rate limits and bans, M-21-31 logging burden); the
//! testbed still needs a working one, because an IPv4-only client that
//! overrides its DNS resolver "would be granted access to the IPv4 internet"
//! (paper §V, Nintendo Switch escape hatch).

use std::net::Ipv4Addr;
use v6wire::fasthash::FastMap;
use v6wire::icmpv4::Icmpv4Message;
use v6wire::ipv4::{proto, Ipv4Packet};
use v6wire::tcp::TcpSegment;
use v6wire::udp::UdpDatagram;

use v6xlat::siit::XlatError;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Proto {
    Udp,
    Tcp,
    Icmp,
}

#[derive(Debug, Clone, Copy)]
struct Binding {
    internal: (Ipv4Addr, u16),
    expires: u64,
}

/// A NAPT44 translator with a single public address.
#[derive(Debug)]
pub struct Napt44 {
    /// The public (WAN) address all flows share.
    pub public_ip: Ipv4Addr,
    forward: FastMap<(Proto, Ipv4Addr, u16), (u16, u64)>,
    reverse: FastMap<(Proto, u16), Binding>,
    next_port: u16,
    /// Session lifetime in seconds.
    pub lifetime: u64,
    /// Translated outbound packets.
    pub outbound: u64,
    /// Translated inbound packets.
    pub inbound: u64,
    /// Inbound drops (no binding).
    pub dropped: u64,
}

impl Napt44 {
    /// NAPT with the given public address.
    pub fn new(public_ip: Ipv4Addr) -> Napt44 {
        Napt44 {
            public_ip,
            forward: FastMap::default(),
            reverse: FastMap::default(),
            next_port: 1024,
            lifetime: 300,
            outbound: 0,
            inbound: 0,
            dropped: 0,
        }
    }

    /// Restore the post-construction state: bindings flushed, the port
    /// allocator rewound, counters zeroed. The warm-cell arena calls
    /// this between cells so a reused NAT is indistinguishable from a
    /// freshly built one.
    pub fn reset(&mut self) {
        self.forward.clear();
        self.reverse.clear();
        self.next_port = 1024;
        self.lifetime = 300;
        self.outbound = 0;
        self.inbound = 0;
        self.dropped = 0;
    }

    /// Counter snapshot (`outbound`, `inbound`, `dropped`) in the shared
    /// [`v6wire::metrics::Metrics`] form.
    pub fn metrics(&self) -> v6wire::metrics::Metrics {
        [
            ("outbound", self.outbound),
            ("inbound", self.inbound),
            ("dropped", self.dropped),
        ]
        .into_iter()
        .collect()
    }

    fn classify(pkt: &Ipv4Packet) -> Result<(Proto, u16, u16), XlatError> {
        match pkt.protocol {
            proto::UDP => {
                let d = UdpDatagram::decode_v4(&pkt.payload, pkt.src, pkt.dst)?;
                Ok((Proto::Udp, d.src_port, d.dst_port))
            }
            proto::TCP => {
                let s = TcpSegment::decode_v4(&pkt.payload, pkt.src, pkt.dst)?;
                Ok((Proto::Tcp, s.src_port, s.dst_port))
            }
            proto::ICMP => match Icmpv4Message::decode(&pkt.payload)? {
                Icmpv4Message::EchoRequest { ident, .. }
                | Icmpv4Message::EchoReply { ident, .. } => Ok((Proto::Icmp, ident, ident)),
                _ => Err(XlatError::UntranslatableIcmp),
            },
            other => Err(XlatError::UnsupportedProtocol(other)),
        }
    }

    fn rewrite(
        pkt: &Ipv4Packet,
        new_src: Ipv4Addr,
        new_dst: Ipv4Addr,
        new_sport: Option<u16>,
        new_dport: Option<u16>,
    ) -> Result<Ipv4Packet, XlatError> {
        let payload = match pkt.protocol {
            proto::UDP => {
                let mut d = UdpDatagram::decode_v4(&pkt.payload, pkt.src, pkt.dst)?;
                if let Some(p) = new_sport {
                    d.src_port = p;
                }
                if let Some(p) = new_dport {
                    d.dst_port = p;
                }
                d.encode_v4(new_src, new_dst)
            }
            proto::TCP => {
                let mut s = TcpSegment::decode_v4(&pkt.payload, pkt.src, pkt.dst)?;
                if let Some(p) = new_sport {
                    s.src_port = p;
                }
                if let Some(p) = new_dport {
                    s.dst_port = p;
                }
                s.encode_v4(new_src, new_dst)
            }
            proto::ICMP => {
                let m = Icmpv4Message::decode(&pkt.payload)?;
                let m2 = match m {
                    Icmpv4Message::EchoRequest {
                        ident,
                        seq,
                        payload,
                    } => Icmpv4Message::EchoRequest {
                        ident: new_sport.unwrap_or(ident),
                        seq,
                        payload,
                    },
                    Icmpv4Message::EchoReply {
                        ident,
                        seq,
                        payload,
                    } => Icmpv4Message::EchoReply {
                        ident: new_dport.unwrap_or(ident),
                        seq,
                        payload,
                    },
                    other => other,
                };
                m2.encode()
            }
            _ => return Err(XlatError::UnsupportedProtocol(pkt.protocol)),
        };
        let mut out = Ipv4Packet::new(new_src, new_dst, pkt.protocol, payload);
        out.ttl = pkt.ttl.saturating_sub(1);
        out.dscp_ecn = pkt.dscp_ecn;
        Ok(out)
    }

    /// Translate an outbound (LAN → WAN) packet.
    pub fn outbound(&mut self, pkt: &Ipv4Packet, now: u64) -> Result<Ipv4Packet, XlatError> {
        if pkt.ttl <= 1 {
            return Err(XlatError::HopLimitExceeded);
        }
        let (p, sport, _dport) = Self::classify(pkt)?;
        let key = (p, pkt.src, sport);
        let ext_port = match self.forward.get_mut(&key) {
            Some((port, expires)) => {
                *expires = now + self.lifetime;
                *port
            }
            None => {
                // Allocate the next free external port.
                let mut chosen = None;
                for _ in 0..u16::MAX {
                    let cand = self.next_port;
                    self.next_port = if self.next_port == u16::MAX {
                        1024
                    } else {
                        self.next_port + 1
                    };
                    let free = self
                        .reverse
                        .get(&(p, cand))
                        .map(|b| b.expires <= now)
                        .unwrap_or(true);
                    if free {
                        chosen = Some(cand);
                        break;
                    }
                }
                let port = chosen.ok_or(XlatError::PoolExhausted)?;
                self.forward.insert(key, (port, now + self.lifetime));
                self.reverse.insert(
                    (p, port),
                    Binding {
                        internal: (pkt.src, sport),
                        expires: now + self.lifetime,
                    },
                );
                port
            }
        };
        // Keep the reverse entry fresh too.
        if let Some(b) = self.reverse.get_mut(&(p, ext_port)) {
            b.expires = now + self.lifetime;
        }
        self.outbound += 1;
        Self::rewrite(pkt, self.public_ip, pkt.dst, Some(ext_port), None)
    }

    /// Translate an inbound (WAN → LAN) packet.
    pub fn inbound(&mut self, pkt: &Ipv4Packet, now: u64) -> Result<Ipv4Packet, XlatError> {
        let (p, _sport, dport) = Self::classify(pkt)?;
        let Some(b) = self.reverse.get(&(p, dport)).copied() else {
            self.dropped += 1;
            return Err(XlatError::NoBinding);
        };
        if b.expires <= now {
            self.dropped += 1;
            return Err(XlatError::NoBinding);
        }
        self.inbound += 1;
        Self::rewrite(pkt, pkt.src, b.internal.0, None, Some(b.internal.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn nat() -> Napt44 {
        Napt44::new(a("100.66.7.8"))
    }

    fn udp_out(src: &str, sport: u16, dst: &str) -> Ipv4Packet {
        let d = UdpDatagram::new(sport, 53, b"q".to_vec());
        Ipv4Packet::new(a(src), a(dst), proto::UDP, d.encode_v4(a(src), a(dst)))
    }

    #[test]
    fn round_trip() {
        let mut n = nat();
        let out = n
            .outbound(&udp_out("192.168.12.60", 40000, "9.9.9.9"), 0)
            .unwrap();
        assert_eq!(out.src, a("100.66.7.8"));
        let od = UdpDatagram::decode_v4(&out.payload, out.src, out.dst).unwrap();
        let reply = UdpDatagram::new(53, od.src_port, b"r".to_vec());
        let rp = Ipv4Packet::new(
            a("9.9.9.9"),
            out.src,
            proto::UDP,
            reply.encode_v4(a("9.9.9.9"), out.src),
        );
        let back = n.inbound(&rp, 1).unwrap();
        assert_eq!(back.dst, a("192.168.12.60"));
        let bd = UdpDatagram::decode_v4(&back.payload, back.src, back.dst).unwrap();
        assert_eq!(bd.dst_port, 40000);
    }

    #[test]
    fn all_clients_share_one_source_ip() {
        // The Docker-Hub-rate-limit motivation from §II.B: every LAN host
        // appears as the same public address.
        let mut n = nat();
        let o1 = n
            .outbound(&udp_out("192.168.12.60", 1111, "9.9.9.9"), 0)
            .unwrap();
        let o2 = n
            .outbound(&udp_out("192.168.12.61", 1111, "9.9.9.9"), 0)
            .unwrap();
        assert_eq!(o1.src, o2.src);
        let p1 = UdpDatagram::decode_v4(&o1.payload, o1.src, o1.dst)
            .unwrap()
            .src_port;
        let p2 = UdpDatagram::decode_v4(&o2.payload, o2.src, o2.dst)
            .unwrap()
            .src_port;
        assert_ne!(p1, p2, "disambiguated only by port");
    }

    #[test]
    fn unsolicited_inbound_dropped() {
        let mut n = nat();
        let stray = udp_out("9.9.9.9", 53, "100.66.7.8");
        assert!(n.inbound(&stray, 0).is_err());
        assert_eq!(n.dropped, 1);
    }

    #[test]
    fn binding_expiry() {
        let mut n = nat();
        let out = n
            .outbound(&udp_out("192.168.12.60", 40000, "9.9.9.9"), 0)
            .unwrap();
        let od = UdpDatagram::decode_v4(&out.payload, out.src, out.dst).unwrap();
        let reply = UdpDatagram::new(53, od.src_port, b"r".to_vec());
        let rp = Ipv4Packet::new(
            a("9.9.9.9"),
            out.src,
            proto::UDP,
            reply.encode_v4(a("9.9.9.9"), out.src),
        );
        assert!(n.inbound(&rp, 299).is_ok());
        assert!(n.inbound(&rp, 301).is_err());
    }

    #[test]
    fn icmp_echo_natted_by_ident() {
        let mut n = nat();
        let m = Icmpv4Message::EchoRequest {
            ident: 7,
            seq: 1,
            payload: vec![1],
        };
        let pkt = Ipv4Packet::new(a("192.168.12.60"), a("9.9.9.9"), proto::ICMP, m.encode());
        let out = n.outbound(&pkt, 0).unwrap();
        let om = Icmpv4Message::decode(&out.payload).unwrap();
        let ext = match om {
            Icmpv4Message::EchoRequest { ident, .. } => ident,
            other => panic!("unexpected {other:?}"),
        };
        let reply = Icmpv4Message::EchoReply {
            ident: ext,
            seq: 1,
            payload: vec![1],
        };
        let rp = Ipv4Packet::new(a("9.9.9.9"), out.src, proto::ICMP, reply.encode());
        let back = n.inbound(&rp, 1).unwrap();
        let bm = Icmpv4Message::decode(&back.payload).unwrap();
        assert!(matches!(bm, Icmpv4Message::EchoReply { ident: 7, .. }));
    }
}
