//! Classic pcap (libpcap) export of captured frames, so a testbed run can
//! be opened in Wireshark — the workflow the paper's operators actually
//! used to diagnose the 5G gateway's RA (their Fig. 3 *is* a Wireshark
//! screenshot).
//!
//! Enable byte capture with [`crate::engine::Network::capture_frames`], run
//! the scenario, then [`write_pcap`] the buffer.

use crate::time::SimTime;
use std::io::{self, Write};

/// One captured frame with its delivery timestamp.
#[derive(Debug, Clone)]
pub struct CapturedFrame {
    /// Delivery time.
    pub at: SimTime,
    /// Raw Ethernet bytes.
    pub bytes: Vec<u8>,
}

/// pcap global header magic (microsecond timestamps, native endian).
const MAGIC: u32 = 0xa1b2_c3d4;
/// LINKTYPE_ETHERNET.
const LINKTYPE: u32 = 1;

/// Serialize frames into classic pcap format.
pub fn to_pcap(frames: &[CapturedFrame]) -> Vec<u8> {
    let mut out = Vec::with_capacity(24 + frames.iter().map(|f| 16 + f.bytes.len()).sum::<usize>());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&2u16.to_le_bytes()); // version major
    out.extend_from_slice(&4u16.to_le_bytes()); // version minor
    out.extend_from_slice(&0i32.to_le_bytes()); // thiszone
    out.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
    out.extend_from_slice(&65535u32.to_le_bytes()); // snaplen
    out.extend_from_slice(&LINKTYPE.to_le_bytes());
    for f in frames {
        let usecs = f.at.0 / 1_000;
        out.extend_from_slice(&((usecs / 1_000_000) as u32).to_le_bytes());
        out.extend_from_slice(&((usecs % 1_000_000) as u32).to_le_bytes());
        out.extend_from_slice(&(f.bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&(f.bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&f.bytes);
    }
    out
}

/// Write frames to a pcap file.
pub fn write_pcap(path: &std::path::Path, frames: &[CapturedFrame]) -> io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(&to_pcap(frames))
}

/// Parse a pcap buffer back into frames (testing / round-trip tooling).
pub fn from_pcap(buf: &[u8]) -> Option<Vec<CapturedFrame>> {
    if buf.len() < 24 || u32::from_le_bytes(buf[0..4].try_into().ok()?) != MAGIC {
        return None;
    }
    let mut frames = Vec::new();
    let mut pos = 24;
    while pos + 16 <= buf.len() {
        let secs = u32::from_le_bytes(buf[pos..pos + 4].try_into().ok()?) as u64;
        let usecs = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().ok()?) as u64;
        let caplen = u32::from_le_bytes(buf[pos + 8..pos + 12].try_into().ok()?) as usize;
        pos += 16;
        if pos + caplen > buf.len() {
            return None;
        }
        frames.push(CapturedFrame {
            at: SimTime(secs * 1_000_000_000 + usecs * 1_000),
            bytes: buf[pos..pos + caplen].to_vec(),
        });
        pos += caplen;
    }
    Some(frames)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(ms: u64, n: u8) -> CapturedFrame {
        CapturedFrame {
            at: SimTime::from_millis(ms),
            bytes: vec![n; 64],
        }
    }

    #[test]
    fn roundtrip() {
        let frames = vec![frame(0, 1), frame(1500, 2), frame(10_000, 3)];
        let pcap = to_pcap(&frames);
        let back = from_pcap(&pcap).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back[1].at.as_millis(), 1500);
        assert_eq!(back[2].bytes, vec![3u8; 64]);
    }

    #[test]
    fn header_shape() {
        let pcap = to_pcap(&[]);
        assert_eq!(pcap.len(), 24);
        assert_eq!(u32::from_le_bytes(pcap[0..4].try_into().unwrap()), MAGIC);
        assert_eq!(u32::from_le_bytes(pcap[20..24].try_into().unwrap()), 1);
    }

    #[test]
    fn garbage_rejected() {
        assert!(from_pcap(&[0u8; 10]).is_none());
        assert!(from_pcap(&[0xff; 40]).is_none());
    }

    #[test]
    fn file_write() {
        let dir = std::env::temp_dir().join("sc24v6-pcap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.pcap");
        write_pcap(&path, &[frame(5, 9)]).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(from_pcap(&bytes).unwrap().len(), 1);
        let _ = std::fs::remove_file(&path);
    }
}
