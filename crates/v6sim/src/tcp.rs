//! A miniature TCP endpoint.
//!
//! The simulator's links are reliable and in-order, so this endpoint keeps
//! the full connection lifecycle (three-way handshake, sequence/ack
//! arithmetic, FIN teardown, RST on refused connections) while omitting
//! retransmission, reordering and flow control. Hosts and the portal's web
//! servers drive it with [`TcpEndpoint::on_segment`]; the address family is
//! the caller's concern (segments are wrapped in IPv4 or IPv6 outside).

use v6wire::tcp::{TcpFlags, TcpSegment};

/// Maximum payload carried per segment (conservative IPv6 MSS).
pub const SEGMENT_SIZE: usize = 1200;

/// Connection state (RFC 9293 subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    /// No connection.
    Closed,
    /// Passive open.
    Listen,
    /// SYN sent, awaiting SYN-ACK.
    SynSent,
    /// SYN received, SYN-ACK sent.
    SynRcvd,
    /// Data may flow.
    Established,
    /// We closed first, awaiting peer FIN.
    FinWait,
    /// Peer closed first; we may still send.
    CloseWait,
    /// Our FIN sent after CloseWait.
    LastAck,
}

/// One endpoint of a TCP connection.
///
/// ```
/// use v6sim::tcp::{pump, TcpEndpoint};
///
/// let mut server = TcpEndpoint::listen(80);
/// let (mut client, syn) = TcpEndpoint::connect(50000, 80, 1000);
/// pump(&mut client, &mut server, vec![(true, syn)]);
/// assert!(client.is_established() && server.is_established());
///
/// let segs = client.send(b"GET / HTTP/1.1\r\n\r\n");
/// pump(&mut client, &mut server, segs.into_iter().map(|s| (true, s)).collect());
/// assert!(server.received.starts_with(b"GET /"));
/// ```
#[derive(Debug)]
pub struct TcpEndpoint {
    /// Current state.
    pub state: TcpState,
    /// Local port.
    pub local_port: u16,
    /// Remote port (0 while listening).
    pub remote_port: u16,
    snd_nxt: u32,
    rcv_nxt: u32,
    /// Application data received, in order.
    pub received: Vec<u8>,
    /// Peer closed its direction.
    pub peer_closed: bool,
}

impl TcpEndpoint {
    /// A passive (listening) endpoint on `port`.
    pub fn listen(port: u16) -> TcpEndpoint {
        TcpEndpoint {
            state: TcpState::Listen,
            local_port: port,
            remote_port: 0,
            snd_nxt: 0,
            rcv_nxt: 0,
            received: Vec::new(),
            peer_closed: false,
        }
    }

    /// An active open: returns the endpoint and the SYN to transmit.
    /// `iss` is the initial sequence number (callers pass something
    /// deterministic per flow).
    pub fn connect(local_port: u16, remote_port: u16, iss: u32) -> (TcpEndpoint, TcpSegment) {
        let mut syn = TcpSegment::new(local_port, remote_port, iss, 0, TcpFlags::SYN);
        syn.mss = Some(SEGMENT_SIZE as u16);
        (
            TcpEndpoint {
                state: TcpState::SynSent,
                local_port,
                remote_port,
                snd_nxt: iss.wrapping_add(1),
                rcv_nxt: 0,
                received: Vec::new(),
                peer_closed: false,
            },
            syn,
        )
    }

    /// Is the connection fully usable for data?
    pub fn is_established(&self) -> bool {
        self.state == TcpState::Established
    }

    /// Is the connection finished (both sides closed or reset)?
    pub fn is_closed(&self) -> bool {
        self.state == TcpState::Closed
    }

    fn seg(&self, flags: TcpFlags) -> TcpSegment {
        TcpSegment::new(
            self.local_port,
            self.remote_port,
            self.snd_nxt,
            self.rcv_nxt,
            flags,
        )
    }

    /// Feed an incoming segment; returns segments to transmit in response.
    pub fn on_segment(&mut self, seg: &TcpSegment) -> Vec<TcpSegment> {
        match self.state {
            TcpState::Listen => {
                if seg.flags.syn && !seg.flags.ack {
                    self.remote_port = seg.src_port;
                    self.rcv_nxt = seg.seq.wrapping_add(1);
                    // Deterministic ISS derived from the peer's.
                    let iss = seg.seq.wrapping_add(0x1000_0000);
                    self.snd_nxt = iss.wrapping_add(1);
                    self.state = TcpState::SynRcvd;
                    let mut synack = TcpSegment::new(
                        self.local_port,
                        self.remote_port,
                        iss,
                        self.rcv_nxt,
                        TcpFlags::SYN_ACK,
                    );
                    synack.mss = Some(SEGMENT_SIZE as u16);
                    vec![synack]
                } else if seg.flags.rst {
                    Vec::new()
                } else {
                    // Anything else to a listener: RST.
                    vec![TcpSegment::new(
                        self.local_port,
                        seg.src_port,
                        seg.ack,
                        seg.seq.wrapping_add(seg.seq_len()),
                        TcpFlags::RST,
                    )]
                }
            }
            TcpState::SynSent => {
                if seg.flags.rst {
                    self.state = TcpState::Closed;
                    return Vec::new();
                }
                if seg.flags.syn && seg.flags.ack && seg.ack == self.snd_nxt {
                    self.rcv_nxt = seg.seq.wrapping_add(1);
                    self.state = TcpState::Established;
                    vec![self.seg(TcpFlags::ACK)]
                } else {
                    Vec::new()
                }
            }
            TcpState::SynRcvd => {
                if seg.flags.rst {
                    self.state = TcpState::Closed;
                    return Vec::new();
                }
                if seg.flags.ack && seg.ack == self.snd_nxt {
                    self.state = TcpState::Established;
                    // The ACK may carry data already.
                    return self.absorb(seg);
                }
                Vec::new()
            }
            TcpState::Established | TcpState::FinWait | TcpState::CloseWait => self.absorb(seg),
            TcpState::LastAck => {
                if seg.flags.ack && seg.ack == self.snd_nxt {
                    self.state = TcpState::Closed;
                }
                Vec::new()
            }
            TcpState::Closed => {
                if seg.flags.rst {
                    Vec::new()
                } else {
                    vec![TcpSegment::new(
                        self.local_port,
                        seg.src_port,
                        seg.ack,
                        seg.seq.wrapping_add(seg.seq_len()),
                        TcpFlags::RST,
                    )]
                }
            }
        }
    }

    /// Common data/FIN absorption for synchronized states.
    fn absorb(&mut self, seg: &TcpSegment) -> Vec<TcpSegment> {
        if seg.flags.rst {
            self.state = TcpState::Closed;
            return Vec::new();
        }
        let mut replies = Vec::new();
        let mut advanced = false;
        if seg.seq == self.rcv_nxt {
            if !seg.payload.is_empty() {
                self.received.extend_from_slice(&seg.payload);
                self.rcv_nxt = self.rcv_nxt.wrapping_add(seg.payload.len() as u32);
                advanced = true;
            }
            if seg.flags.fin {
                self.rcv_nxt = self.rcv_nxt.wrapping_add(1);
                self.peer_closed = true;
                advanced = true;
                match self.state {
                    TcpState::Established => self.state = TcpState::CloseWait,
                    TcpState::FinWait => self.state = TcpState::Closed,
                    _ => {}
                }
            }
        }
        // Pure ACK completing our FIN?
        if seg.flags.ack {
            match self.state {
                TcpState::FinWait if seg.ack == self.snd_nxt && self.peer_closed => {
                    self.state = TcpState::Closed;
                }
                _ => {}
            }
        }
        if advanced {
            replies.push(self.seg(TcpFlags::ACK));
        }
        replies
    }

    /// Send application data; returns the segments to transmit.
    pub fn send(&mut self, data: &[u8]) -> Vec<TcpSegment> {
        assert!(
            matches!(self.state, TcpState::Established | TcpState::CloseWait),
            "send in state {:?}",
            self.state
        );
        let mut out = Vec::new();
        for chunk in data.chunks(SEGMENT_SIZE) {
            let mut s = self.seg(TcpFlags::PSH_ACK);
            s.payload = chunk.to_vec();
            self.snd_nxt = self.snd_nxt.wrapping_add(chunk.len() as u32);
            out.push(s);
        }
        out
    }

    /// Close our direction; returns the FIN to transmit.
    pub fn close(&mut self) -> Vec<TcpSegment> {
        match self.state {
            TcpState::Established => {
                let fin = self.seg(TcpFlags::FIN_ACK);
                self.snd_nxt = self.snd_nxt.wrapping_add(1);
                self.state = TcpState::FinWait;
                vec![fin]
            }
            TcpState::CloseWait => {
                let fin = self.seg(TcpFlags::FIN_ACK);
                self.snd_nxt = self.snd_nxt.wrapping_add(1);
                self.state = TcpState::LastAck;
                vec![fin]
            }
            _ => Vec::new(),
        }
    }
}

/// Drive two endpoints to completion over a perfect wire (test/bench
/// helper): delivers segments back and forth until both sides go quiet.
pub fn pump(a: &mut TcpEndpoint, b: &mut TcpEndpoint, in_flight: Vec<(bool, TcpSegment)>) {
    // (to_b, segment): true = deliver to b, false = deliver to a. FIFO so
    // multi-segment sends keep their order, as the simulator's links do.
    let mut queue: std::collections::VecDeque<(bool, TcpSegment)> = in_flight.into();
    let mut budget = 200;
    while let Some((to_b, seg)) = queue.pop_front() {
        budget -= 1;
        if budget == 0 {
            panic!("tcp pump did not converge");
        }
        let replies = if to_b {
            b.on_segment(&seg)
        } else {
            a.on_segment(&seg)
        };
        for r in replies {
            queue.push_back((!to_b, r));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn establish() -> (TcpEndpoint, TcpEndpoint) {
        let mut server = TcpEndpoint::listen(80);
        let (mut client, syn) = TcpEndpoint::connect(50000, 80, 1000);
        pump(&mut client, &mut server, vec![(true, syn)]);
        assert!(client.is_established());
        assert!(server.is_established());
        (client, server)
    }

    #[test]
    fn three_way_handshake() {
        let (c, s) = establish();
        assert_eq!(c.remote_port, 80);
        assert_eq!(s.remote_port, 50000);
    }

    #[test]
    fn request_response() {
        let (mut c, mut s) = establish();
        let req = c.send(b"GET / HTTP/1.1\r\nHost: ip6.me\r\n\r\n");
        pump(&mut c, &mut s, req.into_iter().map(|x| (true, x)).collect());
        assert_eq!(s.received, b"GET / HTTP/1.1\r\nHost: ip6.me\r\n\r\n");
        let resp = s.send(b"HTTP/1.1 200 OK\r\n\r\nyour address is ...");
        pump(
            &mut c,
            &mut s,
            resp.into_iter().map(|x| (false, x)).collect(),
        );
        assert!(c.received.starts_with(b"HTTP/1.1 200 OK"));
    }

    #[test]
    fn large_transfer_fragments() {
        let (mut c, mut s) = establish();
        let body = vec![0x42u8; 5000];
        let segs = c.send(&body);
        assert_eq!(segs.len(), 5); // ceil(5000/1200)
        pump(
            &mut c,
            &mut s,
            segs.into_iter().map(|x| (true, x)).collect(),
        );
        assert_eq!(s.received, body);
    }

    #[test]
    fn orderly_close_both_sides() {
        let (mut c, mut s) = establish();
        let fin = c.close();
        pump(&mut c, &mut s, fin.into_iter().map(|x| (true, x)).collect());
        assert_eq!(s.state, TcpState::CloseWait);
        let fin2 = s.close();
        pump(
            &mut c,
            &mut s,
            fin2.into_iter().map(|x| (false, x)).collect(),
        );
        assert!(c.is_closed(), "client state {:?}", c.state);
        assert!(s.is_closed(), "server state {:?}", s.state);
    }

    #[test]
    fn rst_on_closed_port() {
        // What the portal's IPv4 leg answers when further restricted (Fig. 8
        // scenario): connection refused.
        let mut closed = TcpEndpoint {
            state: TcpState::Closed,
            local_port: 80,
            remote_port: 0,
            snd_nxt: 0,
            rcv_nxt: 0,
            received: Vec::new(),
            peer_closed: false,
        };
        let (mut client, syn) = TcpEndpoint::connect(50000, 80, 1);
        let replies = closed.on_segment(&syn);
        assert_eq!(replies.len(), 1);
        assert!(replies[0].flags.rst);
        let more = client.on_segment(&replies[0]);
        assert!(more.is_empty());
        assert!(client.is_closed(), "RST kills the connect attempt");
    }

    #[test]
    fn data_with_handshake_ack() {
        // Client sends data immediately with the handshake-completing ACK.
        let mut server = TcpEndpoint::listen(80);
        let (mut client, syn) = TcpEndpoint::connect(50000, 80, 7);
        let synack = server.on_segment(&syn).remove(0);
        let _ack = client.on_segment(&synack);
        let mut data_segs = client.send(b"hi");
        // Deliver only the data segment (drop the pure ACK) — server must
        // still establish and absorb.
        let data = data_segs.remove(0);
        server.on_segment(&data);
        assert!(server.is_established());
        assert_eq!(server.received, b"hi");
    }

    #[test]
    fn stray_segment_to_listener_rst() {
        let mut server = TcpEndpoint::listen(80);
        let stray = TcpSegment::new(1234, 80, 55, 0, TcpFlags::PSH_ACK);
        let replies = server.on_segment(&stray);
        assert!(replies[0].flags.rst);
        assert_eq!(server.state, TcpState::Listen);
    }
}
