//! The virtual clock: nanosecond-resolution simulation time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in (or span of) simulation time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// From whole seconds.
    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000_000)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    /// From microseconds.
    pub const fn from_micros(us: u64) -> SimTime {
        SimTime(us * 1_000)
    }

    /// From raw nanoseconds — the identity, named for call-site clarity
    /// when a tick count crosses an API boundary.
    pub const fn from_nanos(ns: u64) -> SimTime {
        SimTime(ns)
    }

    /// Whole seconds (truncating) — what the DNS/DHCP/NAT64 engines use for
    /// TTL and lease arithmetic.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Saturating difference.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0 / 1_000_000_000;
        let frac = self.0 % 1_000_000_000;
        write!(f, "{s}.{:09}s", frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(3).as_secs(), 3);
        assert_eq!(SimTime::from_millis(1500).as_secs(), 1);
        assert_eq!(SimTime::from_millis(1500).as_millis(), 1500);
        assert_eq!(SimTime::from_micros(2500).as_millis(), 2);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_millis(500);
        assert_eq!((a + b).as_millis(), 1500);
        assert_eq!((a - b).as_millis(), 500);
        assert!(b < a);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000000s");
    }
}
