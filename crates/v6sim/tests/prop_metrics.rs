//! Property tests for the engine's metrics layer: conservation laws that
//! must hold on any topology once the event queue drains.

use proptest::prelude::*;
use std::any::Any;
use v6sim::engine::{Ctx, Network, Node};
use v6sim::fault::{EndpointMatch, FaultPlan, Impairment, LinkFault, Outage};
use v6sim::time::SimTime;

/// A node that emits `burst` frames at start, re-emits each received
/// frame `echoes` more times (decrementing a hop budget carried in the
/// frame so traffic always dies out), and ticks a timer `ticks` times.
struct Chatter {
    name: String,
    burst: u8,
    echoes: u8,
    ticks: u8,
    fired: u8,
}

impl Chatter {
    fn new(i: usize, burst: u8, echoes: u8, ticks: u8) -> Chatter {
        Chatter {
            name: format!("chatter{i}"),
            burst,
            echoes,
            ticks,
            fired: 0,
        }
    }
}

impl Node for Chatter {
    fn name(&self) -> &str {
        &self.name
    }

    fn start(&mut self, ctx: &mut Ctx) {
        for n in 0..self.burst {
            // Byte 0 is the remaining hop budget.
            ctx.send(0, vec![4, n]);
        }
        if self.ticks > 0 {
            ctx.timer_in(SimTime::from_millis(10), 0);
        }
    }

    fn on_frame(&mut self, port: u32, frame: &[u8], ctx: &mut Ctx) {
        let budget = frame.first().copied().unwrap_or(0);
        if budget == 0 {
            return;
        }
        for _ in 0..self.echoes {
            let mut f = frame.to_vec();
            f[0] = budget - 1;
            ctx.send(port, f);
        }
    }

    fn on_timer(&mut self, _token: u64, ctx: &mut Ctx) {
        self.fired += 1;
        ctx.send(0, vec![1, self.fired]);
        if self.fired < self.ticks {
            ctx.timer_in(SimTime::from_millis(10), 0);
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

proptest! {
    /// Frame conservation: every transmitted frame is either forwarded
    /// onto a link (and, once the queue drains, delivered) or dropped at
    /// an unlinked port. Holds for any mix of linked/unlinked chatty
    /// nodes.
    #[test]
    fn frames_tx_equals_deliveries_plus_drops(
        pairs in prop::collection::vec((0u8..4, 0u8..3, 0u8..4), 1..5),
        lonely in prop::collection::vec((1u8..4, 0u8..3), 0..3),
    ) {
        let mut net = Network::new();
        // Linked pairs talk to each other; traffic dies out because the
        // hop budget decrements on every echo.
        for (i, &(burst, echoes, ticks)) in pairs.iter().enumerate() {
            let a = net.add_node(Box::new(Chatter::new(2 * i, burst, echoes, ticks)));
            let b = net.add_node(Box::new(Chatter::new(2 * i + 1, burst, echoes, ticks)));
            net.link(a, 0, b, 0, SimTime::from_micros(50));
        }
        // Lonely nodes transmit into the void (unlinked port 0).
        for (j, &(burst, ticks)) in lonely.iter().enumerate() {
            net.add_node(Box::new(Chatter::new(100 + j, burst, 0, ticks)));
        }
        // Far beyond the last hop/timer: the queue fully drains.
        net.run_until(SimTime::from_secs(60));

        let m = net.metrics();
        // The general conservation law: transmissions plus fault-injected
        // copies all either reach a link or are accounted as drops. With
        // no fault plan installed every `fault.*` term is zero and this
        // is the original tx == forwarded + unlinked identity.
        prop_assert_eq!(
            m.total_frames_tx() + m.faults.duplicated,
            m.engine.frames_forwarded + m.faults.total_dropped() + m.engine.frames_dropped_unlinked
        );
        prop_assert_eq!(m.total_frames_rx(), m.engine.frames_delivered);
        // Queue drained ⇒ everything forwarded was delivered.
        prop_assert_eq!(m.engine.frames_forwarded, m.engine.frames_delivered);
        // Timers: the engine total equals the per-node sum, which equals
        // what the nodes themselves counted.
        let node_timer_sum: u64 = m.nodes.iter().map(|n| n.link.timer_fires).sum();
        prop_assert_eq!(m.engine.timers_fired, node_timer_sum);
        let scripted: u64 = pairs.iter().map(|&(_, _, t)| 2 * u64::from(t)).sum::<u64>()
            + lonely.iter().map(|&(_, t)| u64::from(t)).sum::<u64>();
        prop_assert_eq!(node_timer_sum, scripted);
        // Byte counters are consistent with frame counters (every frame
        // in this test is 2 bytes).
        let bytes_tx: u64 = m.nodes.iter().map(|n| n.link.bytes_tx).sum();
        prop_assert_eq!(bytes_tx, 2 * m.total_frames_tx());
    }

    /// The conservation law survives an arbitrary seeded fault plan —
    /// loss, duplication, delay, corruption, truncation, and outage
    /// windows — and the whole run is deterministic: building the same
    /// network twice under the same plan gives equal snapshots.
    ///
    /// Chatter here is echo-free (`echoes = 0`): payload corruption may
    /// rewrite the hop-budget byte, and an echoing receiver would turn
    /// one corrupted frame into an unbounded storm.
    #[test]
    fn conservation_and_determinism_hold_under_faults(
        pairs in prop::collection::vec((1u8..5, 0u8..4), 1..4),
        seed in any::<u64>(),
        drop_pm in 0u16..400,
        dup_pm in 0u16..300,
        corrupt_pm in 0u16..200,
        truncate_pm in 0u16..200,
        jitter_us in 0u64..5_000,
        outage_start in 0u64..40_000,
        outage_len in 0u64..40_000,
    ) {
        let plan = FaultPlan {
            seed,
            links: vec![LinkFault {
                on: EndpointMatch::any(),
                impairment: Impairment {
                    drop_per_mille: drop_pm,
                    duplicate_per_mille: dup_pm,
                    corrupt_per_mille: corrupt_pm,
                    truncate_per_mille: truncate_pm,
                    extra_latency_us: 300,
                    jitter_us,
                    reorder_per_mille: 100,
                    reorder_window_us: 2_000,
                },
            }],
            outages: vec![Outage {
                on: EndpointMatch::any(),
                start_us: outage_start,
                end_us: outage_start + outage_len,
            }],
        };
        let build = || {
            let mut net = Network::new();
            for (i, &(burst, ticks)) in pairs.iter().enumerate() {
                let a = net.add_node(Box::new(Chatter::new(2 * i, burst, 0, ticks)));
                let b = net.add_node(Box::new(Chatter::new(2 * i + 1, burst, 0, ticks)));
                net.link(a, 0, b, 0, SimTime::from_micros(50));
            }
            net.set_fault_plan(plan.clone());
            net.run_until(SimTime::from_secs(60));
            net.metrics()
        };
        let m = build();
        prop_assert_eq!(
            m.total_frames_tx() + m.faults.duplicated,
            m.engine.frames_forwarded + m.faults.total_dropped() + m.engine.frames_dropped_unlinked
        );
        // Drained queue: whatever the fault layer let through arrived.
        prop_assert_eq!(m.engine.frames_forwarded, m.engine.frames_delivered);
        prop_assert_eq!(m.total_frames_rx(), m.engine.frames_delivered);
        // Same inputs, same plan, same world — twice.
        prop_assert_eq!(m, build());
    }

    /// Snapshots are cumulative and monotone: running longer never
    /// decreases any engine counter, and an idle network's snapshot is
    /// stable.
    #[test]
    fn snapshots_are_monotone(burst in 1u8..4, echoes in 0u8..3) {
        let mut net = Network::new();
        let a = net.add_node(Box::new(Chatter::new(0, burst, echoes, 2)));
        let b = net.add_node(Box::new(Chatter::new(1, burst, echoes, 0)));
        net.link(a, 0, b, 0, SimTime::from_micros(50));
        net.run_until(SimTime::from_millis(5));
        let early = net.metrics();
        net.run_until(SimTime::from_secs(60));
        let late = net.metrics();
        prop_assert!(late.engine.events_processed >= early.engine.events_processed);
        prop_assert!(late.engine.frames_delivered >= early.engine.frames_delivered);
        prop_assert!(late.engine.queue_high_water >= early.engine.queue_high_water);
        // Quiescent: another idle run changes nothing.
        net.run_for(SimTime::from_secs(5));
        prop_assert_eq!(net.metrics(), late);
    }
}
