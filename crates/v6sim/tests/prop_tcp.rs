//! Property-based tests for the mini TCP: arbitrary payloads survive the
//! pump intact, in order, across arbitrary chunkings.

use proptest::prelude::*;
use v6sim::tcp::{pump, TcpEndpoint};

proptest! {
    /// Whatever the client sends, the server receives, byte for byte.
    #[test]
    fn transfer_integrity(payload in proptest::collection::vec(any::<u8>(), 0..8000)) {
        let mut server = TcpEndpoint::listen(80);
        let (mut client, syn) = TcpEndpoint::connect(55000, 80, 7);
        pump(&mut client, &mut server, vec![(true, syn)]);
        prop_assert!(client.is_established());
        let segs = client.send(&payload);
        pump(&mut client, &mut server, segs.into_iter().map(|s| (true, s)).collect());
        prop_assert_eq!(&server.received, &payload);
    }

    /// Bidirectional exchange in arbitrary chunk sizes stays ordered.
    #[test]
    fn bidirectional_chunked(
        upstream in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..500), 0..6),
        downstream in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..500), 0..6),
    ) {
        let mut server = TcpEndpoint::listen(80);
        let (mut client, syn) = TcpEndpoint::connect(55000, 80, 99);
        pump(&mut client, &mut server, vec![(true, syn)]);
        for chunk in &upstream {
            let segs = client.send(chunk);
            pump(&mut client, &mut server, segs.into_iter().map(|s| (true, s)).collect());
        }
        for chunk in &downstream {
            let segs = server.send(chunk);
            pump(&mut client, &mut server, segs.into_iter().map(|s| (false, s)).collect());
        }
        let want_up: Vec<u8> = upstream.concat();
        let want_down: Vec<u8> = downstream.concat();
        prop_assert_eq!(server.received, want_up);
        prop_assert_eq!(client.received, want_down);
    }

    /// Close always converges to Closed on both sides, data intact.
    #[test]
    fn orderly_close_converges(payload in proptest::collection::vec(any::<u8>(), 0..2000), server_first in any::<bool>()) {
        let mut server = TcpEndpoint::listen(80);
        let (mut client, syn) = TcpEndpoint::connect(55000, 80, 1);
        pump(&mut client, &mut server, vec![(true, syn)]);
        let segs = client.send(&payload);
        pump(&mut client, &mut server, segs.into_iter().map(|s| (true, s)).collect());
        if server_first {
            let fins = server.close();
            pump(&mut client, &mut server, fins.into_iter().map(|s| (false, s)).collect());
            let fins = client.close();
            pump(&mut client, &mut server, fins.into_iter().map(|s| (true, s)).collect());
        } else {
            let fins = client.close();
            pump(&mut client, &mut server, fins.into_iter().map(|s| (true, s)).collect());
            let fins = server.close();
            pump(&mut client, &mut server, fins.into_iter().map(|s| (false, s)).collect());
        }
        prop_assert!(client.is_closed(), "client: {:?}", client.state);
        prop_assert!(server.is_closed(), "server: {:?}", server.state);
        prop_assert_eq!(server.received, payload);
    }
}
