//! Trace verbosity must never perturb the simulation.
//!
//! The engine's [`TraceMode`] controls only *what is recorded* about each
//! delivered frame — `Off` (nothing), `Hops` (ids and lengths), `Full`
//! (eager summaries). These tests pin the contract that every counter the
//! engine exposes, and every frame it delivers, is bit-identical across
//! the three modes; and that the frame pool reaches a zero-allocation
//! steady state.

use std::any::Any;
use v6sim::engine::{Ctx, Network, Node, NodeId, TraceMode};
use v6sim::l2::Switch;
use v6sim::time::SimTime;
use v6wire::mac::MacAddr;
use v6wire::packet::build_udp_v4;
use v6wire::udp::UdpDatagram;

/// A chatty endpoint: broadcasts a real (parseable) UDP frame on a timer,
/// so the switch floods it and every engine path gets exercised.
struct Chatter {
    name: String,
    mac: MacAddr,
    sent: u64,
}

impl Chatter {
    fn boxed(n: u8) -> Box<Chatter> {
        Box::new(Chatter {
            name: format!("chatter{n}"),
            mac: MacAddr::new([2, 0, 0, 0, 0xc4, n]),
            sent: 0,
        })
    }

    fn frame(&self) -> Vec<u8> {
        build_udp_v4(
            self.mac,
            MacAddr::BROADCAST,
            "10.0.0.1".parse().expect("static ip"),
            "255.255.255.255".parse().expect("static ip"),
            &UdpDatagram::new(4000, 4000, vec![0xab; 64]),
        )
    }
}

impl Node for Chatter {
    fn name(&self) -> &str {
        &self.name
    }

    fn start(&mut self, ctx: &mut Ctx) {
        ctx.timer_in(SimTime::from_millis(10), 1);
    }

    fn on_frame(&mut self, _port: u32, _frame: &[u8], _ctx: &mut Ctx) {}

    fn on_timer(&mut self, _token: u64, ctx: &mut Ctx) {
        self.sent += 1;
        let frame = self.frame();
        ctx.send(0, frame);
        if self.sent < 50 {
            ctx.timer_in(SimTime::from_millis(10), 1);
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A switched LAN with three chatty endpoints and two dead ports, run to
/// completion under `mode`.
fn run_lan(mode: TraceMode) -> (Network, NodeId) {
    let mut net = Network::new();
    net.trace_mode = mode;
    let sw = net.add_node(Box::new(Switch::new("sw", 5)));
    for (port, n) in [0u32, 1, 2].into_iter().zip(1u8..) {
        let c = net.add_node(Chatter::boxed(n));
        net.link(sw, port, c, 0, SimTime::from_micros(50));
    }
    net.run_until(SimTime::from_secs(2));
    (net, sw)
}

#[test]
fn metrics_identical_across_all_trace_modes() {
    let (full, _) = run_lan(TraceMode::Full);
    let (hops, _) = run_lan(TraceMode::Hops);
    let (off, _) = run_lan(TraceMode::Off);
    assert_eq!(full.frames_delivered, hops.frames_delivered);
    assert_eq!(full.frames_delivered, off.frames_delivered);
    assert!(full.frames_delivered > 0, "the LAN actually ran");
    // Every counter — per-node link counters, engine totals, pool and
    // trace counters — must compare equal; recording is pure observation.
    assert_eq!(full.metrics(), hops.metrics());
    assert_eq!(full.metrics(), off.metrics());
}

#[test]
fn trace_content_varies_only_in_verbosity() {
    let (full, _) = run_lan(TraceMode::Full);
    let (hops, _) = run_lan(TraceMode::Hops);
    let (off, _) = run_lan(TraceMode::Off);
    assert!(off.trace.is_empty());
    assert_eq!(full.trace.len(), hops.trace.len());
    assert!(full.trace.iter().all(|e| e.summary().is_some()));
    assert!(hops.trace.iter().all(|e| e.summary().is_none()));
    // The hop skeleton (who, when, how big) is identical.
    for (f, h) in full.trace.iter().zip(&hops.trace) {
        assert_eq!((f.at, f.src, f.dst, f.len), (h.at, h.src, h.dst, h.len));
    }
}

#[test]
fn frame_pool_reaches_zero_allocation_steady_state() {
    let mut net = Network::new();
    net.trace_mode = TraceMode::Hops;
    let sw = net.add_node(Box::new(Switch::new("sw", 5)));
    for (port, n) in [0u32, 1, 2].into_iter().zip(1u8..) {
        let c = net.add_node(Chatter::boxed(n));
        net.link(sw, port, c, 0, SimTime::from_micros(50));
    }
    // Warm-up: the first exchanges populate the pool.
    net.run_until(SimTime::from_millis(50));
    let warm = net.metrics().pool;
    // Steady state: the switch's forwarding allocates nothing new.
    net.run_until(SimTime::from_secs(2));
    let steady = net.metrics().pool;
    assert_eq!(
        steady.allocated, warm.allocated,
        "steady-state forwarding must reuse pooled buffers"
    );
    assert!(
        steady.reused > warm.reused,
        "the pool is actually being drawn from"
    );
}

#[test]
fn unlinked_flood_ports_count_without_copying() {
    // The 5-port switch has cables on ports 0-2 only; floods attempt all
    // 4 egress ports, so the two dead ports must show up in the counters
    // exactly as if the frames had been built and dropped.
    let (net, sw) = run_lan(TraceMode::Off);
    let m = net.metrics();
    let sw_row = &m.nodes[sw];
    assert!(sw_row.link.drops_unlinked > 0);
    assert_eq!(
        sw_row.link.frames_tx,
        sw_row.link.drops_unlinked
            + net.frames_delivered
            // minus what the chatters sent (delivered *to* the switch).
            - m.nodes
                .iter()
                .filter(|n| n.name.starts_with("chatter"))
                .map(|n| n.link.frames_tx)
                .sum::<u64>(),
        "tx = delivered forwards + unlinked attempts"
    );
    assert_eq!(m.engine.frames_dropped_unlinked, sw_row.link.drops_unlinked);
}
