//! Warm-cell execution: reusable testbed arenas.
//!
//! Building the Fig. 4 topology dominates a cell's cost at population
//! scale: twelve boxed nodes, eleven route-table parses, resolver and
//! NAT construction, zone wiring — all to run a ~40-virtual-second
//! single-client cell and throw the testbed away. A [`CellArena`] keeps
//! one built [`Testbed`] per distinct build configuration (topology ×
//! poison × trace mode — six combinations in the paper matrix) and
//! [recycles](Testbed::recycle) it between cells instead of rebuilding.
//!
//! Correctness bar: a warm run is *byte-identical* to a cold run — same
//! [`CellObservation`], same [`ScenarioResult`] including the full
//! metrics snapshot (pool counters included). The differential suite in
//! `tests/warm_cold.rs` proves this over random cell sequences; the
//! reset invariants it relies on are documented in DESIGN.md §13.
//!
//! Arenas are deliberately *not* shared across threads: each fleet
//! worker owns one, so the hot path takes no locks and reuse is a plain
//! `&mut` borrow.

use crate::scenario::{
    cell_config, observe_cell, run_cell_body, CellObservation, CellSpec, PoisonVariant, Scenario,
    ScenarioResult, TopologyVariant,
};
use crate::topology::{Testbed, TestbedConfig};
use v6sim::engine::TraceMode;

/// Stable key for one build configuration. FNV-1a over the three
/// build-time dimensions; everything else a cell varies is per-run
/// state applied by the shared run body.
fn arena_key(topology: TopologyVariant, poison: PoisonVariant, trace: TraceMode) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in [
        topology.label().as_bytes(),
        poison.label().as_bytes(),
        match trace {
            TraceMode::Off => b"off".as_slice(),
            TraceMode::Hops => b"hops".as_slice(),
            TraceMode::Full => b"full".as_slice(),
        },
    ]
    .into_iter()
    .flatten()
    {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct ArenaSlot {
    key: u64,
    config: TestbedConfig,
    tb: Testbed,
}

/// A per-worker pool of reusable testbeds, keyed by build configuration.
///
/// ```
/// use v6testbed::arena::CellArena;
/// use v6testbed::scenario::{CellSpec, FaultVariant, OsProfileId, PoisonVariant, TopologyVariant};
///
/// let spec = CellSpec {
///     os: OsProfileId(6), // macOS
///     topology: TopologyVariant::PaperDefault,
///     poison: PoisonVariant::WildcardA,
///     fault: FaultVariant::Clean,
///     seed: 42,
/// };
/// let mut arena = CellArena::new();
/// let warm = {
///     arena.run_observation(spec); // cold build, populates the slot
///     arena.run_observation(spec) // warm: recycled in place
/// };
/// assert_eq!(warm, spec.run_observation(), "warm equals cold");
/// assert_eq!(arena.cells_warm(), 1);
/// ```
#[derive(Default)]
pub struct CellArena {
    slots: Vec<ArenaSlot>,
    cells_cold: u64,
    cells_warm: u64,
}

impl CellArena {
    /// An empty arena; testbeds are built lazily on first use of each
    /// configuration.
    pub fn new() -> CellArena {
        CellArena::default()
    }

    /// Cells that paid a full topology build (first use of a config).
    pub fn cells_cold(&self) -> u64 {
        self.cells_cold
    }

    /// Cells that ran on a recycled testbed.
    pub fn cells_warm(&self) -> u64 {
        self.cells_warm
    }

    /// Distinct build configurations currently held.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Total frame-buffer mallocs across every held testbed — the
    /// steady-state gate: after warm-up, running more cells must leave
    /// this flat (see `tests/pool_steady_state.rs`).
    pub fn pool_fresh_allocations(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| s.tb.net.pool_fresh_allocations())
            .sum()
    }

    /// A ready-to-run testbed for the given build dimensions: recycled
    /// in place when a matching slot exists, built cold otherwise.
    fn slot_index(
        &mut self,
        topology: TopologyVariant,
        poison: PoisonVariant,
        trace: TraceMode,
    ) -> usize {
        let key = arena_key(topology, poison, trace);
        if let Some(i) = self.slots.iter().position(|s| s.key == key) {
            let slot = &mut self.slots[i];
            slot.tb.recycle(&slot.config);
            self.cells_warm += 1;
            i
        } else {
            let config = cell_config(topology, poison, trace);
            let tb = Testbed::build(config.clone());
            self.slots.push(ArenaSlot { key, config, tb });
            self.cells_cold += 1;
            self.slots.len() - 1
        }
    }

    /// Run a population cell on a warm testbed — the drop-in equivalent
    /// of [`CellSpec::run_observation`], byte-identical output.
    pub fn run_observation(&mut self, spec: CellSpec) -> CellObservation {
        let i = self.slot_index(spec.topology, spec.poison, TraceMode::Off);
        let slot = &mut self.slots[i];
        let (id, verdict) = run_cell_body(
            &mut slot.tb,
            spec.fault,
            spec.os.profile().clone(),
            spec.seed,
        );
        observe_cell(&mut slot.tb, id, &verdict)
    }

    /// Run a matrix cell on a warm testbed — the drop-in equivalent of
    /// [`Scenario::run_with_trace`], byte-identical output including the
    /// full metrics snapshot.
    pub fn run_with_trace(&mut self, s: &Scenario, trace: TraceMode) -> ScenarioResult {
        let i = self.slot_index(s.topology, s.poison, trace);
        let slot = &mut self.slots[i];
        let (_id, verdict) = run_cell_body(&mut slot.tb, s.fault, s.os.clone(), s.seed);
        let (entries, _) = crate::census::census(&mut slot.tb);
        ScenarioResult {
            label: s.label(),
            seed: s.seed,
            verdict,
            census: entries.into_iter().next().expect("one host attached"),
            metrics: slot.tb.net.metrics(),
            completed_at: slot.tb.net.now(),
        }
    }
}
