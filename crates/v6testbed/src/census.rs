//! IPv6-only client counting (paper §III.A): SCinet wants "an accurate
//! IPv6-only client count for future research papers", because SC23's naive
//! count (everyone associated to the SSID) included dual-stack devices
//! doing IPv4-literal traffic (the Echolink laptop of Fig. 2).

use crate::topology::Testbed;
use v6host::stack::Host;
use v6sim::engine::Node;

/// One client's census classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CensusEntry {
    /// Host display name.
    pub name: String,
    /// OS profile name.
    pub os: String,
    /// Has working global IPv6.
    pub has_v6: bool,
    /// Has an active IPv4 data path.
    pub has_v4: bool,
    /// RFC 8925 engaged (IPv4 administratively off).
    pub rfc8925_engaged: bool,
    /// Counted by the SC23-style naive census (associated to the SSID).
    pub naive_counted: bool,
    /// Counted by the SC24-style accurate census (genuinely IPv6-only).
    pub accurate_counted: bool,
}

/// Aggregate counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CensusSummary {
    /// Total clients associated.
    pub associated: usize,
    /// SC23-style count ("IPv6-only clients" = everyone on the SSID).
    pub naive_v6only: usize,
    /// SC24-style count (IPv6 working AND no IPv4 data path).
    pub accurate_v6only: usize,
    /// Clients that still hold an IPv4 path (dual-stack or v4-only).
    pub with_v4_path: usize,
}

/// Classify every attached client.
pub fn census(tb: &mut Testbed) -> (Vec<CensusEntry>, CensusSummary) {
    let hosts = tb.hosts.clone();
    let mut entries = Vec::with_capacity(hosts.len());
    for id in hosts {
        let h: &mut Host = tb.host(id);
        let has_v6 = h.v6_global_active();
        let has_v4 = h.v4_active();
        let entry = CensusEntry {
            name: Node::name(h).to_string(),
            os: h.profile.name.clone(),
            has_v6,
            has_v4,
            rfc8925_engaged: h.v6only_mode,
            // SC23: associated == counted.
            naive_counted: true,
            // SC24: IPv6 must work and no IPv4 data path may remain.
            accurate_counted: has_v6 && !has_v4,
        };
        entries.push(entry);
    }
    let summary = CensusSummary {
        associated: entries.len(),
        naive_v6only: entries.iter().filter(|e| e.naive_counted).count(),
        accurate_v6only: entries.iter().filter(|e| e.accurate_counted).count(),
        with_v4_path: entries.iter().filter(|e| e.has_v4).count(),
    };
    (entries, summary)
}
